#!/usr/bin/env python3
"""Proof labeling schemes (Section 5.2) end to end.

Builds a random graph, proves and locally verifies several predicates
from Lemma 5.1 and Claims 5.12-5.13, shows a corrupted label being
caught, and compiles a PLS into the Theorem 5.1 nondeterministic
two-party protocol over the MDS family.

Run:  python examples/pls_showcase.py
"""

import random

import networkx as nx

from repro import MdsFamily
from repro.cc.functions import random_input_pairs
from repro.graphs import random_graph
from repro.pls import (
    AcyclicityPls,
    ConnectivityPls,
    DistanceAtLeastPls,
    MatchingAtLeastPls,
    MatchingLessThanPls,
    SpanningTreePls,
    check_completeness,
    pls_to_nondeterministic_protocol,
)
from repro.pls.scheme import PlsInstance, edge_key
from repro.solvers import max_matching_size, weighted_distance


def main() -> None:
    rng = random.Random(51)
    g = random_graph(14, 0.3, rng)
    while not g.is_connected():
        g = random_graph(14, 0.3, rng)
    root = sorted(g.vertices(), key=repr)[0]
    tree = list(nx.bfs_tree(g.to_networkx(), root).edges())
    tree_inst = PlsInstance(graph=g, subgraph=frozenset(
        edge_key(u, v) for u, v in tree))

    print("== proving and verifying (n = 14) ==")
    nu = max_matching_size(g)
    for u, v in g.edges():
        g.set_edge_weight(u, v, rng.randint(1, 9))
    vs = g.vertices()
    d = weighted_distance(g, vs[0], vs[-1])
    schemes = [
        (SpanningTreePls(), tree_inst),
        (AcyclicityPls(), tree_inst),
        (ConnectivityPls(), tree_inst),
        (MatchingAtLeastPls(), PlsInstance(graph=g, k=nu)),
        (MatchingLessThanPls(), PlsInstance(graph=g, k=nu + 1)),
        (DistanceAtLeastPls(), PlsInstance(graph=g, s=vs[0], t=vs[-1], k=d)),
    ]
    for scheme, inst in schemes:
        bits = check_completeness(scheme, inst)
        print(f"  {scheme.name:<22} accepted everywhere; "
              f"proof size {bits:4d} bits")

    print("\n== a corrupted label is caught locally ==")
    scheme = SpanningTreePls()
    labels = scheme.prove(tree_inst)
    victim = sorted(g.vertices(), key=repr)[3]
    labels[victim] = {"t_root": victim, "t_parent": None, "t_dist": 0}
    rejecting = [v for v in g.vertices()
                 if not scheme.vertex_accepts(tree_inst, labels, v)]
    print(f"  forged a second root at {victim!r}: "
          f"{len(rejecting)} vertices reject -> labeling refused")

    print("\n== Theorem 5.1: compiling the PLS into a 2-party protocol ==")
    fam = MdsFamily(4)

    def build_instance(x, y):
        gg = fam.build(x, y)
        r = sorted(gg.vertices(), key=repr)[0]
        t = list(nx.bfs_tree(gg.to_networkx(), r).edges())
        return PlsInstance(graph=gg, subgraph=frozenset(
            edge_key(a, b) for a, b in t))

    proto = pls_to_nondeterministic_protocol(
        SpanningTreePls(), build_instance, fam.alice_vertices())
    x, y = random_input_pairs(fam.k_bits, 2, rng)[0]
    res = proto.check_completeness(x, y)
    print(f"  honest certificates accepted with {res.bits} bits "
          f"(|Ecut| = {len(fam.cut_edges())})")
    print("  => Theorem 1.1 cannot beat O(pls-size·|Ecut|/log n) for "
          "spanning-tree verification (Lemma 5.1).")


if __name__ == "__main__":
    main()
