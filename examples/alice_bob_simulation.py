#!/usr/bin/env python3
"""Theorem 1.1 in action: co-simulating CONGEST algorithms across a cut.

Alice simulates G[VA], Bob simulates G[VB]; only messages crossing the
fixed cut are communication.  We run a real algorithm (leader election)
over several of the paper's families and check the paper's accounting:

    bits exchanged  ≤  2 · rounds · |Ecut| · bandwidth,

then tabulate the round lower bound CC(DISJ)/(|Ecut|·log n) that each
family implies.

Run:  python examples/alice_bob_simulation.py
"""

import random

from repro import (
    HamiltonianPathFamily,
    MaxCutFamily,
    MdsFamily,
    MvcMaxISFamily,
    SteinerTreeFamily,
    theorem_1_1_bound,
)
from repro.cc.alice_bob import simulate_two_party
from repro.cc.functions import random_input_pairs
from repro.congest.algorithms.basic import FloodMinId


def main() -> None:
    rng = random.Random(1905)
    families = [
        ("MDS (Fig 1, Thm 2.1)", MdsFamily(4)),
        ("Ham. path (Fig 2, Thm 2.2)", HamiltonianPathFamily(2)),
        ("Steiner tree (Thm 2.7)", SteinerTreeFamily(4)),
        ("max-cut (Fig 3, Thm 2.8)", MaxCutFamily(2)),
        ("MVC/MaxIS base ([10])", MvcMaxISFamily(4)),
    ]
    print(f"{'family':<28} {'n':>4} {'|Ecut|':>7} {'rounds':>7} "
          f"{'cut bits':>9} {'budget':>9} {'bound':>7}")
    for name, fam in families:
        x, y = random_input_pairs(fam.k_bits, 2, rng)[0]
        g = fam.build(x, y)
        sim = simulate_two_party(g, fam.alice_vertices(), FloodMinId)
        assert sim.within_budget
        print(f"{name:<28} {g.n:>4} {sim.ecut_size:>7} {sim.rounds:>7} "
              f"{sim.cut_bits:>9} {sim.bits_budget:>9} "
              f"{theorem_1_1_bound(fam):>7.2f}")
    print("\nEvery run stayed within the 2·T·|Ecut|·B budget — the exact "
          "inequality Theorem 1.1's reduction charges.")


if __name__ == "__main__":
    main()
