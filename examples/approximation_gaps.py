#!/usr/bin/env python3
"""A tour of Section 4: hardness-of-approximation gaps, measured.

- the Reed-Solomon code gadget (Theorem 4.3): max-weight IS is
  8ℓ + 4t on intersecting inputs and 7ℓ + 4t on disjoint ones — a
  7/8 + ε gap that a fast algorithm would have to cross;
- the covering-design 2-MDS construction (Theorem 4.4): weight 2 vs
  > r = c·log ℓ — an Ω(log n) gap;
- the restricted-MDS construction (Theorem 4.8) running a *real* local
  aggregate algorithm (greedy span/weight MDS) under the shared-vertex
  two-party simulation, with its bit cost.

Run:  python examples/approximation_gaps.py
"""

import random

from repro import KMdsFamily, RestrictedMdsConstruction, WeightedApproxMaxISFamily
from repro.cc.functions import random_disjoint_pair, random_intersecting_pair
from repro.covering import build_covering_collection
from repro.solvers import is_dominating_set


def code_gadget_demo(rng: random.Random) -> None:
    print("== Theorem 4.3: the (7/8 + ε) MaxIS gap ==")
    print(f"  {'k':>3} {'n':>5} {'l':>4} {'t':>2} {'q':>3} "
          f"{'yes':>5} {'no':>5} {'ratio':>7}")
    for k in (2, 4, 8):
        fam = WeightedApproxMaxISFamily(k)
        x, y = random_intersecting_pair(fam.k_bits, rng)
        yes = fam.structured_max_weight(fam.build(x, y))
        x, y = random_disjoint_pair(fam.k_bits, rng)
        no = fam.structured_max_weight(fam.build(x, y))
        assert (yes, no) == (fam.alpha_yes, fam.alpha_no)
        print(f"  {k:>3} {fam.n_vertices():>5} {fam.ell:>4} {fam.t:>2} "
              f"{fam.q:>3} {yes:>5} {no:>5} {no / yes:>7.4f}")
    print("  ratio → 7/8 = 0.875: any better approximation distinguishes "
          "DISJ instances.")


def kmds_demo(rng: random.Random) -> None:
    print("\n== Theorem 4.4: the Ω(log n) 2-MDS gap ==")
    cc = build_covering_collection(universe_size=16, T=6, r=2, seed=0)
    fam = KMdsFamily(cc, k=2)
    x, y = random_intersecting_pair(cc.T, rng)
    yes = fam.optimum(fam.build(x, y))
    x, y = random_disjoint_pair(cc.T, rng)
    no = fam.optimum(fam.build(x, y))
    print(f"  covering design: T={cc.T}, ℓ={cc.universe_size}, r={cc.r} "
          "(verified r-covering property)")
    print(f"  optimum on intersecting inputs: {yes}")
    print(f"  optimum on disjoint inputs:     {no}  (> r = {cc.r})")
    print(f"  any ({cc.r}/2)-approximation separates the two.")


def restricted_demo(rng: random.Random) -> None:
    print("\n== Theorem 4.8: local-aggregate MDS under shared simulation ==")
    cc = build_covering_collection(universe_size=16, T=6, r=2, seed=0)
    rm = RestrictedMdsConstruction(cc)
    x, y = random_intersecting_pair(cc.T, rng)
    run = rm.simulate_greedy_two_party(x, y)
    g = rm.build(x, y)
    ds = [v for v, b in run.outputs.items() if b]
    weight = sum(g.vertex_weight(v) for v in ds)
    print(f"  greedy (a genuine Definition 4.1 algorithm): "
          f"{run.rounds} rounds")
    print(f"  produced a dominating set: {is_dominating_set(g, ds)}, "
          f"weight {weight} (optimum {rm.optimum(g)})")
    print(f"  two-party cost: {run.shared_bits} shared-aggregate bits + "
          f"{run.direct_cut_bits} direct cut bits")
    print(f"  per round: {run.total_two_party_bits / run.rounds:.0f} bits "
          f"= O(ℓ·log n), exactly the Theorem 4.8 accounting")


if __name__ == "__main__":
    rng = random.Random(48)
    code_gadget_demo(rng)
    kmds_demo(rng)
    restricted_demo(rng)
