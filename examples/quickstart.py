#!/usr/bin/env python3
"""Quickstart: build a lower-bound family, machine-check its lemma, and
evaluate the Theorem 1.1 round bound.

This walks the exact pipeline of the paper's Section 2 for the Figure 1
minimum dominating set family (Theorem 2.1):

1. construct G_{x,y} for concrete inputs,
2. validate the Definition 1.1 requirements,
3. verify Lemma 2.1 (a dominating set of size 4·log k + 2 exists iff
   DISJ(x, y) = FALSE) with an exact solver,
4. exhibit the explicit witness dominating set, and
5. evaluate the Ω(n²/log²n) bound the family implies.

Run:  python examples/quickstart.py
"""

import random

from repro import MdsFamily, theorem_1_1_bound, validate_family, verify_iff
from repro.cc.functions import (
    disjointness,
    random_input_pairs,
    random_intersecting_pair,
)
from repro.solvers import is_dominating_set, min_dominating_set


def main() -> None:
    rng = random.Random(2019)
    fam = MdsFamily(k=4)

    print("== Figure 1 family (Theorem 2.1) ==")
    for key, value in fam.describe().items():
        print(f"  {key:>14}: {value}")

    print("\n-- Definition 1.1 structural validation --")
    validate_family(fam)
    print("  vertex set fixed, G[VA] ~ x only, G[VB] ~ y only, cut fixed: OK")

    print("\n-- Lemma 2.1: dominating set of size",
          fam.target_size, "iff inputs intersect --")
    pairs = random_input_pairs(fam.k_bits, 6, rng)
    report = verify_iff(fam, pairs, negate=True)
    print(f"  {report}")

    x, y = random_intersecting_pair(fam.k_bits, rng)
    witness = fam.witness_dominating_set(x, y)
    graph = fam.build(x, y)
    print(f"\n-- witness for an intersecting pair --")
    print(f"  witness size: {len(witness)} (target {fam.target_size})")
    print(f"  dominates: {is_dominating_set(graph, witness)}")
    optimum = min_dominating_set(graph)
    print(f"  exact optimum: {len(optimum)}")

    print("\n-- Theorem 1.1 bound growth --")
    for k in (4, 8, 16, 32):
        f = MdsFamily(k)
        print(f"  k={k:3d}: n={f.n_vertices():4d}  |Ecut|={len(f.cut_edges()):3d}"
              f"  CC(DISJ)/(|Ecut|·log n) = {theorem_1_1_bound(f):8.3f}")
    print("\nThe bound grows ~quadratically in n/log n — the Ω̃(n²) of"
          " Theorem 2.1.")


if __name__ == "__main__":
    main()
