#!/usr/bin/env python3
"""The upper-bound side: CONGEST algorithms on the simulator.

Two algorithms from the paper:

- the folklore universal algorithm (elect a leader, learn the whole
  graph over a BFS tree in O(m + D) rounds, solve locally) — the O(n²)
  matching upper bound for every Section 2 lower bound; run here to
  solve MDS *exactly and distributedly* on a Figure 1 instance;
- Theorem 2.9's (1−ε)-approximate max-cut: sample edges with
  probability p, upload the sample, cut it exactly, downcast the sides.

Run:  python examples/congest_maxcut.py
"""

import random

from repro import MdsFamily
from repro.cc.functions import random_input_pairs
from repro.congest.algorithms import run_maxcut_sampling, run_universal_exact
from repro.graphs import random_graph
from repro.solvers import (
    cut_weight,
    is_dominating_set,
    max_cut_value,
    min_dominating_set,
)


def universal_demo() -> None:
    print("== universal O(m + D) algorithm on the MDS family ==")
    fam = MdsFamily(4)
    rng = random.Random(7)
    x, y = random_input_pairs(fam.k_bits, 2, rng)[1]
    g = fam.build(x, y)

    def solver(gg):
        ds = set(min_dominating_set(gg))
        return len(ds), {u: (u in ds) for u in gg.vertices()}

    outputs, sim = run_universal_exact(g, solver)
    members = [v for v, o in outputs.items() if o["value"]]
    print(f"  n={g.n}, m={g.m}: solved MDS distributedly in "
          f"{sim.rounds} rounds")
    print(f"  answer size {len(members)}, valid dominating set: "
          f"{is_dominating_set(g, members)}")
    print(f"  max message: {sim.max_message_bits} bits "
          f"(bandwidth {sim.bandwidth})")


def maxcut_demo() -> None:
    print("\n== Theorem 2.9: sampling (1−ε)-approximate max-cut ==")
    rng = random.Random(42)
    print(f"  {'n':>4} {'m':>4} {'p':>5} {'rounds':>7} "
          f"{'achieved':>9} {'exact':>6} {'ratio':>6}")
    for n in (12, 16, 20):
        g = random_graph(n, 0.4, rng)
        while not g.is_connected():
            g = random_graph(n, 0.4, rng)
        exact = max_cut_value(g)
        for p in (0.6, 1.0):
            res = run_maxcut_sampling(g, p=p, seed=n)
            achieved = cut_weight(g, [v for v, s in res.sides.items() if s])
            print(f"  {n:>4} {g.m:>4} {p:>5.2f} {res.rounds:>7} "
                  f"{achieved:>9.0f} {exact:>6.0f} {achieved / exact:>6.2f}")
    print("  (p = 1 recovers the exact optimum; rounds stay O(n + m_p + D))")


if __name__ == "__main__":
    universal_demo()
    maxcut_demo()
