"""Record simulator/solver benchmark timings into ``BENCH_simulator.json``.

The pytest benchmarks under ``benchmarks/`` are great for interactive
comparison but leave no artifact behind; this script is the perf
*trajectory*: it times the same workloads (cold solver caches, full
``quick=False`` experiment pipelines plus a pure-simulator flood
microbench), takes the p50 over ``--reps`` repetitions, and appends one
entry per bench — tagged with the git SHA and date — to
``BENCH_simulator.json`` at the repository root.

Usage
-----
``python benchmarks/record.py``
    Run every bench (5 reps each), print the table, compare against the
    last recorded entry, and exit nonzero on a >25% regression of any
    bench.  Pass ``--update`` to also append the new measurements to
    ``BENCH_simulator.json``.

``python benchmarks/record.py --quick``
    CI smoke tier: run the pure-simulator bench plus the family-sweep
    bench (3 reps) and fail on a >25% regression against the recorded
    baseline.  Never writes.

``python benchmarks/record.py --compare``
    Print the delta between the last two recorded entries per bench
    (per-SHA trajectory) without running anything.

The regression gate compares against the *latest* entry for each bench,
so after a deliberate perf change you re-run with ``--update`` and
commit the JSON; the next CI run gates against the new numbers.
Sub-200ms benches are topped up to at least 3 reps and gated on
best-of-N (``min_ms``) rather than the noisier p50.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import statistics
import subprocess
import sys
import time
from typing import Callable, Dict, List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

# delta/regression arithmetic shared with `repro report bench`, so the
# CLI view and this gate can never disagree about what regressed
from repro.obs.profile import percentile  # noqa: E402
from repro.obs.report.bench_view import (  # noqa: E402
    DEFAULT_TOLERANCE,
    BenchHistoryError,
    bench_delta,
    bench_rows,
    format_entry,
    latest_entry,
    load_bench_history,
)

BENCH_FILE = os.path.join(REPO_ROOT, "BENCH_simulator.json")
REGRESSION_TOLERANCE = DEFAULT_TOLERANCE  # fail beyond this p50 growth

#: benches whose p50 sits under this are in scheduler-noise territory:
#: ``time_bench`` tops them up to >=3 reps and the regression gate
#: compares best-of-N (``min_ms``) instead of a single noisy p50
NOISE_FLOOR_MS = 200.0


def _cold_experiment(experiment_id: str,
                     engine: str = None) -> Callable[[], None]:
    """The same workload the pytest benches time: one full (quick=False)
    experiment pipeline, starting from a cold solver cache.  ``engine``
    pins the CONGEST round loop for the duration of the bench (default:
    the process default)."""
    def run() -> None:
        from repro import solvers
        from repro.congest.model import configure_engine
        from repro.experiments.runner import run_experiment

        solvers.clear_cache()
        previous = configure_engine(engine) if engine else None
        try:
            record = run_experiment(experiment_id, quick=False)
            assert record.passed, record
        finally:
            if previous is not None:
                configure_engine(previous)
    return run


def _family_sweep(scratch: bool) -> Callable[[], None]:
    """A verify_iff sweep over MdsFamily(2): validate, then 16 repeated
    passes over 32 input pairs.

    ``scratch=False`` is the shipping path (cached-skeleton delta builds
    plus the sweep decision memo); ``scratch=True`` pins the pre-delta
    behaviour (every G_{x,y} rebuilt from nothing, every predicate
    re-decided) so the recorded pair documents the speedup.
    """
    def run() -> None:
        import random

        from repro import solvers
        from repro.cc.functions import random_input_pairs
        from repro.core.family import validate_family, verify_iff
        from repro.core.mds import MdsFamily

        solvers.clear_cache()
        fam = MdsFamily(2)
        if scratch:
            fam.build = fam.build_scratch  # type: ignore[method-assign]
        pairs = random_input_pairs(fam.k_bits, 32, random.Random(0xD15C))
        validate_family(fam, input_pairs=pairs[:6])
        for __ in range(16):
            # the batched kernel bypasses build() entirely, so the
            # scratch leg must pin batch=False or the build_scratch
            # monkeypatch would time nothing
            verify_iff(fam, pairs, negate=True, memo=not scratch,
                       batch=not scratch)
    return run


#: lazily-warmed store directory shared by the resumed-sweep bench reps
#: (populated by the first rep's cold pass, then every rep restores)
_GRID_STORE: List[str] = []


def _family_sweep_grid(resumed: bool,
                       batched: bool = False) -> Callable[[], None]:
    """A full 2^k_bits x 2^k_bits grid sweep of HamiltonianCycleFamily(2)
    (256 pairs) through a :class:`SweepStore` — the ``verify --grid``
    workload.

    ``resumed=False`` decides the whole grid cold into a throwaway store
    per rep; ``resumed=True`` sweeps against a store warmed once for the
    process, so every decision is a disk restore.  The recorded pair
    documents the cross-run memo-hit speedup of the result store.

    ``batched`` routes the cold decisions through the family's batched
    decision kernel; the unbatched cold bench pins ``batch=False`` so
    its baseline keeps meaning per-pair solver cost, and the recorded
    cold/batched pair documents the kernel's amortization.
    """
    def run() -> None:
        import shutil
        import tempfile

        from repro import solvers
        from repro.core.family import sweep
        from repro.core.hamiltonian import HamiltonianCycleFamily
        from repro.experiments.sweep_store import SweepStore

        if not resumed:
            solvers.clear_cache()  # cold means cold: no warm solver memo
        fam = HamiltonianCycleFamily(2)
        kb = fam.k_bits
        pairs = [(tuple(int(b) for b in format(i, f"0{kb}b")),
                  tuple(int(b) for b in format(j, f"0{kb}b")))
                 for i in range(1 << kb) for j in range(1 << kb)]
        if resumed:
            if not _GRID_STORE:
                warm = tempfile.mkdtemp(prefix="bench-sweep-store-")
                sweep(HamiltonianCycleFamily(2), pairs,
                      store=SweepStore(warm), batch=batched)
                _GRID_STORE.append(warm)
            report = sweep(fam, pairs, store=SweepStore(_GRID_STORE[0]),
                           batch=batched)
            assert report.store_hits == report.unique_pairs, report
            assert report.solved == 0, report
        else:
            cold = tempfile.mkdtemp(prefix="bench-sweep-store-")
            try:
                report = sweep(fam, pairs, store=SweepStore(cold),
                               batch=batched)
                assert report.solved == report.unique_pairs, report
                if batched:
                    assert report.batched == report.solved, report
            finally:
                shutil.rmtree(cold, ignore_errors=True)
    return run


#: hard ceiling on steady-state warm-pool payload per pair — the CI
#: assertion (enforced by bench_family_sweep_grid_warm, which --quick
#: runs) that per-pair sweep payload bloat cannot silently return.
#: Measured ~3.3 B/pair (packed bit strings + amortized shard header);
#: the cold path ships ~28 B/pair (family blob per shard + pickled
#: tuples).
PAYLOAD_BUDGET_BYTES = 8.0

#: one-shot latch: the warm-grid bench tears the pool down and primes
#: it (fresh fork + broadcast + enough sweeps that both lanes' memos
#: cover the grid) inside the first rep only, so every rep's measured
#: body is the *steady-state* warm sweep — work stealing splits shards
#: differently per sweep, so one priming pass would leave each lane
#: with holes the other lane filled and the p50 would depend on rep
#: count and bench ordering
_WARM_POOL_RESET: List[bool] = []


def _family_sweep_grid_warm() -> Callable[[], None]:
    """The 256-pair Hamiltonian grid through the persistent warm worker
    pool (2 lanes), a fresh family instance per sweep.

    The pool survives across reps, so the skeleton broadcasts once per
    lane and steady-state sweeps are served from hot worker memos — the
    cross-call reuse ``bench_family_sweep_grid`` (cold, throwaway
    pools) cannot see.  Each rep times several steady sweeps so the
    p50 is out of timer-noise territory.  Also asserts the per-pair
    payload budget.
    """
    def run() -> None:
        from repro import solvers
        from repro.core.family import sweep
        from repro.core.hamiltonian import HamiltonianCycleFamily
        from repro.experiments import warm_pool

        kb = HamiltonianCycleFamily(2).k_bits
        pairs = [(tuple(int(b) for b in format(i, f"0{kb}b")),
                  tuple(int(b) for b in format(j, f"0{kb}b")))
                 for i in range(1 << kb) for j in range(1 << kb)]
        if not _WARM_POOL_RESET:
            warm_pool.shutdown_pool()
            for __ in range(5):  # priming: fork lanes, saturate memos
                sweep(HamiltonianCycleFamily(2), pairs, jobs=2, warm=True)
            _WARM_POOL_RESET.append(True)
        solvers.clear_cache()  # parent stays cold: warmth lives in the pool
        for __ in range(8):
            report = sweep(HamiltonianCycleFamily(2), pairs, jobs=2,
                           warm=True)
            assert report.solved == report.unique_pairs == len(pairs), \
                report
        stats = warm_pool.pool_stats()
        if stats["pairs_shipped"]:
            per_pair = (stats["pair_payload_bytes"]
                        / stats["pairs_shipped"])
            assert per_pair <= PAYLOAD_BUDGET_BYTES, (
                f"warm-pool payload {per_pair:.1f} B/pair exceeds the "
                f"{PAYLOAD_BUDGET_BYTES} B budget — payload bloat")
    return run


def _graph_wire() -> Callable[[], None]:
    """Wire-format round-trip throughput: serialize and parse the
    warmed Hamiltonian grid skeleton 200 times, then pin round-trip
    ``content_hash`` equality once."""
    def run() -> None:
        from repro.core.hamiltonian import HamiltonianCycleFamily
        from repro.graphs import graph_from_bytes

        skeleton = HamiltonianCycleFamily(2).skeleton()
        expected = skeleton.content_hash()
        clone = skeleton
        for __ in range(200):
            clone = graph_from_bytes(skeleton.to_bytes())
        assert clone.content_hash() == expected
    return run


def _simulator_flood(engine: str = None) -> Callable[[], None]:
    """Pure engine throughput: flood-min-id on a fixed random graph.

    No exact solver involved, so this isolates the CONGEST round loop —
    the bench the CI smoke job gates on.  ``engine`` selects the round
    loop under test.
    """
    def run() -> None:
        import random

        from repro.congest.algorithms.basic import FloodMinId
        from repro.congest.model import CongestSimulator
        from repro.graphs import random_graph

        g = random_graph(64, 0.15, random.Random(0xBE))
        sim = CongestSimulator(g)
        sim.run(FloodMinId, engine=engine)
        assert sim.rounds >= 1
    return run


#: lazily-built event corpus for the tracer write-path benches (one
#: deterministic broadcast, recorded once and replayed per rep)
_TRACE_EVENTS: List = []


def _trace_event_corpus() -> List:
    if not _TRACE_EVENTS:
        import random

        from repro.congest.model import CongestSimulator, NodeAlgorithm
        from repro.graphs import random_graph
        from repro.obs import RecordingTracer

        class Broadcast(NodeAlgorithm):
            """Every informed vertex rebroadcasts each round until a
            fixed horizon — message-heavy, so tracer emit dominates."""

            def __init__(self) -> None:
                self.value = None
                self.round_no = 0

            def on_start(self, ctx):
                if ctx.uid == 0:
                    self.value = 7
                    return {w: self.value for w in ctx.neighbors}
                return {}

            def on_round(self, ctx, messages):
                self.round_no += 1
                if self.value is None and messages:
                    self.value = next(iter(messages.values()))
                if self.round_no >= 20:
                    ctx.halt(self.value)
                    return {}
                if self.value is not None:
                    return {w: self.value for w in ctx.neighbors}
                return {}

        g = random_graph(200, 0.03, random.Random(0x7ACE))
        rec = RecordingTracer()
        CongestSimulator(g, tracer=rec).run(Broadcast)
        _TRACE_EVENTS.extend(rec.events)
    return _TRACE_EVENTS


def _trace_emit(fmt: str) -> Callable[[], None]:
    """Tracer write-path throughput: replay the pre-recorded broadcast
    corpus through a file tracer.  The jsonl/binary pair documents the
    binary format's speedup in the trajectory."""
    def run() -> None:
        import tempfile

        from repro.obs import open_tracer

        events = _trace_event_corpus()
        with tempfile.TemporaryDirectory(prefix="bench-trace-") as tmp:
            suffix = ".jsonl" if fmt == "jsonl" else ".rtb"
            tracer = open_tracer(os.path.join(tmp, "t" + suffix), fmt=fmt)
            emit = tracer.emit
            for event in events:
                emit(event)
            tracer.close()
    return run


BENCHES: Dict[str, Callable[[], None]] = {
    # the two headline benches of the perf acceptance criteria
    "bench_congest_maxcut": _cold_experiment("E-T2.9-congest-maxcut"),
    # the same pipeline on the struct-of-arrays round loop
    "bench_congest_maxcut_vectorized":
        _cold_experiment("E-T2.9-congest-maxcut", engine="vectorized"),
    "bench_kmds": _cold_experiment("E-F6-T4.4-T4.5-kmds"),
    # the remaining simulator-heavy experiment benches
    "bench_universal_upper_bound": _cold_experiment("E-universal-upper-bound"),
    "bench_congest_local_separation":
        _cold_experiment("E-congest-local-separation"),
    # pure simulator microbenches per engine (CI regression gate)
    "simulator_flood": _simulator_flood(),
    "simulator_flood_vectorized": _simulator_flood(engine="vectorized"),
    # delta-build sweep vs the pre-delta scratch path (same workload)
    "bench_family_sweep": _family_sweep(scratch=False),
    "bench_family_sweep_scratch": _family_sweep(scratch=True),
    # full-grid sweep cold vs restored from the content-addressed store
    "bench_family_sweep_grid": _family_sweep_grid(resumed=False),
    # the same cold grid through the batched decision kernel (the
    # per-pair/batched pair documents the kernel's amortization)
    "bench_family_sweep_grid_batched":
        _family_sweep_grid(resumed=False, batched=True),
    "bench_family_sweep_resumed": _family_sweep_grid(resumed=True),
    # the same grid through the persistent warm pool (cross-call reuse)
    "bench_family_sweep_grid_warm": _family_sweep_grid_warm(),
    # compact binary graph wire-format round-trip throughput
    "bench_graph_wire": _graph_wire(),
    # tracer write-path throughput, jsonl vs compact binary
    "bench_trace_jsonl": _trace_emit("jsonl"),
    "bench_trace_binary": _trace_emit("binary"),
}

QUICK_BENCHES = ("simulator_flood", "simulator_flood_vectorized",
                 "bench_family_sweep", "bench_congest_maxcut_vectorized",
                 "bench_family_sweep_resumed",
                 "bench_family_sweep_grid_warm",
                 "bench_family_sweep_grid_batched", "bench_graph_wire")


def git_sha() -> str:
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             cwd=REPO_ROOT, capture_output=True, text=True,
                             check=True)
        return out.stdout.strip()
    except Exception:  # pragma: no cover - no git in exotic environments
        return "unknown"


def time_bench(fn: Callable[[], None], reps: int) -> Dict[str, float]:
    samples: List[float] = []
    for __ in range(reps):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1000.0)
    # sub-200ms benches live in scheduler-noise territory: top up to at
    # least 3 samples so min_ms is a best-of-N, not a single roll
    while (statistics.median(samples) < NOISE_FLOOR_MS
           and len(samples) < max(3, reps)):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1000.0)
    return {
        "p50_ms": round(statistics.median(samples), 2),
        "p95_ms": round(percentile(samples, 95), 2),
        "min_ms": round(min(samples), 2),
        "reps": len(samples),
    }


def gate_delta(base: Dict[str, float],
               result: Dict[str, float]) -> "float | None":
    """The fractional growth the regression gate judges.

    Benches at or above :data:`NOISE_FLOOR_MS` gate on the p50 delta
    (same arithmetic as ``repro report bench``).  Sub-floor benches
    gate on best-of-N (``min_ms``) instead — a couple of descheduled
    reps can double a 40ms p50, but the best rep is stable — falling
    back to the p50 delta for histories recorded before ``min_ms``.
    """
    delta = bench_delta(base, result)
    if result.get("p50_ms", NOISE_FLOOR_MS) >= NOISE_FLOOR_MS:
        return delta
    prev_best = base.get("min_ms")
    cur_best = result.get("min_ms")
    if not prev_best or cur_best is None:
        return delta
    return (cur_best - prev_best) / prev_best


def compare_history(history: Dict[str, List[Dict]], names: List[str]) -> None:
    """Print the last two recorded entries per bench — no benches run.

    Same rows as ``repro report bench``, plain-text rather than
    markdown (both sit on :func:`repro.obs.report.bench_rows`).
    """
    print(f"{'bench':<34} {'previous':>16} {'latest':>16} {'delta':>8}")
    for row in bench_rows(history, names=names):
        if not row["current"]:
            print(f"{row['name']:<34} {'-':>16} {'-':>16} {'(none)':>8}")
            continue
        cur_s = format_entry(row["current"])
        if row["delta"] is None:
            print(f"{row['name']:<34} {'-':>16} {cur_s:>16} {'(new)':>8}")
            continue
        prev_s = format_entry(row["previous"])
        print(f"{row['name']:<34} {prev_s:>16} {cur_s:>16} "
              f"{row['delta']:>+8.0%}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke tier: simulator bench only, no write")
    parser.add_argument("--update", action="store_true",
                        help="append the new measurements to "
                             "BENCH_simulator.json")
    parser.add_argument("--reps", type=int, default=None,
                        help="repetitions per bench (default 5, quick 3)")
    parser.add_argument("--only", nargs="*", action="extend", default=None,
                        metavar="NAME",
                        help="restrict to these bench names (repeatable: "
                             "--only A --only B, or --only A B)")
    parser.add_argument("--compare", action="store_true",
                        help="print the delta between the last two "
                             "recorded entries per bench; runs nothing")
    parser.add_argument("--file", default=BENCH_FILE,
                        help="bench history file (default: "
                             "BENCH_simulator.json at the repo root)")
    args = parser.parse_args(argv)

    names = list(QUICK_BENCHES) if args.quick else list(BENCHES)
    if args.only:
        unknown = [n for n in args.only if n not in BENCHES]
        if unknown:
            parser.error(f"unknown bench(es) {unknown}; "
                         f"known: {sorted(BENCHES)}")
        names = args.only
    reps = args.reps if args.reps is not None else (3 if args.quick else 5)

    bench_file = args.file
    try:
        history = load_bench_history(bench_file)
    except BenchHistoryError as exc:
        # corrupt/empty/truncated history (e.g. a killed recorder):
        # one-line nonzero exit instead of a raw json traceback
        print(str(exc), file=sys.stderr)
        return 1
    if args.compare:
        if not history:
            print(f"no bench history at {bench_file} "
                  f"(run benchmarks/record.py --update)", file=sys.stderr)
            return 1
        compare_history(history, names)
        return 0
    sha = git_sha()
    today = datetime.date.today().isoformat()
    regressions: List[str] = []

    print(f"{'bench':<34} {'p50 ms':>10} {'baseline':>10} {'delta':>8}")
    for name in names:
        result = time_bench(BENCHES[name], reps)
        base = latest_entry(history, name)
        base_p50 = base.get("p50_ms")
        delta = bench_delta(base, result)
        gated = gate_delta(base, result)
        if delta is not None:
            delta_s = f"{delta:+.0%}"
            if gated is not None and gated > REGRESSION_TOLERANCE:
                via_best = result.get("p50_ms", 0) < NOISE_FLOOR_MS
                regressions.append(
                    f"{name}: "
                    + (f"best-of-{result['reps']} {result['min_ms']}ms vs "
                       f"baseline best {base.get('min_ms')}ms"
                       if via_best and base.get("min_ms") else
                       f"p50 {result['p50_ms']}ms vs baseline "
                       f"{base_p50}ms")
                    + (f" ({gated:+.0%} > "
                       f"{REGRESSION_TOLERANCE:.0%} tolerance, "
                       f"baseline sha {base.get('sha', '?')})"))
        else:
            delta_s = "(new)"
        print(f"{name:<34} {result['p50_ms']:>10.2f} "
              f"{base_p50 if base_p50 else '-':>10} {delta_s:>8}")
        if args.update:
            history.setdefault(name, []).append(
                {"sha": sha, "date": today, **result})

    if args.update:
        with open(bench_file, "w") as fh:
            json.dump(history, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"recorded under sha {sha} in {bench_file}")

    if regressions:
        print("\nPERF REGRESSION:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
