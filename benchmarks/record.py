"""Record simulator/solver benchmark timings into ``BENCH_simulator.json``.

The pytest benchmarks under ``benchmarks/`` are great for interactive
comparison but leave no artifact behind; this script is the perf
*trajectory*: it times the same workloads (cold solver caches, full
``quick=False`` experiment pipelines plus a pure-simulator flood
microbench), takes the p50 over ``--reps`` repetitions, and appends one
entry per bench — tagged with the git SHA and date — to
``BENCH_simulator.json`` at the repository root.

Usage
-----
``python benchmarks/record.py``
    Run every bench (5 reps each), print the table, compare against the
    last recorded entry, and exit nonzero on a >25% regression of any
    bench.  Pass ``--update`` to also append the new measurements to
    ``BENCH_simulator.json``.

``python benchmarks/record.py --quick``
    CI smoke tier: run the pure-simulator bench plus the family-sweep
    bench (3 reps) and fail on a >25% regression against the recorded
    baseline.  Never writes.

``python benchmarks/record.py --compare``
    Print the delta between the last two recorded entries per bench
    (per-SHA trajectory) without running anything.

The regression gate compares against the *latest* entry for each bench,
so after a deliberate perf change you re-run with ``--update`` and
commit the JSON; the next CI run gates against the new numbers.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import statistics
import subprocess
import sys
import time
from typing import Callable, Dict, List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

BENCH_FILE = os.path.join(REPO_ROOT, "BENCH_simulator.json")
REGRESSION_TOLERANCE = 0.25  # fail if p50 grows by more than this fraction


def _cold_experiment(experiment_id: str) -> Callable[[], None]:
    """The same workload the pytest benches time: one full (quick=False)
    experiment pipeline, starting from a cold solver cache."""
    def run() -> None:
        from repro import solvers
        from repro.experiments.runner import run_experiment

        solvers.clear_cache()
        record = run_experiment(experiment_id, quick=False)
        assert record.passed, record
    return run


def _family_sweep(scratch: bool) -> Callable[[], None]:
    """A verify_iff sweep over MdsFamily(2): validate, then 16 repeated
    passes over 32 input pairs.

    ``scratch=False`` is the shipping path (cached-skeleton delta builds
    plus the sweep decision memo); ``scratch=True`` pins the pre-delta
    behaviour (every G_{x,y} rebuilt from nothing, every predicate
    re-decided) so the recorded pair documents the speedup.
    """
    def run() -> None:
        import random

        from repro import solvers
        from repro.cc.functions import random_input_pairs
        from repro.core.family import validate_family, verify_iff
        from repro.core.mds import MdsFamily

        solvers.clear_cache()
        fam = MdsFamily(2)
        if scratch:
            fam.build = fam.build_scratch  # type: ignore[method-assign]
        pairs = random_input_pairs(fam.k_bits, 32, random.Random(0xD15C))
        validate_family(fam, input_pairs=pairs[:6])
        for __ in range(16):
            verify_iff(fam, pairs, negate=True, memo=not scratch)
    return run


def _simulator_flood() -> None:
    """Pure engine throughput: flood-min-id on a fixed random graph.

    No exact solver involved, so this isolates the CONGEST round loop —
    the bench the CI smoke job gates on.
    """
    import random

    from repro.congest.algorithms.basic import FloodMinId
    from repro.congest.model import CongestSimulator
    from repro.graphs import random_graph

    g = random_graph(64, 0.15, random.Random(0xBE))
    sim = CongestSimulator(g)
    sim.run(FloodMinId)
    assert sim.rounds >= 1


BENCHES: Dict[str, Callable[[], None]] = {
    # the two headline benches of the perf acceptance criteria
    "bench_congest_maxcut": _cold_experiment("E-T2.9-congest-maxcut"),
    "bench_kmds": _cold_experiment("E-F6-T4.4-T4.5-kmds"),
    # the remaining simulator-heavy experiment benches
    "bench_universal_upper_bound": _cold_experiment("E-universal-upper-bound"),
    "bench_congest_local_separation":
        _cold_experiment("E-congest-local-separation"),
    # pure simulator microbench (CI regression gate)
    "simulator_flood": _simulator_flood,
    # delta-build sweep vs the pre-delta scratch path (same workload)
    "bench_family_sweep": _family_sweep(scratch=False),
    "bench_family_sweep_scratch": _family_sweep(scratch=True),
}

QUICK_BENCHES = ("simulator_flood", "bench_family_sweep")


def git_sha() -> str:
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             cwd=REPO_ROOT, capture_output=True, text=True,
                             check=True)
        return out.stdout.strip()
    except Exception:  # pragma: no cover - no git in exotic environments
        return "unknown"


def time_bench(fn: Callable[[], None], reps: int) -> Dict[str, float]:
    samples: List[float] = []
    for __ in range(reps):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1000.0)
    return {
        "p50_ms": round(statistics.median(samples), 2),
        "min_ms": round(min(samples), 2),
        "reps": reps,
    }


def load_history() -> Dict[str, List[Dict]]:
    if not os.path.exists(BENCH_FILE):
        return {}
    with open(BENCH_FILE) as fh:
        return json.load(fh)


def latest(history: Dict[str, List[Dict]], name: str) -> Dict:
    entries = history.get(name) or []
    return entries[-1] if entries else {}


def compare_history(history: Dict[str, List[Dict]], names: List[str]) -> None:
    """Print the last two recorded entries per bench — no benches run."""
    print(f"{'bench':<34} {'previous':>16} {'latest':>16} {'delta':>8}")
    for name in names:
        entries = history.get(name) or []
        if not entries:
            print(f"{name:<34} {'-':>16} {'-':>16} {'(none)':>8}")
            continue
        cur = entries[-1]
        cur_s = f"{cur['p50_ms']}ms@{cur.get('sha', '?')}"
        if len(entries) < 2:
            print(f"{name:<34} {'-':>16} {cur_s:>16} {'(new)':>8}")
            continue
        prev = entries[-2]
        prev_s = f"{prev['p50_ms']}ms@{prev.get('sha', '?')}"
        delta = (cur["p50_ms"] - prev["p50_ms"]) / prev["p50_ms"]
        print(f"{name:<34} {prev_s:>16} {cur_s:>16} {delta:>+8.0%}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke tier: simulator bench only, no write")
    parser.add_argument("--update", action="store_true",
                        help="append the new measurements to "
                             "BENCH_simulator.json")
    parser.add_argument("--reps", type=int, default=None,
                        help="repetitions per bench (default 5, quick 3)")
    parser.add_argument("--only", nargs="*", default=None,
                        help="restrict to these bench names")
    parser.add_argument("--compare", action="store_true",
                        help="print the delta between the last two "
                             "recorded entries per bench; runs nothing")
    args = parser.parse_args(argv)

    names = list(QUICK_BENCHES) if args.quick else list(BENCHES)
    if args.only:
        unknown = [n for n in args.only if n not in BENCHES]
        if unknown:
            parser.error(f"unknown bench(es) {unknown}; "
                         f"known: {sorted(BENCHES)}")
        names = args.only
    reps = args.reps if args.reps is not None else (3 if args.quick else 5)

    history = load_history()
    if args.compare:
        compare_history(history, names)
        return 0
    sha = git_sha()
    today = datetime.date.today().isoformat()
    regressions: List[str] = []

    print(f"{'bench':<34} {'p50 ms':>10} {'baseline':>10} {'delta':>8}")
    for name in names:
        result = time_bench(BENCHES[name], reps)
        base = latest(history, name)
        base_p50 = base.get("p50_ms")
        if base_p50:
            delta = (result["p50_ms"] - base_p50) / base_p50
            delta_s = f"{delta:+.0%}"
            if delta > REGRESSION_TOLERANCE:
                regressions.append(
                    f"{name}: p50 {result['p50_ms']}ms vs baseline "
                    f"{base_p50}ms ({delta:+.0%} > "
                    f"{REGRESSION_TOLERANCE:.0%} tolerance, "
                    f"baseline sha {base.get('sha', '?')})")
        else:
            delta_s = "(new)"
        print(f"{name:<34} {result['p50_ms']:>10.2f} "
              f"{base_p50 if base_p50 else '-':>10} {delta_s:>8}")
        if args.update:
            history.setdefault(name, []).append(
                {"sha": sha, "date": today, **result})

    if args.update:
        with open(BENCH_FILE, "w") as fh:
            json.dump(history, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"recorded under sha {sha} in {BENCH_FILE}")

    if regressions:
        print("\nPERF REGRESSION:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
