"""Solver scaling benchmarks (the verification substrate itself)."""

import random

from repro.graphs import random_graph
from repro.solvers import (
    independence_number,
    max_cut_value,
    max_independent_set,
    min_dominating_set,
)


def test_mis_branch_and_bound(benchmark):
    rng = random.Random(11)
    graphs = [random_graph(18, 0.4, rng) for __ in range(3)]
    result = benchmark.pedantic(
        lambda: [len(max_independent_set(g)) for g in graphs],
        rounds=1, iterations=1)
    assert all(isinstance(a, int) for a in result)


def test_independence_number_sparse(benchmark):
    """Branch-and-reduce on a 300-vertex bounded-degree graph (the
    Section 3 workload shape)."""
    rng = random.Random(12)
    g = random_graph(300, 2.0 / 299, rng)  # avg degree ~2
    alpha = benchmark.pedantic(lambda: independence_number(g),
                               rounds=1, iterations=1)
    assert alpha > 0


def test_mds_branch_and_bound(benchmark):
    rng = random.Random(13)
    graphs = [random_graph(16, 0.3, rng) for __ in range(3)]
    result = benchmark.pedantic(
        lambda: [len(min_dominating_set(g)) for g in graphs],
        rounds=1, iterations=1)
    assert all(r >= 1 for r in result)


def test_maxcut_vectorized(benchmark):
    rng = random.Random(14)
    g = random_graph(20, 0.4, rng)
    value = benchmark.pedantic(lambda: max_cut_value(g),
                               rounds=1, iterations=1)
    assert value >= g.m / 2


def test_bitmask_primitives(benchmark):
    """popcount/iter_bits are the inner loop of every bitmask solver;
    this pins their cost on the mask mix those solvers actually see so a
    primitive swap shows up as a delta here before it shows up as solver
    regressions."""
    from repro.solvers._bitmask import iter_bits, popcount

    rng = random.Random(15)
    masks = [rng.getrandbits(24) for __ in range(2000)]

    def work():
        acc = 0
        for m in masks:
            acc += popcount(m)
            for b in iter_bits(m):
                acc ^= b
        return acc

    result = benchmark.pedantic(work, rounds=3, iterations=5)
    assert result == work()
