"""E-T2.9: the (1−ε)-approximate max-cut CONGEST algorithm, plus the
universal O(m + D) upper bound on a family instance."""

from repro.experiments.runner import run_experiment


def test_congest_maxcut_experiment(once):
    once(run_experiment, "E-T2.9-congest-maxcut", quick=False)


def test_universal_upper_bound(once):
    once(run_experiment, "E-universal-upper-bound", quick=False)


def test_congest_local_separation(once):
    once(run_experiment, "E-congest-local-separation", quick=False)
