"""E-F5-T4.3/T4.1 and E-T4.2: MaxIS approximation hardness."""

import random

from repro.cc.functions import random_input_pairs
from repro.core.approx_maxis import WeightedApproxMaxISFamily
from repro.core.family import verify_iff
from repro.experiments.runner import run_experiment


def test_approx_maxis_experiment(once):
    once(run_experiment, "E-F5-T4.3-T4.1-approx-maxis", quick=False)


def test_linear_maxis_experiment(once):
    once(run_experiment, "E-T4.2-linear-maxis", quick=False)


def test_gap_at_k8(benchmark):
    """The 7/8 gap at k = 8 (n = 904) via the structured solver."""
    fam = WeightedApproxMaxISFamily(8)
    rng = random.Random(3)
    pairs = random_input_pairs(fam.k_bits, 2, rng)

    report = benchmark.pedantic(
        lambda: verify_iff(fam, pairs, negate=True), rounds=1, iterations=1)
    print(f"\n  k=8: n={fam.n_vertices()}, ratio={fam.gap_ratio():.4f}")
