"""E-F3-T2.8: the weighted max-cut family (Lemma 2.4)."""

from repro.experiments.runner import run_experiment


def test_maxcut_experiment(once):
    once(run_experiment, "E-F3-T2.8-maxcut", quick=False)


def test_base_mvc_experiment(once):
    once(run_experiment, "E-base-mvc", quick=False)
