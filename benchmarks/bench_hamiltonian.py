"""E-F2-T2.2 / E-T2.3-T2.4: Hamiltonian path and cycle families."""

from itertools import product

from repro.core.family import verify_iff
from repro.core.hamiltonian import HamiltonianPathFamily
from repro.experiments.runner import run_experiment


def test_hamiltonian_experiment(once):
    """Exhaustive 256-pair sweep at k = 2 (quick=False)."""
    once(run_experiment, "E-F2-T2.2-hamiltonian-path", quick=False)


def test_hamiltonian_variants_experiment(once):
    once(run_experiment, "E-T2.3-T2.4-hamiltonian-variants", quick=False)


def test_witness_path_k8(benchmark):
    """Constructive Claim 2.1 witness at k = 8 (n = 390)."""
    fam = HamiltonianPathFamily(8)
    x = [0] * 64
    y = [0] * 64
    x[9] = y[9] = 1

    path = benchmark.pedantic(lambda: fam.witness_path(tuple(x), tuple(y)),
                              rounds=1, iterations=1)
    assert len(path) == fam.n_vertices()


def test_split_simulation_experiment(once):
    once(run_experiment, "E-L2.2-split-simulation", quick=False)
