"""E-T2.7: the Steiner tree family (Claim 2.8)."""

import random

from repro.cc.functions import random_input_pairs
from repro.core.family import verify_iff
from repro.core.steiner import SteinerTreeFamily
from repro.experiments.runner import run_experiment


def test_steiner_experiment(once):
    once(run_experiment, "E-T2.7-steiner", quick=False)


def test_steiner_k8(benchmark):
    fam = SteinerTreeFamily(8)
    rng = random.Random(2)
    pairs = random_input_pairs(fam.k_bits, 2, rng)

    report = benchmark.pedantic(
        lambda: verify_iff(fam, pairs, negate=True), rounds=1, iterations=1)
    assert report.checked == 2
