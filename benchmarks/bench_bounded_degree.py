"""E-F4-T3.1 / E-T3.3-T3.4: the Section 3 bounded-degree chain."""

from repro.experiments.runner import run_experiment


def test_bounded_degree_experiment(once):
    once(run_experiment, "E-F4-T3.1-bounded-degree-maxis", quick=True)


def test_bounded_degree_reductions(once):
    once(run_experiment, "E-T3.3-T3.4-bounded-degree-reductions",
         quick=False)
