"""E-C5.4-C5.9: limitation protocols on family instances."""

from repro.experiments.runner import run_experiment


def test_protocol_limits_experiment(once):
    once(run_experiment, "E-C5.4-C5.9-protocol-limits", quick=False)
