"""Parallel runner speedup and solver-cache hit speedup.

Acceptance gates for the parallel experiment runner, measured as two
separate regimes so fork cost is never conflated with throughput:

- **cold pool** (``warm=False``): one throwaway pool per call, spin-up
  included — ``run_all(jobs=4)`` over a CPU-heavy slice must be ≥ 1.5×
  faster than serial **when 4 cores are available** (single-core CI
  boxes print both timings and only check that the parallel path stays
  correct and roughly no slower than serial plus the pool's fixed
  fork/teardown cost);
- **warm pool** (the default): a second ``run_all`` against the
  persistent pool must not re-pay the spin-up its priming call paid,
  and its records must stay byte-identical to serial;
- a repeated exact-solver call must hit the memoization cache and be
  dramatically (≥ 10×) faster than the first call.

Run directly:
``PYTHONPATH=src python -m pytest benchmarks/bench_parallel_runner.py -q -s``
"""

from __future__ import annotations

import os
import random
import time

from repro.experiments import records_equivalent, run_all
from repro.graphs import random_graph
from repro.solvers import max_cut
from repro.solvers.cache import CACHE

# heavy-ish experiments so the per-job work dwarfs pool overhead
PARALLEL_SLICE = [
    "E-F1-T2.1-mds",
    "E-base-mvc",
    "E-T2.5-two-ecss",
    "E-T2.7-steiner",
    "E-F5-T4.3-T4.1-approx-maxis",
    "E-F6-T4.4-T4.5-kmds",
    "E-T1.1-simulation",
    "E-T5.1-pls-compiler",
]

SPEEDUP_FLOOR = 1.5
CACHE_SPEEDUP_FLOOR = 10.0


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def test_parallel_speedup_cold(benchmark):
    """Throwaway-pool regime: spin-up cost inside the measurement."""
    serial, t_serial = _timed(run_all, quick=True, only=PARALLEL_SLICE)

    def parallel_run():
        return run_all(quick=True, only=PARALLEL_SLICE, jobs=4, warm=False)

    start = time.perf_counter()
    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    t_parallel = time.perf_counter() - start

    mismatches = [a.experiment_id for a, b in zip(serial, parallel)
                  if not records_equivalent(a, b)]
    assert not mismatches, f"parallel records diverged: {mismatches}"
    assert all(r.passed for r in parallel), parallel

    speedup = t_serial / t_parallel if t_parallel else float("inf")
    cores = os.cpu_count() or 1
    print(f"\nserial {t_serial:.2f}s, cold jobs=4 {t_parallel:.2f}s, "
          f"speedup {speedup:.2f}x on {cores} cores")
    if cores >= 4:
        assert speedup >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x speedup on {cores} cores, "
            f"got {speedup:.2f}x")
    else:
        # can't be faster than serial on one core; just bound the overhead
        assert t_parallel <= t_serial * 2 + 5.0


def test_parallel_speedup_warm(benchmark):
    """Persistent-pool regime: lanes forked once by a priming call, the
    measured call reuses them (and the workers' solver caches)."""
    from repro.experiments import warm_pool

    serial, t_serial = _timed(run_all, quick=True, only=PARALLEL_SLICE)

    warm_pool.shutdown_pool()
    try:
        # priming call: pays the lane forks the cold bench pays per call
        __, t_prime = _timed(run_all, quick=True, only=PARALLEL_SLICE,
                             jobs=4)

        def warm_run():
            return run_all(quick=True, only=PARALLEL_SLICE, jobs=4)

        start = time.perf_counter()
        warm = benchmark.pedantic(warm_run, rounds=1, iterations=1)
        t_warm = time.perf_counter() - start
    finally:
        warm_pool.shutdown_pool()

    mismatches = [a.experiment_id for a, b in zip(serial, warm)
                  if not records_equivalent(a, b)]
    assert not mismatches, f"warm-pool records diverged: {mismatches}"
    assert all(r.passed for r in warm), warm

    print(f"\nserial {t_serial:.2f}s, priming jobs=4 {t_prime:.2f}s, "
          f"warm jobs=4 {t_warm:.2f}s")
    # the honest warm-pool gate: the steady-state call must not re-pay
    # the priming call's spin-up (generous slack for 1-core CI noise)
    assert t_warm <= t_prime * 1.25 + 2.0, (
        f"warm run {t_warm:.2f}s vs primed run {t_prime:.2f}s — the "
        f"persistent pool is re-paying per-call spin-up")


def test_cache_hit_speedup(benchmark):
    rng = random.Random(7)
    g = random_graph(20, 0.5, rng)  # Θ(2^n) Gray-code sweep: ~1M subsets

    CACHE.configure(enabled=True, cache_dir=None)
    CACHE._mem.clear()
    CACHE.reset_stats()
    try:
        cold_result, t_cold = _timed(max_cut, g)

        start = time.perf_counter()
        warm_result = benchmark.pedantic(max_cut, args=(g,),
                                         rounds=1, iterations=1)
        t_warm = time.perf_counter() - start

        assert warm_result == cold_result
        stats = CACHE.stats["maxcut.max_cut"]
        assert stats.hits == 1 and stats.misses == 1
        speedup = t_cold / t_warm if t_warm else float("inf")
        print(f"\ncold {t_cold * 1000:.1f}ms, cached {t_warm * 1000:.3f}ms, "
              f"speedup {speedup:.0f}x")
        assert speedup >= CACHE_SPEEDUP_FLOOR, (
            f"cache hit only {speedup:.1f}x faster than the solve")
    finally:
        CACHE._mem.clear()
        CACHE.reset_stats()
