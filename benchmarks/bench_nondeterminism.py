"""E-C5.10-C5.11: nondeterministic protocols and Γ(f)."""

from repro.experiments.runner import run_experiment


def test_nondeterminism_experiment(once):
    once(run_experiment, "E-C5.10-C5.11-nondeterminism", quick=False)
