"""Benchmark harness configuration.

Every benchmark wraps one experiment runner from
``repro.experiments`` — the same code that generates EXPERIMENTS.md —
so the timing numbers measure the full build-and-verify pipeline of a
paper result.  Heavy experiments run once (`pedantic`, 1 round).
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark `fn` with a single round (the experiments are heavy and
    deterministic; statistical repetition adds nothing)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        record = run_once(benchmark, fn, *args, **kwargs)
        if hasattr(record, "passed"):
            assert record.passed, record
            print()
            print(record.as_row())
        return record
    return runner
