"""Tracing overhead on a 500-vertex broadcast.

Acceptance gates for the observability layer:

- an attached :class:`NullTracer` must cost ≤ 5% wall-clock versus an
  untraced run (its ``enabled = False`` flag makes the simulator skip
  event construction, so the hot message path is identical);
- the compact binary format must beat JSONL where the formats actually
  differ — the emit path: replaying the recorded event stream through a
  :class:`BinaryTracer` must take ≤ 40% of the :class:`JsonlTracer`
  wall-clock (≥ 2.5× faster) and produce a file ≥ 5× smaller;
- the mmap-backed streaming reader must render a report from a
  ≥ 100k-event binary trace without materialising the events (peak
  traced allocations bounded well below the decoded list size).

The benchmark also reports what *enabled* tracing costs end-to-end
(``RecordingTracer``, ``JsonlTracer``, ``BinaryTracer``), which is
allowed to be substantial — that is the price of a full event stream,
paid only when asked for.

Run directly: ``PYTHONPATH=src python -m pytest benchmarks/bench_tracing_overhead.py -q -s``
"""

from __future__ import annotations

import os
import random
import tempfile
import time
from typing import Callable, List, Optional

from repro.congest.model import CongestSimulator, NodeAlgorithm
from repro.graphs import random_graph
from repro.obs import (
    BinaryTracer,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    Tracer,
)

N_VERTICES = 500
EDGE_PROB = 0.012
HORIZON = 30
REPEATS = 5


class RepeatedBroadcast(NodeAlgorithm):
    """uid 0 floods a token; every informed vertex rebroadcasts to all
    neighbours each round until a fixed horizon — message-heavy by
    design, so per-message overhead dominates the measurement."""

    def __init__(self) -> None:
        self.value: Optional[int] = None
        self.round_no = 0

    def on_start(self, ctx):
        if ctx.uid == 0:
            self.value = 7
            return {w: self.value for w in ctx.neighbors}
        return {}

    def on_round(self, ctx, messages):
        self.round_no += 1
        if self.value is None and messages:
            self.value = next(iter(messages.values()))
        if self.round_no >= HORIZON:
            ctx.halt(self.value)
            return {}
        if self.value is not None:
            return {w: self.value for w in ctx.neighbors}
        return {}


def _graph():
    return random_graph(N_VERTICES, EDGE_PROB, random.Random(0xBEAD))


def _best_seconds(make_tracer: Callable[[], Optional[Tracer]],
                  graph, repeats: int = REPEATS) -> float:
    best = float("inf")
    for __ in range(repeats):
        tracer = make_tracer()
        sim = CongestSimulator(graph, tracer=tracer)
        start = time.perf_counter()
        sim.run(RepeatedBroadcast)
        best = min(best, time.perf_counter() - start)
        if tracer is not None:
            tracer.close()
    return best


def test_null_tracer_overhead_within_5_percent():
    g = _graph()
    # interleave-insensitive: best-of-N on the identical workload
    base = _best_seconds(lambda: None, g)
    null = _best_seconds(NullTracer, g)
    overhead = null / base - 1.0
    print(f"\nbaseline {base:.3f}s  NullTracer {null:.3f}s  "
          f"overhead {100 * overhead:+.2f}%")
    assert overhead <= 0.05, (
        f"NullTracer overhead {100 * overhead:.2f}% exceeds 5% "
        f"(baseline {base:.3f}s, null {null:.3f}s)")


def test_report_enabled_tracer_costs():
    g = _graph()
    base = _best_seconds(lambda: None, g, repeats=3)
    rec = _best_seconds(RecordingTracer, g, repeats=3)
    tmp = tempfile.mkdtemp(prefix="bench-trace-")
    seq = iter(range(10))

    def jsonl():
        return JsonlTracer(os.path.join(tmp, f"bench-{next(seq)}.jsonl"))

    def binary():
        return BinaryTracer(os.path.join(tmp, f"bench-{next(seq)}.rtb"))

    jtime = _best_seconds(jsonl, g, repeats=3)
    btime = _best_seconds(binary, g, repeats=3)
    print(f"\nbaseline {base:.3f}s  RecordingTracer {rec:.3f}s "
          f"({rec / base:.2f}x)  JsonlTracer {jtime:.3f}s "
          f"({jtime / base:.2f}x)  BinaryTracer {btime:.3f}s "
          f"({btime / base:.2f}x)")
    # enabled tracing must stay within an order of magnitude — it is a
    # debugging/measurement mode, not the production path
    assert rec < 20 * base
    assert jtime < 20 * base
    assert btime < 20 * base


def _recorded_events() -> List:
    rec = RecordingTracer()
    CongestSimulator(_graph(), tracer=rec).run(RepeatedBroadcast)
    return rec.events


def _emit_seconds(make_tracer, events, repeats: int = REPEATS) -> float:
    best = float("inf")
    for __ in range(repeats):
        tracer = make_tracer()
        emit = tracer.emit
        start = time.perf_counter()
        for event in events:
            emit(event)
        best = min(best, time.perf_counter() - start)
        tracer.close()
    return best


def test_binary_beats_jsonl_on_emit_path_and_disk():
    """The ISSUE 6 format gates, measured where the formats differ.

    A full simulator run shares the (dominant) round-loop and
    event-construction cost between the two tracers, so the comparison
    replays one pre-recorded event stream through each: serialisation
    wall-clock must satisfy binary ≤ 0.40 × jsonl (≥ 2.5× faster), and
    the files written from the *same* events must satisfy
    jsonl ≥ 5 × binary bytes.
    """
    events = _recorded_events()
    assert len(events) > 10_000, "workload too small to be meaningful"
    tmp = tempfile.mkdtemp(prefix="bench-emit-")
    jsonl_path = os.path.join(tmp, "emit.jsonl")
    binary_path = os.path.join(tmp, "emit.rtb")
    jtime = _emit_seconds(lambda: JsonlTracer(jsonl_path), events)
    btime = _emit_seconds(lambda: BinaryTracer(binary_path), events)
    jsize = os.path.getsize(jsonl_path)
    bsize = os.path.getsize(binary_path)
    print(f"\n{len(events)} events: JsonlTracer {jtime:.3f}s / {jsize}B  "
          f"BinaryTracer {btime:.3f}s / {bsize}B  "
          f"(speed {jtime / btime:.1f}x, size {jsize / bsize:.1f}x)")
    assert btime <= 0.40 * jtime, (
        f"binary emit {btime:.3f}s exceeds 40% of jsonl {jtime:.3f}s "
        f"(only {jtime / btime:.2f}x faster, gate is 2.5x)")
    assert jsize >= 5 * bsize, (
        f"binary file {bsize}B is not 5x smaller than jsonl {jsize}B "
        f"(only {jsize / bsize:.2f}x)")


def test_streaming_report_from_100k_event_trace():
    """``iter_trace`` + ``render_report`` must stream: peak traced
    allocations while rendering a ≥ 100k-event binary trace stay far
    below what materialising the event list costs."""
    import tracemalloc

    from repro.obs import iter_trace, read_trace, render_report

    events = _recorded_events()
    tmp = tempfile.mkdtemp(prefix="bench-stream-")
    path = os.path.join(tmp, "big.rtb")
    tracer = BinaryTracer(path)
    runs = -(-100_000 // len(events))  # ceil: guarantee >= 100k events
    for __ in range(runs):
        for event in events:
            tracer.emit(event)
    tracer.close()
    total = runs * len(events)
    assert total >= 100_000

    tracemalloc.start()
    report = render_report(iter_trace(path))
    __, streamed_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    materialised = read_trace(path)
    __, list_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(materialised) == total

    print(f"\n{total} events: streaming peak {streamed_peak / 1e6:.1f}MB, "
          f"materialised peak {list_peak / 1e6:.1f}MB")
    assert "CONGEST trace report" in report
    assert streamed_peak < list_peak / 5, (
        f"streaming render peaked at {streamed_peak}B, not clearly below "
        f"the materialised list's {list_peak}B")
