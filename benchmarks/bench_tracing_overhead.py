"""Tracing overhead on a 500-vertex broadcast.

Acceptance gate for the observability layer: an attached
:class:`NullTracer` must cost ≤ 5% wall-clock versus an untraced run
(its ``enabled = False`` flag makes the simulator skip event
construction, so the hot message path is identical).  The benchmark
also reports what *enabled* tracing costs (``RecordingTracer`` and
``JsonlTracer``), which is allowed to be substantial — that is the
price of a full event stream, paid only when asked for.

Run directly: ``PYTHONPATH=src python -m pytest benchmarks/bench_tracing_overhead.py -q -s``
"""

from __future__ import annotations

import os
import random
import tempfile
import time
from typing import Callable, Optional

from repro.congest.model import CongestSimulator, NodeAlgorithm
from repro.graphs import random_graph
from repro.obs import JsonlTracer, NullTracer, RecordingTracer, Tracer

N_VERTICES = 500
EDGE_PROB = 0.012
HORIZON = 30
REPEATS = 5


class RepeatedBroadcast(NodeAlgorithm):
    """uid 0 floods a token; every informed vertex rebroadcasts to all
    neighbours each round until a fixed horizon — message-heavy by
    design, so per-message overhead dominates the measurement."""

    def __init__(self) -> None:
        self.value: Optional[int] = None
        self.round_no = 0

    def on_start(self, ctx):
        if ctx.uid == 0:
            self.value = 7
            return {w: self.value for w in ctx.neighbors}
        return {}

    def on_round(self, ctx, messages):
        self.round_no += 1
        if self.value is None and messages:
            self.value = next(iter(messages.values()))
        if self.round_no >= HORIZON:
            ctx.halt(self.value)
            return {}
        if self.value is not None:
            return {w: self.value for w in ctx.neighbors}
        return {}


def _graph():
    return random_graph(N_VERTICES, EDGE_PROB, random.Random(0xBEAD))


def _best_seconds(make_tracer: Callable[[], Optional[Tracer]],
                  graph, repeats: int = REPEATS) -> float:
    best = float("inf")
    for __ in range(repeats):
        tracer = make_tracer()
        sim = CongestSimulator(graph, tracer=tracer)
        start = time.perf_counter()
        sim.run(RepeatedBroadcast)
        best = min(best, time.perf_counter() - start)
        if tracer is not None:
            tracer.close()
    return best


def test_null_tracer_overhead_within_5_percent():
    g = _graph()
    # interleave-insensitive: best-of-N on the identical workload
    base = _best_seconds(lambda: None, g)
    null = _best_seconds(NullTracer, g)
    overhead = null / base - 1.0
    print(f"\nbaseline {base:.3f}s  NullTracer {null:.3f}s  "
          f"overhead {100 * overhead:+.2f}%")
    assert overhead <= 0.05, (
        f"NullTracer overhead {100 * overhead:.2f}% exceeds 5% "
        f"(baseline {base:.3f}s, null {null:.3f}s)")


def test_report_enabled_tracer_costs():
    g = _graph()
    base = _best_seconds(lambda: None, g, repeats=3)
    rec = _best_seconds(RecordingTracer, g, repeats=3)
    tmp = tempfile.mkdtemp(prefix="bench-trace-")
    seq = iter(range(10))

    def jsonl():
        return JsonlTracer(os.path.join(tmp, f"bench-{next(seq)}.jsonl"))

    jtime = _best_seconds(jsonl, g, repeats=3)
    print(f"\nbaseline {base:.3f}s  RecordingTracer {rec:.3f}s "
          f"({rec / base:.2f}x)  JsonlTracer {jtime:.3f}s "
          f"({jtime / base:.2f}x)")
    # enabled tracing must stay within an order of magnitude — it is a
    # debugging/measurement mode, not the production path
    assert rec < 20 * base
    assert jtime < 20 * base
