"""E-F7-T4.6/T4.7: Steiner tree approximation hardness."""

from repro.experiments.runner import run_experiment


def test_steiner_approx_experiment(once):
    once(run_experiment, "E-F7-T4.6-T4.7-steiner-approx", quick=False)
