"""Ablations over the reproduction's own design choices.

- MaxIS: bitmask branch-and-bound (clique-cover bound) vs the sparse
  branch-and-reduce with degree-2 folding — the folding solver is what
  makes the Section 3 graphs (hundreds of vertices, Δ ≤ 5) verifiable.
- Max-cut: Gray-code walk vs the vectorized numpy sweep (the latter is
  what keeps the k = 2 Figure 3 predicate usable inside iff-sweeps).
- Theorem 2.9: approximation quality as a function of the sampling
  probability p — the ε/rounds trade-off of Lemma 2.5.
"""

import random
import time

from repro.graphs import random_graph
from repro.congest.algorithms import run_maxcut_sampling
from repro.solvers import cut_weight, independence_number, max_cut_value
from repro.solvers.maxcut import max_cut_vectorized
from repro.solvers.mis import max_independent_set


def connected_random_graph(n, p, rng):
    g = random_graph(n, p, rng)
    while not g.is_connected():
        g = random_graph(n, p, rng)
    return g


def test_mis_solver_ablation(benchmark):
    """Dense graphs favour the bitmask B&B; sparse bounded-degree graphs
    favour folding (orders of magnitude on the Section 3 shapes)."""
    rng = random.Random(21)
    dense = random_graph(16, 0.5, rng)
    sparse = random_graph(120, 3.0 / 119, rng)

    def run():
        timings = {}
        t0 = time.perf_counter()
        a1 = len(max_independent_set(dense))
        timings["bitmask@dense(n=16)"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        a2 = independence_number(dense)
        timings["folding@dense(n=16)"] = time.perf_counter() - t0
        assert a1 == a2
        t0 = time.perf_counter()
        a3 = independence_number(sparse)
        timings["folding@sparse(n=120)"] = time.perf_counter() - t0
        return timings, a3

    timings, __ = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, secs in timings.items():
        print(f"  {name:<24} {secs * 1000:8.1f} ms")


def test_maxcut_solver_ablation(benchmark):
    rng = random.Random(22)
    g = random_graph(20, 0.4, rng)
    for u, v in g.edges():
        g.set_edge_weight(u, v, rng.randint(1, 9))

    def run():
        from repro.solvers.maxcut import max_cut

        t0 = time.perf_counter()
        v1, __ = max_cut_vectorized(g)
        vec = time.perf_counter() - t0
        t0 = time.perf_counter()
        v2, __ = max_cut(g, limit=16) if g.n <= 16 else (v1, None)
        gray = time.perf_counter() - t0
        assert v1 == max_cut_value(g)
        return {"vectorized(n=20)": vec, "gray-code(skipped n>16)": gray}

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, secs in timings.items():
        print(f"  {name:<26} {secs * 1000:8.1f} ms")


def test_sampling_probability_ablation(benchmark):
    """Theorem 2.9's trade-off: lower p ⇒ fewer uploaded edges (fewer
    rounds) but a weaker cut."""
    rng = random.Random(23)
    g = connected_random_graph(16, 0.5, rng)
    exact = max_cut_value(g)

    def run():
        rows = []
        for p in (0.3, 0.5, 0.75, 1.0):
            res = run_maxcut_sampling(g, p=p, seed=11)
            achieved = cut_weight(g, [v for v, s in res.sides.items() if s])
            rows.append((p, res.sampled_edges, res.rounds,
                         achieved / exact))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"  {'p':>5} {'edges':>6} {'rounds':>7} {'ratio':>6}")
    for p, edges, rounds, ratio in rows:
        print(f"  {p:>5.2f} {edges:>6} {rounds:>7} {ratio:>6.2f}")
    assert rows[-1][3] == 1.0  # p = 1 is exact
