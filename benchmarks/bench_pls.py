"""E-T5.1 + Lemma 5.1 + Claims 5.12-5.13: the PLS library."""

import random

import networkx as nx

from repro.experiments.runner import run_experiment
from repro.graphs import random_graph
from repro.pls import (
    AcyclicityPls,
    BipartitePls,
    ConnectivityPls,
    MatchingAtLeastPls,
    MatchingLessThanPls,
    SpanningTreePls,
    check_completeness,
)
from repro.pls.scheme import PlsInstance, edge_key
from repro.solvers import max_matching_size


def test_pls_compiler_experiment(once):
    once(run_experiment, "E-T5.1-pls-compiler", quick=False)


def test_pls_label_sizes(benchmark):
    """Proof sizes of the Lemma 5.1 / Claim 5.12 schemes at n = 20."""
    rng = random.Random(9)
    g = random_graph(20, 0.3, rng)
    while not g.is_connected():
        g = random_graph(20, 0.3, rng)
    root = sorted(g.vertices(), key=repr)[0]
    tree = list(nx.bfs_tree(g.to_networkx(), root).edges())
    tree_inst = PlsInstance(graph=g, subgraph=frozenset(
        edge_key(u, v) for u, v in tree))
    nu = max_matching_size(g)

    def run():
        return {
            "spanning-tree": check_completeness(SpanningTreePls(), tree_inst),
            "acyclicity": check_completeness(AcyclicityPls(), tree_inst),
            "connectivity": check_completeness(ConnectivityPls(), tree_inst),
            "matching>=k": check_completeness(
                MatchingAtLeastPls(), PlsInstance(graph=g, k=nu)),
            "matching<k": check_completeness(
                MatchingLessThanPls(), PlsInstance(graph=g, k=nu + 1)),
        }

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, bits in sizes.items():
        print(f"  pls-size[{name}] = {bits} bits (n = {g.n})")
