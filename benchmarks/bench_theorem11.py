"""E-T1.1: the Alice-Bob simulation mechanics."""

from repro.cc.alice_bob import simulate_two_party
from repro.congest.algorithms.basic import BfsFromRoot
from repro.core.mds import MdsFamily
from repro.experiments.runner import run_experiment


def test_theorem11_experiment(once):
    once(run_experiment, "E-T1.1-simulation", quick=False)


def test_simulation_of_bfs(benchmark):
    """Simulate BFS across the cut of the k = 8 MDS family."""
    fam = MdsFamily(8)
    g = fam.build(fam.zero_input(), fam.zero_input())
    root_label = sorted(g.vertices(), key=repr)[0]

    def run():
        from repro.congest.model import CongestSimulator

        sim_probe = CongestSimulator(g)
        root_uid = sim_probe.uid_of[root_label]
        return simulate_two_party(
            g, fam.alice_vertices(), BfsFromRoot,
            inputs={v: root_uid for v in g.vertices()})

    sim = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sim.within_budget
    print(f"\n  cut bits={sim.cut_bits}, budget={sim.bits_budget}")
