"""E-F1-T2.1: the Figure 1 MDS family (Theorem 2.1)."""

import random

from repro.cc.functions import random_input_pairs
from repro.core.family import verify_iff
from repro.core.mds import MdsFamily
from repro.experiments.runner import run_experiment


def test_mds_experiment(once):
    once(run_experiment, "E-F1-T2.1-mds", quick=False)


def test_mds_lemma21_k8(benchmark):
    """The larger k = 8 instance: one full iff check per direction."""
    fam = MdsFamily(8)
    rng = random.Random(1)
    pairs = random_input_pairs(fam.k_bits, 2, rng)

    report = benchmark.pedantic(
        lambda: verify_iff(fam, pairs, negate=True), rounds=1, iterations=1)
    assert report.checked == 2


def test_mds_scaling(benchmark):
    """Pure construction cost and bound growth up to k = 32 (n = 176)."""

    def build_all():
        return [MdsFamily(k).describe() for k in (4, 8, 16, 32)]

    rows = benchmark.pedantic(build_all, rounds=1, iterations=1)
    print()
    for row in rows:
        print(f"  k-sweep: n={row['n']:5d} ecut={row['ecut']:3d} "
              f"implied_bound={row['implied_bound']:.3f}")
