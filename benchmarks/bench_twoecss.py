"""E-T2.5: minimum 2-edge-connected spanning subgraph (Claim 2.7)."""

from repro.experiments.runner import run_experiment


def test_two_ecss_experiment(once):
    once(run_experiment, "E-T2.5-two-ecss", quick=False)
