"""E-F6-T4.4/T4.5: k-MDS approximation hardness."""

from repro.experiments.runner import run_experiment


def test_kmds_experiment(once):
    once(run_experiment, "E-F6-T4.4-T4.5-kmds", quick=False)
