"""E-T4.8: restricted (local-aggregate) MDS hardness."""

from repro.experiments.runner import run_experiment


def test_restricted_mds_experiment(once):
    once(run_experiment, "E-T4.8-restricted-mds", quick=False)
