"""Entry point: ``python -m repro``."""

from repro.cli import main

main()
