"""Memoization for the exact solvers.

The exact solvers are exponential-time and are invoked repeatedly on the
same instances: every ``run_all`` pass re-verifies the same registered
experiments, the iff-lemma sweeps revisit graphs across input pairs, and
the Gallai–Edmonds witness recomputes matchings on overlapping induced
subgraphs.  ``@cached`` memoizes solver entry points behind a canonical
key so repeated work is a dictionary lookup.

Key definition
--------------
A cache entry is keyed by ``(solver name, canonical argument repr)``
where graphs contribute :meth:`repro.graphs.Graph.content_hash` — a
SHA-256 over directedness, vertices, edges, and all effective weights in
canonical label order — and the remaining parameters contribute a
type-tagged canonical repr (dicts sorted by key, sets sorted by element;
see :func:`canonical_repr`).  Anything that affects a solver's output is
part of the key; consequently *invalidation is structural*: mutate a
graph and its hash, hence its key, changes.  The on-disk tier must be
cleared manually (``clear()`` or delete the directory) only when solver
*code* changes semantics.

Tiers
-----
- in-process dict: always available, enabled by default;
- on-disk JSON under ``~/.cache/repro/`` (or any directory passed to
  :func:`configure`): opt-in, one file per entry, written atomically so
  concurrent runner processes can share it.  Values are stored in a
  type-tagged JSON encoding that round-trips tuples/sets/frozensets
  exactly; values outside that vocabulary simply stay memory-only.

Hit/miss counters are per solver name and surfaced through
``repro.obs.profile`` and ``ExperimentRecord.measured["solver_cache"]``.
"""

from __future__ import annotations

import copy
import functools
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, TypeVar

from repro.graphs import DiGraph, Graph, label_sort_key

F = TypeVar("F", bound=Callable[..., Any])

_UNSET = object()


class UncacheableArgument(TypeError):
    """An argument has no canonical repr (e.g. a one-shot iterator)."""


# ----------------------------------------------------------------------
# canonical keys
# ----------------------------------------------------------------------
def canonical_repr(obj: Any) -> str:
    """A deterministic, type-tagged repr for cache keys.

    Stable across processes and hash randomization: dicts are sorted by
    encoded key, sets by encoded element.  Graphs collapse to their
    :meth:`content_hash`.  Raises :class:`UncacheableArgument` for
    objects with no canonical form (iterators, arbitrary instances) —
    the decorator then bypasses the cache rather than guessing.
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return f"{type(obj).__name__}:{obj!r}"
    if isinstance(obj, (Graph, DiGraph)):
        return f"{type(obj).__name__}#{obj.content_hash()}"
    if isinstance(obj, (list, tuple)):
        inner = ",".join(canonical_repr(x) for x in obj)
        return f"{type(obj).__name__}[{inner}]"
    if isinstance(obj, (set, frozenset)):
        inner = ",".join(sorted(canonical_repr(x) for x in obj))
        return f"{type(obj).__name__}{{{inner}}}"
    if isinstance(obj, dict):
        items = sorted((canonical_repr(k), canonical_repr(v))
                       for k, v in obj.items())
        inner = ",".join(f"{k}=>{v}" for k, v in items)
        return f"dict{{{inner}}}"
    raise UncacheableArgument(
        f"cannot build a canonical cache key for {type(obj).__name__}")


def _key_digest(name: str, canonical: str) -> str:
    return hashlib.sha256(f"{name}\x00{canonical}".encode()).hexdigest()


# ----------------------------------------------------------------------
# disk encoding: JSON with tags for tuple/set/frozenset
# ----------------------------------------------------------------------
def _encode(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [_encode(x) for x in value]
    if isinstance(value, tuple):
        return {"__t__": "tuple", "v": [_encode(x) for x in value]}
    if isinstance(value, (set, frozenset)):
        elems = sorted(value, key=lambda x: canonical_repr(x))
        return {"__t__": type(value).__name__,
                "v": [_encode(x) for x in elems]}
    if isinstance(value, dict):
        return {"__t__": "dict",
                "v": [[_encode(k), _encode(v)] for k, v in value.items()]}
    raise ValueError(f"value of type {type(value).__name__} "
                     f"has no JSON cache encoding")


def _decode(value: Any) -> Any:
    if isinstance(value, list):
        return [_decode(x) for x in value]
    if isinstance(value, dict):
        tag = value["__t__"]
        if tag == "tuple":
            return tuple(_decode(x) for x in value["v"])
        if tag == "set":
            return {_decode(x) for x in value["v"]}
        if tag == "frozenset":
            return frozenset(_decode(x) for x in value["v"])
        if tag == "dict":
            return {_decode(k): _decode(v) for k, v in value["v"]}
        raise ValueError(f"unknown cache tag {tag!r}")
    return value


def default_cache_dir() -> str:
    """``$XDG_CACHE_HOME/repro`` (``~/.cache/repro`` by default)."""
    base = os.environ.get("XDG_CACHE_HOME")
    if not base:
        base = os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


#: a ``*.tmp`` this old cannot belong to a live writer — atomic writes
#: hold their temp file for milliseconds, so an hour means the writer
#: crashed (or was killed) between ``mkstemp`` and ``os.replace``.
STALE_TMP_AGE_S = 3600.0


def sweep_stale_tmp(directory: str,
                    max_age_s: float = STALE_TMP_AGE_S) -> int:
    """Delete ``mkstemp`` leftovers of crashed writers in ``directory``.

    Only ``*.tmp`` files older than ``max_age_s`` go — a fresh temp file
    may belong to a concurrent writer mid-``os.replace``, and deleting
    it under that writer would be a race (its ``replace`` would fail and
    be absorbed as a degraded write).  Returns how many were removed.
    """
    try:
        names = os.listdir(directory)
    except OSError:
        return 0
    removed = 0
    now = time.time()
    for fname in names:
        if not fname.endswith(".tmp"):
            continue
        path = os.path.join(directory, fname)
        try:
            if now - os.stat(path).st_mtime >= max_age_s:
                os.unlink(path)
                removed += 1
        except OSError:
            pass
    return removed


@dataclass
class CacheStats:
    """Per-solver hit/miss counters (``disk_hits`` ⊆ ``hits``)."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0

    def copy(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.disk_hits)


class SolverCache:
    """Two-tier (memory + optional disk) result cache with counters."""

    def __init__(self, enabled: bool = True,
                 cache_dir: Optional[str] = None) -> None:
        self.enabled = enabled
        self.cache_dir = cache_dir
        self._mem: Dict[str, Any] = {}
        self.stats: Dict[str, CacheStats] = {}
        if cache_dir:
            sweep_stale_tmp(cache_dir)

    # -- configuration -------------------------------------------------
    def configure(self, enabled: Any = _UNSET,
                  cache_dir: Any = _UNSET) -> None:
        if enabled is not _UNSET:
            self.enabled = bool(enabled)
        if cache_dir is not _UNSET:
            self.cache_dir = os.fspath(cache_dir) if cache_dir else None
            if self.cache_dir:
                # crashed writers leave mkstemp leftovers behind; adopt
                # the directory clean so they cannot pile up run over run
                sweep_stale_tmp(self.cache_dir)

    def clear(self) -> None:
        """Drop the memory tier and every on-disk entry — ``*.tmp``
        leftovers of crashed writers included (counters kept)."""
        self._mem.clear()
        if self.cache_dir and os.path.isdir(self.cache_dir):
            for fname in os.listdir(self.cache_dir):
                if fname.endswith(".json") or fname.endswith(".tmp"):
                    try:
                        os.unlink(os.path.join(self.cache_dir, fname))
                    except OSError:
                        pass

    def reset_stats(self) -> None:
        self.stats.clear()

    def _stat(self, name: str) -> CacheStats:
        stat = self.stats.get(name)
        if stat is None:
            stat = self.stats[name] = CacheStats()
        return stat

    # -- lookup / store ------------------------------------------------
    def _path(self, digest: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, f"{digest}.json")

    def lookup(self, name: str, digest: str) -> Any:
        """Return ``(hit, value)``; a disk hit also warms the memory tier."""
        stat = self._stat(name)
        if digest in self._mem:
            stat.hits += 1
            return True, copy.deepcopy(self._mem[digest])
        if self.cache_dir:
            path = self._path(digest)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    payload = json.load(fh)
                value = _decode(payload["value"])
            except (OSError, ValueError, KeyError, TypeError):
                pass
            else:
                self._mem[digest] = value
                stat.hits += 1
                stat.disk_hits += 1
                return True, copy.deepcopy(value)
        stat.misses += 1
        return False, None

    def store(self, name: str, digest: str, canonical: str,
              value: Any) -> None:
        self._mem[digest] = copy.deepcopy(value)
        if not self.cache_dir:
            return
        try:
            encoded = _encode(value)
        except ValueError:
            return  # value outside the JSON vocabulary: memory-only
        payload = {"solver": name, "key": canonical, "value": encoded}
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh)
                os.replace(tmp, self._path(digest))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # an unwritable disk tier degrades to memory-only


#: the process-global cache every ``@cached`` solver consults.
CACHE = SolverCache(enabled=True, cache_dir=None)


def configure(enabled: Any = _UNSET, cache_dir: Any = _UNSET) -> None:
    """Reconfigure the global solver cache (see :class:`SolverCache`)."""
    CACHE.configure(enabled=enabled, cache_dir=cache_dir)


def cache_stats() -> Dict[str, CacheStats]:
    """Snapshot of the per-solver hit/miss counters (copies)."""
    return {name: stat.copy() for name, stat in CACHE.stats.items()}


def reset_cache_stats() -> None:
    CACHE.reset_stats()


def clear_cache() -> None:
    CACHE.clear()


def cached(fn: Optional[F] = None, *, name: Optional[str] = None):
    """Memoize a solver entry point through the global :data:`CACHE`.

    Sits beside ``@profiled`` (profiled outermost, so cache hits still
    appear in the call-count profile, just with ~zero cost).  Arguments
    without a canonical repr — one-shot iterators, arbitrary objects —
    bypass the cache entirely rather than risking a wrong key.  Cached
    values are deep-copied on both store and hit, so callers may mutate
    results freely.
    """

    def wrap(func: F) -> F:
        label = name
        if label is None:
            mod = func.__module__.rsplit(".", 1)[-1]
            label = f"{mod}.{func.__qualname__}"

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not CACHE.enabled:
                return func(*args, **kwargs)
            try:
                canonical = canonical_repr(
                    (list(args), dict(sorted(kwargs.items()))))
            except UncacheableArgument:
                return func(*args, **kwargs)
            digest = _key_digest(label, canonical)
            hit, value = CACHE.lookup(label, digest)
            if hit:
                return value
            value = func(*args, **kwargs)
            CACHE.store(label, digest, canonical, value)
            return value

        wrapper.__cached_name__ = label  # type: ignore[attr-defined]
        wrapper.__wrapped_solver__ = func  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    if fn is not None:
        return wrap(fn)
    return wrap
