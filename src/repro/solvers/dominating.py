"""Exact minimum (weighted, distance-k) dominating sets via set cover.

Domination is solved as weighted set cover over closed neighbourhoods
(distance-``k`` balls for k-MDS, Section 4.2/4.3 of the paper).  The set
cover branch-and-bound supports two extensions the Steiner-tree experiment
(Theorem 2.7) needs:

- ``candidates``: restrict which vertices may be picked;
- ``forced``: vertices that must be part of the solution.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.graphs import Graph, Vertex
from repro.solvers._bitmask import BitGraph, popcount
from repro.solvers.cache import cached
from repro.obs.profile import profiled

_INF = float("inf")


def is_dominating_set(graph: Graph, vs: Sequence[Vertex], k: int = 1) -> bool:
    """True iff every vertex is within distance ``k`` of some vertex in ``vs``.

    Ball masks are served by the graph kernel, so repeated calls on the
    same graph (e.g. validating several candidate sets) reuse one
    truncated-BFS sweep.
    """
    kern = graph.kernel()
    balls = kern.ball_masks(k)
    dominated = 0
    for v in vs:
        dominated |= balls[kern.index[v]]
    return dominated == (1 << kern.n) - 1


class _SetCoverSolver:
    """Branch-and-bound minimum-weight set cover over bitmask sets."""

    def __init__(self, n_elements: int, sets: List[Tuple[int, float, int]]):
        self.n = n_elements
        self.sets = sets  # (mask, weight, set id)
        self.full = (1 << n_elements) - 1
        self.best_weight = _INF
        self.best_choice: Optional[List[int]] = None
        # element -> list of set indices covering it
        self.coverers: List[List[int]] = [[] for __ in range(n_elements)]
        for idx, (mask, __, ___) in enumerate(sets):
            # inlined iter_bits: this runs once per (set, element) pair
            while mask:
                low = mask & -mask
                self.coverers[low.bit_length() - 1].append(idx)
                mask ^= low

    def solve(self, budget: float = _INF) -> Tuple[float, Optional[List[int]]]:
        self.best_weight = budget
        self.best_choice = None
        self._search(0, [], 0.0)
        return self.best_weight, self.best_choice

    def _lower_bound(self, covered: int) -> float:
        """Fractional density bound: every uncovered element costs at least
        the best weight-per-new-element density among remaining sets."""
        uncovered = self.full & ~covered
        if not uncovered:
            return 0.0
        best_density = _INF
        for mask, weight, __ in self.sets:
            band = mask & uncovered
            if band:
                density = weight / popcount(band)
                if density < best_density:
                    best_density = density
        if best_density is _INF:
            return _INF
        return popcount(uncovered) * best_density

    def _search(self, covered: int, chosen: List[int], weight: float) -> None:
        if weight + self._lower_bound(covered) >= self.best_weight:
            return
        uncovered = self.full & ~covered
        if uncovered == 0:
            self.best_weight = weight
            self.best_choice = list(chosen)
            return
        # branch on the uncovered element with fewest remaining coverers
        pivot = -1
        pivot_opts: Optional[List[int]] = None
        coverers = self.coverers
        sets = self.sets
        best_weight = self.best_weight
        m = uncovered
        while m:
            low = m & -m
            e = low.bit_length() - 1
            m ^= low
            opts = [i for i in coverers[e]
                    if sets[i][1] + weight < best_weight]
            if pivot_opts is None or len(opts) < len(pivot_opts):
                pivot, pivot_opts = e, opts
                if len(opts) <= 1:
                    break
        if not pivot_opts:
            return
        # prefer cheap, high-coverage sets first
        pivot_opts.sort(key=lambda i: (self.sets[i][1],
                                       -popcount(self.sets[i][0] & uncovered)))
        for i in pivot_opts:
            mask, w, __ = self.sets[i]
            chosen.append(i)
            self._search(covered | mask, chosen, weight + w)
            chosen.pop()


@profiled
@cached
def min_set_cover(
    n_elements: int,
    sets: Sequence[Tuple[Iterable[int], float]],
    budget: float = _INF,
) -> Tuple[float, Optional[List[int]]]:
    """Minimum weight set cover of ``0..n_elements-1``.

    ``sets`` is a sequence of ``(elements, weight)`` pairs.  Returns
    ``(weight, indices)`` or ``(budget, None)`` if no cover below ``budget``
    exists.
    """
    masks = []
    for idx, (elements, weight) in enumerate(sets):
        mask = 0
        for e in elements:
            if not 0 <= e < n_elements:
                raise ValueError(f"element {e} out of range")
            mask |= 1 << e
        masks.append((mask, float(weight), idx))
    solver = _SetCoverSolver(n_elements, masks)
    return solver.solve(budget)


def _ball_masks(graph: Graph, bg: BitGraph, k: int) -> List[int]:
    """Distance-``k`` closed ball of each vertex index, as element masks.

    Served by the graph kernel's cached truncated-BFS sweep (kernel
    indexing matches ``BitGraph`` indexing), instead of a dict-based BFS
    per vertex per call.
    """
    return graph.kernel().ball_masks(k)


@profiled(name="dominating.solve_domination")
@cached(name="dominating.solve_domination")
def _solve_domination(
    graph: Graph,
    k: int,
    weighted: bool,
    candidates: Optional[Iterable[Vertex]],
    forced: Optional[Iterable[Vertex]],
    budget: float,
    targets: Optional[Iterable[Vertex]] = None,
) -> Tuple[float, Optional[List[Vertex]]]:
    bg = BitGraph(graph)
    balls = _ball_masks(graph, bg, k)
    cand = set(candidates) if candidates is not None else set(bg.vertices)
    forced = list(forced) if forced is not None else []
    target_mask = bg.full_mask
    if targets is not None:
        target_mask = bg.mask_of(list(targets))
    covered = ~target_mask & bg.full_mask
    base_weight = 0.0
    for v in forced:
        i = bg.index[v]
        covered |= balls[i]
        base_weight += bg.weights[i] if weighted else 1.0
    sets = []
    for i, v in enumerate(bg.vertices):
        if v in cand and v not in forced:
            w = bg.weights[i] if weighted else 1.0
            sets.append((balls[i] & ~covered, w, i))
    remaining = bg.full_mask & ~covered
    # re-index remaining elements compactly (inlined iter_bits: this is
    # once per (set, element) pair on the hot solver path)
    remap = {}
    j = 0
    m = remaining
    while m:
        low = m & -m
        remap[low.bit_length() - 1] = j
        j += 1
        m ^= low
    compact_sets = []
    for mask, w, i in sets:
        cmask = 0
        while mask:
            low = mask & -mask
            cmask |= 1 << remap[low.bit_length() - 1]
            mask ^= low
        compact_sets.append((cmask, w, i))
    solver = _SetCoverSolver(len(remap), compact_sets)
    weight, choice = solver.solve(budget - base_weight)
    if choice is None:
        return budget, None
    picked = forced + [bg.vertices[compact_sets[i][2]] for i in choice]
    return base_weight + weight, picked


def constrained_min_dominating_set(
    graph: Graph,
    candidates: Optional[Iterable[Vertex]] = None,
    forced: Optional[Iterable[Vertex]] = None,
    budget: float = _INF,
    weighted: bool = False,
    k: int = 1,
    targets: Optional[Iterable[Vertex]] = None,
) -> Tuple[float, Optional[List[Vertex]]]:
    """Minimum (weight) distance-``k`` dominating set restricted to
    ``candidates``, containing ``forced``, covering ``targets`` (default:
    every vertex); ``(budget, None)`` if none exists below ``budget``
    (including infeasible candidate sets)."""
    return _solve_domination(graph, k, weighted, candidates, forced, budget,
                             targets=targets)


def min_dominating_set(
    graph: Graph,
    candidates: Optional[Iterable[Vertex]] = None,
    forced: Optional[Iterable[Vertex]] = None,
) -> List[Vertex]:
    """A minimum cardinality dominating set (optionally constrained)."""
    __, picked = _solve_domination(graph, 1, False, candidates, forced, _INF)
    assert picked is not None
    return picked


def min_dominating_set_weight(graph: Graph, k: int = 1) -> float:
    """Minimum total vertex weight of a distance-``k`` dominating set."""
    weight, picked = _solve_domination(graph, k, True, None, None, _INF)
    assert picked is not None
    return weight


def min_k_dominating_set_weight(graph: Graph, k: int) -> float:
    """Minimum weight k-MDS (Section 4.2/4.3)."""
    return min_dominating_set_weight(graph, k=k)


def has_dominating_set_of_size(graph: Graph, size: int) -> bool:
    """Decide whether a dominating set of cardinality ≤ ``size`` exists."""
    __, picked = _solve_domination(graph, 1, False, None, None, size + 0.5)
    return picked is not None
