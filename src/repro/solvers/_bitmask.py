"""Bitmask indexing shared by the exact solvers.

Solvers index the vertex set as ``0..n-1`` and represent vertex subsets as
Python integers, which keeps the branch-and-bound inner loops allocation
free.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.graphs import Graph, Vertex


class BitGraph:
    """Adjacency-in-bitmask view of an undirected :class:`Graph`."""

    def __init__(self, graph: Graph) -> None:
        # The CSR substrate indexes vertices in the same (insertion)
        # order this class always used, so its cached neighbour
        # bitmasks are reused directly instead of rebuilt per solver.
        csr = graph.csr()
        self.vertices: List[Vertex] = list(csr.labels)
        self.index: Dict[Vertex, int] = dict(csr.index)
        self.n = csr.n
        self.adj: List[int] = list(csr.masks())
        self.weights: List[float] = [graph.vertex_weight(v) for v in self.vertices]
        self.full_mask = (1 << self.n) - 1

    def closed(self, i: int) -> int:
        """Closed neighbourhood of vertex index ``i`` as a mask."""
        return self.adj[i] | (1 << i)

    def mask_of(self, vs: Sequence[Vertex]) -> int:
        mask = 0
        for v in vs:
            mask |= 1 << self.index[v]
        return mask

    def unmask(self, mask: int) -> List[Vertex]:
        out = []
        i = 0
        while mask:
            if mask & 1:
                out.append(self.vertices[i])
            mask >>= 1
            i += 1
        return out


def iter_bits(mask: int):
    """Yield the set bit positions of ``mask`` in increasing order.

    Walks set bits only (isolate the lowest bit, clear it) instead of
    shifting through every position, so sparse masks — the common case
    in the branch-and-bound inner loops — cost O(popcount) not O(n).
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


if hasattr(int, "bit_count"):  # Python >= 3.10
    def popcount(mask: int) -> int:
        return mask.bit_count()
else:  # pragma: no cover - exercised only on older interpreters
    def popcount(mask: int) -> int:
        return bin(mask).count("1")


def lowest_bit(mask: int) -> int:
    return (mask & -mask).bit_length() - 1
