"""Batched decision kernels: skeleton-derived solver state, delta-only
per-pair evaluation.

Every lower-bound family decides a threshold predicate on
``G_{x,y} = skeleton + delta(x, y)`` where the delta is a vanishing
fraction of the instance (Definition 1.1; the split
:class:`repro.core.family.DeltaBuildMixin` makes explicit).  The
per-pair solver path still pays the full instance on every call:
rebuild the graph, re-derive adjacency masks / ball tables / partition
enumerations, then search.  The kernels here hoist everything
input-independent out of the loop **once per skeleton**:

- :class:`HamiltonianCycleBatchKernel` / :class:`HamiltonianPathBatchKernel`
  precompute the skeleton's successor/predecessor bitmask rows and the
  index pairs of each input arc; a pair costs two list copies and a few
  OR's before the mask-level cycle search runs;
- :class:`DominationBatchKernel` precomputes the closed-neighbourhood
  ball masks of the fixed gadget; a pair patches the few balls its
  delta edges touch and runs the set-cover branch-and-bound directly;
- :class:`WeightedDominationBatchKernel` precomputes the distance-k
  ball masks (the adjacency is input-independent for the k-MDS family —
  inputs only re-weight the S_i / S̄_i vertices);
- :class:`ThresholdCutBatchKernel` enumerates the skeleton's cut
  weights with a meet-in-the-middle matmul *grouped by the assignment
  of the delta-touched vertices D*, collapsing the input-independent
  remainder into one ``g[d] = max fixed cut given D-assignment d``
  table; a pair reduces to ``max_d(g[d] + delta_cut_d)`` over numpy
  rows of length ``2^|D|``.

A kernel instance is valid for exactly one skeleton (the family layer
keys it on ``content_hash`` and rebuilds on mismatch) and must treat
the skeleton as read-only.  ``monotone = True`` declares that the
family's predicate is monotone non-decreasing in every input bit —
1-bits only ever *add* edges (Hamiltonian, MDS) or *lower* weights
(k-MDS) — which lets the generic ``decide_batch`` driver infer most of
a grid from a few extremal solves.  Max-cut's predicate is not
edge-monotone (0-bits add row edges, 1-bits add N-weight), so its
kernel stays ``monotone = False`` and every pair is evaluated — still
cheap, because only the delta term varies.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.graphs import Vertex

Bits = Tuple[int, ...]


class _HamiltonianKernelBase:
    """Shared succ/pred bitmask plumbing for the Figure 2 families.

    ``x_arcs``/``y_arcs`` list the directed input arc per bit position
    (``x_arcs[p]`` is added iff ``x[p] = 1``), mirroring
    ``apply_inputs`` exactly.
    """

    monotone = True  # more arcs can only create Hamiltonian traversals

    def __init__(self, skeleton, x_arcs: Sequence[Tuple[Vertex, Vertex]],
                 y_arcs: Sequence[Tuple[Vertex, Vertex]]) -> None:
        vertices = list(skeleton.vertices())
        index = {v: i for i, v in enumerate(vertices)}
        n = len(vertices)
        succ = [0] * n
        pred = [0] * n
        for u, v in skeleton.edges():
            succ[index[u]] |= 1 << index[v]
            pred[index[v]] |= 1 << index[u]
        self._n = n
        self._succ = succ
        self._pred = pred
        self._x_arcs = [(index[u], index[v]) for u, v in x_arcs]
        self._y_arcs = [(index[u], index[v]) for u, v in y_arcs]

    def _masks(self, x: Bits, y: Bits) -> Tuple[List[int], List[int]]:
        succ = list(self._succ)
        pred = list(self._pred)
        for bits, arcs in ((x, self._x_arcs), (y, self._y_arcs)):
            for bit, (iu, iv) in zip(bits, arcs):
                if bit:
                    succ[iu] |= 1 << iv
                    pred[iv] |= 1 << iu
        return succ, pred


class HamiltonianCycleBatchKernel(_HamiltonianKernelBase):
    """Directed Hamiltonian cycle existence over delta-patched masks."""

    def decide(self, x: Bits, y: Bits) -> bool:
        from repro.solvers.hamilton import _solve_cycle_masks
        succ, pred = self._masks(x, y)
        return _solve_cycle_masks(succ, pred, self._n, [0]) is not None


class HamiltonianPathBatchKernel(_HamiltonianKernelBase):
    """Directed Hamiltonian path existence via the hub reduction.

    G has a Hamiltonian path iff G plus a hub vertex with arcs to and
    from every vertex has a Hamiltonian cycle (the cycle enters the hub
    after the path's last vertex and leaves it into the first), so the
    path family reuses the contraction-based cycle search unchanged.
    """

    def __init__(self, skeleton, x_arcs, y_arcs) -> None:
        super().__init__(skeleton, x_arcs, y_arcs)
        hub = self._n
        full = (1 << self._n) - 1
        self._succ.append(full)
        self._pred.append(full)
        for i in range(self._n):
            self._succ[i] |= 1 << hub
            self._pred[i] |= 1 << hub
        self._n += 1

    def decide(self, x: Bits, y: Bits) -> bool:
        from repro.solvers.hamilton import _solve_cycle_masks
        succ, pred = self._masks(x, y)
        return _solve_cycle_masks(succ, pred, self._n, [0]) is not None


class DominationBatchKernel:
    """Size-bounded domination (Figure 1 MDS) over patched ball masks.

    ``x_edges``/``y_edges`` list the undirected input edge per bit
    position.  Adding edge {u, v} grows exactly two closed
    neighbourhoods — ``ball[u] |= v`` and ``ball[v] |= u`` — so a pair
    costs one list copy plus the set-cover branch-and-bound, with no
    graph build, hash, or ball recomputation.  Radius is fixed at 1
    (the only radius whose balls patch locally under edge insertion).
    """

    monotone = True  # extra edges only enlarge neighbourhoods

    def __init__(self, skeleton, x_edges: Sequence[Tuple[Vertex, Vertex]],
                 y_edges: Sequence[Tuple[Vertex, Vertex]],
                 target_size: int) -> None:
        kern = skeleton.kernel()
        self._n = kern.n
        self._balls = list(kern.ball_masks(1))
        index = kern.index
        self._x_edges = [(index[u], index[v]) for u, v in x_edges]
        self._y_edges = [(index[u], index[v]) for u, v in y_edges]
        # same acceptance threshold as has_dominating_set_of_size:
        # a cover strictly below size + 0.5 means cardinality <= size
        self._budget = target_size + 0.5

    def decide(self, x: Bits, y: Bits) -> bool:
        from repro.solvers.dominating import _SetCoverSolver
        balls = list(self._balls)
        for bits, edges in ((x, self._x_edges), (y, self._y_edges)):
            for bit, (iu, iv) in zip(bits, edges):
                if bit:
                    balls[iu] |= 1 << iv
                    balls[iv] |= 1 << iu
        solver = _SetCoverSolver(
            self._n, [(balls[i], 1.0, i) for i in range(self._n)])
        __, choice = solver.solve(self._budget)
        return choice is not None


class WeightedDominationBatchKernel:
    """Weight-bounded distance-k domination (Figure 5 k-MDS).

    The k-MDS deltas are weight-only (``apply_inputs`` re-weights the
    S_i / S̄_i vertices), so the expensive part — the distance-k ball
    masks of every vertex — is computed once from the skeleton and a
    pair only swaps a handful of weights before the set-cover search.
    """

    monotone = True  # 1-bits lower weights, so the optimum only drops

    def __init__(self, skeleton, x_vertices: Sequence[Vertex],
                 y_vertices: Sequence[Vertex], alpha: int, k: int,
                 yes_weight: int) -> None:
        kern = skeleton.kernel()
        self._n = kern.n
        self._balls = list(kern.ball_masks(k))
        self._weights = [float(skeleton.vertex_weight(v))
                         for v in kern.vertices]
        index = kern.index
        self._x_idx = [index[v] for v in x_vertices]
        self._y_idx = [index[v] for v in y_vertices]
        self._alpha = float(alpha)
        # integer weights: min weight <= yes_weight iff a cover strictly
        # below yes_weight + 0.5 exists
        self._budget = yes_weight + 0.5

    def decide(self, x: Bits, y: Bits) -> bool:
        from repro.solvers.dominating import _SetCoverSolver
        weights = list(self._weights)
        for bits, idxs in ((x, self._x_idx), (y, self._y_idx)):
            for bit, i in zip(bits, idxs):
                weights[i] = 1.0 if bit else self._alpha
        solver = _SetCoverSolver(
            self._n,
            [(self._balls[i], weights[i], i) for i in range(self._n)])
        __, choice = solver.solve(self._budget)
        return choice is not None


class ThresholdCutBatchKernel:
    """Exact ``max-cut >= target`` decisions with the skeleton's cut
    landscape pre-collapsed onto the delta-touched vertices.

    Let D be the vertices any input-dependent edge can touch
    (``delta_vertices``; the Figure 3 rows plus NA/NB).  For a cut
    side S, ``cut(S) = fixed(S) + delta(S ∩ D)``, so

        ``max_S cut(S) = max_d [ g(d) + delta_cut(d) ]``,
        ``g(d) = max { fixed(S) : S ∩ D = d }``.

    ``g`` is input-independent and is built once by a meet-in-the-middle
    enumeration (D-assignments are the low block, the free remainder
    the high block, one non-D vertex pinned to side 0 by complement
    symmetry); each pair then evaluates its delta edges — weights from
    ``delta_edges_fn(x, y)``, all endpoints required to lie in D — as a
    numpy row over the ``2^|D|`` D-assignments.  Exact for integral
    edge weights (everything stays far below 2^53 in float64).

    Raises :class:`ValueError` when the instance is out of range
    (non-integral weights, blocks beyond ``2^20``) and ``ImportError``
    without numpy — callers degrade to the per-pair path.
    """

    monotone = False  # 0-bits add row edges, 1-bits add N-weight

    _MAX_BLOCK_BITS = 20

    def __init__(self, skeleton, delta_vertices: Sequence[Vertex],
                 target: float,
                 delta_edges_fn: Callable[[Bits, Bits],
                                          Iterable[Tuple[Vertex, Vertex,
                                                         float]]]) -> None:
        import numpy as np

        order = list(skeleton.vertices())
        dset = set(delta_vertices)
        if len(dset) != len(delta_vertices):
            raise ValueError("duplicate delta vertices")
        free = [v for v in order if v not in dset]
        if not free:
            raise ValueError("need at least one non-delta vertex to pin")
        low = list(delta_vertices)   # deterministic: caller's bit order
        high = free[:-1]
        pinned = free[-1]            # fixed to side 0 (WLOG by symmetry)
        b, h = len(low), len(high)
        if b > self._MAX_BLOCK_BITS or h > self._MAX_BLOCK_BITS:
            raise ValueError(f"blocks 2^{b} x 2^{h} too large to enumerate")
        pos: Dict[Vertex, int] = {}
        for i, v in enumerate(low):
            pos[v] = i
        for j, v in enumerate(high):
            pos[v] = b + j

        low_lin = np.zeros(b, dtype=np.float64)    # w towards pinned
        high_lin = np.zeros(h, dtype=np.float64)
        low_pairs: List[Tuple[int, int, float]] = []
        high_pairs: List[Tuple[int, int, float]] = []
        W = np.zeros((h, b), dtype=np.float64)     # cross weights
        for (u, v), w in skeleton.edge_weights().items():
            if not float(w).is_integer():
                raise ValueError(f"non-integral weight {w!r}")
            w = float(w)
            if u == pinned or v == pinned:
                other = v if u == pinned else u
                p = pos[other]
                if p < b:
                    low_lin[p] += w
                else:
                    high_lin[p - b] += w
                continue
            pu, pv = pos[u], pos[v]
            if pu > pv:
                pu, pv = pv, pu
            if pv < b:
                low_pairs.append((pu, pv, w))
            elif pu >= b:
                high_pairs.append((pu - b, pv - b, w))
            else:
                W[pv - b, pu] += w

        def bit_rows(nbits: int) -> "np.ndarray":
            masks = np.arange(1 << nbits, dtype=np.int64)
            return np.stack([(masks >> i) & 1 for i in range(nbits)]
                            ) if nbits else np.zeros((0, 1), dtype=np.int64)

        S_low = bit_rows(b).astype(np.float64)     # (b, 2^b)
        S_high = bit_rows(h).astype(np.float64)    # (h, 2^h)
        low_cut = np.zeros(1 << b, dtype=np.float64)
        for i, j, w in low_pairs:
            low_cut += w * np.abs(S_low[i] - S_low[j])
        low_cut += low_lin @ S_low                 # pinned is side 0
        high_cut = np.zeros(1 << h, dtype=np.float64)
        for i, j, w in high_pairs:
            high_cut += w * np.abs(S_high[i] - S_high[j])
        high_cut += high_lin @ S_high
        # cross(t, m) = sum_ij W[j,i] (hi_j + lo_i - 2 hi_j lo_i)
        row_w = W.sum(axis=1)                      # per high bit
        col_w = W.sum(axis=0)                      # per low bit
        hi_vec = high_cut + row_w @ S_high         # (2^h,)
        lo_vec = low_cut + col_w @ S_low           # (2^b,)
        Q = (W.T @ S_high).T @ S_low if h else np.zeros((1, 1 << b))
        # g[m] = lo_vec[m] + max_t (hi_vec[t] - 2 Q[t, m])
        self._g = lo_vec + np.max(hi_vec[:, None] - 2.0 * Q, axis=0)
        self._low_bits = S_low                     # (b, 2^b) float rows
        self._dpos = {v: i for i, v in enumerate(low)}
        self._target = float(target)
        self._delta_edges_fn = delta_edges_fn
        self._np = np

    def decide(self, x: Bits, y: Bits) -> bool:
        np = self._np
        acc = np.zeros(self._g.shape[0], dtype=np.float64)
        rows = self._low_bits
        dpos = self._dpos
        for u, v, w in self._delta_edges_fn(x, y):
            if w:
                acc += float(w) * np.abs(rows[dpos[u]] - rows[dpos[v]])
        # integral arithmetic in float64: >= target iff > target - 0.5
        return bool(np.max(self._g + acc) > self._target - 0.5)
