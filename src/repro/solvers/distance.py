"""Weighted shortest paths (Dijkstra) for the distance PLS (Claim 5.13)."""

from __future__ import annotations

import heapq
from typing import Dict, Optional, Union

from repro.graphs import DiGraph, Graph, Vertex

_INF = float("inf")
AnyGraph = Union[Graph, DiGraph]


def dijkstra(graph: AnyGraph, source: Vertex) -> Dict[Vertex, float]:
    """Weighted distances from ``source``; unreachable vertices omitted.

    Edge weights must be non-negative (default weight 1).
    """
    if isinstance(graph, DiGraph):
        def neighbors(v):
            return graph.successors(v)
    else:
        def neighbors(v):
            return graph.neighbors(v)

    dist: Dict[Vertex, float] = {source: 0.0}
    heap = [(0.0, id(source), source)]
    while heap:
        du, __, u = heapq.heappop(heap)
        if du > dist.get(u, _INF):
            continue
        for v in neighbors(u):
            w = graph.edge_weight(u, v)
            if w < 0:
                raise ValueError("negative edge weight")
            alt = du + w
            if alt < dist.get(v, _INF):
                dist[v] = alt
                heapq.heappush(heap, (alt, id(v), v))
    return dist


def weighted_distance(graph: AnyGraph, s: Vertex, t: Vertex) -> float:
    """Weighted s-t distance (inf if unreachable)."""
    return dijkstra(graph, s).get(t, _INF)
