"""Exact minimum Steiner tree (Dreyfus–Wagner dynamic program).

Edge-weighted, undirected; O(3^t · n + 2^t · n²) for t terminals, which is
what the generic cross-checks in the test-suite need.  The Theorem 2.7
family itself is verified through the structured solver in
``repro.core.steiner`` (its terminal count makes Dreyfus–Wagner
infeasible); the two solvers are cross-validated on small random graphs.
"""

from __future__ import annotations

import heapq
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.graphs import Graph, Vertex
from repro.solvers.cache import cached
from repro.obs.profile import profiled

_INF = float("inf")


def is_steiner_tree(graph: Graph, edges: Sequence[Tuple[Vertex, Vertex]],
                    terminals: Sequence[Vertex]) -> bool:
    """Check that ``edges`` forms a tree (in ``graph``) spanning ``terminals``."""
    tree = Graph()
    for u, v in edges:
        if not graph.has_edge(u, v):
            return False
        if tree.has_edge(u, v):
            return False
        tree.add_edge(u, v)
    if tree.n == 0:
        return len(set(terminals)) <= 1
    if not tree.is_connected() or tree.m != tree.n - 1:
        return False
    return set(terminals) <= set(tree.vertices())


def _all_pairs_dijkstra(graph: Graph) -> Dict[Vertex, Dict[Vertex, float]]:
    dist = {}
    for s in graph.vertices():
        d = {s: 0.0}
        heap = [(0.0, id(s), s)]
        while heap:
            du, __, u = heapq.heappop(heap)
            if du > d.get(u, _INF):
                continue
            for v in graph.neighbors(u):
                alt = du + graph.edge_weight(u, v)
                if alt < d.get(v, _INF):
                    d[v] = alt
                    heapq.heappush(heap, (alt, id(v), v))
        dist[s] = d
    return dist


@profiled
@cached
def steiner_tree_cost(graph: Graph, terminals: Sequence[Vertex]) -> float:
    """Minimum total edge weight of a tree spanning ``terminals``."""
    terminals = list(dict.fromkeys(terminals))
    t = len(terminals)
    if t <= 1:
        return 0.0
    if t > 14:
        raise ValueError("Dreyfus-Wagner limited to 14 terminals")
    verts = graph.vertices()
    dist = _all_pairs_dijkstra(graph)
    base = terminals[:-1]
    root = terminals[-1]
    full = (1 << len(base)) - 1
    # dp[(mask, v)] = min cost of a tree spanning base[mask] ∪ {v}
    dp: Dict[Tuple[int, Vertex], float] = {}
    for i, term in enumerate(base):
        for v in verts:
            dp[(1 << i, v)] = dist[term].get(v, _INF)
    for size in range(2, len(base) + 1):
        for subset in combinations(range(len(base)), size):
            mask = 0
            for i in subset:
                mask |= 1 << i
            # merge step
            merged: Dict[Vertex, float] = {}
            sub = (mask - 1) & mask
            while sub:
                if sub < mask ^ sub:  # avoid double counting partitions
                    sub = (sub - 1) & mask
                    continue
                rest = mask ^ sub
                for v in verts:
                    c = dp.get((sub, v), _INF) + dp.get((rest, v), _INF)
                    if c < merged.get(v, _INF):
                        merged[v] = c
                sub = (sub - 1) & mask
            # propagate step (one Dijkstra-like relaxation over shortest paths)
            for v in verts:
                best = merged.get(v, _INF)
                for u in verts:
                    c = merged.get(u, _INF)
                    if c < _INF:
                        alt = c + dist[u].get(v, _INF)
                        if alt < best:
                            best = alt
                dp[(mask, v)] = best
    return dp.get((full, root), _INF)


@profiled
@cached
def steiner_tree(graph: Graph, terminals: Sequence[Vertex]) -> Tuple[float, List[Tuple[Vertex, Vertex]]]:
    """Minimum Steiner tree cost plus one optimal edge set.

    The edge set is recovered by re-solving on candidate vertex subsets; it
    is intended for small instances (tests and examples).
    """
    cost = steiner_tree_cost(graph, terminals)
    terminals = list(dict.fromkeys(terminals))
    if len(terminals) <= 1:
        return 0.0, []
    if cost == _INF:
        # terminals in different components: no spanning tree exists
        return _INF, []
    # brute-force the Steiner vertex subset guided by the known optimum
    others = [v for v in graph.vertices() if v not in set(terminals)]
    for extra in range(len(others) + 1):
        for subset in combinations(others, extra):
            vs = set(terminals) | set(subset)
            sub = graph.induced_subgraph(vs)
            if not sub.is_connected():
                continue
            tree_edges = _min_spanning_tree(sub)
            tree_cost = sum(graph.edge_weight(u, v) for u, v in tree_edges)
            tree_cost, tree_edges = _prune_leaves(graph, tree_edges,
                                                  set(terminals), tree_cost)
            if abs(tree_cost - cost) < 1e-9:
                return cost, tree_edges
    raise RuntimeError("failed to recover an optimal Steiner tree")


@profiled
@cached
def min_node_weighted_steiner_cost(graph: Graph, terminals: Sequence[Vertex],
                                   limit_candidates: int = 16) -> float:
    """Minimum total *vertex* weight of a connected subgraph spanning
    ``terminals`` (terminal weights are charged too, matching §4.4).

    Zero-weight vertices are free and always available; the enumeration
    ranges over the positive-weight vertices (≤ ``limit_candidates``).
    """
    terminals = list(dict.fromkeys(terminals))
    if not terminals:
        return 0.0
    free = [v for v in graph.vertices() if graph.vertex_weight(v) == 0]
    paid = [v for v in graph.vertices() if graph.vertex_weight(v) > 0]
    if len(paid) > limit_candidates:
        raise ValueError("too many positive-weight vertices to enumerate")
    base_cost = sum(graph.vertex_weight(t) for t in terminals
                    if graph.vertex_weight(t) > 0)
    paid_optional = [v for v in paid if v not in set(terminals)]
    best = _INF
    from itertools import combinations as _comb

    for size in range(0, len(paid_optional) + 1):
        for subset in _comb(paid_optional, size):
            cost = base_cost + sum(graph.vertex_weight(v) for v in subset)
            if cost >= best:
                continue
            keep = set(free) | set(subset) | set(terminals)
            sub = graph.induced_subgraph(keep)
            comp_of = {}
            for ci, comp in enumerate(sub.connected_components()):
                for v in comp:
                    comp_of[v] = ci
            if len({comp_of[t] for t in terminals}) == 1:
                best = cost
    return best


@profiled
@cached
def min_directed_steiner_reachability_cost(dgraph, root, terminals,
                                           limit_paid: int = 16) -> float:
    """Minimum total *edge* weight of a sub-digraph in which every
    terminal is reachable from ``root`` — equal to the directed Steiner
    tree cost (a reachability subgraph prunes to a tree at no extra
    cost).  Zero-weight edges are free; enumeration ranges over the
    positive-weight edges."""
    from itertools import combinations as _comb

    free = [(u, v) for u, v in dgraph.edges()
            if dgraph.edge_weight(u, v) == 0]
    paid = [(u, v) for u, v in dgraph.edges()
            if dgraph.edge_weight(u, v) > 0]
    if len(paid) > limit_paid:
        raise ValueError("too many positive-weight edges to enumerate")
    targets = set(terminals)
    best = _INF
    for size in range(0, len(paid) + 1):
        for subset in _comb(paid, size):
            cost = sum(dgraph.edge_weight(u, v) for u, v in subset)
            if cost >= best:
                continue
            succ = {}
            for u, v in free + list(subset):
                succ.setdefault(u, []).append(v)
            seen = {root}
            stack = [root]
            while stack:
                u = stack.pop()
                for v in succ.get(u, ()):
                    if v not in seen:
                        seen.add(v)
                        stack.append(v)
            if targets <= seen:
                best = cost
    return best


def _min_spanning_tree(graph: Graph) -> List[Tuple[Vertex, Vertex]]:
    edges = sorted(graph.edges(), key=lambda e: graph.edge_weight(*e))
    parent: Dict[Vertex, Vertex] = {v: v for v in graph.vertices()}

    def find(v: Vertex) -> Vertex:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    out = []
    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            out.append((u, v))
    return out


def _prune_leaves(graph: Graph, edges: List[Tuple[Vertex, Vertex]],
                  terminals: Set[Vertex], cost: float) -> Tuple[float, List[Tuple[Vertex, Vertex]]]:
    edges = list(edges)
    changed = True
    while changed:
        changed = False
        degree: Dict[Vertex, int] = {}
        for u, v in edges:
            degree[u] = degree.get(u, 0) + 1
            degree[v] = degree.get(v, 0) + 1
        for u, v in list(edges):
            for leaf, other in ((u, v), (v, u)):
                if degree.get(leaf, 0) == 1 and leaf not in terminals:
                    edges.remove((u, v))
                    cost -= graph.edge_weight(u, v)
                    changed = True
                    break
            if changed:
                break
    return cost, edges
