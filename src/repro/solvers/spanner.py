"""Minimum weighted 2-spanner (exact, by edge-subset enumeration).

A 2-spanner of G is a subgraph H such that every *edge* {u, v} of G has a
path of length at most 2 (in hops) between u and v in H.  The objective is
the total weight of H's edges (Section 3.3, Theorem 3.4).

The exact solver enumerates edge subsets in increasing weight order and is
only meant for the small verification instances in the test-suite; a
greedy density heuristic is provided for larger graphs.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.graphs import Graph, Vertex

EdgeT = Tuple[Vertex, Vertex]


def is_two_spanner(graph: Graph, edges: Sequence[EdgeT]) -> bool:
    """True iff ``edges`` (a subset of G's edges) 2-spans every edge of G."""
    sub = Graph()
    sub.add_vertices(graph.vertices())
    for u, v in edges:
        if not graph.has_edge(u, v):
            return False
        sub.add_edge(u, v)
    for u, v in graph.edges():
        if sub.has_edge(u, v):
            continue
        if not (sub.neighbors(u) & sub.neighbors(v)):
            return False
    return True


def min_two_spanner(graph: Graph, limit_edges: int = 18) -> Tuple[float, List[EdgeT]]:
    """Exact minimum weight 2-spanner (exponential; small graphs only).

    Weight-0 edges are always included (they never hurt), so the
    enumeration — and ``limit_edges`` — ranges over the positive-weight
    edges only.
    """
    free = [e for e in graph.edges() if graph.edge_weight(*e) == 0]
    paid = [e for e in graph.edges() if graph.edge_weight(*e) > 0]
    if len(paid) > limit_edges:
        raise ValueError("min_two_spanner is exponential; graph too large")
    best_cost = sum(graph.edge_weight(u, v) for u, v in paid)
    best: List[EdgeT] = free + paid
    for size in range(0, len(paid) + 1):
        for subset in combinations(paid, size):
            cost = sum(graph.edge_weight(u, v) for u, v in subset)
            if cost >= best_cost:
                continue
            if is_two_spanner(graph, free + list(subset)):
                best_cost = cost
                best = free + list(subset)
    return best_cost, best


def min_two_spanner_cost(graph: Graph, limit_edges: int = 18) -> float:
    cost, __ = min_two_spanner(graph, limit_edges=limit_edges)
    return cost


def greedy_two_spanner(graph: Graph) -> List[EdgeT]:
    """A simple valid (not optimal) 2-spanner: greedy star selection.

    Repeatedly picks the vertex whose star covers the most yet-uncovered
    edges, then adds any still-uncovered edges directly.
    """
    uncovered: Set[frozenset] = {frozenset(e) for e in graph.edges()}
    chosen: List[EdgeT] = []
    chosen_set: Set[frozenset] = set()

    def cover_star(center: Vertex) -> None:
        for w in graph.neighbors(center):
            key = frozenset((center, w))
            if key not in chosen_set:
                chosen_set.add(key)
                chosen.append((center, w))
        # edges covered: any (u, v) with u, v both adjacent to center, plus
        # the star edges themselves
        nbrs = graph.neighbors(center)
        for u in nbrs:
            uncovered.discard(frozenset((center, u)))
            for v in nbrs:
                if u != v and graph.has_edge(u, v):
                    uncovered.discard(frozenset((u, v)))

    while uncovered:
        best_v = None
        best_gain = -1
        for v in graph.vertices():
            nbrs = graph.neighbors(v)
            gain = sum(1 for e in uncovered if set(e) <= nbrs | {v})
            if gain > best_gain:
                best_gain = gain
                best_v = v
        if best_gain <= 0:
            break
        cover_star(best_v)
    for e in list(uncovered):
        u, v = tuple(e)
        chosen.append((u, v))
        uncovered.discard(e)
    return chosen
