"""Exact maximum (weighted) cut.

Uses Gray-code enumeration with incremental weight updates: consecutive
subsets differ by one vertex, so each step costs one degree.  Vertex n−1
(in ``BitGraph`` index order) is fixed on one side by symmetry, so only
2^(n−1) sides are enumerated.  Practical up to roughly n = 26, which
covers the k = 2 instance of the Figure 3 family (Theorem 2.8).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.graphs import Graph, Vertex
from repro.solvers._bitmask import BitGraph
from repro.solvers.cache import cached
from repro.obs.profile import profiled


def cut_weight(graph: Graph, side: Sequence[Vertex]) -> float:
    """Total weight of edges crossing the cut ``(side, V - side)``."""
    s: Set[Vertex] = set(side)
    return sum(graph.edge_weight(u, v)
               for u, v in graph.edges() if (u in s) != (v in s))


#: Masks per chunk of the vectorized sweep; bounds peak memory at
#: roughly ``n`` uint8 rows of this length (≈26 MB at n = 25) instead of
#: materializing all 2^(n-1) masks as int64 at once.
_MAXCUT_CHUNK = 1 << 20


def max_cut_vectorized(graph: Graph, limit: int = 25) -> Tuple[float, List[Vertex]]:
    """Exact max cut via a vectorized sweep over all 2^(n-1) sides.

    The sweep is chunked: for each block of masks it extracts one uint8
    membership row per vertex, XORs the two endpoint rows per edge, and
    accumulates.  When every weight is integral (the Figure 3 instances
    are unweighted) edges are grouped by weight and crossing edges are
    *counted* in int16 before one multiply per distinct weight — every
    intermediate is an integer below 2^53, so the float64 totals are
    exact and identical to per-edge accumulation.  Otherwise it falls
    back to accumulating ``w * xor`` per edge in ``graph.edges()`` order,
    reproducing the historical float rounding bit-for-bit.  Either way
    the first-maximum tie-breaking of a single whole-array ``argmax`` is
    preserved: chunks are scanned in ascending mask order and a later
    chunk wins only on a strictly greater total.
    """
    import numpy as np

    n = graph.n
    if n > limit:
        raise ValueError(f"vectorized max-cut limited to {limit} vertices, got {n}")
    if n <= 1:
        return 0.0, []
    bg = BitGraph(graph)
    edges = [(bg.index[u], bg.index[v], graph.edge_weight(u, v))
             for u, v in graph.edges()]
    integral = (all(float(w).is_integer() for __, __, w in edges)
                and sum(abs(w) for __, __, w in edges) < 2.0 ** 53)
    if integral:
        # group by weight, preserving edges() order within groups
        groups: Dict[float, List[Tuple[int, int]]] = {}
        for iu, iv, w in edges:
            groups.setdefault(w, []).append((iu, iv))

    total_masks = 1 << (n - 1)
    best = 0.0
    best_idx = 0
    have_best = False
    for lo in range(0, total_masks, _MAXCUT_CHUNK):
        hi = min(lo + _MAXCUT_CHUNK, total_masks)
        masks = np.arange(lo, hi, dtype=np.int64)
        # membership rows; vertex n-1 is pinned to side 0 so its row is 0
        rows = [((masks >> i) & 1).astype(np.uint8) for i in range(n - 1)]
        rows.append(np.zeros(hi - lo, dtype=np.uint8))
        totals = np.zeros(hi - lo, dtype=np.float64)
        if integral:
            for w, pairs in groups.items():
                counts = np.zeros(hi - lo, dtype=np.int16)
                for iu, iv in pairs:
                    counts += rows[iu] ^ rows[iv]
                totals += w * counts
        else:
            for iu, iv, w in edges:
                totals += w * (rows[iu] ^ rows[iv])
        idx = int(np.argmax(totals))
        value = float(totals[idx])
        if not have_best or value > best:
            best = value
            best_idx = lo + idx
            have_best = True
    side = [bg.vertices[i] for i in range(n - 1) if (best_idx >> i) & 1]
    return best, side


@profiled
@cached
def max_cut(graph: Graph, limit: int = 28) -> Tuple[float, List[Vertex]]:
    """Return ``(weight, side)`` of a maximum weight cut.

    Raises ``ValueError`` above ``limit`` vertices; the enumeration is
    Θ(2^n) steps and callers should not trip into it by accident.
    """
    n = graph.n
    if n > limit:
        raise ValueError(f"exact max-cut limited to {limit} vertices, got {n}")
    if n <= 1:
        return 0.0, []
    if 16 < n <= 25:
        try:
            return max_cut_vectorized(graph, limit=limit)
        except ImportError:
            pass  # no numpy: the Gray-code walk below needs nothing
    bg = BitGraph(graph)
    # weighted adjacency lists over indices
    wadj: List[List[Tuple[int, float]]] = [[] for __ in range(n)]
    for u, v in graph.edges():
        iu, iv = bg.index[u], bg.index[v]
        w = graph.edge_weight(u, v)
        wadj[iu].append((iv, w))
        wadj[iv].append((iu, w))

    side = [0] * n  # side[i] in {0, 1}; vertex n-1 pinned to side 0
    current = 0.0
    best = 0.0
    best_mask = 0
    mask = 0
    steps = 1 << (n - 1)
    for step in range(1, steps):
        # Gray code: flip the position of the lowest set bit of `step`
        flip = (step & -step).bit_length() - 1
        delta = 0.0
        sv = side[flip]
        for j, w in wadj[flip]:
            if side[j] == sv:
                delta += w  # becomes a cut edge
            else:
                delta -= w  # stops being a cut edge
        side[flip] ^= 1
        mask ^= 1 << flip
        current += delta
        if current > best:
            best = current
            best_mask = mask
    return best, bg.unmask(best_mask)


def max_cut_value(graph: Graph, limit: int = 28) -> float:
    value, __ = max_cut(graph, limit=limit)
    return value
