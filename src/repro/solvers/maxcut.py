"""Exact maximum (weighted) cut.

Uses Gray-code enumeration with incremental weight updates: consecutive
subsets differ by one vertex, so each step costs one degree.  Vertex n−1
(in ``BitGraph`` index order) is fixed on one side by symmetry, so only
2^(n−1) sides are enumerated.  Practical up to roughly n = 26, which
covers the k = 2 instance of the Figure 3 family (Theorem 2.8).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.graphs import Graph, Vertex
from repro.solvers._bitmask import BitGraph
from repro.solvers.cache import cached
from repro.obs.profile import profiled


def cut_weight(graph: Graph, side: Sequence[Vertex]) -> float:
    """Total weight of edges crossing the cut ``(side, V - side)``."""
    s: Set[Vertex] = set(side)
    return sum(graph.edge_weight(u, v)
               for u, v in graph.edges() if (u in s) != (v in s))


#: Masks per chunk of the vectorized sweep; bounds peak memory at
#: roughly ``n`` uint8 rows of this length (≈26 MB at n = 25) instead of
#: materializing all 2^(n-1) masks as int64 at once.
_MAXCUT_CHUNK = 1 << 20


def max_cut_vectorized(graph: Graph, limit: int = 25) -> Tuple[float, List[Vertex]]:
    """Exact max cut via a vectorized sweep over all 2^(n-1) sides.

    The sweep is chunked: for each block of masks it extracts one uint8
    membership row per vertex, XORs the two endpoint rows per edge, and
    accumulates.  When every weight is integral (the Figure 3 instances
    are unweighted) edges are grouped by weight and crossing edges are
    *counted* in int16 before one multiply per distinct weight — every
    intermediate is an integer below 2^53, so the float64 totals are
    exact and identical to per-edge accumulation.  Otherwise it falls
    back to accumulating ``w * xor`` per edge in ``graph.edges()`` order,
    reproducing the historical float rounding bit-for-bit.  Either way
    the first-maximum tie-breaking of a single whole-array ``argmax`` is
    preserved: chunks are scanned in ascending mask order and a later
    chunk wins only on a strictly greater total.
    """
    import numpy as np

    n = graph.n
    if n > limit:
        raise ValueError(f"vectorized max-cut limited to {limit} vertices, got {n}")
    if n <= 1:
        return 0.0, []
    bg = BitGraph(graph)
    edges = [(bg.index[u], bg.index[v], graph.edge_weight(u, v))
             for u, v in graph.edges()]
    integral = (all(float(w).is_integer() for __, __, w in edges)
                and sum(abs(w) for __, __, w in edges) < 2.0 ** 53)
    if integral:
        # group by weight, preserving edges() order within groups
        groups: Dict[float, List[Tuple[int, int]]] = {}
        for iu, iv, w in edges:
            groups.setdefault(w, []).append((iu, iv))

    total_masks = 1 << (n - 1)
    best = 0.0
    best_idx = 0
    have_best = False
    for lo in range(0, total_masks, _MAXCUT_CHUNK):
        hi = min(lo + _MAXCUT_CHUNK, total_masks)
        masks = np.arange(lo, hi, dtype=np.int64)
        # membership rows; vertex n-1 is pinned to side 0 so its row is 0
        rows = [((masks >> i) & 1).astype(np.uint8) for i in range(n - 1)]
        rows.append(np.zeros(hi - lo, dtype=np.uint8))
        totals = np.zeros(hi - lo, dtype=np.float64)
        if integral:
            for w, pairs in groups.items():
                counts = np.zeros(hi - lo, dtype=np.int16)
                for iu, iv in pairs:
                    counts += rows[iu] ^ rows[iv]
                totals += w * counts
        else:
            for iu, iv, w in edges:
                totals += w * (rows[iu] ^ rows[iv])
        idx = int(np.argmax(totals))
        value = float(totals[idx])
        if not have_best or value > best:
            best = value
            best_idx = lo + idx
            have_best = True
    side = [bg.vertices[i] for i in range(n - 1) if (best_idx >> i) & 1]
    return best, side


def _max_cut_mitm(graph: Graph) -> Tuple[float, List[Vertex]]:
    """Exact max cut by meet-in-the-middle, bit-identical to the
    enumeration paths it accelerates.

    The ``n - 1`` free vertices (vertex ``n - 1`` is pinned to side 0)
    are split into ``b`` low bits and ``h`` high bits; a side mask is
    ``hi << b | lo``.  The cut value decomposes as

        totals[hi, lo] = (cutL + SL)[lo] + (cutH + SH)[hi] - 2·Q[hi, lo]

    where ``cutL``/``cutH`` are the within-block cuts (enumerated over
    only ``2^b``/``2^h`` masks), ``SL``/``SH`` the linear cross terms
    (``Σ w·a_i`` over cross edges; edges to the pinned vertex contribute
    to ``SL``/``SH`` only), and ``Q`` the bilinear term ``Σ w·a_i·c_j``
    — one BLAS matmul over the bit matrices.  Everything is held in
    float64 whose values are integers below 2^53, so each total is
    *exactly* the cut weight and comparisons agree bit-for-bit with the
    incremental Gray-code walk and the chunked sweep.

    Tie-breaking replicates the historical path for each size window:
    for ``n <= 16`` the totals are permuted into Gray-visit order and
    the first argmax taken (the Gray walk keeps the earliest strict
    maximum, starting from mask 0 at value 0.0); for ``16 < n <= 25``
    blocks of ascending masks are scanned with a strictly-greater
    running best, matching :func:`max_cut_vectorized`.  Requires numpy
    (raises ImportError otherwise) and integral weights (checked by the
    caller).
    """
    import numpy as np

    n = graph.n
    bg = BitGraph(graph)
    free = n - 1
    b = (free + 1) // 2
    L = 1 << b
    h = free - b
    H = 1 << h

    low_edges: List[Tuple[int, int, float]] = []
    high_edges: List[Tuple[int, int, float]] = []
    sl = np.zeros(b)
    sh = np.zeros(h)
    W = np.zeros((h, b))
    for u, v in graph.edges():
        iu, iv = bg.index[u], bg.index[v]
        if iu > iv:
            iu, iv = iv, iu
        w = graph.edge_weight(u, v)
        if iv < b:
            low_edges.append((iu, iv, w))
        elif iu >= b:
            # both high; vertex n-1 keeps its (pinned, all-zero) row
            high_edges.append((iu - b, iv - b, w))
        else:
            sl[iu] += w
            if iv < n - 1:
                jv = iv - b
                sh[jv] += w
                W[jv, iu] += w
            # an edge to the pinned vertex has c_j = 0: only its
            # linear a_i term (already in sl) survives

    def block_cuts(nbits: int, total: int, edges_local, pinned: bool):
        masks = np.arange(total, dtype=np.int64)
        rows = [((masks >> i) & 1).astype(np.float64)
                for i in range(nbits)]
        if pinned:
            rows.append(np.zeros(total))
        cuts = np.zeros(total)
        for i, j, w in edges_local:
            cuts += w * np.abs(rows[i] - rows[j])
        bits = np.stack(rows[:nbits], axis=1) if nbits else \
            np.zeros((total, 0))
        return cuts, bits

    cut_l, A = block_cuts(b, L, low_edges, False)
    cut_h, C = block_cuts(h, H, high_edges, True)
    low_totals = cut_l + A @ sl
    high_totals = cut_h + C @ sh
    CW = C @ W  # (H, b); Q[hi, lo] = (CW @ A.T)[hi, lo]

    if free <= 20:
        totals = (high_totals[:, None] + low_totals[None, :]
                  - 2.0 * (CW @ A.T)).ravel()
        if n <= 16:
            # Gray-visit order: mask at step s is s ^ (s >> 1)
            g = np.arange(1 << free, dtype=np.int64)
            g ^= g >> 1
            vals = totals[g]
            idx = int(np.argmax(vals))
            return float(vals[idx]), bg.unmask(int(g[idx]))
        idx = int(np.argmax(totals))
        return float(totals[idx]), bg.unmask(idx)

    # large window: ascending blocks of hi rows, strictly-greater
    # running best — the same first-argmax the chunked sweep computes
    rows_per = max(1, _MAXCUT_CHUNK // L)
    best = 0.0
    best_mask = 0
    have_best = False
    for r0 in range(0, H, rows_per):
        r1 = min(r0 + rows_per, H)
        block = (high_totals[r0:r1, None] + low_totals[None, :]
                 - 2.0 * (CW[r0:r1] @ A.T)).ravel()
        idx = int(np.argmax(block))
        value = float(block[idx])
        if not have_best or value > best:
            best = value
            best_mask = r0 * L + idx
            have_best = True
    return best, bg.unmask(best_mask)


def _integral_weights(graph: Graph) -> bool:
    """True when every edge weight is integral with total magnitude
    below 2^53 — the regime where float64 cut totals are exact and the
    meet-in-the-middle path is bit-identical to enumeration."""
    total = 0.0
    for w in graph.edge_weights().values():
        if not float(w).is_integer():
            return False
        total += abs(w)
    return total < 2.0 ** 53


@profiled
@cached
def max_cut(graph: Graph, limit: int = 28) -> Tuple[float, List[Vertex]]:
    """Return ``(weight, side)`` of a maximum weight cut.

    Raises ``ValueError`` above ``limit`` vertices; the enumeration is
    Θ(2^n) steps and callers should not trip into it by accident.
    """
    n = graph.n
    if n > limit:
        raise ValueError(f"exact max-cut limited to {limit} vertices, got {n}")
    if n <= 1:
        return 0.0, []
    if n <= 25 and _integral_weights(graph):
        try:
            return _max_cut_mitm(graph)
        except ImportError:
            pass  # no numpy: the enumeration paths below need nothing
    if 16 < n <= 25:
        try:
            return max_cut_vectorized(graph, limit=limit)
        except ImportError:
            pass  # no numpy: the Gray-code walk below needs nothing
    bg = BitGraph(graph)
    # weighted adjacency lists over indices
    wadj: List[List[Tuple[int, float]]] = [[] for __ in range(n)]
    for u, v in graph.edges():
        iu, iv = bg.index[u], bg.index[v]
        w = graph.edge_weight(u, v)
        wadj[iu].append((iv, w))
        wadj[iv].append((iu, w))

    side = [0] * n  # side[i] in {0, 1}; vertex n-1 pinned to side 0
    current = 0.0
    best = 0.0
    best_mask = 0
    mask = 0
    steps = 1 << (n - 1)
    for step in range(1, steps):
        # Gray code: flip the position of the lowest set bit of `step`
        flip = (step & -step).bit_length() - 1
        delta = 0.0
        sv = side[flip]
        for j, w in wadj[flip]:
            if side[j] == sv:
                delta += w  # becomes a cut edge
            else:
                delta -= w  # stops being a cut edge
        side[flip] ^= 1
        mask ^= 1 << flip
        current += delta
        if current > best:
            best = current
            best_mask = mask
    return best, bg.unmask(best_mask)


def max_cut_value(graph: Graph, limit: int = 28) -> float:
    value, __ = max_cut(graph, limit=limit)
    return value
