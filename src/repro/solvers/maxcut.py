"""Exact maximum (weighted) cut.

Uses Gray-code enumeration with incremental weight updates: consecutive
subsets differ by one vertex, so each step costs one degree.  Vertex n−1
(in ``BitGraph`` index order) is fixed on one side by symmetry, so only
2^(n−1) sides are enumerated.  Practical up to roughly n = 26, which
covers the k = 2 instance of the Figure 3 family (Theorem 2.8).
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.graphs import Graph, Vertex
from repro.solvers._bitmask import BitGraph
from repro.solvers.cache import cached
from repro.obs.profile import profiled


def cut_weight(graph: Graph, side: Sequence[Vertex]) -> float:
    """Total weight of edges crossing the cut ``(side, V - side)``."""
    s: Set[Vertex] = set(side)
    return sum(graph.edge_weight(u, v)
               for u, v in graph.edges() if (u in s) != (v in s))


def max_cut_vectorized(graph: Graph, limit: int = 25) -> Tuple[float, List[Vertex]]:
    """Exact max cut via a vectorized sweep over all 2^(n-1) sides.

    Evaluates every cut with one numpy pass per edge; faster than the
    Gray-code walk for the Figure 3 instances (n ≈ 21 at k = 2).
    """
    import numpy as np

    n = graph.n
    if n > limit:
        raise ValueError(f"vectorized max-cut limited to {limit} vertices, got {n}")
    if n <= 1:
        return 0.0, []
    bg = BitGraph(graph)
    masks = np.arange(1 << (n - 1), dtype=np.int64)
    totals = np.zeros(len(masks), dtype=np.float64)
    for u, v in graph.edges():
        iu, iv = bg.index[u], bg.index[v]
        w = graph.edge_weight(u, v)
        # vertex n-1 is pinned to side 0, so shifts past n-2 read as 0
        bu = (masks >> iu) & 1 if iu < n - 1 else np.zeros(len(masks), dtype=np.int64)
        bv = (masks >> iv) & 1 if iv < n - 1 else np.zeros(len(masks), dtype=np.int64)
        totals += w * (bu ^ bv)
    best_idx = int(np.argmax(totals))
    best = float(totals[best_idx])
    side = [bg.vertices[i] for i in range(n - 1) if (best_idx >> i) & 1]
    return best, side


@profiled
@cached
def max_cut(graph: Graph, limit: int = 28) -> Tuple[float, List[Vertex]]:
    """Return ``(weight, side)`` of a maximum weight cut.

    Raises ``ValueError`` above ``limit`` vertices; the enumeration is
    Θ(2^n) steps and callers should not trip into it by accident.
    """
    n = graph.n
    if n > limit:
        raise ValueError(f"exact max-cut limited to {limit} vertices, got {n}")
    if n <= 1:
        return 0.0, []
    if 16 < n <= 25:
        try:
            return max_cut_vectorized(graph, limit=limit)
        except ImportError:
            pass  # no numpy: the Gray-code walk below needs nothing
    bg = BitGraph(graph)
    # weighted adjacency lists over indices
    wadj: List[List[Tuple[int, float]]] = [[] for __ in range(n)]
    for u, v in graph.edges():
        iu, iv = bg.index[u], bg.index[v]
        w = graph.edge_weight(u, v)
        wadj[iu].append((iv, w))
        wadj[iv].append((iu, w))

    side = [0] * n  # side[i] in {0, 1}; vertex n-1 pinned to side 0
    current = 0.0
    best = 0.0
    best_mask = 0
    mask = 0
    steps = 1 << (n - 1)
    for step in range(1, steps):
        # Gray code: flip the position of the lowest set bit of `step`
        flip = (step & -step).bit_length() - 1
        delta = 0.0
        sv = side[flip]
        for j, w in wadj[flip]:
            if side[j] == sv:
                delta += w  # becomes a cut edge
            else:
                delta -= w  # stops being a cut edge
        side[flip] ^= 1
        mask ^= 1 << flip
        current += delta
        if current > best:
            best = current
            best_mask = mask
    return best, bg.unmask(best_mask)


def max_cut_value(graph: Graph, limit: int = 28) -> float:
    value, __ = max_cut(graph, limit=limit)
    return value
