"""Exact MaxSAT by exhaustive search with component decomposition.

Used to verify Claims 3.1 and 3.3 and Corollary 3.1 on small formulas.
Variables interacting in no common clause are solved independently, which
keeps the expander-gadget formulas of Section 3.1 within reach.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Tuple

from repro.formulas.cnf import CNF, Variable


def _variable_components(cnf: CNF) -> List[List[Variable]]:
    adj: Dict[Variable, set] = {v: set() for v in cnf.variables()}
    for clause in cnf.clauses:
        vars_in = [v for v, __ in clause]
        for i, u in enumerate(vars_in):
            for w in vars_in[i + 1:]:
                if u != w:
                    adj[u].add(w)
                    adj[w].add(u)
    comps = []
    remaining = set(adj)
    while remaining:
        start = next(iter(remaining))
        comp = {start}
        frontier = [start]
        while frontier:
            u = frontier.pop()
            for w in adj[u]:
                if w not in comp:
                    comp.add(w)
                    frontier.append(w)
        comps.append(list(comp))
        remaining -= comp
    return comps


def max_sat_assignment(cnf: CNF, limit_vars: int = 24) -> Tuple[int, Dict[Variable, bool]]:
    """Return ``(max satisfied clauses, a maximizing assignment)``.

    Exhaustive per connected component of the variable-interaction graph;
    each component must have at most ``limit_vars`` variables.
    """
    assignment: Dict[Variable, bool] = {}
    total = 0
    for comp in _variable_components(cnf):
        if len(comp) > limit_vars:
            raise ValueError(
                f"component with {len(comp)} variables exceeds limit {limit_vars}")
        comp_set = set(comp)
        comp_clauses = CNF(c for c in cnf.clauses
                           if any(v in comp_set for v, __ in c))
        best = -1
        best_assign: Dict[Variable, bool] = {}
        for bits in product((False, True), repeat=len(comp)):
            cand = dict(zip(comp, bits))
            score = comp_clauses.satisfied_count(cand)
            if score > best:
                best = score
                best_assign = cand
        assignment.update(best_assign)
        total += best
    return total, assignment


def max_sat_value(cnf: CNF, limit_vars: int = 24) -> int:
    """Maximum number of simultaneously satisfiable clauses."""
    value, __ = max_sat_assignment(cnf, limit_vars=limit_vars)
    return value
