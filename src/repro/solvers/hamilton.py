"""Exact Hamiltonian path / cycle search for directed and undirected graphs.

The Figure 2 family (Theorem 2.2) is highly corridor-like: most vertices
have out-degree 2-3 and wrong turns strand a vertex quickly.  A DFS with
two structural prunes — reachability of all unvisited vertices from the
current head, and at most one unvisited vertex with no remaining
out-neighbour — decides these instances fast despite their size.

A Held–Karp dynamic program (n ≤ 18) is included as an independent
cross-check used by the test-suite.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.graphs import DiGraph, Graph, Vertex
from repro.solvers.cache import cached
from repro.obs.profile import profiled

AnyGraph = Union[Graph, DiGraph]


def _as_digraph(graph: AnyGraph) -> DiGraph:
    if isinstance(graph, DiGraph):
        return graph
    dg = DiGraph()
    for v in graph.vertices():
        dg.add_vertex(v)
    for u, v in graph.edges():
        dg.add_edge(u, v)
        dg.add_edge(v, u)
    return dg


def is_hamiltonian_path(graph: AnyGraph, path: Sequence[Vertex]) -> bool:
    """Check that ``path`` visits every vertex exactly once along edges."""
    dg = _as_digraph(graph)
    path = list(path)
    if len(path) != dg.n or len(set(path)) != dg.n:
        return False
    return all(dg.has_edge(u, v) for u, v in zip(path, path[1:]))


def is_hamiltonian_cycle(graph: AnyGraph, cycle: Sequence[Vertex]) -> bool:
    """Check that ``cycle`` (without repeated first vertex) is Hamiltonian."""
    cycle = list(cycle)
    dg = _as_digraph(graph)
    if len(cycle) != dg.n:
        return False
    return (is_hamiltonian_path(graph, cycle)
            and dg.has_edge(cycle[-1], cycle[0]))


class _HamSolver:
    def __init__(self, dg: DiGraph) -> None:
        self.vertices = list(dg.vertices())
        self.index = {v: i for i, v in enumerate(self.vertices)}
        self.n = len(self.vertices)
        self.succ: List[List[int]] = [[] for __ in range(self.n)]
        self.pred: List[List[int]] = [[] for __ in range(self.n)]
        for u, v in dg.edges():
            self.succ[self.index[u]].append(self.index[v])
            self.pred[self.index[v]].append(self.index[u])
        self.nodes_expanded = 0

    def _viable(self, visited: List[bool], head: int, target: Optional[int]) -> bool:
        """Prunes: every unvisited vertex reachable from ``head``; at most
        one unvisited dead end (and it must be ``target`` if specified)."""
        n = self.n
        # reachability over unvisited vertices
        seen = [False] * n
        seen[head] = True
        queue = deque([head])
        reached = 0
        while queue:
            u = queue.popleft()
            for w in self.succ[u]:
                if not visited[w] and not seen[w]:
                    seen[w] = True
                    reached += 1
                    queue.append(w)
        unvisited = n - sum(visited)
        if reached < unvisited:
            return False
        # dead-end counting
        dead = 0
        for v in range(n):
            if visited[v] or v == head:
                continue
            if not any(not visited[w] for w in self.succ[v]):
                dead += 1
                if target is not None and v != target:
                    return False
                if dead > 1:
                    return False
        return True

    def path(self, source: Optional[int], target: Optional[int]) -> Optional[List[int]]:
        starts = [source] if source is not None else list(range(self.n))
        for s in starts:
            visited = [False] * self.n
            visited[s] = True
            path = [s]
            if self._dfs(visited, path, target):
                return path
        return None

    def _dfs(self, visited: List[bool], path: List[int],
             target: Optional[int]) -> bool:
        self.nodes_expanded += 1
        head = path[-1]
        if len(path) == self.n:
            return target is None or head == target
        if not self._viable(visited, head, target):
            return False
        # most-constrained-successor ordering
        options = [w for w in self.succ[head] if not visited[w]]
        options.sort(key=lambda w: sum(1 for x in self.succ[w] if not visited[x]))
        for w in options:
            if target is not None and w == target and len(path) != self.n - 1:
                continue
            visited[w] = True
            path.append(w)
            if self._dfs(visited, path, target):
                return True
            path.pop()
            visited[w] = False
        return False

    def cycle(self) -> Optional[List[int]]:
        if self.n == 0:
            return None
        s = 0
        visited = [False] * self.n
        visited[s] = True
        path = [s]
        if self._dfs_cycle(visited, path, s):
            return path
        return None

    def _dfs_cycle(self, visited: List[bool], path: List[int], start: int) -> bool:
        self.nodes_expanded += 1
        head = path[-1]
        if len(path) == self.n:
            return start in self.succ[head]
        if not self._viable_cycle(visited, head, start):
            return False
        options = [w for w in self.succ[head] if not visited[w]]
        options.sort(key=lambda w: sum(1 for x in self.succ[w] if not visited[x]))
        for w in options:
            visited[w] = True
            path.append(w)
            if self._dfs_cycle(visited, path, start):
                return True
            path.pop()
            visited[w] = False
        return False

    def _viable_cycle(self, visited: List[bool], head: int, start: int) -> bool:
        n = self.n
        seen = [False] * n
        seen[head] = True
        queue = deque([head])
        reached = 0
        while queue:
            u = queue.popleft()
            for w in self.succ[u]:
                if not visited[w] and not seen[w]:
                    seen[w] = True
                    reached += 1
                    queue.append(w)
        if reached < n - sum(visited):
            return False
        for v in range(n):
            if visited[v] or v == head:
                continue
            # in a cycle, an unvisited vertex may step back to `start`
            if not any((not visited[w]) or w == start for w in self.succ[v]):
                return False
        return True


@profiled
@cached
def find_hamiltonian_path(
    graph: AnyGraph,
    source: Optional[Vertex] = None,
    target: Optional[Vertex] = None,
) -> Optional[List[Vertex]]:
    """Find a Hamiltonian path (optionally with fixed endpoints), or None."""
    dg = _as_digraph(graph)
    if dg.n == 0:
        return None
    if dg.n == 1:
        only = dg.vertices()[0]
        if source not in (None, only) or target not in (None, only):
            return None
        return [only]
    solver = _HamSolver(dg)
    src = solver.index[source] if source is not None else None
    tgt = solver.index[target] if target is not None else None
    if src is None:
        # a vertex with in-degree 0 must start any Hamiltonian path
        zero_in = [i for i in range(solver.n) if not solver.pred[i]]
        if len(zero_in) > 1:
            return None
        if len(zero_in) == 1:
            src = zero_in[0]
    result = solver.path(src, tgt)
    if result is None:
        return None
    return [solver.vertices[i] for i in result]


@profiled
@cached
def find_hamiltonian_cycle(graph: AnyGraph) -> Optional[List[Vertex]]:
    """Find a Hamiltonian cycle (returned without repeating the start)."""
    dg = _as_digraph(graph)
    if dg.n < 2:
        return None
    solver = _HamSolver(dg)
    result = solver.cycle()
    if result is None:
        return None
    return [solver.vertices[i] for i in result]


def has_hamiltonian_path(graph: AnyGraph, source: Optional[Vertex] = None,
                         target: Optional[Vertex] = None) -> bool:
    return find_hamiltonian_path(graph, source=source, target=target) is not None


def has_hamiltonian_cycle(graph: AnyGraph) -> bool:
    return find_hamiltonian_cycle(graph) is not None


@profiled
@cached
def held_karp_has_path(graph: AnyGraph) -> bool:
    """O(2^n n^2) dynamic program; independent cross-check for n ≤ 18."""
    dg = _as_digraph(graph)
    n = dg.n
    if n > 18:
        raise ValueError("Held-Karp cross-check limited to 18 vertices")
    if n == 0:
        return False
    vertices = list(dg.vertices())
    index = {v: i for i, v in enumerate(vertices)}
    succ = [[index[w] for w in dg.successors(v)] for v in vertices]
    # reach[mask] = set of possible path heads visiting exactly `mask`
    reach: Dict[int, int] = {1 << i: 1 << i for i in range(n)}
    frontier = dict(reach)
    for __ in range(n - 1):
        nxt: Dict[int, int] = {}
        for mask, heads in frontier.items():
            h = heads
            while h:
                i = (h & -h).bit_length() - 1
                h &= h - 1
                for w in succ[i]:
                    bit = 1 << w
                    if not mask & bit:
                        key = mask | bit
                        nxt[key] = nxt.get(key, 0) | bit
        frontier = nxt
        if not frontier:
            return False
    full = (1 << n) - 1
    return bool(frontier.get(full, 0))
