"""Exact Hamiltonian path / cycle search for directed and undirected graphs.

The Figure 2 family (Theorem 2.2) is highly corridor-like: most vertices
have out-degree 2-3 and wrong turns strand a vertex quickly.  A DFS with
two structural prunes — reachability of all unvisited vertices from the
current head, and at most one unvisited vertex with no remaining
out-neighbour — decides these instances fast despite their size.

A Held–Karp dynamic program (n ≤ 18) is included as an independent
cross-check used by the test-suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.graphs import DiGraph, Graph, Vertex
from repro.solvers._bitmask import popcount
from repro.solvers.cache import cached
from repro.obs.profile import profiled

AnyGraph = Union[Graph, DiGraph]


def _as_digraph(graph: AnyGraph) -> DiGraph:
    if isinstance(graph, DiGraph):
        return graph
    dg = DiGraph()
    for v in graph.vertices():
        dg.add_vertex(v)
    for u, v in graph.edges():
        dg.add_edge(u, v)
        dg.add_edge(v, u)
    return dg


def is_hamiltonian_path(graph: AnyGraph, path: Sequence[Vertex]) -> bool:
    """Check that ``path`` visits every vertex exactly once along edges."""
    dg = _as_digraph(graph)
    path = list(path)
    if len(path) != dg.n or len(set(path)) != dg.n:
        return False
    return all(dg.has_edge(u, v) for u, v in zip(path, path[1:]))


def is_hamiltonian_cycle(graph: AnyGraph, cycle: Sequence[Vertex]) -> bool:
    """Check that ``cycle`` (without repeated first vertex) is Hamiltonian."""
    cycle = list(cycle)
    dg = _as_digraph(graph)
    if len(cycle) != dg.n:
        return False
    return (is_hamiltonian_path(graph, cycle)
            and dg.has_edge(cycle[-1], cycle[0]))


def _byte_union_tables(masks: List[int], n: int) -> List[List[int]]:
    """Per-byte union tables over ``masks``: ``tables[c][b]`` is the
    union of ``masks[8c + i]`` for every bit ``i`` set in byte ``b``.
    The union over an arbitrary vertex set then costs one table lookup
    per byte chunk instead of one list access per set bit.
    """
    tables = []
    for c in range((n + 7) >> 3):
        base = c << 3
        top = min(8, n - base)
        # doubling: each bit ORs its mask over the half-table built so
        # far, so the whole table is `top` C-level list comprehensions
        t = [0]
        for i in range(top):
            m = masks[base + i]
            t += [x | m for x in t]
        tables.append(t)
    return tables


class _HamSolver:
    """Bitmask DFS core.

    The visited set and all adjacency live in integer bitmasks, so the
    two structural prunes run as word-parallel mask algebra instead of
    per-vertex list BFS — the dominant cost of the Figure 2 sweeps:

    - *dead ends*: a vertex stripped of every admissible successor is
      detected via ``unvisited & ~live`` where ``live`` (the union of
      predecessor masks over the admissible set) comes from per-byte
      union tables — a handful of lookups per check;
    - *reachability*: every unvisited vertex must stay reachable from
      the head; a frontier BFS ORs successor masks per round.

    Both prunes are *sound* (they only cut subtrees that provably
    contain no completion), so the solver may also skip them where they
    cannot pay: forced moves (a single unvisited successor) are walked
    iteratively without re-checking viability — each skipped check costs
    at most the one forced step the prune could have saved, so the
    search cannot blow up, and the first completion found is identical.

    ``succ`` keeps the label-sorted successor *lists* as well: branch
    points iterate options in that order with a stable most-constrained
    sort, so the returned path/cycle is exactly what the historical
    list-based implementation produced.
    """

    def __init__(self, dg: DiGraph) -> None:
        self.vertices = list(dg.vertices())
        self.index = {v: i for i, v in enumerate(self.vertices)}
        self.n = len(self.vertices)
        self.succ: List[List[int]] = [[] for __ in range(self.n)]
        self.succ_mask: List[int] = [0] * self.n
        self.pred_mask: List[int] = [0] * self.n
        for u, v in dg.edges():
            iu, iv = self.index[u], self.index[v]
            self.succ[iu].append(iv)
            self.succ_mask[iu] |= 1 << iv
            self.pred_mask[iv] |= 1 << iu
        self.full = (1 << self.n) - 1
        #: successor mask keyed by isolated low bit — the BFS inner loop
        #: avoids a bit_length() + list index per expanded vertex
        self.succ_by_low: Dict[int, int] = {
            1 << i: m for i, m in enumerate(self.succ_mask)}
        self._pred_tables: Optional[List[List[int]]] = None
        self._succ_tables: Optional[List[List[int]]] = None
        self.nodes_expanded = 0

    def _live_mask(self, allowed: int) -> int:
        """Union of ``pred_mask`` over ``allowed``: every vertex with at
        least one successor inside ``allowed``."""
        pt = self._pred_tables
        if pt is None:
            pt = self._pred_tables = _byte_union_tables(self.pred_mask,
                                                        self.n)
        live = 0
        c = 0
        while allowed:
            live |= pt[c][allowed & 255]
            allowed >>= 8
            c += 1
        return live

    def _reach_all(self, unvisited: int, head: int) -> bool:
        """Is every ``unvisited`` vertex reachable from ``head`` through
        unvisited vertices?  Bitmask BFS: each round ORs the successor
        masks of the current frontier."""
        sbl = self.succ_by_low
        seen = 0
        frontier = self.succ_mask[head] & unvisited
        while frontier:
            seen |= frontier
            new = 0
            m = frontier
            while m:
                low = m & -m
                new |= sbl[low]
                m ^= low
            frontier = new & unvisited & ~seen
        return not unvisited & ~seen

    def _viable(self, visited: int, head: int, target: Optional[int]) -> bool:
        """Prunes: at most one unvisited dead end (which must be
        ``target`` if specified); every unvisited vertex reachable from
        ``head``."""
        unvisited = self.full & ~visited
        dead = unvisited & ~self._live_mask(unvisited)
        if dead:
            if dead & (dead - 1):
                return False
            if target is not None and dead != 1 << target:
                return False
        return self._reach_all(unvisited, head)

    def path(self, source: Optional[int], target: Optional[int]) -> Optional[List[int]]:
        starts = [source] if source is not None else list(range(self.n))
        for s in starts:
            path = [s]
            if self._dfs(1 << s, path, target):
                return path
        return None

    def _dfs(self, visited: int, path: List[int],
             target: Optional[int]) -> bool:
        n = self.n
        succ_mask = self.succ_mask
        head = path[-1]
        base_len = len(path)
        while True:
            self.nodes_expanded += 1
            if len(path) == n:
                if target is None or head == target:
                    return True
                break
            avail = succ_mask[head] & ~visited
            if not avail:
                break
            if avail & (avail - 1):  # branch point: prune, order, recurse
                if not self._viable(visited, head, target):
                    break
                unvisited = self.full & ~visited
                # most-constrained-successor ordering (stable, so ties
                # keep the label-sorted successor order)
                options = [w for w in self.succ[head]
                           if not visited >> w & 1]
                options.sort(key=lambda w: popcount(succ_mask[w] & unvisited))
                for w in options:
                    if target is not None and w == target \
                            and len(path) != n - 1:
                        continue
                    path.append(w)
                    if self._dfs(visited | 1 << w, path, target):
                        return True
                    path.pop()
                break
            # forced move — walk it without a viability check
            w = avail.bit_length() - 1
            if target is not None and w == target and len(path) != n - 1:
                break
            visited |= avail
            path.append(w)
            head = w
        del path[base_len:]
        return False

    def cycle(self) -> Optional[List[int]]:
        """Hamiltonian cycle as an index list (starting at vertex 0), or
        None — forced-edge contraction plus the mask DFS, see
        :func:`_solve_cycle_masks`."""
        if self.n == 0:
            return None
        counter = [0]
        path = _solve_cycle_masks(self.succ_mask, self.pred_mask, self.n,
                                  counter)
        self.nodes_expanded += counter[0]
        return path

    def _viable_cycle(self, visited: int, head: int, start: int) -> bool:
        unvisited = self.full & ~visited
        # in a cycle, an unvisited vertex may step back to `start`
        if unvisited & ~self._live_mask(unvisited | 1 << start):
            return False
        return self._reach_all(unvisited, head)


def _solve_cycle_masks(succ_mask: List[int], pred_mask: List[int], n: int,
                       counter: List[int]) -> Optional[List[int]]:
    """Hamiltonian cycle over a bitmask adjacency, as an index list
    rotated to start at vertex 0, or None.

    Forced-edge contraction first: a vertex with out-degree 1 must use
    its only out-edge in *every* Hamiltonian cycle (the cycle leaves
    each vertex exactly once), and symmetrically a vertex with in-degree
    1 must be entered by its only in-edge.  The forced edges therefore
    appear in any solution, and three cheap outcomes fall out before any
    search: a vertex needing two distinct forced out-edges (or in-edges)
    proves no cycle exists; forced edges closing a loop shorter than
    ``n`` prove the same; forced edges closing a single loop of length
    ``n`` *are* the cycle.  Otherwise the forced edges form disjoint
    chains that any solution traverses contiguously, so the problem
    contracts to the chain-entry/exit quotient graph — on the paper's
    corridor-gadget families this collapses most of the graph, since
    almost every vertex sits on a degree-1 corridor — and the DFS only
    runs on the (much smaller) residue.  Contraction repeats via
    recursion until no forced edges remain, then :func:`_search_cycle_
    masks` finishes.  ``counter[0]`` accrues expanded search nodes.
    """
    # --- forced edges: nxt[u] = the successor every cycle must use
    nxt = [-1] * n
    for u in range(n):
        m = succ_mask[u]
        if not m:
            return None
        if not m & (m - 1):
            nxt[u] = m.bit_length() - 1
    for v in range(n):
        m = pred_mask[v]
        if not m:
            return None
        if not m & (m - 1):
            u = m.bit_length() - 1
            w = nxt[u]
            if w == -1:
                nxt[u] = v
            elif w != v:
                return None  # u would need two distinct out-edges
    prv = [-1] * n
    forced = 0
    for u in range(n):
        v = nxt[u]
        if v != -1:
            if prv[v] != -1:
                return None  # v would need two distinct in-edges
            prv[v] = u
            forced += 1
    if not forced:
        path, expanded = _search_cycle_masks(succ_mask, pred_mask, n)
        counter[0] += expanded
        return path
    # --- maximal forced chains, walked from their heads.  `nxt` is
    # functional with functional inverse, so it decomposes into
    # vertex-disjoint simple paths and loops.
    chains = []
    covered = 0
    for u in range(n):
        if prv[u] == -1:
            chain = [u]
            w = nxt[u]
            while w != -1:
                chain.append(w)
                w = nxt[w]
            chains.append(chain)
            covered += len(chain)
    if covered != n:
        # the uncovered vertices sit on closed forced loops
        if chains:
            return None  # a loop shorter than n can't extend to a cycle
        loop = [0]
        w = nxt[0]
        while w != 0:
            loop.append(w)
            w = nxt[w]
        return loop if len(loop) == n else None
    if len(chains) == 1:
        chain = chains[0]
        if succ_mask[chain[-1]] >> chain[0] & 1:
            k = chain.index(0)
            return chain[k:] + chain[:k]
        return None
    # --- quotient graph: chain i -> chain j iff exit(i) -> entry(j).
    # Edges into chain interiors are unusable (interior vertices are
    # entered by their forced edge), so they are dropped; the self-edge
    # exit(i) -> entry(i) would close a short loop and is dropped too.
    r = len(chains)
    entry_rid = {chain[0]: i for i, chain in enumerate(chains)}
    rsucc = [0] * r
    rpred = [0] * r
    for i, chain in enumerate(chains):
        m = succ_mask[chain[-1]]
        bits = 0
        while m:
            low = m & -m
            j = entry_rid.get(low.bit_length() - 1)
            if j is not None and j != i:
                bits |= 1 << j
            m ^= low
        rsucc[i] = bits
        mm = bits
        while mm:
            low = mm & -mm
            rpred[low.bit_length() - 1] |= 1 << i
            mm ^= low
    sub = _solve_cycle_masks(rsucc, rpred, r, counter)
    if sub is None:
        return None
    out: List[int] = []
    for j in sub:
        out.extend(chains[j])
    k = out.index(0)
    return out[k:] + out[:k]


def _search_cycle_masks(succ_mask: List[int], pred_mask: List[int],
                        n: int) -> Tuple[Optional[List[int]], int]:
    """DFS for a Hamiltonian cycle from vertex 0 over bitmask adjacency
    — iterative with an explicit backtrack stack (this loop is the
    hottest code in the repo).  Forced moves walk without a viability
    check; branch points prune (dead-end test via pred union tables,
    reachability BFS) then try options in ascending-index order under a
    stable most-constrained sort.  Returns ``(cycle or None, expanded)``.
    """
    sbl = {1 << i: m for i, m in enumerate(succ_mask)}
    pt = _byte_union_tables(pred_mask, n)
    full = (1 << n) - 1
    pc = popcount
    path = [0]
    append = path.append
    visited = 1
    head = 0
    depth = 1
    expanded = 0
    # one frame per branch point: untried options, the visited mask
    # and depth on *entry* to the node
    stack: List[Tuple[List[int], int, int]] = []
    while True:
        expanded += 1
        ok = True
        if depth == n:
            if succ_mask[head] & 1:
                return path, expanded
            ok = False
        else:
            avail = succ_mask[head] & ~visited
            if not avail:
                ok = False
            elif avail & (avail - 1):  # branch point
                # dead-end test via the pred union tables: every
                # unvisited vertex needs a successor that is either
                # unvisited or the start vertex (closing the cycle)
                unvisited = full & ~visited
                allowed = unvisited | 1
                live = 0
                c = 0
                while allowed:
                    live |= pt[c][allowed & 255]
                    allowed >>= 8
                    c += 1
                if unvisited & ~live:
                    ok = False
                else:
                    # reachability BFS over unvisited vertices
                    seen = 0
                    frontier = succ_mask[head] & unvisited
                    while frontier:
                        seen |= frontier
                        if frontier & (frontier - 1):
                            new = 0
                            m = frontier
                            while m:
                                low = m & -m
                                new |= sbl[low]
                                m ^= low
                        else:
                            new = sbl[frontier]
                        frontier = new & unvisited & ~seen
                    if unvisited & ~seen:
                        ok = False
                    else:
                        options = []
                        m = avail
                        while m:
                            low = m & -m
                            options.append(low.bit_length() - 1)
                            m ^= low
                        if len(options) == 2:
                            # stable 2-sort without sort() machinery
                            a, b = options
                            if pc(succ_mask[b] & unvisited) \
                                    < pc(succ_mask[a] & unvisited):
                                options = [b, a]
                        else:
                            options.sort(key=lambda w: pc(
                                succ_mask[w] & unvisited))
                        options.reverse()  # pop() takes them in order
                        w = options.pop()
                        stack.append((options, visited, depth))
                        visited |= 1 << w
                        append(w)
                        depth += 1
                        head = w
                        continue
            else:
                # forced move — walk it without a viability check
                w = avail.bit_length() - 1
                visited |= avail
                append(w)
                depth += 1
                head = w
                continue
        # backtrack to the nearest branch point with untried options
        while stack:
            options, vis0, depth0 = stack[-1]
            if options:
                w = options.pop()
                del path[depth0:]
                append(w)
                depth = depth0 + 1
                visited = vis0 | 1 << w
                head = w
                break
            stack.pop()
        else:
            return None, expanded


@profiled
@cached
def find_hamiltonian_path(
    graph: AnyGraph,
    source: Optional[Vertex] = None,
    target: Optional[Vertex] = None,
) -> Optional[List[Vertex]]:
    """Find a Hamiltonian path (optionally with fixed endpoints), or None."""
    dg = _as_digraph(graph)
    if dg.n == 0:
        return None
    if dg.n == 1:
        only = dg.vertices()[0]
        if source not in (None, only) or target not in (None, only):
            return None
        return [only]
    solver = _HamSolver(dg)
    src = solver.index[source] if source is not None else None
    tgt = solver.index[target] if target is not None else None
    if src is None:
        # a vertex with in-degree 0 must start any Hamiltonian path
        zero_in = [i for i in range(solver.n) if not solver.pred_mask[i]]
        if len(zero_in) > 1:
            return None
        if len(zero_in) == 1:
            src = zero_in[0]
    result = solver.path(src, tgt)
    if result is None:
        return None
    return [solver.vertices[i] for i in result]


@profiled
@cached
def find_hamiltonian_cycle(graph: AnyGraph) -> Optional[List[Vertex]]:
    """Find a Hamiltonian cycle (returned without repeating the start)."""
    dg = _as_digraph(graph)
    if dg.n < 2:
        return None
    solver = _HamSolver(dg)
    result = solver.cycle()
    if result is None:
        return None
    return [solver.vertices[i] for i in result]


def has_hamiltonian_path(graph: AnyGraph, source: Optional[Vertex] = None,
                         target: Optional[Vertex] = None) -> bool:
    return find_hamiltonian_path(graph, source=source, target=target) is not None


def has_hamiltonian_cycle(graph: AnyGraph) -> bool:
    return find_hamiltonian_cycle(graph) is not None


@profiled
@cached
def held_karp_has_path(graph: AnyGraph) -> bool:
    """O(2^n n^2) dynamic program; independent cross-check for n ≤ 18."""
    dg = _as_digraph(graph)
    n = dg.n
    if n > 18:
        raise ValueError("Held-Karp cross-check limited to 18 vertices")
    if n == 0:
        return False
    vertices = list(dg.vertices())
    index = {v: i for i, v in enumerate(vertices)}
    succ = [[index[w] for w in dg.successors(v)] for v in vertices]
    # reach[mask] = set of possible path heads visiting exactly `mask`
    reach: Dict[int, int] = {1 << i: 1 << i for i in range(n)}
    frontier = dict(reach)
    for __ in range(n - 1):
        nxt: Dict[int, int] = {}
        for mask, heads in frontier.items():
            h = heads
            while h:
                i = (h & -h).bit_length() - 1
                h &= h - 1
                for w in succ[i]:
                    bit = 1 << w
                    if not mask & bit:
                        key = mask | bit
                        nxt[key] = nxt.get(key, 0) | bit
        frontier = nxt
        if not frontier:
            return False
    full = (1 << n) - 1
    return bool(frontier.get(full, 0))
