"""Max flow / min s-t cut (Edmonds–Karp) on directed or undirected graphs.

Used by the Claim 5.11 nondeterministic protocols: the max-flow witness is
a feasible flow, the min-cut witness is a vertex bipartition; both are
checked against these exact computations.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.graphs import DiGraph, Graph, Vertex
from repro.solvers.cache import cached
from repro.obs.profile import profiled

AnyGraph = Union[Graph, DiGraph]


def _capacity_map(graph: AnyGraph) -> Dict[Tuple[Vertex, Vertex], float]:
    cap: Dict[Tuple[Vertex, Vertex], float] = {}
    if isinstance(graph, DiGraph):
        for u, v in graph.edges():
            cap[(u, v)] = cap.get((u, v), 0.0) + graph.edge_weight(u, v)
    else:
        for u, v in graph.edges():
            w = graph.edge_weight(u, v)
            cap[(u, v)] = cap.get((u, v), 0.0) + w
            cap[(v, u)] = cap.get((v, u), 0.0) + w
    return cap


@profiled
@cached
def max_flow(graph: AnyGraph, s: Vertex, t: Vertex) -> Tuple[float, Dict[Tuple[Vertex, Vertex], float]]:
    """Return ``(value, flow)`` of a maximum s-t flow.

    Edge weights are the capacities (default 1).  ``flow`` maps directed
    arcs to non-negative flow amounts.
    """
    if s == t:
        raise ValueError("source equals sink")
    cap = _capacity_map(graph)
    residual: Dict[Tuple[Vertex, Vertex], float] = dict(cap)
    adj: Dict[Vertex, Set[Vertex]] = {v: set() for v in graph.vertices()}
    for (u, v) in cap:
        adj[u].add(v)
        adj[v].add(u)  # residual back arcs

    def bfs_path() -> Optional[List[Vertex]]:
        parent: Dict[Vertex, Vertex] = {s: s}
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                if v not in parent and residual.get((u, v), 0.0) > 1e-12:
                    parent[v] = u
                    if v == t:
                        path = [t]
                        while path[-1] != s:
                            path.append(parent[path[-1]])
                        return path[::-1]
                    queue.append(v)
        return None

    value = 0.0
    while True:
        path = bfs_path()
        if path is None:
            break
        bottleneck = min(residual.get((u, v), 0.0)
                         for u, v in zip(path, path[1:]))
        for u, v in zip(path, path[1:]):
            residual[(u, v)] = residual.get((u, v), 0.0) - bottleneck
            residual[(v, u)] = residual.get((v, u), 0.0) + bottleneck
        value += bottleneck

    flow: Dict[Tuple[Vertex, Vertex], float] = {}
    for arc, c in cap.items():
        used = c - residual.get(arc, 0.0)
        if used > 1e-12:
            flow[arc] = used
    # cancel opposite flows on undirected edges for a clean witness
    for (u, v) in list(flow):
        if (v, u) in flow and flow.get((u, v), 0.0) > 0 and flow.get((v, u), 0.0) > 0:
            m = min(flow[(u, v)], flow[(v, u)])
            flow[(u, v)] -= m
            flow[(v, u)] -= m
    flow = {arc: f for arc, f in flow.items() if f > 1e-12}
    return value, flow


def min_st_cut(graph: AnyGraph, s: Vertex, t: Vertex) -> Tuple[float, Set[Vertex]]:
    """Return ``(value, S)`` with s ∈ S, t ∉ S, and cut capacity = value."""
    cap = _capacity_map(graph)
    value, flow = max_flow(graph, s, t)
    residual: Dict[Tuple[Vertex, Vertex], float] = dict(cap)
    for arc, f in flow.items():
        residual[arc] = residual.get(arc, 0.0) - f
        back = (arc[1], arc[0])
        residual[back] = residual.get(back, 0.0) + f
    adj: Dict[Vertex, Set[Vertex]] = {v: set() for v in graph.vertices()}
    for (u, v) in residual:
        adj.setdefault(u, set()).add(v)
    side = {s}
    queue = deque([s])
    while queue:
        u = queue.popleft()
        for v in adj.get(u, ()):
            if v not in side and residual.get((u, v), 0.0) > 1e-12:
                side.add(v)
                queue.append(v)
    assert t not in side
    return value, side
