"""Exact maximum (weight) independent set.

The solver is a branch-and-bound over bitmasks with three ingredients that
matter on the paper's instances:

- *component decomposition*: the bounded-degree graphs of Section 3 fall
  apart quickly once high-degree vertices are branched on;
- *greedy clique-cover upper bound*: the code-gadget graphs of Section 4.1
  and the row cliques of Section 2 are unions of large cliques, where a
  clique cover bound of "max weight per clique" is nearly tight;
- *weighted dominance reduction* for degree-≤1 vertices.

All weights must be non-negative.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Sequence, Set, Tuple

from repro.graphs import Graph, Vertex
from repro.solvers._bitmask import BitGraph, iter_bits, lowest_bit, popcount
from repro.solvers.cache import cached
from repro.obs.profile import profiled


def is_independent_set(graph: Graph, vs: Sequence[Vertex]) -> bool:
    """True iff no two vertices of ``vs`` are adjacent in ``graph``."""
    vs = list(vs)
    vset = set(vs)
    if len(vset) != len(vs):
        return False
    for v in vs:
        if graph.neighbors(v) & vset:
            return False
    return True


class _MisSolver:
    def __init__(self, bg: BitGraph) -> None:
        self.bg = bg
        self.best_weight = -1.0
        self.best_mask = 0

    # -- upper bound ---------------------------------------------------
    def _clique_cover_bound(self, mask: int) -> float:
        """Greedy clique cover: each clique contributes its max weight."""
        bg = self.bg
        bound = 0.0
        remaining = mask
        while remaining:
            i = lowest_bit(remaining)
            clique = 1 << i
            best_w = bg.weights[i]
            # grow a clique greedily among remaining vertices adjacent to
            # everything picked so far
            cands = remaining & bg.adj[i]
            while cands:
                j = lowest_bit(cands)
                clique |= 1 << j
                if bg.weights[j] > best_w:
                    best_w = bg.weights[j]
                cands &= bg.adj[j]
            bound += best_w
            remaining &= ~clique
        return bound

    # -- reductions ----------------------------------------------------
    def _reduce(self, mask: int, acc: int, acc_w: float) -> Tuple[int, int, float]:
        """Apply weighted degree-0/1 dominance reductions exhaustively."""
        bg = self.bg
        changed = True
        while changed:
            changed = False
            m = mask
            while m:
                i = lowest_bit(m)
                m &= m - 1
                if not (mask >> i) & 1:
                    continue  # removed earlier in this sweep
                nbrs = bg.adj[i] & mask
                if nbrs == 0:
                    if bg.weights[i] > 0:
                        acc |= 1 << i
                        acc_w += bg.weights[i]
                    mask &= ~(1 << i)
                    changed = True
                elif popcount(nbrs) == 1:
                    j = lowest_bit(nbrs)
                    if bg.weights[i] >= bg.weights[j]:
                        # taking i dominates taking j
                        acc |= 1 << i
                        acc_w += bg.weights[i]
                        mask &= ~((1 << i) | (1 << j))
                        changed = True
        return mask, acc, acc_w

    # -- search --------------------------------------------------------
    def solve(self, mask: int) -> Tuple[float, int]:
        """Return (best weight, best mask) of an MIS within ``mask``."""
        self._search(mask, 0, 0.0)
        return self.best_weight, self.best_mask

    def _search(self, mask: int, acc: int, acc_w: float) -> None:
        mask, acc, acc_w = self._reduce(mask, acc, acc_w)
        if mask == 0:
            if acc_w > self.best_weight:
                self.best_weight = acc_w
                self.best_mask = acc
            return
        if acc_w + self._clique_cover_bound(mask) <= self.best_weight:
            return
        # component decomposition
        comps = self._components(mask)
        if len(comps) > 1:
            total_w = acc_w
            total_mask = acc
            # solve each component independently (optimal per component)
            for comp in comps:
                sub = _MisSolver(self.bg)
                sub.best_weight = -1.0
                sub._search(comp, 0, 0.0)
                total_w += sub.best_weight
                total_mask |= sub.best_mask
            if total_w > self.best_weight:
                self.best_weight = total_w
                self.best_mask = total_mask
            return
        # branch on a maximum-degree vertex
        bg = self.bg
        pivot = -1
        pivot_deg = -1
        m = mask
        while m:
            i = lowest_bit(m)
            m &= m - 1
            d = popcount(bg.adj[i] & mask)
            if d > pivot_deg:
                pivot_deg = d
                pivot = i
        # include pivot
        self._search(mask & ~bg.closed(pivot), acc | (1 << pivot),
                     acc_w + bg.weights[pivot])
        # exclude pivot
        self._search(mask & ~(1 << pivot), acc, acc_w)

    def _components(self, mask: int) -> List[int]:
        comps = []
        remaining = mask
        while remaining:
            start = remaining & -remaining
            comp = start
            frontier = start
            while frontier:
                nxt = 0
                f = frontier
                while f:
                    i = lowest_bit(f)
                    f &= f - 1
                    nxt |= self.bg.adj[i] & mask & ~comp
                comp |= nxt
                frontier = nxt
            comps.append(comp)
            remaining &= ~comp
        return comps


@profiled
@cached
def max_independent_set(graph: Graph, weighted: bool = False) -> List[Vertex]:
    """Return a maximum (weight) independent set of ``graph``.

    With ``weighted=False`` every vertex counts 1 regardless of its stored
    weight; with ``weighted=True`` the stored vertex weights are used.
    """
    if graph.n == 0:
        return []
    bg = BitGraph(graph)
    if not weighted:
        bg.weights = [1.0] * bg.n
    for w in bg.weights:
        if w < 0:
            raise ValueError("negative vertex weights are not supported")
    solver = _MisSolver(bg)
    __, best_mask = solver.solve(bg.full_mask)
    return bg.unmask(best_mask)


class _SparseAlphaSolver:
    """Branch-and-reduce independence number for sparse unweighted graphs.

    Uses the classic kernelization rules — isolated/pendant vertices,
    triangle-degree-2 inclusion, and degree-2 *folding* — plus component
    decomposition and max-degree branching.  Folding is what makes the
    Section 3 bounded-degree graphs (hundreds of vertices, Δ ≤ 5)
    tractable; the bitmask solver above stays in charge of the dense
    weighted instances.
    """

    def __init__(self, adj: Dict[int, Set[int]]) -> None:
        self.adj = adj

    def solve(self) -> int:
        return self._alpha(self.adj)

    # adjacency dicts are treated as owned and destroyed
    def _alpha(self, adj: Dict[int, Set[int]]) -> int:
        acc = 0
        changed = True
        while changed:
            changed = False
            for v in list(adj):
                if v not in adj:
                    continue
                nbrs = adj[v]
                if len(nbrs) == 0:
                    self._remove(adj, v)
                    acc += 1
                    changed = True
                elif len(nbrs) == 1:
                    u = next(iter(nbrs))
                    self._remove_closed(adj, v)
                    acc += 1
                    changed = True
                elif len(nbrs) == 2:
                    u, w = tuple(nbrs)
                    if u in adj[w]:
                        # triangle: taking v is optimal
                        self._remove_closed(adj, v)
                        acc += 1
                    else:
                        self._fold(adj, v, u, w)
                        acc += 1
                    changed = True
        if not adj:
            return acc
        comps = self._components(adj)
        if len(comps) > 1:
            total = acc
            for comp in comps:
                sub = {v: adj[v] & comp for v in comp}
                total += self._alpha(sub)
            return total
        # branch on a maximum-degree vertex
        v = max(adj, key=lambda u: (len(adj[u]), -u))
        # include v
        with_v = self._copy_without(adj, adj[v] | {v})
        best = 1 + self._alpha(with_v)
        # exclude v: at least one neighbour of v is in some optimal MIS,
        # so if excluding v we may also require taking a neighbour later;
        # plain exclusion keeps correctness
        without_v = self._copy_without(adj, {v})
        best = max(best, self._alpha(without_v))
        return acc + best

    @staticmethod
    def _remove(adj: Dict[int, Set[int]], v: int) -> None:
        for u in adj[v]:
            adj[u].discard(v)
        del adj[v]

    def _remove_closed(self, adj: Dict[int, Set[int]], v: int) -> None:
        for u in list(adj[v]):
            self._remove(adj, u)
        self._remove(adj, v)

    def _fold(self, adj: Dict[int, Set[int]], v: int, u: int, w: int) -> None:
        """Degree-2 folding: contract {u, v, w} into v (α shifts by +1)."""
        new_nbrs = (adj[u] | adj[w]) - {u, v, w}
        self._remove(adj, u)
        self._remove(adj, w)
        # v keeps its label but acquires the union neighbourhood
        for x in adj[v]:
            adj[x].discard(v)
        adj[v] = set()
        for x in new_nbrs:
            adj[v].add(x)
            adj[x].add(v)

    @staticmethod
    def _copy_without(adj: Dict[int, Set[int]], drop: Set[int]) -> Dict[int, Set[int]]:
        return {v: (nbrs - drop) for v, nbrs in adj.items() if v not in drop}

    @staticmethod
    def _components(adj: Dict[int, Set[int]]) -> List[Set[int]]:
        comps = []
        remaining = set(adj)
        while remaining:
            start = next(iter(remaining))
            comp = {start}
            frontier = [start]
            while frontier:
                x = frontier.pop()
                for y in adj[x]:
                    if y not in comp:
                        comp.add(y)
                        frontier.append(y)
            comps.append(comp)
            remaining -= comp
        return comps


@cached
def independence_number(graph: Graph) -> int:
    """α(G) for unweighted graphs, via branch-and-reduce with folding.

    Much faster than :func:`max_independent_set` on large sparse graphs
    (the Section 3 constructions); returns only the number.
    """
    if graph.n == 0:
        return 0
    index = {v: i for i, v in enumerate(graph.vertices())}
    adj: Dict[int, Set[int]] = {i: set() for i in range(graph.n)}
    for u, v in graph.edges():
        adj[index[u]].add(index[v])
        adj[index[v]].add(index[u])
    return _SparseAlphaSolver(adj).solve()


def max_independent_set_weight(graph: Graph, weighted: bool = True) -> float:
    """Weight (or size, for ``weighted=False``) of a maximum independent set."""
    mis = max_independent_set(graph, weighted=weighted)
    if weighted:
        return sum(graph.vertex_weight(v) for v in mis)
    return float(len(mis))
