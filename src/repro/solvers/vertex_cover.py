"""Exact minimum vertex cover via complementation of maximum independent set."""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.graphs import Graph, Vertex
from repro.solvers.mis import max_independent_set


def is_vertex_cover(graph: Graph, vs: Sequence[Vertex]) -> bool:
    """True iff every edge of ``graph`` has an endpoint in ``vs``."""
    cover: Set[Vertex] = set(vs)
    return all(u in cover or v in cover for u, v in graph.edges())


def min_vertex_cover(graph: Graph) -> List[Vertex]:
    """A minimum cardinality vertex cover (complement of a maximum IS)."""
    mis = set(max_independent_set(graph, weighted=False))
    return [v for v in graph.vertices() if v not in mis]


def min_vertex_cover_size(graph: Graph) -> int:
    return len(min_vertex_cover(graph))
