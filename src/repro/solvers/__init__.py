"""Exact combinatorial solvers used to verify the lower-bound families.

Every construction in the paper is carried by a lemma of the form
"Gx,y satisfies predicate P iff DISJ(x,y) = FALSE".  The solvers here
compute the relevant optimum exactly on real instances so that those
lemmas can be checked rather than assumed.  They are exponential-time in
general (the predicates are NP-hard) but engineered to handle the
instance sizes our experiments use.
"""

from repro.solvers.cache import (
    CacheStats,
    SolverCache,
    cache_stats,
    cached,
    canonical_repr,
    clear_cache,
    configure as configure_cache,
    default_cache_dir,
    reset_cache_stats,
)
from repro.solvers.mis import (
    max_independent_set,
    max_independent_set_weight,
    independence_number,
    is_independent_set,
)
from repro.solvers.vertex_cover import (
    min_vertex_cover,
    min_vertex_cover_size,
    is_vertex_cover,
)
from repro.solvers.dominating import (
    min_dominating_set,
    min_dominating_set_weight,
    min_k_dominating_set_weight,
    has_dominating_set_of_size,
    is_dominating_set,
    min_set_cover,
)
from repro.solvers.maxcut import max_cut, max_cut_value, cut_weight
from repro.solvers.hamilton import (
    find_hamiltonian_path,
    find_hamiltonian_cycle,
    has_hamiltonian_path,
    has_hamiltonian_cycle,
    held_karp_has_path,
    is_hamiltonian_path,
    is_hamiltonian_cycle,
)
from repro.solvers.steiner import (
    steiner_tree,
    steiner_tree_cost,
    is_steiner_tree,
)
from repro.solvers.twoecss import (
    is_two_edge_connected,
    min_two_ecss_edges,
    has_two_ecss_with_edges,
    bridges,
)
from repro.solvers.matching import (
    max_matching,
    max_matching_size,
    tutte_berge_witness,
    tutte_berge_value,
)
from repro.solvers.flow import max_flow, min_st_cut
from repro.solvers.distance import dijkstra, weighted_distance
from repro.solvers.maxsat import max_sat_value, max_sat_assignment
from repro.solvers.spanner import (
    min_two_spanner,
    min_two_spanner_cost,
    is_two_spanner,
)

__all__ = [
    "CacheStats",
    "SolverCache",
    "cache_stats",
    "cached",
    "canonical_repr",
    "clear_cache",
    "configure_cache",
    "default_cache_dir",
    "reset_cache_stats",
    "max_independent_set",
    "max_independent_set_weight",
    "independence_number",
    "is_independent_set",
    "min_vertex_cover",
    "min_vertex_cover_size",
    "is_vertex_cover",
    "min_dominating_set",
    "min_dominating_set_weight",
    "min_k_dominating_set_weight",
    "has_dominating_set_of_size",
    "is_dominating_set",
    "min_set_cover",
    "max_cut",
    "max_cut_value",
    "cut_weight",
    "find_hamiltonian_path",
    "find_hamiltonian_cycle",
    "has_hamiltonian_path",
    "has_hamiltonian_cycle",
    "held_karp_has_path",
    "is_hamiltonian_path",
    "is_hamiltonian_cycle",
    "steiner_tree",
    "steiner_tree_cost",
    "is_steiner_tree",
    "is_two_edge_connected",
    "min_two_ecss_edges",
    "has_two_ecss_with_edges",
    "bridges",
    "max_matching",
    "max_matching_size",
    "tutte_berge_witness",
    "tutte_berge_value",
    "max_flow",
    "min_st_cut",
    "dijkstra",
    "weighted_distance",
    "max_sat_value",
    "max_sat_assignment",
    "min_two_spanner",
    "min_two_spanner_cost",
    "is_two_spanner",
]
