"""Maximum cardinality matching and Tutte–Berge witnesses.

The matching itself uses networkx's blossom implementation (a verified
standard component); what the paper needs on top of it — and what we build
here — is the *Tutte–Berge witness* used by the proof labeling scheme of
Claim 5.12: a set U with  ν(G) = (n + |U| − odd(G − U)) / 2, obtained from
the Gallai–Edmonds decomposition.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.graphs import Graph, Vertex
from repro.solvers.cache import cached
from repro.obs.profile import profiled


@profiled
@cached
def max_matching(graph: Graph) -> List[Tuple[Vertex, Vertex]]:
    """A maximum cardinality matching."""
    import networkx as nx

    nxg = graph.to_networkx()
    matching = nx.max_weight_matching(nxg, maxcardinality=True, weight=None)
    return [tuple(e) for e in matching]


def max_matching_size(graph: Graph) -> int:
    return len(max_matching(graph))


def _odd_components(graph: Graph, removed: Set[Vertex]) -> int:
    rest = [v for v in graph.vertices() if v not in removed]
    sub = graph.induced_subgraph(rest)
    return sum(1 for comp in sub.connected_components() if len(comp) % 2 == 1)


def tutte_berge_value(graph: Graph, witness: Sequence[Vertex]) -> int:
    """The matching upper bound (n + |U| − odd(G−U)) / 2 for U=``witness``.

    By the Tutte–Berge formula ν(G) ≤ this value for every U, with
    equality for some U.
    """
    u_set = set(witness)
    n = graph.n
    return (n + len(u_set) - _odd_components(graph, u_set)) // 2


@profiled
@cached
def tutte_berge_witness(graph: Graph) -> List[Vertex]:
    """A set U achieving equality in the Tutte–Berge formula.

    Uses the Gallai–Edmonds decomposition: D = vertices missed by some
    maximum matching, A = N(D) \\ D; then U = A is tight.  D is found by
    |V| extra matching computations (fine at test scale).
    """
    nu = max_matching_size(graph)
    d_set = []
    for v in graph.vertices():
        rest = [u for u in graph.vertices() if u != v]
        if max_matching_size(graph.induced_subgraph(rest)) == nu:
            # some maximum matching misses v
            d_set.append(v)
    d = set(d_set)
    a = set()
    for v in d:
        a.update(graph.neighbors(v) - d)
    witness = list(a)
    assert tutte_berge_value(graph, witness) == nu, (
        "Gallai-Edmonds witness is not tight")
    return witness
