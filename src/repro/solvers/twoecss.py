"""2-edge-connectivity and minimum 2-edge-connected spanning subgraph.

Claim 2.7 of the paper: a graph on n vertices has a 2-edge-connected
spanning subgraph with exactly n edges iff it has a Hamiltonian cycle.
``has_two_ecss_with_edges`` exploits that for the n-edge case and falls
back to subset enumeration otherwise, which is also what
``min_two_ecss_edges`` uses on small graphs.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Sequence, Set, Tuple

from repro.graphs import Graph, Vertex
from repro.solvers.cache import cached
from repro.solvers.hamilton import has_hamiltonian_cycle


def bridges(graph: Graph) -> List[Tuple[Vertex, Vertex]]:
    """All bridge edges, via the classic low-link DFS."""
    disc = {}
    low = {}
    out = []
    counter = [0]

    def dfs(root: Vertex) -> None:
        stack = [(root, None, iter(graph.neighbors(root)))]
        disc[root] = low[root] = counter[0]
        counter[0] += 1
        while stack:
            v, parent, it = stack[-1]
            advanced = False
            for w in it:
                if w not in disc:
                    disc[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append((w, v, iter(graph.neighbors(w))))
                    advanced = True
                    break
                if w != parent:
                    low[v] = min(low[v], disc[w])
            if not advanced:
                stack.pop()
                if parent is not None:
                    low[parent] = min(low[parent], low[v])
                    if low[v] > disc[parent]:
                        out.append((parent, v))

    for v in graph.vertices():
        if v not in disc:
            dfs(v)
    return out


def is_two_edge_connected(graph: Graph) -> bool:
    """Connected, spanning, and bridgeless."""
    if graph.n < 2:
        return False
    return graph.is_connected() and not bridges(graph)


def has_two_ecss_with_edges(graph: Graph, n_edges: int) -> bool:
    """Decide whether a 2-edge-connected spanning subgraph with exactly
    ``n_edges`` edges exists.

    For ``n_edges == n`` this is Hamiltonicity (Claim 2.7); other budgets
    enumerate edge subsets and are only meant for small instances.
    """
    n = graph.n
    if n_edges < n:
        return False  # 2-edge-connected spanning needs min degree 2
    if n_edges > graph.m:
        return False
    if n_edges == n:
        return has_hamiltonian_cycle(graph)
    return _subset_search(graph, n_edges) is not None


@cached
def min_two_ecss_edges(graph: Graph, limit_edges: int = 18) -> Optional[int]:
    """Minimum number of edges of a 2-ECSS, by subset enumeration.

    Only for small graphs (``graph.m`` ≤ ``limit_edges``); returns None if
    the graph has no 2-edge-connected spanning subgraph at all.
    """
    if graph.m > limit_edges:
        raise ValueError("min_two_ecss_edges is exponential; graph too large")
    if not is_two_edge_connected(graph):
        return None
    for size in range(graph.n, graph.m + 1):
        if _subset_search(graph, size) is not None:
            return size
    return None


def _subset_search(graph: Graph, size: int) -> Optional[List[Tuple[Vertex, Vertex]]]:
    edges = graph.edges()
    vertices = graph.vertices()
    for subset in combinations(edges, size):
        sub = Graph()
        sub.add_vertices(vertices)
        for u, v in subset:
            sub.add_edge(u, v)
        if min(sub.degree(v) for v in vertices) < 2:
            continue
        if is_two_edge_connected(sub):
            return list(subset)
    return None
