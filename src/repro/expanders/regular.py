"""3-regular expanders with a computed (not assumed) expansion certificate.

Claim 3.2 cites the explicit recursive construction of Ajtai [2].  We
substitute deterministic seeded search over random cubic graphs and
*certify* each instance spectrally: for a d-regular graph with adjacency
second eigenvalue λ₂, the edge expansion satisfies h(G) ≥ (d − λ₂)/2
(Cheeger), and the vertex expansion c ≥ h/d.  The search retries seeds
until the certificate clears the requested threshold, so downstream code
never relies on an unverified expander.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graphs import Graph


def spectral_expansion(graph: Graph, degree: int = 3) -> float:
    """Certified vertex expansion from the spectral gap.

    Returns c such that every S with |S| ≤ n/2 has |N(S) \\ S| ≥ c·|S|.
    """
    import networkx as nx

    nxg = graph.to_networkx()
    n = nxg.number_of_nodes()
    adj = nx.to_numpy_array(nxg)
    eigs = np.linalg.eigvalsh(adj)
    lambda2 = float(sorted(eigs)[-2]) if n >= 2 else 0.0
    edge_expansion = max(0.0, (degree - lambda2) / 2.0)
    return edge_expansion / degree


def certified_cubic_expander(n: int, min_expansion: float = 0.1,
                             seed: int = 0, max_tries: int = 200,
                             ) -> Tuple[Graph, float]:
    """A connected 3-regular graph on ``n`` vertices (n even, n ≥ 4) with
    certified vertex expansion ≥ ``min_expansion``.

    Deterministic given ``seed``: seeds are tried in order until the
    spectral certificate clears the threshold.
    """
    import networkx as nx

    if n % 2 or n < 4:
        raise ValueError("3-regular graphs need an even n >= 4")
    for attempt in range(max_tries):
        nxg = nx.random_regular_graph(3, n, seed=seed + attempt)
        if not nx.is_connected(nxg):
            continue
        g = Graph()
        for u, v in nxg.edges():
            g.add_edge(("x", u), ("x", v))
        c = spectral_expansion(g, degree=3)
        if c >= min_expansion:
            return g, c
    raise RuntimeError(
        f"no cubic expander with expansion {min_expansion} found in "
        f"{max_tries} seeds at n={n}")
