"""The Claim 3.2 gadget G_d.

Properties (all *verified*, not assumed):

- Θ(d) vertices, maximum degree 4, diameter O(log d);
- a set D of d distinguished vertices of degree ≤ 2;
- for every cut (S, S̄), the number of crossing edges is at least
  min(|D ∩ S|, |D ∩ S̄|).

For d ≤ 5 a d-cycle (d ≤ 2: an edge / a single vertex) already satisfies
every property, and is used directly.  For larger d we follow the
paper's shape — a full binary tree per distinguished vertex, leaves tied
together by a certified cubic expander — and then *verify* the cut
property: by LP duality it fails iff some equal-size disjoint pair
P, Q ⊆ D has a P–Q edge cut smaller than |P|, which is checked with
max-flow over all pairs (exact, d ≤ 9) or a large random sample.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.expanders.regular import certified_cubic_expander
from repro.graphs import Graph, Vertex
from repro.solvers.flow import max_flow


@dataclass
class ExpanderGadget:
    """G_d plus its distinguished vertex list, in order."""

    graph: Graph
    distinguished: List[Vertex]
    expansion_certificate: float = 0.0
    cut_property_verified: str = field(default="none")

    @property
    def d(self) -> int:
        return len(self.distinguished)


def _cycle_gadget(d: int) -> ExpanderGadget:
    g = Graph()
    dist = [("D", i) for i in range(d)]
    if d == 1:
        g.add_vertex(dist[0])
    elif d == 2:
        g.add_edge(dist[0], dist[1])
    else:
        for i in range(d):
            g.add_edge(dist[i], dist[(i + 1) % d])
    return ExpanderGadget(graph=g, distinguished=dist,
                          expansion_certificate=1.0,
                          cut_property_verified="structural(cycle,d<=5)")


def _tree_expander_gadget(d: int, leaves_per_tree: int, seed: int) -> ExpanderGadget:
    g = Graph()
    dist = [("D", i) for i in range(d)]
    leaf_labels: List[Vertex] = []
    for i in range(d):
        # full binary tree with `leaves_per_tree` leaves, rooted at D_i
        level = [dist[i]]
        width = 1
        j = 0
        while width < leaves_per_tree:
            nxt = []
            for v in level:
                for b in (0, 1):
                    child = ("T", i, j, b)
                    g.add_edge(v, child)
                    nxt.append(child)
                j += 1
            level = nxt
            width *= 2
        leaf_labels.extend(level)
    n_leaves = len(leaf_labels)
    if n_leaves % 2:
        raise ValueError("leaf count must be even for a cubic expander")
    expander, c = certified_cubic_expander(n_leaves, min_expansion=0.01,
                                           seed=seed)
    ex_vertices = sorted(expander.vertices())
    relabel = dict(zip(ex_vertices, leaf_labels))
    for u, v in expander.edges():
        g.add_edge(relabel[u], relabel[v])
    return ExpanderGadget(graph=g, distinguished=dist,
                          expansion_certificate=c)


def verify_cut_property_exact(gadget: ExpanderGadget) -> bool:
    """Exact check via max-flow over all disjoint equal-size pairs P, Q.

    The property "every cut has ≥ min(|D∩S|, |D∩S̄|) crossing edges"
    fails iff some disjoint P, Q ⊆ D with |P| = |Q| = p admit a P–Q edge
    cut below p, i.e. maxflow(P, Q) < p with unit capacities.
    """
    d = gadget.d
    dist = gadget.distinguished
    for p in range(1, d // 2 + 1):
        for P in itertools.combinations(range(d), p):
            rest = [i for i in range(d) if i not in P]
            for Q in itertools.combinations(rest, p):
                if not _flow_at_least(gadget.graph, [dist[i] for i in P],
                                      [dist[i] for i in Q], p):
                    return False
    return True


def _flow_at_least(graph: Graph, sources: List[Vertex], sinks: List[Vertex],
                   target: int) -> bool:
    g = graph.copy()
    big = graph.n * 10
    g.add_vertex("SRC")
    g.add_vertex("SNK")
    for s in sources:
        g.add_edge("SRC", s, weight=big)
    for t in sinks:
        g.add_edge(t, "SNK", weight=big)
    value, __ = max_flow(g, "SRC", "SNK")
    return value >= target - 1e-9


def _verify_cut_property_sampled(gadget: ExpanderGadget, rng: random.Random,
                                 samples: int = 300) -> bool:
    d = gadget.d
    dist = gadget.distinguished
    for __ in range(samples):
        p = rng.randint(1, d // 2)
        idx = rng.sample(range(d), 2 * p)
        P = [dist[i] for i in idx[:p]]
        Q = [dist[i] for i in idx[p:]]
        if not _flow_at_least(gadget.graph, P, Q, p):
            return False
    return True


def build_gadget(d: int, seed: int = 0, max_tries: int = 50,
                 exact_limit: int = 9) -> ExpanderGadget:
    """Construct a verified G_d (Claim 3.2)."""
    if d < 1:
        raise ValueError("d must be positive")
    if d <= 5:
        return _cycle_gadget(d)
    rng = random.Random(seed)
    for attempt in range(max_tries):
        gadget = _tree_expander_gadget(d, leaves_per_tree=2,
                                       seed=seed + 1000 * attempt)
        if d <= exact_limit:
            if verify_cut_property_exact(gadget):
                gadget.cut_property_verified = "exact(flow)"
                return gadget
        else:
            if _verify_cut_property_sampled(gadget, rng):
                gadget.cut_property_verified = "sampled(flow)"
                return gadget
    raise RuntimeError(f"no gadget with the cut property found for d={d}")
