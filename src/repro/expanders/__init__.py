"""Bounded-degree expander gadgets (Claim 3.2)."""

from repro.expanders.regular import certified_cubic_expander, spectral_expansion
from repro.expanders.gadget import (
    ExpanderGadget,
    build_gadget,
    verify_cut_property_exact,
)

__all__ = [
    "certified_cubic_expander",
    "spectral_expansion",
    "ExpanderGadget",
    "build_gadget",
    "verify_cut_property_exact",
]
