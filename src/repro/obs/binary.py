"""Compact binary trace format (``.rtb``) for simulator event streams.

JSONL traces cost one JSON dict per message event — far too much to
watch the scaled-up engine at work.  This module defines a versioned,
struct-packed binary record format that is both much faster to write
(one precompiled :mod:`struct` pack per event instead of a dict build
plus ``json.dumps``) and much smaller on disk (a compact message record
is 9 bytes versus ~80 bytes of JSON), plus an mmap-backed streaming
reader that yields :class:`~repro.obs.trace.TraceEvent` records lazily
and never materialises the full trace.

File layout
-----------
``MAGIC`` (8 bytes, version in the last byte) followed by *frames*.
Each frame is a u32-LE payload length followed by that many bytes of
records.  Frames always end on record boundaries, so a partially
written file — a killed worker, a full disk — is readable up to the
last complete frame: the reader stops when fewer bytes remain than the
frame header promises.  :class:`BinaryTracer` seals a frame whenever
its buffer reaches ``frame_bytes`` and on every ``run_end`` event (so
completed runs are durable even if the process dies before ``close``).

Record vocabulary (all little-endian, no padding)
-------------------------------------------------
==== ============== ==================================================
code record         layout after the 1-byte code
==== ============== ==================================================
0    run_start      u32 round, u32 n, u32 edges, f64 bandwidth,
                    u32 algorithm string id
1    round_start    u32 round, u32 active
2    message        u16 round, u16 sender, u16 receiver, u16 bits
     (compact)      (implies ``ok=True``; all fields < 2**16)
3    halt           u32 round, u32 uid
4    round_end      u32 round, u32 messages, u64 bits, u32 halted
5    run_end        u32 round, u32 rounds, u64 total_messages,
                    u64 total_bits, u32 max_message_bits
6    message (wide) u32 round, u32 sender, u32 receiver, u64 bits,
                    u8 ok
7    intern         u32 string id, u16 byte length, UTF-8 bytes
                    (ids are assigned sequentially from 0; an intern
                    record always precedes the first record using it)
8    generic        u32 round, u32 kind string id, u32 byte length,
                    UTF-8 JSON object (the event's ``data`` dict)
9    blob           u32 byte length, UTF-8 JSON of the whole flattened
                    event (absolute fallback, e.g. negative rounds)
==== ============== ==================================================

Versioning rules: the last magic byte is the format version.  Within a
version, new record codes may be *added*; existing layouts never
change.  A reader seeing an unknown magic or record code raises
:class:`TraceFormatError` rather than guessing.

The six standard event kinds are implied by their record codes; only
algorithm names and non-standard kinds go through the string table.
``bandwidth`` is stored as f64 (it may be ``math.inf`` for the LOCAL
model) and decoded back to ``int`` when integral, so round-tripped
events compare equal to the originals.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
from typing import Any, IO, Iterator, List, Optional, Union

from repro.obs.trace import TraceEvent, TracerBase

__all__ = [
    "MAGIC",
    "BINARY_SUFFIX",
    "BinaryTracer",
    "TraceFormatError",
    "iter_binary_trace",
    "convert_trace",
    "sniff_format",
]

#: File magic; the final byte is the format version.
MAGIC = b"RPROTRC\x01"

#: Canonical file extension for binary traces.
BINARY_SUFFIX = ".rtb"

_FRAME = struct.Struct("<I")           # frame payload byte length
_RUN_START = struct.Struct("<BIIIdI")  # code, round, n, edges, bw, alg id
_ROUND_START = struct.Struct("<BII")   # code, round, active
_MSG_COMPACT = struct.Struct("<BHHHH")  # code, round, sender, receiver, bits
_HALT = struct.Struct("<BII")          # code, round, uid
_ROUND_END = struct.Struct("<BIIQI")   # code, round, messages, bits, halted
_RUN_END = struct.Struct("<BIIQQI")    # code, round, rounds, msgs, bits, max
_MSG_WIDE = struct.Struct("<BIIIQB")   # code, round, sender, receiver,
                                       # bits, ok
_INTERN = struct.Struct("<BIH")        # code, string id, byte length
_GENERIC = struct.Struct("<BIII")      # code, round, kind id, byte length
_BLOB = struct.Struct("<BI")           # code, byte length


class TraceFormatError(ValueError):
    """The bytes are not a binary trace this reader understands."""


class _NeedWide(Exception):
    """Internal: the compact message layout cannot hold this event."""


class BinaryTracer(TracerBase):
    """Streams events to ``path`` (or an open binary file) in the
    framed record format described in the module docstring.

    Frames are sealed at ``frame_bytes`` and on every ``run_end``
    event; ``close`` (guaranteed on exceptions via
    ``TracerBase.__exit__``) seals the trailing frame, so a trace is
    readable up to the last completed run even if the writing process
    was killed mid-run.
    """

    def __init__(self, path_or_file: Any, frame_bytes: int = 1 << 16) -> None:
        if hasattr(path_or_file, "write"):
            self.path: Optional[str] = getattr(path_or_file, "name", None)
            self._file: IO[bytes] = path_or_file
            self._owns = False
        else:
            self.path = os.fspath(path_or_file)
            self._file = open(self.path, "wb")
            self._owns = True
        self._frame_bytes = frame_bytes
        self._buf = bytearray()
        self._strings: dict = {}
        self._file.write(MAGIC)

    # -- encoding --------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        buf = self._buf
        kind = event.kind
        d = event.data
        try:
            if kind == "message" and len(d) == 4:
                try:
                    if d["ok"] is not True:
                        raise _NeedWide
                    buf += _MSG_COMPACT.pack(2, event.round, d["sender"],
                                             d["receiver"], d["bits"])
                except (_NeedWide, struct.error):
                    buf += _MSG_WIDE.pack(6, event.round, d["sender"],
                                          d["receiver"], d["bits"],
                                          1 if d["ok"] else 0)
            elif kind == "round_start" and len(d) == 1:
                buf += _ROUND_START.pack(1, event.round, d["active"])
            elif kind == "halt" and len(d) == 1:
                buf += _HALT.pack(3, event.round, d["uid"])
            elif kind == "round_end" and len(d) == 3:
                buf += _ROUND_END.pack(4, event.round, d["messages"],
                                       d["bits"], d["halted"])
            elif kind == "run_start" and len(d) == 4:
                buf += _RUN_START.pack(0, event.round, d["n"], d["edges"],
                                       d["bandwidth"],
                                       self._intern(d["algorithm"]))
            elif kind == "run_end" and len(d) == 4:
                buf += _RUN_END.pack(5, event.round, d["rounds"],
                                     d["total_messages"], d["total_bits"],
                                     d["max_message_bits"])
                self.flush()  # completed runs are durable on disk
                return
            else:
                self._emit_generic(event)
        except (KeyError, TypeError, ValueError, struct.error):
            self._emit_generic(event)
        if len(buf) >= self._frame_bytes:
            self._seal_frame()

    def _intern(self, s: str) -> int:
        sid = self._strings.get(s)
        if sid is None:
            raw = s.encode("utf-8")
            if len(raw) > 0xFFFF:
                raise ValueError("string too long to intern")
            sid = self._strings[s] = len(self._strings)
            self._buf += _INTERN.pack(7, sid, len(raw))
            self._buf += raw
        return sid

    def _emit_generic(self, event: TraceEvent) -> None:
        try:
            kid = self._intern(event.kind)
            payload = json.dumps(event.data, sort_keys=True,
                                 default=repr).encode("utf-8")
            self._buf += _GENERIC.pack(8, event.round, kid, len(payload))
            self._buf += payload
        except (TypeError, ValueError, struct.error):
            blob = event.to_json().encode("utf-8")
            self._buf += _BLOB.pack(9, len(blob))
            self._buf += blob

    # -- framing ---------------------------------------------------------
    def _seal_frame(self) -> None:
        if self._buf:
            self._file.write(_FRAME.pack(len(self._buf)))
            self._file.write(self._buf)
            self._buf.clear()

    def flush(self) -> None:
        self._seal_frame()
        self._file.flush()

    def close(self) -> None:
        self.flush()
        if self._owns and not self._file.closed:
            self._file.close()


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
def _decode_frame(view: Any, pos: int, end: int,
                  strings: List[str]) -> Iterator[TraceEvent]:
    """Decode the records of one complete frame.  ``strings`` is the
    cross-frame intern table (mutated in place)."""
    while pos < end:
        code = view[pos]
        if code == 2:
            __, rnd, s, r, b = _MSG_COMPACT.unpack_from(view, pos)
            pos += _MSG_COMPACT.size
            yield TraceEvent("message", rnd,
                             {"sender": s, "receiver": r, "bits": b,
                              "ok": True})
        elif code == 6:
            __, rnd, s, r, b, ok = _MSG_WIDE.unpack_from(view, pos)
            pos += _MSG_WIDE.size
            yield TraceEvent("message", rnd,
                             {"sender": s, "receiver": r, "bits": b,
                              "ok": bool(ok)})
        elif code == 1:
            __, rnd, active = _ROUND_START.unpack_from(view, pos)
            pos += _ROUND_START.size
            yield TraceEvent("round_start", rnd, {"active": active})
        elif code == 3:
            __, rnd, uid = _HALT.unpack_from(view, pos)
            pos += _HALT.size
            yield TraceEvent("halt", rnd, {"uid": uid})
        elif code == 4:
            __, rnd, msgs, bits, halted = _ROUND_END.unpack_from(view, pos)
            pos += _ROUND_END.size
            yield TraceEvent("round_end", rnd,
                             {"messages": msgs, "bits": bits,
                              "halted": halted})
        elif code == 0:
            __, rnd, n, m, bw, aid = _RUN_START.unpack_from(view, pos)
            pos += _RUN_START.size
            if bw.is_integer():
                bw = int(bw)
            yield TraceEvent("run_start", rnd,
                             {"n": n, "edges": m, "bandwidth": bw,
                              "algorithm": strings[aid]})
        elif code == 5:
            __, rnd, rounds, tm, tb, mmb = _RUN_END.unpack_from(view, pos)
            pos += _RUN_END.size
            yield TraceEvent("run_end", rnd,
                             {"rounds": rounds, "total_messages": tm,
                              "total_bits": tb, "max_message_bits": mmb})
        elif code == 7:
            __, sid, ln = _INTERN.unpack_from(view, pos)
            pos += _INTERN.size
            if sid != len(strings):
                raise TraceFormatError(
                    f"intern id {sid} out of sequence "
                    f"(table has {len(strings)} entries)")
            strings.append(bytes(view[pos:pos + ln]).decode("utf-8"))
            pos += ln
        elif code == 8:
            __, rnd, kid, ln = _GENERIC.unpack_from(view, pos)
            pos += _GENERIC.size
            data = json.loads(bytes(view[pos:pos + ln]).decode("utf-8"))
            pos += ln
            yield TraceEvent(strings[kid], rnd, data)
        elif code == 9:
            __, ln = _BLOB.unpack_from(view, pos)
            pos += _BLOB.size
            yield TraceEvent.from_json(
                bytes(view[pos:pos + ln]).decode("utf-8"))
            pos += ln
        else:
            raise TraceFormatError(f"unknown record code {code}")


def _iter_buffer(view: Any) -> Iterator[TraceEvent]:
    size = len(view)
    if size < len(MAGIC) or bytes(view[:len(MAGIC)]) != MAGIC:
        raise TraceFormatError("not a binary trace (bad magic bytes)")
    strings: List[str] = []
    pos = len(MAGIC)
    while pos + _FRAME.size <= size:
        (length,) = _FRAME.unpack_from(view, pos)
        pos += _FRAME.size
        if pos + length > size:
            break  # truncated trailing frame: stop at the last whole one
        yield from _decode_frame(view, pos, pos + length, strings)
        pos += length


def iter_binary_trace(
        path_or_file: Union[str, os.PathLike, IO[bytes]],
) -> Iterator[TraceEvent]:
    """Lazily yield the events of a binary trace.

    Paths are mmap-ed, so rendering a report from a multi-million-event
    trace touches pages on demand and never materialises the event
    list; binary-mode file objects are read into memory (they may not
    be mmap-able).  A file whose final frame was cut short — a killed
    worker — yields every event of the complete frames and stops.
    """
    if hasattr(path_or_file, "read"):
        data = path_or_file.read()
        if isinstance(data, str):
            raise TraceFormatError(
                "binary traces must be opened in binary mode")
        yield from _iter_buffer(memoryview(data))
        return
    fh = open(os.fspath(path_or_file), "rb")
    try:
        try:
            mm: Any = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):  # empty or unmappable file
            yield from _iter_buffer(memoryview(fh.read()))
            return
        view = memoryview(mm)
        try:
            yield from _iter_buffer(view)
        finally:
            view.release()
            mm.close()
    finally:
        fh.close()


def convert_trace(src: Union[str, os.PathLike],
                  dst: Union[str, os.PathLike],
                  fmt: Optional[str] = None) -> str:
    """Convert a trace between the JSONL and binary formats.

    The source format is auto-detected by magic bytes; the output
    format is ``fmt`` (``"jsonl"`` or ``"binary"``) or, when ``None``,
    inferred from ``dst``'s extension (``.jsonl``/``.json`` → JSONL,
    anything else → binary).  Streaming on both sides: constant memory
    regardless of trace size.  Returns ``dst``.
    """
    from repro.obs.trace import iter_trace, open_tracer

    with open_tracer(dst, fmt=fmt) as tracer:
        for event in iter_trace(src):
            tracer.emit(event)
    return os.fspath(dst)


def sniff_format(path: Union[str, os.PathLike]) -> str:
    """``"binary"`` or ``"jsonl"``, decided by the file's magic bytes."""
    with open(os.fspath(path), "rb") as fh:
        head = fh.read(len(MAGIC))
    return "binary" if head == MAGIC else "jsonl"
