"""Lightweight wall-clock / call-count profiling.

The exact solvers are the local-computation cost of every experiment;
``@profiled`` wraps their entry points with a perf-counter timer feeding
a process-global registry.  The experiment runner snapshots the registry
around each experiment and surfaces the result through
``ExperimentRecord.measured`` — so "which solver dominated this
experiment's runtime" is a recorded quantity, not a guess.

Times are *cumulative* (a profiled function calling another profiled
function charges both), which matches how the solvers nest: entry points
are profiled, their internal branch-and-bound recursion is not.
"""

from __future__ import annotations

import functools
import math
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, TypeVar

F = TypeVar("F", bound=Callable[..., Any])


@dataclass
class ProfileStat:
    """Accumulated calls and wall-clock seconds for one profiled name."""

    calls: int = 0
    seconds: float = 0.0

    def add(self, elapsed: float) -> None:
        self.calls += 1
        self.seconds += elapsed

    def copy(self) -> "ProfileStat":
        return ProfileStat(self.calls, self.seconds)


_STATS: Dict[str, ProfileStat] = {}


def _record(name: str, elapsed: float) -> None:
    stat = _STATS.get(name)
    if stat is None:
        stat = _STATS[name] = ProfileStat()
    stat.add(elapsed)


def profiled(fn: Optional[F] = None, *, name: Optional[str] = None):
    """Decorator recording call count and wall time under ``name``
    (default ``module.qualname`` with the package prefix stripped)."""

    def wrap(func: F) -> F:
        label = name
        if label is None:
            mod = func.__module__.rsplit(".", 1)[-1]
            label = f"{mod}.{func.__qualname__}"

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            start = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                _record(label, time.perf_counter() - start)

        wrapper.__profiled_name__ = label  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    if fn is not None:
        return wrap(fn)
    return wrap


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 100]) —
    deterministic, no interpolation, so reported p50/p95 values are
    always observed samples."""
    if not samples:
        raise ValueError("percentile of an empty sample set")
    ordered = sorted(samples)
    rank = int(math.ceil(q / 100.0 * len(ordered))) - 1
    return ordered[max(0, min(len(ordered) - 1, rank))]


@contextmanager
def profile_block(name: str) -> Iterator[None]:
    """Context-manager form of :func:`profiled` for ad-hoc regions."""
    start = time.perf_counter()
    try:
        yield
    finally:
        _record(name, time.perf_counter() - start)


def profile_stats() -> Dict[str, ProfileStat]:
    """Snapshot of the global registry (copies; safe to keep)."""
    return {name: stat.copy() for name, stat in _STATS.items()}


def reset_profile_stats() -> None:
    _STATS.clear()


def diff_profile(before: Dict[str, ProfileStat],
                 after: Dict[str, ProfileStat]) -> Dict[str, ProfileStat]:
    """Per-name delta ``after - before`` (only names with new calls)."""
    out: Dict[str, ProfileStat] = {}
    for name, stat in after.items():
        prev = before.get(name, ProfileStat())
        calls = stat.calls - prev.calls
        if calls > 0:
            out[name] = ProfileStat(calls, stat.seconds - prev.seconds)
    return out


def top_profile(stats: Optional[Dict[str, ProfileStat]] = None,
                top: int = 5) -> List[Tuple[str, ProfileStat]]:
    """The ``top`` hottest names by cumulative seconds."""
    stats = profile_stats() if stats is None else stats
    ranked = sorted(stats.items(), key=lambda kv: -kv[1].seconds)
    return ranked[:top]


def format_profile(stats: Optional[Dict[str, ProfileStat]] = None,
                   top: int = 5) -> str:
    """Compact one-line rendering, e.g.
    ``mis.max_independent_set x12 0.034s; maxcut.max_cut x3 0.010s``."""
    entries = top_profile(stats, top)
    return "; ".join(f"{name} x{s.calls} {s.seconds:.3f}s"
                     for name, s in entries)


# ----------------------------------------------------------------------
# solver-cache counters (owned by repro.solvers.cache; surfaced here so
# the experiment runner reports hits/misses next to the time profile)
# ----------------------------------------------------------------------
def solver_cache_stats() -> Dict[str, "CacheStats"]:
    """Snapshot of the solver memoization hit/miss counters."""
    from repro.solvers.cache import cache_stats
    return cache_stats()


def diff_cache_stats(before: Dict[str, "CacheStats"],
                     after: Dict[str, "CacheStats"]) -> Dict[str, "CacheStats"]:
    """Per-solver delta ``after - before`` (only solvers with activity)."""
    from repro.solvers.cache import CacheStats
    out: Dict[str, CacheStats] = {}
    for name, stat in after.items():
        prev = before.get(name, CacheStats())
        hits = stat.hits - prev.hits
        misses = stat.misses - prev.misses
        if hits > 0 or misses > 0:
            out[name] = CacheStats(hits, misses,
                                   stat.disk_hits - prev.disk_hits)
    return out


def format_cache_stats(stats: Dict[str, "CacheStats"]) -> str:
    """Compact rendering, e.g. ``maxcut.max_cut 3h/1m``: hits/misses
    per solver, sorted by total activity."""
    ranked = sorted(stats.items(),
                    key=lambda kv: -(kv[1].hits + kv[1].misses))
    return "; ".join(f"{name} {s.hits}h/{s.misses}m" for name, s in ranked)


# ----------------------------------------------------------------------
# warm-pool counters (owned by repro.experiments.warm_pool; surfaced
# here so campaign tooling reports payload/broadcast economics next to
# the solver-cache numbers)
# ----------------------------------------------------------------------
def warm_pool_stats() -> Dict[str, int]:
    """Snapshot of the persistent warm worker pool's cumulative
    counters (broadcasts, payload bytes, warm hits, lane respawns);
    all zeros when no pool has been created."""
    from repro.experiments.warm_pool import pool_stats
    return pool_stats()


def format_warm_pool_stats(stats: Dict[str, int]) -> str:
    """Compact one-line rendering of :func:`warm_pool_stats`."""
    pairs = stats.get("pairs_shipped", 0)
    per_pair = (stats.get("pair_payload_bytes", 0) / pairs) if pairs else 0.0
    return (f"lanes={stats.get('lanes', 0)} "
            f"broadcasts={stats.get('broadcasts', 0)} "
            f"({stats.get('broadcast_bytes', 0)}B"
            f"{', shm' if stats.get('shm_segments', 0) else ''}) "
            f"pairs={pairs} ({per_pair:.1f}B/pair) "
            f"warm_hits={stats.get('warm_hits', 0)} "
            f"kernel={stats.get('kernel_batched', 0)} "
            f"({stats.get('kernel_state_hits', 0)}h/"
            f"{stats.get('kernel_state_misses', 0)}m state) "
            f"respawns={stats.get('lane_respawns', 0)}")
