"""Observability: structured tracing, metric aggregation, cut-bit
accounting, and lightweight profiling for the CONGEST simulator, the
two-party protocols, and the exact solvers.

Three layers:

- :mod:`repro.obs.trace` — the event stream.  ``CongestSimulator``
  emits :class:`TraceEvent` records (round boundaries, every message
  with sender/receiver/bits, halts, bandwidth-check outcomes) into any
  :class:`Tracer`; :class:`NullTracer` makes the disabled path free.
- :mod:`repro.obs.binary` — the compact binary trace format
  (:class:`BinaryTracer` writer, mmap-backed streaming reader,
  jsonl↔binary converter); :func:`iter_trace`/:func:`read_trace`
  auto-detect either format by magic bytes.
- :mod:`repro.obs.metrics` — aggregation.  :class:`Metrics` builds
  per-round and per-edge histograms; :class:`CutBitCounter` counts the
  bits crossing an Alice/Bob bipartition, the Theorem 1.1 quantity.
- :mod:`repro.obs.profile` — wall-clock/call-count hooks on the exact
  solvers, surfaced through ``ExperimentRecord.measured``.

``repro report trace <trace>`` renders a trace into a round-by-round
summary; ``repro report bench``/``repro report fuzz`` render the bench
trajectory and fuzz artifacts (see :mod:`repro.obs.report`).
"""

from repro.obs.trace import (
    JsonlTracer,
    MultiTracer,
    NullTracer,
    ObserverTracer,
    RecordingTracer,
    TraceEvent,
    Tracer,
    TracerBase,
    default_tracer,
    iter_trace,
    open_tracer,
    read_trace,
    trace_to_directory,
)
from repro.obs.binary import (
    BinaryTracer,
    TraceFormatError,
    convert_trace,
    iter_binary_trace,
    sniff_format,
)
from repro.obs.metrics import (
    CutBitCounter,
    EdgeStats,
    Metrics,
    RoundStats,
    cut_bits_from_events,
)
from repro.obs.profile import (
    ProfileStat,
    diff_cache_stats,
    diff_profile,
    format_cache_stats,
    format_warm_pool_stats,
    format_profile,
    profile_block,
    profile_stats,
    profiled,
    reset_profile_stats,
    solver_cache_stats,
    warm_pool_stats,
    top_profile,
)
from repro.obs.report import (
    render_bench_report,
    render_fuzz_report,
    render_report,
    select_run,
)

__all__ = [
    "TraceEvent",
    "Tracer",
    "TracerBase",
    "NullTracer",
    "RecordingTracer",
    "JsonlTracer",
    "BinaryTracer",
    "MultiTracer",
    "ObserverTracer",
    "TraceFormatError",
    "default_tracer",
    "open_tracer",
    "iter_trace",
    "iter_binary_trace",
    "read_trace",
    "convert_trace",
    "sniff_format",
    "trace_to_directory",
    "Metrics",
    "RoundStats",
    "EdgeStats",
    "CutBitCounter",
    "cut_bits_from_events",
    "ProfileStat",
    "profiled",
    "profile_block",
    "profile_stats",
    "reset_profile_stats",
    "diff_profile",
    "top_profile",
    "format_profile",
    "solver_cache_stats",
    "warm_pool_stats",
    "diff_cache_stats",
    "format_cache_stats",
    "format_warm_pool_stats",
    "render_report",
    "select_run",
    "render_bench_report",
    "render_fuzz_report",
]
