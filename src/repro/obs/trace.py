"""Structured tracing for the CONGEST simulator.

The simulator emits a small, stable vocabulary of :class:`TraceEvent`
records; tracers are pluggable sinks.  The layer is designed so that the
*disabled* case costs nothing measurable: :class:`NullTracer` advertises
``enabled = False`` and the simulator skips event construction entirely,
keeping the hot message path identical to an untraced run.

Event vocabulary
----------------
========== ============================================================
kind        data payload
========== ============================================================
run_start   ``n``, ``edges`` (undirected), ``bandwidth``, ``algorithm``
round_start ``active`` (vertices not yet halted)
message     ``sender``, ``receiver``, ``bits``, ``ok`` (bandwidth check)
halt        ``uid``
round_end   ``messages``, ``bits``, ``halted`` (cumulative)
run_end     ``rounds``, ``total_messages``, ``total_bits``,
            ``max_message_bits``
========== ============================================================

``message`` events carry ``round == 0`` for messages produced by
``on_start`` (they are delivered in round 1, matching the simulator's
round accounting).
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, IO, Iterable, Iterator, List, Optional, Sequence,
)

try:  # Protocol is typing-only sugar; runtime never isinstance-checks it
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - python < 3.8
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


@dataclass(frozen=True)
class TraceEvent:
    """One structured simulator event.

    ``round`` is the simulator's round counter at emission time (0 for
    the ``on_start`` phase); ``data`` is the kind-specific payload.
    """

    kind: str
    round: int
    data: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        flat = {"kind": self.kind, "round": self.round}
        flat.update(self.data)
        return json.dumps(flat, sort_keys=True, default=repr)

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        flat = json.loads(line)
        kind = flat.pop("kind")
        rnd = flat.pop("round")
        return cls(kind=kind, round=rnd, data=flat)


@runtime_checkable
class Tracer(Protocol):
    """Sink for simulator events.  ``enabled = False`` tells the emitter
    to skip event construction altogether."""

    enabled: bool

    def emit(self, event: TraceEvent) -> None: ...

    def flush(self) -> None: ...

    def close(self) -> None: ...


class TracerBase:
    """Convenience base: enabled, with no-op ``flush``/``close``."""

    enabled = True

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "TracerBase":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class NullTracer(TracerBase):
    """Discards everything; ``enabled = False`` so emitters skip even
    the event construction — an untraced run and a ``NullTracer`` run
    execute the same instructions on the message hot path."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:
        pass


class RecordingTracer(TracerBase):
    """Keeps every event in memory, for tests and the Metrics layer."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def events_of(self, *kinds: str) -> List[TraceEvent]:
        want = set(kinds)
        return [e for e in self.events if e.kind in want]


class JsonlTracer(TracerBase):
    """Streams events as JSON lines to ``path`` (or an open file).

    The file is flushed on every ``run_end`` event, so traces from a
    process killed between runs (timed-out fork-pool workers) keep
    every completed run on disk.
    """

    def __init__(self, path_or_file: Any) -> None:
        if hasattr(path_or_file, "write"):
            self.path: Optional[str] = getattr(path_or_file, "name", None)
            self._file: IO[str] = path_or_file
            self._owns = False
        else:
            self.path = os.fspath(path_or_file)
            self._file = open(self.path, "w", encoding="utf-8")
            self._owns = True

    def emit(self, event: TraceEvent) -> None:
        self._file.write(event.to_json())
        self._file.write("\n")
        if event.kind == "run_end":
            self.flush()

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self.flush()
        if self._owns and not self._file.closed:
            self._file.close()


class MultiTracer(TracerBase):
    """Fans events out to several tracers (disabled ones are dropped)."""

    def __init__(self, tracers: Sequence[Tracer]) -> None:
        self.tracers = [t for t in tracers
                        if t is not None and getattr(t, "enabled", True)]
        self.enabled = bool(self.tracers)

    def emit(self, event: TraceEvent) -> None:
        for t in self.tracers:
            t.emit(event)

    def flush(self) -> None:
        for t in self.tracers:
            t.flush()

    def close(self) -> None:
        for t in self.tracers:
            t.close()


class ObserverTracer(TracerBase):
    """Adapter presenting the legacy ``CongestSimulator.observer``
    callback ``(sender uid, receiver uid, bits)`` as a tracer, so the
    old interface rides on the event stream."""

    def __init__(self, callback: Callable[[int, int, int], None]) -> None:
        self.callback = callback

    def emit(self, event: TraceEvent) -> None:
        if event.kind == "message":
            d = event.data
            self.callback(d["sender"], d["receiver"], d["bits"])


def open_tracer(path: Any, fmt: Optional[str] = None) -> "TracerBase":
    """Construct a file tracer for ``path``.

    ``fmt`` is ``"jsonl"``, ``"binary"``, or ``None`` to infer from the
    extension (``.jsonl``/``.json`` → JSONL, anything else → the
    compact binary format of :mod:`repro.obs.binary`).
    """
    if fmt is None:
        fmt = "jsonl" if str(path).endswith((".jsonl", ".json")) \
            else "binary"
    if fmt == "jsonl":
        return JsonlTracer(path)
    if fmt == "binary":
        from repro.obs.binary import BinaryTracer
        return BinaryTracer(path)
    raise ValueError(f"unknown trace format {fmt!r}; "
                     "expected 'jsonl' or 'binary'")


def iter_trace(path_or_file: Any) -> Iterator[TraceEvent]:
    """Lazily yield the events of a trace in either format.

    The format is auto-detected by magic bytes: binary traces (see
    :mod:`repro.obs.binary`) are streamed through an mmap-backed
    reader, everything else is parsed as JSON lines.  File objects in
    binary mode are sniffed the same way; text-mode file objects (and
    any other iterable of lines) are treated as JSONL for backward
    compatibility.  One pass, O(1) memory in the trace length.
    """
    from repro.obs.binary import MAGIC, _iter_buffer

    if hasattr(path_or_file, "read"):
        probe = path_or_file.read(0)
        if isinstance(probe, bytes):
            data = path_or_file.read()
            if data[:len(MAGIC)] == MAGIC:
                yield from _iter_buffer(memoryview(data))
            else:
                for ln in data.decode("utf-8").splitlines():
                    if ln.strip():
                        yield TraceEvent.from_json(ln)
        else:
            for ln in path_or_file:
                if ln.strip():
                    yield TraceEvent.from_json(ln)
        return
    path = os.fspath(path_or_file)
    with open(path, "rb") as fh:
        head = fh.read(len(MAGIC))
    if head == MAGIC:
        from repro.obs.binary import iter_binary_trace
        yield from iter_binary_trace(path)
        return
    with open(path, "r", encoding="utf-8") as fh:
        for ln in fh:
            if ln.strip():
                yield TraceEvent.from_json(ln)


def read_trace(path_or_file: Any) -> List[TraceEvent]:
    """Load a whole trace (JSONL or binary, auto-detected) as a list.

    Prefer :func:`iter_trace` for large traces — it streams; this
    materialises every event.
    """
    return list(iter_trace(path_or_file))


# ----------------------------------------------------------------------
# Ambient default tracer: lets callers like the experiment runner turn
# tracing on for whole code regions without threading a tracer through
# every simulator construction site.
# ----------------------------------------------------------------------
class _TraceDirectory:
    def __init__(self, directory: str, prefix: str,
                 fmt: str = "binary") -> None:
        if fmt not in ("jsonl", "binary"):
            raise ValueError(f"unknown trace format {fmt!r}; "
                             "expected 'jsonl' or 'binary'")
        self.directory = directory
        self.prefix = prefix
        self.fmt = fmt
        self.seq = 0
        self.tracers: List[TracerBase] = []

    def new_tracer(self) -> TracerBase:
        self.seq += 1
        suffix = ".jsonl" if self.fmt == "jsonl" else ".rtb"
        path = os.path.join(self.directory,
                            f"{self.prefix}-{self.seq:04d}{suffix}")
        tracer = open_tracer(path, fmt=self.fmt)
        self.tracers.append(tracer)
        return tracer

    def close(self) -> None:
        for t in self.tracers:
            t.close()


_ACTIVE_TRACE_DIR: Optional[_TraceDirectory] = None


def default_tracer() -> Optional[Tracer]:
    """The tracer a simulator should use when none is passed explicitly
    (one fresh trace file per simulator inside an active
    :func:`trace_to_directory` region; ``None`` otherwise)."""
    if _ACTIVE_TRACE_DIR is None:
        return None
    return _ACTIVE_TRACE_DIR.new_tracer()


@contextmanager
def trace_to_directory(directory: str,
                       prefix: str = "trace",
                       fmt: str = "binary") -> Iterator[str]:
    """Every simulator constructed inside the ``with`` block writes its
    events to ``directory/<prefix>-NNNN.rtb`` (compact binary, the
    default) or ``…-NNNN.jsonl`` with ``fmt="jsonl"``.  Yields the
    directory."""
    global _ACTIVE_TRACE_DIR
    os.makedirs(directory, exist_ok=True)
    previous = _ACTIVE_TRACE_DIR
    _ACTIVE_TRACE_DIR = _TraceDirectory(directory, prefix, fmt=fmt)
    try:
        yield directory
    finally:
        _ACTIVE_TRACE_DIR.close()
        _ACTIVE_TRACE_DIR = previous
