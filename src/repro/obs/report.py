"""Render a simulator trace into a round-by-round summary.

Consumed by the ``repro report`` CLI subcommand; also usable directly::

    from repro.obs import read_trace, render_report
    print(render_report(read_trace("trace-0001.jsonl")))

The output is GitHub-flavoured markdown (which doubles as an ASCII
table in a terminal): a header with the run parameters, a per-round
table, and the busiest directed edges.  Pass ``alice_uids`` to add the
Theorem 1.1 cut-bit column.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.obs.metrics import CutBitCounter, Metrics, cut_bits_from_events
from repro.obs.trace import TraceEvent, read_trace

__all__ = ["render_report", "read_trace"]


def _fmt_util(value: Optional[float]) -> str:
    return "—" if value is None else f"{100.0 * value:.1f}%"


def render_report(events: Sequence[TraceEvent],
                  alice_uids: Optional[Iterable[int]] = None,
                  top_edges: int = 5) -> str:
    """Markdown/ASCII summary of one trace (see module docstring)."""
    metrics = Metrics.from_events(events)
    cut: Optional[CutBitCounter] = None
    if alice_uids is not None:
        cut = cut_bits_from_events(events, alice_uids)

    lines: List[str] = ["# CONGEST trace report", ""]
    summary = metrics.summary()
    n_runs = sum(1 for e in events if e.kind == "run_start")
    if n_runs > 1:
        lines.append(f"- **note**: trace contains {n_runs} runs; the "
                     "tables below aggregate all of them")
    lines.append(f"- algorithm: `{summary['algorithm'] or '?'}`")
    lines.append(f"- n = {summary['n']}, m = {summary['edges']}, "
                 f"bandwidth = {summary['bandwidth']} bits/edge/round")
    lines.append(f"- rounds = {summary['rounds']}, "
                 f"messages = {summary['total_messages']}, "
                 f"bits = {summary['total_bits']}")
    mean_util = summary["mean_round_utilization"]
    if mean_util is not None:
        lines.append(f"- mean bandwidth utilization = {_fmt_util(mean_util)}")
    if cut is not None:
        lines.append(f"- cut bits = {cut.cut_bits} "
                     f"({cut.cut_messages} cut messages, "
                     f"|Alice| = {len(cut.alice)})")
    lines.append("")

    header = "| round | active | msgs | bits | cum bits | util |"
    rule = "|---|---|---|---|---|---|"
    if cut is not None:
        header += " cut bits |"
        rule += "---|"
    lines.extend(["## Rounds", "", header, rule])
    cumulative = 0
    for rnd in metrics.round_numbers():
        rs = metrics.per_round[rnd]
        cumulative += rs.bits
        active = "—" if rs.active is None else str(rs.active)
        row = (f"| {rnd} | {active} | {rs.messages} | {rs.bits} "
               f"| {cumulative} | {_fmt_util(metrics.round_utilization(rnd))} |")
        if cut is not None:
            row += f" {cut.bits_by_round.get(rnd, 0)} |"
        lines.append(row)
    lines.append("")

    busiest = metrics.busiest_edges(top_edges)
    if busiest:
        lines.extend([
            "## Busiest directed edges", "",
            "| edge (uid → uid) | msgs | bits | peak round bits | peak util |",
            "|---|---|---|---|---|",
        ])
        for es in busiest:
            util = _fmt_util(metrics.edge_utilization(es.edge))
            lines.append(f"| {es.edge[0]} → {es.edge[1]} | {es.messages} "
                         f"| {es.bits} | {es.peak_round_bits} | {util} |")
        lines.append("")
    return "\n".join(lines)
