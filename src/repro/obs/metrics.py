"""Metric aggregation over simulator trace events.

:class:`Metrics` is itself a tracer, so it can aggregate online
(``CongestSimulator(g, tracer=Metrics())``) or be rebuilt offline from
any recorded/loaded event stream via :meth:`Metrics.from_events`.

:class:`CutBitCounter` specialises the same idea to the Theorem 1.1
accounting: given the Alice side of a vertex bipartition it counts, per
round, the bits carried by messages whose endpoints lie on opposite
sides of the cut — exactly the quantity ``cc/alice_bob.py`` charges the
two-party protocol for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.obs.trace import TraceEvent, TracerBase

DirectedEdge = Tuple[int, int]


@dataclass
class RoundStats:
    """Aggregates for one simulator round."""

    round: int
    messages: int = 0
    bits: int = 0
    active: Optional[int] = None   # vertices not yet halted at round start
    halts: int = 0
    max_message_bits: int = 0


@dataclass
class EdgeStats:
    """Aggregates for one *directed* edge (sender uid, receiver uid)."""

    edge: DirectedEdge
    messages: int = 0
    bits: int = 0
    peak_round_bits: int = 0       # most bits this edge carried in a round
    _current_round: int = field(default=-1, repr=False)
    _current_bits: int = field(default=0, repr=False)

    def add(self, round_no: int, bits: int) -> None:
        self.messages += 1
        self.bits += bits
        if round_no != self._current_round:
            self._current_round = round_no
            self._current_bits = 0
        self._current_bits += bits
        self.peak_round_bits = max(self.peak_round_bits, self._current_bits)


class Metrics(TracerBase):
    """Per-round and per-edge histograms derived from the event stream."""

    def __init__(self) -> None:
        self.n: Optional[int] = None
        self.edges: Optional[int] = None
        self.bandwidth: Optional[float] = None
        self.algorithm: Optional[str] = None
        self.rounds = 0
        self.total_messages = 0
        self.total_bits = 0
        self.per_round: Dict[int, RoundStats] = {}
        self.per_edge: Dict[DirectedEdge, EdgeStats] = {}

    # -- tracer interface ------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        kind, rnd, d = event.kind, event.round, event.data
        if kind == "run_start":
            self.n = d.get("n")
            self.edges = d.get("edges")
            self.bandwidth = d.get("bandwidth")
            self.algorithm = d.get("algorithm")
        elif kind == "round_start":
            self._round(rnd).active = d.get("active")
        elif kind == "message":
            bits = d["bits"]
            rs = self._round(rnd)
            rs.messages += 1
            rs.bits += bits
            rs.max_message_bits = max(rs.max_message_bits, bits)
            self.total_messages += 1
            self.total_bits += bits
            edge = (d["sender"], d["receiver"])
            es = self.per_edge.get(edge)
            if es is None:
                es = self.per_edge[edge] = EdgeStats(edge)
            es.add(rnd, bits)
        elif kind == "halt":
            self._round(rnd).halts += 1
        elif kind == "run_end":
            self.rounds = d.get("rounds", rnd)

    def _round(self, rnd: int) -> RoundStats:
        rs = self.per_round.get(rnd)
        if rs is None:
            rs = self.per_round[rnd] = RoundStats(rnd)
        return rs

    def consume(self, events: Iterable[TraceEvent]) -> "Metrics":
        """Feed any event iterable through :meth:`emit` — one pass,
        O(rounds + edges) memory, so a lazy ``iter_trace`` stream over a
        multi-million-event binary trace aggregates without ever being
        materialised.  Returns ``self``."""
        emit = self.emit
        for event in events:
            emit(event)
        return self

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent]) -> "Metrics":
        return cls().consume(events)

    # -- derived histograms ---------------------------------------------
    def round_numbers(self) -> List[int]:
        return sorted(self.per_round)

    def round_utilization(self, rnd: int) -> Optional[float]:
        """Fraction of the network's total round capacity
        ``2 · m · bandwidth`` actually used in ``rnd`` (``None`` when the
        capacity is unknown or unbounded)."""
        bw, m = self.bandwidth, self.edges
        if not bw or not m or not math.isfinite(bw):
            return None
        return self.per_round[rnd].bits / (2.0 * m * bw)

    def edge_utilization(self, edge: DirectedEdge) -> Optional[float]:
        """Peak single-round bits on ``edge`` over the bandwidth."""
        bw = self.bandwidth
        if not bw or not math.isfinite(bw):
            return None
        return self.per_edge[edge].peak_round_bits / bw

    def busiest_edges(self, top: int = 5) -> List[EdgeStats]:
        ranked = sorted(self.per_edge.values(),
                        key=lambda e: (-e.bits, e.edge))
        return ranked[:top]

    def active_vertex_counts(self) -> Dict[int, Optional[int]]:
        return {rnd: rs.active for rnd, rs in sorted(self.per_round.items())}

    def message_size_histogram(self) -> Dict[int, int]:
        """Histogram of per-round *maximum* message sizes (bits)."""
        hist: Dict[int, int] = {}
        for rs in self.per_round.values():
            if rs.messages:
                hist[rs.max_message_bits] = hist.get(rs.max_message_bits, 0) + 1
        return hist

    def summary(self) -> Dict[str, Any]:
        utils = [u for rnd in self.round_numbers()
                 if (u := self.round_utilization(rnd)) is not None]
        return {
            "n": self.n,
            "edges": self.edges,
            "bandwidth": self.bandwidth,
            "algorithm": self.algorithm,
            "rounds": self.rounds,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
            "peak_round_bits": max(
                (rs.bits for rs in self.per_round.values()), default=0),
            "mean_round_utilization":
                (sum(utils) / len(utils)) if utils else None,
        }


class CutBitCounter(TracerBase):
    """Counts bits crossing a fixed vertex bipartition, per round.

    ``alice_uids`` is one side of the cut (simulator uids); a message
    counts iff exactly one endpoint is in it.  ``cut_bits`` then equals
    the communication Theorem 1.1 charges the two-party protocol.
    """

    def __init__(self, alice_uids: Iterable[int]) -> None:
        self.alice: Set[int] = set(alice_uids)
        self.cut_bits = 0
        self.cut_messages = 0
        self.bits_by_round: Dict[int, int] = {}
        self.messages_by_round: Dict[int, int] = {}

    def emit(self, event: TraceEvent) -> None:
        if event.kind != "message":
            return
        d = event.data
        if (d["sender"] in self.alice) == (d["receiver"] in self.alice):
            return
        bits = d["bits"]
        rnd = event.round
        self.cut_bits += bits
        self.cut_messages += 1
        self.bits_by_round[rnd] = self.bits_by_round.get(rnd, 0) + bits
        self.messages_by_round[rnd] = self.messages_by_round.get(rnd, 0) + 1

    def consume(self, events: Iterable[TraceEvent]) -> "CutBitCounter":
        """One-pass aggregation over any event iterable (O(rounds)
        memory); returns ``self``."""
        emit = self.emit
        for event in events:
            emit(event)
        return self


def cut_bits_from_events(events: Iterable[TraceEvent],
                         alice_uids: Iterable[int]) -> CutBitCounter:
    """Replay ``events`` through a :class:`CutBitCounter` (offline use:
    recorded traces, files streamed with ``iter_trace`` or loaded with
    ``read_trace``)."""
    return CutBitCounter(alice_uids).consume(events)
