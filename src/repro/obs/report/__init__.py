"""The ``repro report`` studio: one view module per artifact kind.

- :mod:`repro.obs.report.trace_view` — round-by-round summary of a
  simulator trace (JSONL or compact binary), streaming.
- :mod:`repro.obs.report.bench_view` — p50-per-SHA bench trajectory
  from ``BENCH_simulator.json``, with the delta/regression arithmetic
  shared with ``benchmarks/record.py``.
- :mod:`repro.obs.report.fuzz_view` — summary of a
  ``repro check --report-dir`` artifact directory.
"""

from repro.obs.report.bench_view import (
    DEFAULT_TOLERANCE,
    BenchHistoryError,
    bench_delta,
    bench_rows,
    format_entry,
    latest_entry,
    load_bench_history,
    render_bench_report,
)
from repro.obs.report.fuzz_view import load_fuzz_report, render_fuzz_report
from repro.obs.report.trace_view import read_trace, render_report, select_run

__all__ = [
    "render_report",
    "select_run",
    "read_trace",
    "DEFAULT_TOLERANCE",
    "BenchHistoryError",
    "load_bench_history",
    "latest_entry",
    "bench_delta",
    "bench_rows",
    "format_entry",
    "render_bench_report",
    "load_fuzz_report",
    "render_fuzz_report",
]
