"""Render a simulator trace into a round-by-round summary.

Consumed by the ``repro report trace`` CLI subcommand; also usable
directly::

    from repro.obs import iter_trace, render_report
    print(render_report(iter_trace("trace-0001.rtb")))

The renderer is single-pass and streaming: it accepts **any** event
iterable (a list, a ``RecordingTracer.events``, or a lazy
``iter_trace`` generator over a multi-million-event binary trace) and
aggregates through :class:`Metrics`/:class:`CutBitCounter` in
O(rounds + edges) memory — the events are never materialised.

The output is GitHub-flavoured markdown (which doubles as an ASCII
table in a terminal): a header with the run parameters, a per-round
table, and the busiest directed edges.  Pass ``alice_uids`` to add the
Theorem 1.1 cut-bit column.  Multi-run traces render a one-line run
index; pass ``run=N`` (CLI: ``--run N``) to restrict the report to the
N-th run (1-based).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.obs.metrics import CutBitCounter, Metrics
from repro.obs.trace import TraceEvent, read_trace

__all__ = ["render_report", "select_run", "read_trace"]


def _fmt_util(value: Optional[float]) -> str:
    return "—" if value is None else f"{100.0 * value:.1f}%"


def select_run(events: Iterable[TraceEvent],
               run: int) -> Iterator[TraceEvent]:
    """Yield only the events of the ``run``-th run (1-based) — the
    events from its ``run_start`` up to (excluding) the next one.
    Lazy: stops reading the underlying stream once the run ends."""
    if run < 1:
        raise ValueError(f"run numbers are 1-based, got {run}")
    current = 0
    for event in events:
        if event.kind == "run_start":
            current += 1
            if current > run:
                return
        if current == run:
            yield event


def render_report(events: Iterable[TraceEvent],
                  alice_uids: Optional[Iterable[int]] = None,
                  top_edges: int = 5,
                  run: Optional[int] = None) -> str:
    """Markdown/ASCII summary of one trace (see module docstring).

    Raises :class:`ValueError` when the iterable yields no events
    (empty trace, or ``run`` beyond the last run in the trace).
    """
    if run is not None:
        events = select_run(events, run)
    metrics = Metrics()
    cut: Optional[CutBitCounter] = None
    if alice_uids is not None:
        cut = CutBitCounter(alice_uids)
    runs: List[Dict[str, Any]] = []
    n_events = 0
    for event in events:
        n_events += 1
        kind = event.kind
        if kind == "run_start":
            runs.append({"algorithm": event.data.get("algorithm"),
                         "n": event.data.get("n"), "rounds": None})
        elif kind == "run_end" and runs:
            runs[-1]["rounds"] = event.data.get("rounds")
        metrics.emit(event)
        if cut is not None:
            cut.emit(event)
    if n_events == 0:
        raise ValueError("trace contains no events"
                         + (f" for run {run}" if run is not None else ""))

    lines: List[str] = ["# CONGEST trace report", ""]
    summary = metrics.summary()
    if run is not None:
        lines.append(f"- showing run {run} only")
    elif len(runs) > 1:
        index = " · ".join(
            f"{i}: {r['algorithm'] or '?'} (n={r['n']}, "
            f"rounds={r['rounds'] if r['rounds'] is not None else '?'})"
            for i, r in enumerate(runs, start=1))
        lines.append(f"- **note**: trace contains {len(runs)} runs; the "
                     "tables below aggregate all of them "
                     "(select one with `--run N`)")
        lines.append(f"- runs: {index}")
    lines.append(f"- algorithm: `{summary['algorithm'] or '?'}`")
    lines.append(f"- n = {summary['n']}, m = {summary['edges']}, "
                 f"bandwidth = {summary['bandwidth']} bits/edge/round")
    lines.append(f"- rounds = {summary['rounds']}, "
                 f"messages = {summary['total_messages']}, "
                 f"bits = {summary['total_bits']}")
    mean_util = summary["mean_round_utilization"]
    if mean_util is not None:
        lines.append(f"- mean bandwidth utilization = {_fmt_util(mean_util)}")
    if cut is not None:
        lines.append(f"- cut bits = {cut.cut_bits} "
                     f"({cut.cut_messages} cut messages, "
                     f"|Alice| = {len(cut.alice)})")
    lines.append("")

    header = "| round | active | msgs | bits | cum bits | util |"
    rule = "|---|---|---|---|---|---|"
    if cut is not None:
        header += " cut bits |"
        rule += "---|"
    lines.extend(["## Rounds", "", header, rule])
    cumulative = 0
    for rnd in metrics.round_numbers():
        rs = metrics.per_round[rnd]
        cumulative += rs.bits
        active = "—" if rs.active is None else str(rs.active)
        row = (f"| {rnd} | {active} | {rs.messages} | {rs.bits} "
               f"| {cumulative} | {_fmt_util(metrics.round_utilization(rnd))} |")
        if cut is not None:
            row += f" {cut.bits_by_round.get(rnd, 0)} |"
        lines.append(row)
    lines.append("")

    busiest = metrics.busiest_edges(top_edges)
    if busiest:
        lines.extend([
            "## Busiest directed edges", "",
            "| edge (uid → uid) | msgs | bits | peak round bits | peak util |",
            "|---|---|---|---|---|",
        ])
        for es in busiest:
            util = _fmt_util(metrics.edge_utilization(es.edge))
            lines.append(f"| {es.edge[0]} → {es.edge[1]} | {es.messages} "
                         f"| {es.bits} | {es.peak_round_bits} | {util} |")
        lines.append("")
    return "\n".join(lines)
