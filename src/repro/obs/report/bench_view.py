"""Bench-trajectory view over ``BENCH_simulator.json``.

``benchmarks/record.py`` appends one ``{sha, date, p50_ms, min_ms,
reps}`` entry per bench per ``--update`` run; this module turns that
history into the ``repro report bench`` markdown table and supplies
the shared delta/regression arithmetic that ``record.py --compare``
and the CI regression gate use, so the CLI view and the gate can never
disagree about what counts as a regression.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "DEFAULT_TOLERANCE",
    "BenchHistoryError",
    "load_bench_history",
    "latest_entry",
    "bench_delta",
    "bench_rows",
    "format_entry",
    "render_bench_report",
]

#: Fractional p50 growth beyond which a bench counts as regressed —
#: the same tolerance ``benchmarks/record.py`` fails CI on.
DEFAULT_TOLERANCE = 0.25

History = Dict[str, List[Dict[str, Any]]]


class BenchHistoryError(ValueError):
    """A bench-history file exists but cannot be read as a history
    (empty, truncated — e.g. a killed recorder — or the wrong JSON
    shape).  Callers turn this into a one-line nonzero exit instead of
    a raw traceback."""


def load_bench_history(path: Any) -> History:
    """Load a ``BENCH_simulator.json`` history ({} when absent).

    Raises :class:`BenchHistoryError` when the file exists but is not
    a valid ``{bench name: [entries...]}`` JSON document.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        return {}
    try:
        with open(path) as fh:
            history = json.load(fh)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise BenchHistoryError(
            f"bench history {path} is not valid JSON "
            f"(empty or truncated recorder output?): {exc}") from exc
    if not isinstance(history, dict) or not all(
            isinstance(v, list) for v in history.values()):
        raise BenchHistoryError(
            f"bench history {path} has the wrong shape: expected "
            f"{{bench name: [entries...]}}")
    return history


def latest_entry(history: History, name: str) -> Dict[str, Any]:
    """The most recent recorded entry for ``name`` ({} when none)."""
    entries = history.get(name) or []
    return entries[-1] if entries else {}


def bench_delta(previous: Dict[str, Any],
                current: Dict[str, Any]) -> Optional[float]:
    """Fractional p50 change between two entries (None when either
    side is missing its p50)."""
    prev_p50 = previous.get("p50_ms")
    cur_p50 = current.get("p50_ms")
    if not prev_p50 or cur_p50 is None:
        return None
    return (cur_p50 - prev_p50) / prev_p50


def format_entry(entry: Dict[str, Any]) -> str:
    """``162.3ms@c16c231`` — how an entry prints in tables (entries
    recorded with a tail percentile add ``/p95``, e.g.
    ``162.3ms/171.0@c16c231``)."""
    if not entry:
        return "-"
    p95 = entry.get("p95_ms")
    tail = f"/{p95}" if p95 is not None else ""
    return f"{entry.get('p50_ms', '?')}ms{tail}@{entry.get('sha', '?')}"


def bench_rows(history: History,
               names: Optional[Sequence[str]] = None,
               tolerance: float = DEFAULT_TOLERANCE) -> List[Dict[str, Any]]:
    """One row per bench: latest entry, the one before it, the delta
    between them, and the regression flag at ``tolerance``.

    ``names`` restricts and orders the rows (default: every bench in
    the history, sorted).
    """
    rows: List[Dict[str, Any]] = []
    for name in (names if names is not None else sorted(history)):
        entries = history.get(name) or []
        current = entries[-1] if entries else {}
        previous = entries[-2] if len(entries) > 1 else {}
        delta = bench_delta(previous, current)
        rows.append({
            "name": name,
            "entries": len(entries),
            "previous": previous,
            "current": current,
            "delta": delta,
            "regressed": delta is not None and delta > tolerance,
        })
    return rows


def render_bench_report(history: History,
                        names: Optional[Sequence[str]] = None,
                        tolerance: float = DEFAULT_TOLERANCE) -> str:
    """Markdown table of the per-SHA p50 trajectory with per-bench
    deltas and regression flags (the ``repro report bench`` view)."""
    rows = bench_rows(history, names=names, tolerance=tolerance)
    lines = [
        "# Bench trajectory (p50 per SHA)",
        "",
        f"- benches: {len(rows)}; regression tolerance: "
        f"+{tolerance:.0%} p50 vs the previous entry",
        "",
        "| bench | p50 (latest) | previous | delta | entries | flag |",
        "|---|---|---|---|---|---|",
    ]
    regressions = 0
    for row in rows:
        delta = row["delta"]
        if delta is None:
            delta_s = "(new)" if row["current"] else "(none)"
        else:
            delta_s = f"{delta:+.0%}"
        if row["regressed"]:
            flag = "**REGRESSION**"
            regressions += 1
        elif delta is None:
            flag = "—"
        elif delta < -0.05:
            flag = "improved"
        else:
            flag = "ok"
        lines.append(f"| {row['name']} | {format_entry(row['current'])} "
                     f"| {format_entry(row['previous'])} | {delta_s} "
                     f"| {row['entries']} | {flag} |")
    lines.append("")
    lines.append(f"{regressions} regression(s) beyond the "
                 f"{tolerance:.0%} tolerance"
                 if regressions else
                 "no bench regressed beyond tolerance")
    return "\n".join(lines)
