"""Fuzz-artifact view over a ``repro check --report-dir`` directory.

The differential harness drops ``check-report.json`` (the
``CheckReport.to_json()`` aggregate, including per-check run counts)
plus one ``failure-NNN.json`` per failing check into the report
directory — the artifacts the nightly deep-fuzz job uploads.  This
module loads that directory back and renders it as the
``repro report fuzz`` markdown summary: harness parameters, the
per-check coverage table, and each failure with its one-line
reproducer command and shrunk minimal instance.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any, Dict, List

__all__ = ["load_fuzz_report", "render_fuzz_report"]


def load_fuzz_report(report_dir: Any) -> Dict[str, Any]:
    """Load ``check-report.json`` and every ``failure-NNN.json`` from a
    ``repro check --report-dir`` directory.

    Returns ``{"report": <aggregate dict>, "failures": [<dict>, ...]}``;
    failures come from the individual artifacts when present (sorted by
    filename), falling back to the aggregate's embedded list.  Raises
    :class:`FileNotFoundError` when the directory holds no
    ``check-report.json``.
    """
    report_dir = os.fspath(report_dir)
    report_path = os.path.join(report_dir, "check-report.json")
    if not os.path.exists(report_path):
        raise FileNotFoundError(
            f"no check-report.json in {report_dir!r} — is this a "
            "`repro check --report-dir` output directory?")
    with open(report_path) as fh:
        report = json.load(fh)
    failures: List[Dict[str, Any]] = []
    for path in sorted(glob.glob(os.path.join(report_dir,
                                              "failure-*.json"))):
        with open(path) as fh:
            failures.append(json.load(fh))
    if not failures:
        failures = list(report.get("failures") or [])
    return {"report": report, "failures": failures}


def _failure_lines(i: int, failure: Dict[str, Any]) -> List[str]:
    lines = [
        f"### {i}. `{failure.get('check', '?')}` on "
        f"`{failure.get('case', '?')}`",
        "",
        f"- detail: {failure.get('detail', '?')}",
        f"- reproduce: `{failure.get('repro', '?')}`",
    ]
    shrunk = failure.get("shrunk")
    if shrunk:
        g = shrunk.get("graph") or {}
        edges = ", ".join(f"({e['u']},{e['v']})"
                          for e in (g.get("edges") or [])[:12])
        m = g.get("m", 0)
        more = "" if m <= 12 else f" …(+{m - 12})"
        lines.append(f"- shrunk to n={g.get('n', '?')} m={m}: "
                     f"{edges}{more}")
        lines.append(f"- shrunk detail: {shrunk.get('detail', '?')}")
    lines.append("")
    return lines


def render_fuzz_report(report_dir: Any) -> str:
    """Markdown summary of a fuzz report directory (the
    ``repro report fuzz`` view)."""
    loaded = load_fuzz_report(report_dir)
    report = loaded["report"]
    failures = loaded["failures"]
    ok = report.get("ok", not failures)
    lines = [
        "# Differential-check fuzz report",
        "",
        f"- seed = {report.get('seed')}, family = `{report.get('family')}`"
        f"{', deep' if report.get('deep') else ''}",
        f"- cases run = {report.get('cases_run')}, "
        f"checks run = {report.get('checks_run')}, "
        f"elapsed = {report.get('elapsed', 0.0):.1f}s",
        f"- verdict: {'**PASS**' if ok else '**FAIL**'} "
        f"({len(failures)} failure(s))",
        "",
    ]
    counts: Dict[str, int] = report.get("check_counts") or {}
    latency: Dict[str, Dict[str, float]] = report.get("check_latency") or {}
    if counts:
        failed_by_check: Dict[str, int] = {}
        for f in failures:
            name = f.get("check", "?")
            failed_by_check[name] = failed_by_check.get(name, 0) + 1
        if latency:
            lines.extend(["## Checks", "",
                          "| check | runs | failures | p50 ms | p95 ms |",
                          "|---|---|---|---|---|"])
            for name in sorted(counts):
                lat = latency.get(name) or {}
                p50 = lat.get("p50_ms")
                p95 = lat.get("p95_ms")
                lines.append(
                    f"| `{name}` | {counts[name]} "
                    f"| {failed_by_check.get(name, 0)} "
                    f"| {p50 if p50 is not None else '-'} "
                    f"| {p95 if p95 is not None else '-'} |")
        else:
            # pre-latency artifacts (older check-report.json) keep the
            # narrow table
            lines.extend(["## Checks", "",
                          "| check | runs | failures |", "|---|---|---|"])
            for name in sorted(counts):
                lines.append(f"| `{name}` | {counts[name]} "
                             f"| {failed_by_check.get(name, 0)} |")
        lines.append("")
    if failures:
        lines.extend(["## Failures", ""])
        for i, failure in enumerate(failures):
            lines.extend(_failure_lines(i, failure))
    return "\n".join(lines)
