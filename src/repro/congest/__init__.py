"""Synchronous CONGEST model simulator and distributed algorithms.

The CONGEST model (Section 1 of the paper): n vertices communicate in
synchronous rounds over the edges of the underlying network graph, sending
at most O(log n) bits per edge per round.  Local computation is unbounded.
"""

from repro.congest.model import (
    CongestSimulator,
    NodeAlgorithm,
    NodeContext,
    BandwidthExceeded,
    default_bandwidth,
    message_bits,
)

__all__ = [
    "CongestSimulator",
    "NodeAlgorithm",
    "NodeContext",
    "BandwidthExceeded",
    "default_bandwidth",
    "message_bits",
]
