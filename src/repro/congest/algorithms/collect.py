"""The universal collect-and-solve CONGEST algorithm.

This is the paper's folklore O(m + D)-round upper bound ("any natural
graph problem can be solved in O(m) rounds ... by letting the vertices
learn the whole graph", Section 1): elect a leader, build a BFS tree,
pipeline every edge record up the tree, solve locally at the leader, and
pipeline per-vertex answers back down.  On the Section 2 families
m = Θ(n²), matching the Ω̃(n²) lower bounds up to polylog factors.

The same machinery, with an edge *filter*, implements the sampling
upload of the (1 − ε)-approximate max-cut algorithm (Theorem 2.9).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.congest.model import CongestSimulator, Message, NodeAlgorithm, NodeContext
from repro.graphs import Graph, Vertex

# message tags (ints keep messages within O(log n) bits)
_T_FLOOD = 0
_T_BFS = 1
_T_CHILD = 2
_T_REC = 3
_T_UPDONE = 4
_T_SOL = 5
_T_EOT = 6

EdgeFilter = Callable[[int, int, random.Random], bool]
# solve(n, edge_records, vertex_records) -> (global_value, {uid: value})
Solver = Callable[[int, List[Tuple[int, int, Optional[int]]],
                   List[Tuple[int, Optional[int]]]],
                  Tuple[Any, Dict[int, Any]]]


class CollectAndSolve(NodeAlgorithm):
    """Leader election → BFS → pipelined upcast → solve → pipelined downcast.

    Parameters
    ----------
    solver : leader-side callback computing the answer from the collected
        records (local computation is free in CONGEST).
    edge_filter : optional predicate ``(u, v, rng) -> bool`` applied by the
        owner (smaller uid) of each edge; unsampled edges are not uploaded.
    include_vertex_weights : also upload ``(uid, weight)`` records.
    seed : base seed for the per-vertex randomness given to the filter.
    """

    def __init__(self, solver: Solver,
                 edge_filter: Optional[EdgeFilter] = None,
                 include_vertex_weights: bool = False,
                 seed: int = 0) -> None:
        self.solver = solver
        self.edge_filter = edge_filter
        self.include_vertex_weights = include_vertex_weights
        self.seed = seed
        self.round_no = 0
        self.leader: Optional[int] = None
        self.parent: Optional[int] = None
        self.depth: Optional[int] = None
        self.children: List[int] = []
        self.queue: List[Tuple] = []
        self.children_done: set = set()
        self.sent_done = False
        self.edge_records: List[Tuple[int, int, Optional[int]]] = []
        self.vertex_records: List[Tuple[int, Optional[int]]] = []
        self.down_queue: List[Tuple] = []
        self.my_value: Any = None
        self.global_value: Any = None
        self.got_eot = False

    # ------------------------------------------------------------------
    def on_start(self, ctx: NodeContext) -> Dict[int, Message]:
        self.best = ctx.uid
        return {w: (_T_FLOOD, self.best) for w in ctx.neighbors}

    def on_round(self, ctx: NodeContext, messages: Dict[int, Message]) -> Dict[int, Message]:
        self.round_no += 1
        n = ctx.n
        r = self.round_no
        if r <= n:
            return self._flood(ctx, messages, final=(r == n))
        if r <= 2 * n:
            return self._bfs(ctx, messages, final=(r == 2 * n))
        if r == 2 * n + 1:
            return self._announce_child(ctx, messages)
        return self._pipeline(ctx, messages)

    # -- phase A: leader election ---------------------------------------
    def _flood(self, ctx: NodeContext, messages: Dict[int, Message], final: bool) -> Dict[int, Message]:
        improved = False
        for __, (tag, val) in messages.items():
            assert tag == _T_FLOOD
            if val < self.best:
                self.best = val
                improved = True
        if final:
            self.leader = self.best
            if ctx.uid == self.leader:
                self.depth = 0
                return {w: (_T_BFS, 0) for w in ctx.neighbors}
            return {}
        if improved:
            return {w: (_T_FLOOD, self.best) for w in ctx.neighbors}
        return {}

    # -- phase B: BFS ----------------------------------------------------
    def _bfs(self, ctx: NodeContext, messages: Dict[int, Message], final: bool) -> Dict[int, Message]:
        out: Dict[int, Message] = {}
        if self.depth is None and messages:
            sender = min(messages)
            self.parent = sender
            self.depth = messages[sender][1] + 1
            if not final:
                out = {w: (_T_BFS, self.depth) for w in ctx.neighbors if w != sender}
        if final:
            # next round is the child announcement
            if self.parent is not None:
                return {self.parent: (_T_CHILD, 0)}
        return out

    # -- phase C: learn children, seed the upload queue ------------------
    def _announce_child(self, ctx: NodeContext, messages: Dict[int, Message]) -> Dict[int, Message]:
        self.children = sorted(s for s, (tag, __) in messages.items()
                               if tag == _T_CHILD)
        rng = random.Random(self.seed * 1_000_003 + ctx.uid)
        for w in ctx.neighbors:
            if ctx.uid < w:  # edge owner
                if self.edge_filter is None or self.edge_filter(ctx.uid, w, rng):
                    weight = ctx.edge_weights.get(w)
                    wint = None if weight is None else int(weight)
                    self.queue.append(("E", ctx.uid, w, wint))
        if self.include_vertex_weights:
            self.queue.append(("V", ctx.uid, int(ctx.vertex_weight)))
        return self._pump_up(ctx)

    # -- phase D/E: pipelined upcast, solve, pipelined downcast ----------
    def _pipeline(self, ctx: NodeContext, messages: Dict[int, Message]) -> Dict[int, Message]:
        out: Dict[int, Message] = {}
        for sender, msg in messages.items():
            tag = msg[0]
            if tag == _T_REC:
                self.queue.append(tuple(msg[1]))
            elif tag == _T_UPDONE:
                self.children_done.add(sender)
            elif tag == _T_SOL:
                uid, value = msg[1], msg[2]
                if uid == ctx.uid:
                    self.my_value = value
                self.down_queue.append(("S", uid, value))
            elif tag == _T_EOT:
                self.got_eot = True
                self.global_value = msg[1]
                self.down_queue.append(("T", msg[1]))

        is_leader = ctx.uid == self.leader
        if is_leader and not self.sent_done:
            # absorb arriving records directly
            self._absorb_own(ctx)
            if self.children_done >= set(self.children) and not self.queue:
                self.sent_done = True
                gvalue, values = self.solver(ctx.n, self.edge_records,
                                             self.vertex_records)
                self.my_value = values.get(ctx.uid)
                self.global_value = gvalue
                for uid in sorted(values):
                    if uid != ctx.uid:
                        self.down_queue.append(("S", uid, values[uid]))
                self.down_queue.append(("T", gvalue))
            return self._pump_down(ctx)

        if is_leader:
            return self._pump_down(ctx)

        # non-leader: keep uploading, then forward downloads
        out.update(self._pump_up(ctx))
        out.update(self._pump_down(ctx))
        if self.got_eot and not self.down_queue:
            ctx.halt({"value": self.my_value, "global": self.global_value})
        return out

    def _absorb_own(self, ctx: NodeContext) -> None:
        while self.queue:
            rec = self.queue.pop()
            if rec[0] == "E":
                self.edge_records.append((rec[1], rec[2], rec[3]))
            else:
                self.vertex_records.append((rec[1], rec[2]))

    def _pump_up(self, ctx: NodeContext) -> Dict[int, Message]:
        if self.parent is None:
            return {}
        if self.queue:
            rec = self.queue.pop()
            return {self.parent: (_T_REC, rec)}
        if not self.sent_done and self.children_done >= set(self.children):
            self.sent_done = True
            return {self.parent: (_T_UPDONE, 0)}
        return {}

    def _pump_down(self, ctx: NodeContext) -> Dict[int, Message]:
        if not self.down_queue:
            return {}
        rec = self.down_queue.pop(0)
        out: Dict[int, Message] = {}
        if rec[0] == "S":
            for c in self.children:
                out[c] = (_T_SOL, rec[1], rec[2])
        else:
            for c in self.children:
                out[c] = (_T_EOT, rec[1])
            if ctx.uid == self.leader:
                self.got_eot = True
            # after forwarding EOT this vertex is finished
            ctx.halt({"value": self.my_value, "global": self.global_value})
        return out


def run_collect_and_solve(
    graph: Graph,
    solver: Solver,
    edge_filter: Optional[EdgeFilter] = None,
    include_vertex_weights: bool = False,
    seed: int = 0,
    bandwidth_factor: int = 40,
) -> Tuple[Dict[Vertex, Any], CongestSimulator]:
    """Run :class:`CollectAndSolve`; returns ``(outputs, simulator)``.

    ``bandwidth_factor`` defaults high enough for edge records carrying
    integer weights; it is still O(log n + log W) bits per message.
    """
    sim = CongestSimulator(graph, bandwidth_factor=bandwidth_factor)
    outputs = sim.run(lambda: CollectAndSolve(
        solver, edge_filter=edge_filter,
        include_vertex_weights=include_vertex_weights, seed=seed))
    return outputs, sim


def run_universal_exact(
    graph: Graph,
    local_solver: Callable[[Graph], Tuple[Any, Dict[Vertex, Any]]],
    include_vertex_weights: bool = False,
    bandwidth_factor: int = 40,
) -> Tuple[Dict[Vertex, Any], CongestSimulator]:
    """Learn the whole graph at the leader and solve with ``local_solver``.

    ``local_solver`` receives the reconstructed graph (labels are uids) and
    returns ``(global value, {uid: per-vertex value})``.
    """

    def solver(n: int, edge_records, vertex_records):
        g = Graph()
        g.add_vertices(range(n))
        for u, v, w in edge_records:
            g.add_edge(u, v, weight=w)
        for u, w in vertex_records:
            g.set_vertex_weight(u, w)
        return local_solver(g)

    return run_collect_and_solve(
        graph, solver, include_vertex_weights=include_vertex_weights,
        bandwidth_factor=bandwidth_factor)
