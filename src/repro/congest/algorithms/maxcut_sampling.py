"""Theorem 2.9: a (1 − ε)-approximate max-cut in Õ(n) CONGEST rounds.

The algorithm follows Section 2.4.2: every edge is sampled independently
with probability p = min(1, n·logˢn / m) by its owner endpoint, a leader
learns the sampled subgraph G_p over a BFS tree (O(m_p + D) rounds after
the O(n) leader/BFS phases), computes a maximum cut of G_p locally, and
the per-vertex sides are pipelined back down.  The returned estimate is
c*_p / p (Lemma 2.5, after [51]).

Local computation is free in CONGEST; the leader uses the exact solver
when the sampled support is small enough and a multi-restart local search
otherwise (the round complexity — the measured quantity — is unaffected).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.congest.algorithms.collect import run_collect_and_solve
from repro.congest.model import CongestSimulator
from repro.graphs import Graph, Vertex
from repro.solvers.maxcut import cut_weight, max_cut


@dataclass
class MaxCutSamplingResult:
    sides: Dict[Vertex, int]
    estimated_value: float
    sampled_value: float
    sample_probability: float
    sampled_edges: int
    rounds: int
    simulator: CongestSimulator = field(repr=False)


def _local_search_cut(n: int, edges: List[Tuple[int, int]], rng: random.Random,
                      restarts: int = 5) -> Dict[int, int]:
    adj: Dict[int, List[int]] = {}
    for u, v in edges:
        adj.setdefault(u, []).append(v)
        adj.setdefault(v, []).append(u)
    best_sides: Dict[int, int] = {}
    best_val = -1
    nodes = sorted(adj)
    for __ in range(restarts):
        sides = {u: rng.randint(0, 1) for u in nodes}
        improved = True
        while improved:
            improved = False
            for u in nodes:
                same = sum(1 for w in adj[u] if sides[w] == sides[u])
                cross = len(adj[u]) - same
                if same > cross:
                    sides[u] ^= 1
                    improved = True
        val = sum(1 for u, v in edges if sides[u] != sides[v])
        if val > best_val:
            best_val = val
            best_sides = dict(sides)
    return best_sides


def run_maxcut_sampling(
    graph: Graph,
    epsilon: float = 0.5,
    p: Optional[float] = None,
    seed: int = 0,
    exact_limit: int = 22,
) -> MaxCutSamplingResult:
    """Run the Theorem 2.9 algorithm on an unweighted graph."""
    n, m = graph.n, graph.m
    if m == 0:
        raise ValueError("max-cut of an empty graph")
    if p is None:
        s = max(1, math.ceil(1.0 / epsilon))
        p = min(1.0, n * (math.log2(n) ** s) / m)

    collected: Dict[str, object] = {}

    def edge_filter(u: int, v: int, rng: random.Random) -> bool:
        return rng.random() < p

    def solver(n_: int, edge_records, vertex_records):
        edges = [(u, v) for u, v, __ in edge_records]
        support = sorted({x for e in edges for x in e})
        rng = random.Random(seed + 1)
        if len(support) <= exact_limit:
            sub = Graph()
            sub.add_vertices(support)
            for u, v in edges:
                sub.add_edge(u, v)
            __, side_list = max_cut(sub)
            sides = {u: (1 if u in set(side_list) else 0) for u in support}
        else:
            sides = _local_search_cut(n_, edges, rng)
        value = sum(1 for u, v in edges if sides.get(u, 0) != sides.get(v, 0))
        collected["sampled_value"] = value
        collected["sampled_edges"] = len(edges)
        out = {u: sides.get(u, 0) for u in range(n_)}
        return value, out

    outputs, sim = run_collect_and_solve(graph, solver,
                                         edge_filter=edge_filter, seed=seed)
    sides = {label: out["value"] for label, out in outputs.items()}
    sampled_value = float(collected["sampled_value"])  # type: ignore[arg-type]
    return MaxCutSamplingResult(
        sides=sides,
        estimated_value=sampled_value / p,
        sampled_value=sampled_value,
        sample_probability=p,
        sampled_edges=int(collected["sampled_edges"]),  # type: ignore[arg-type]
        rounds=sim.rounds,
        simulator=sim,
    )
