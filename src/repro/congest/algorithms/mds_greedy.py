"""A distributed greedy MDS approximation in the local-aggregate class.

Section 4.5 restricts attention to *local aggregate algorithms*: per
round, the message a vertex sends depends only on its own O(log n)-bit
input-state, the recipient id, shared randomness, and an aggregate
function of the messages received in the previous round.  The paper notes
the known O(log Δ)-approximation algorithms for MDS fit this class
[26, 33, 34]; we implement a representative member — greedy span
domination with distance-2 locally-maximal selection — whose messages are
single values aggregated by ``max``.

Each phase (4 rounds):
  1. every undominated-relevant vertex announces its *span* (number of
     undominated vertices in its closed neighbourhood), tie-broken by uid;
  2. every vertex forwards the max span key it heard (distance-2 max);
  3. vertices whose key is the strict max within distance 2 join the
     dominating set and announce it;
  4. newly dominated vertices announce their status.
Terminates when every vertex is dominated; at most n phases.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.congest.model import CongestSimulator, Message, NodeAlgorithm, NodeContext
from repro.graphs import Graph, Vertex


class GreedyMdsNode(NodeAlgorithm):
    def __init__(self) -> None:
        self.in_set = False
        self.dominated = False
        self.nbr_dominated: Dict[int, bool] = {}
        self.phase_step = 0
        self.my_key: Tuple[int, int] = (0, 0)
        self.best_key: Tuple[int, int] = (0, 0)

    def _span(self, ctx: NodeContext) -> int:
        span = 0 if self.dominated else 1
        span += sum(1 for w in ctx.neighbors if not self.nbr_dominated.get(w, False))
        return span

    def on_start(self, ctx: NodeContext) -> Dict[int, Message]:
        self.nbr_dominated = {w: False for w in ctx.neighbors}
        self.my_key = (self._span(ctx), ctx.uid)
        return {w: self.my_key for w in ctx.neighbors}

    def on_round(self, ctx: NodeContext, messages: Dict[int, Message]) -> Dict[int, Message]:
        step = self.phase_step
        self.phase_step = (self.phase_step + 1) % 4
        if step == 0:
            # received spans; forward the max seen (distance-2 aggregation)
            keys = [tuple(v) for v in messages.values()] + [self.my_key]
            self.best_key = max(keys)
            return {w: self.best_key for w in ctx.neighbors}
        if step == 1:
            # received distance-2 maxima; decide membership
            keys = [tuple(v) for v in messages.values()] + [self.best_key]
            overall = max(keys)
            join = (not self.in_set and self.my_key[0] > 0
                    and overall == self.my_key)
            if join:
                self.in_set = True
                self.dominated = True
            return {w: join for w in ctx.neighbors}
        if step == 2:
            # received join announcements; update domination
            if any(messages.values()):
                self.dominated = True
            return {w: self.dominated for w in ctx.neighbors}
        # step == 3: received domination statuses
        for w, dom in messages.items():
            self.nbr_dominated[w] = bool(dom)
        if self.dominated and all(self.nbr_dominated.values()):
            # everyone in the closed neighbourhood is dominated; this
            # vertex can stop once it is not needed as a candidate
            ctx.halt(self.in_set)
            return {}
        self.my_key = (self._span(ctx), ctx.uid)
        return {w: self.my_key for w in ctx.neighbors}


def run_greedy_mds(graph: Graph) -> Tuple[Dict[Vertex, bool], CongestSimulator]:
    """Run the greedy local-aggregate MDS; returns (membership, simulator)."""
    sim = CongestSimulator(graph)
    outputs = sim.run(GreedyMdsNode, max_rounds=50 * max(4, graph.n))
    return {v: bool(out) for v, out in outputs.items()}, sim
