"""Distributed algorithms on the CONGEST simulator.

These provide the *upper bound* side of the paper: the universal
learn-the-graph algorithm (O(m + D) rounds, giving the O(n²) matching
upper bounds for the exact problems of Section 2), BFS/leader primitives,
and the (1 − ε)-approximate max-cut algorithm of Theorem 2.9.
"""

from repro.congest.algorithms.basic import (
    FloodMinId,
    BfsFromRoot,
    run_leader_election,
    run_bfs,
)
from repro.congest.algorithms.collect import (
    CollectAndSolve,
    run_collect_and_solve,
    run_universal_exact,
)
from repro.congest.algorithms.maxcut_sampling import (
    run_maxcut_sampling,
    MaxCutSamplingResult,
)
from repro.congest.algorithms.mds_greedy import run_greedy_mds
from repro.congest.algorithms.local_model import run_local_universal
from repro.congest.algorithms.split_simulation import run_split_simulation
from repro.congest.algorithms.aggregate import (
    MAX,
    MIN,
    SUM,
    ConvergecastBroadcast,
    run_aggregate,
)

__all__ = [
    "FloodMinId",
    "BfsFromRoot",
    "run_leader_election",
    "run_bfs",
    "CollectAndSolve",
    "run_collect_and_solve",
    "run_universal_exact",
    "run_maxcut_sampling",
    "MaxCutSamplingResult",
    "run_greedy_mds",
    "run_local_universal",
    "run_split_simulation",
    "ConvergecastBroadcast",
    "run_aggregate",
    "SUM",
    "MAX",
    "MIN",
]
