"""Tree aggregation primitives: convergecast and broadcast.

The building blocks behind every "compute a global quantity in O(D)
rounds" step the paper takes for granted — counting the size of a
candidate dominating set (Theorem 2.1's reduction from search to
decision), summing cut weights, electing parameters.  Both run over a
BFS tree built in-band, so a full invocation costs O(n) rounds with the
uniform halting rule (O(D) information-theoretically).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.congest.model import CongestSimulator, Message, NodeAlgorithm, NodeContext
from repro.graphs import Graph, Vertex

# aggregate operators: (identity, combine)
SUM = (0, lambda a, b: a + b)
MAX = (None, lambda a, b: b if a is None else (a if a >= b else b))
MIN = (None, lambda a, b: b if a is None else (a if a <= b else b))

_T_FLOOD = 0
_T_BFS = 1
_T_CHILD = 2
_T_UP = 3
_T_DOWN = 4


class ConvergecastBroadcast(NodeAlgorithm):
    """Elect a leader, build a BFS tree, convergecast an aggregate of the
    per-vertex inputs to the root, broadcast the result back down.

    Each vertex's contribution comes from ``ctx.input`` (an int).  The
    output at every vertex is the global aggregate.
    """

    def __init__(self, identity: Any, combine: Callable[[Any, Any], Any]) -> None:
        self.identity = identity
        self.combine = combine
        self.round_no = 0
        self.best = None
        self.leader: Optional[int] = None
        self.parent: Optional[int] = None
        self.depth: Optional[int] = None
        self.children: set = set()
        self.reports: Dict[int, Any] = {}
        self.sent_up = False
        self.result: Any = None

    def on_start(self, ctx: NodeContext) -> Dict[int, Message]:
        self.best = ctx.uid
        return {w: (_T_FLOOD, self.best) for w in ctx.neighbors}

    def on_round(self, ctx: NodeContext, messages: Dict[int, Message]) -> Dict[int, Message]:
        self.round_no += 1
        n, r = ctx.n, self.round_no
        if r <= n:
            improved = False
            for __, (tag, val) in messages.items():
                if val < self.best:
                    self.best = val
                    improved = True
            if r == n:
                self.leader = self.best
                if ctx.uid == self.leader:
                    self.depth = 0
                    return {w: (_T_BFS, 0) for w in ctx.neighbors}
                return {}
            return ({w: (_T_FLOOD, self.best) for w in ctx.neighbors}
                    if improved else {})
        if r <= 2 * n:
            out: Dict[int, Message] = {}
            if self.depth is None and messages:
                sender = min(messages)
                self.parent = sender
                self.depth = messages[sender][1] + 1
                if r != 2 * n:
                    out = {w: (_T_BFS, self.depth)
                           for w in ctx.neighbors if w != sender}
            if r == 2 * n and self.parent is not None:
                return {self.parent: (_T_CHILD, 0)}
            return out
        if r == 2 * n + 1:
            self.children = {s for s, (tag, __) in messages.items()
                             if tag == _T_CHILD}
            return self._maybe_report(ctx)
        # convergecast up, then broadcast down
        out = {}
        for sender, msg in messages.items():
            if msg[0] == _T_UP:
                self.reports[sender] = msg[1]
            elif msg[0] == _T_DOWN:
                self.result = msg[1]
        if self.result is not None:
            ctx.halt(self.result)
            return {c: (_T_DOWN, self.result) for c in self.children}
        out.update(self._maybe_report(ctx))
        if ctx.uid == self.leader and set(self.reports) >= self.children:
            total = self._local_aggregate(ctx)
            self.result = total
            ctx.halt(total)
            return {c: (_T_DOWN, total) for c in self.children}
        return out

    def _local_aggregate(self, ctx: NodeContext) -> Any:
        total = self.combine(self.identity, int(ctx.input or 0))
        for val in self.reports.values():
            total = self.combine(total, val)
        return total

    def _maybe_report(self, ctx: NodeContext) -> Dict[int, Message]:
        if self.sent_up or self.parent is None:
            return {}
        if set(self.reports) >= self.children:
            self.sent_up = True
            return {self.parent: (_T_UP, self._local_aggregate(ctx))}
        return {}


def run_aggregate(graph: Graph, inputs: Dict[Vertex, int],
                  op: Tuple[Any, Callable[[Any, Any], Any]] = SUM,
                  ) -> Tuple[Any, CongestSimulator]:
    """Convergecast+broadcast ``op`` over per-vertex integer inputs.

    Returns ``(global aggregate, simulator)``; all vertices halt with the
    same output.
    """
    identity, combine = op
    # aggregates of n values fit in O(log n + log max_input) bits; the
    # factor keeps tiny-n instances within the framing overhead
    sim = CongestSimulator(graph, bandwidth_factor=16)
    outputs = sim.run(lambda: ConvergecastBroadcast(identity, combine),
                      inputs=inputs)
    values = set(outputs.values())
    assert len(values) == 1, "aggregation disagreed"
    return values.pop(), sim
