"""Leader election and BFS primitives."""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.congest.model import CongestSimulator, Message, NodeAlgorithm, NodeContext
from repro.graphs import Graph, Vertex


class FloodMinId(NodeAlgorithm):
    """Elect the minimum uid by flooding for n rounds (O(D) information
    propagation, n rounds for a uniform, input-oblivious halting rule).

    Output: the elected leader's uid.
    """

    def __init__(self) -> None:
        self.best: Optional[int] = None
        self.round_no = 0

    def on_start(self, ctx: NodeContext) -> Dict[int, Message]:
        self.best = ctx.uid
        return {w: self.best for w in ctx.neighbors}

    def on_round(self, ctx: NodeContext, messages: Dict[int, Message]) -> Dict[int, Message]:
        self.round_no += 1
        improved = False
        for val in messages.values():
            if val < self.best:
                self.best = val
                improved = True
        if self.round_no >= ctx.n:
            ctx.halt(self.best)
            return {}
        if improved:
            return {w: self.best for w in ctx.neighbors}
        return {}


class BfsFromRoot(NodeAlgorithm):
    """BFS tree from the vertex whose uid equals its input ``root``.

    Output: ``(parent uid or None, depth)``.  Runs for n rounds so that
    every vertex halts simultaneously.
    """

    def __init__(self) -> None:
        self.parent: Optional[int] = None
        self.depth: Optional[int] = None
        self.round_no = 0

    def on_start(self, ctx: NodeContext) -> Dict[int, Message]:
        if ctx.input == ctx.uid:
            self.depth = 0
            return {w: 0 for w in ctx.neighbors}
        return {}

    def on_round(self, ctx: NodeContext, messages: Dict[int, Message]) -> Dict[int, Message]:
        self.round_no += 1
        out: Dict[int, Message] = {}
        if self.depth is None and messages:
            sender = min(messages)
            self.parent = sender
            self.depth = messages[sender] + 1
            out = {w: self.depth for w in ctx.neighbors if w != sender}
        if self.round_no >= ctx.n:
            ctx.halt((self.parent, self.depth))
        return out


def run_leader_election(graph: Graph) -> Tuple[int, CongestSimulator]:
    """Run :class:`FloodMinId`; returns ``(leader uid, simulator)``."""
    sim = CongestSimulator(graph)
    outputs = sim.run(FloodMinId)
    leaders = set(outputs.values())
    assert len(leaders) == 1, "leader election disagreed"
    return leaders.pop(), sim


def run_bfs(graph: Graph, root: Vertex) -> Tuple[Dict[Vertex, Any], CongestSimulator]:
    """BFS from ``root``; returns ``({label: (parent uid, depth)}, simulator)``."""
    sim = CongestSimulator(graph)
    root_uid = sim.uid_of[root]
    outputs = sim.run(BfsFromRoot, inputs={v: root_uid for v in graph.vertices()})
    return outputs, sim
