"""Lemma 2.2's distributed simulation, executed.

The reduction from directed to undirected Hamiltonian cycle replaces
every vertex v by the path v_in — v_mid — v_out.  Lemma 2.2's point is
that this is *free* in CONGEST: each original vertex simulates its
three copies, messages between the copies of one vertex need no
communication, and a message on a split-graph edge (u_out, v_in) rides
the real edge (u, v).  One split-graph round therefore costs two real
rounds: the u_out → v_in traffic uses the (u → v) direction of the
slot, and v_in → u_out traffic the other, so both fit the per-edge
bandwidth by spreading over an even/odd round pair.

``run_split_simulation`` executes an undirected-graph algorithm written
against G′ = split(G) on the *original* digraph G, and the tests check
its outputs and 2×(+1) round overhead against running the same
algorithm on G′ directly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.congest.model import CongestSimulator, Message, NodeAlgorithm, NodeContext
from repro.core.reductions import directed_to_undirected_hc
from repro.graphs import DiGraph, Graph, Vertex


class _TripleHost(NodeAlgorithm):
    """Hosts the in/mid/out copies of one original vertex.

    ``ctx.input`` supplies the uid-level wiring of the split graph:
    ``{"copies": {tag: uid'}, "nbrs": {uid': [uid', ...]},
    "owner": {uid': real neighbour uid}, "n_prime": int}``.
    """

    def __init__(self, inner_factory: Callable[[], NodeAlgorithm]) -> None:
        self.inner_factory = inner_factory
        self.parity = 0
        self.copies: Dict[str, "_CopyState"] = {}
        self.pending_local: Dict[int, Dict[int, Message]] = {}

    def _boot(self, ctx: NodeContext) -> None:
        wiring = ctx.input
        self.wiring = wiring
        self.uid_by_tag = wiring["copies"]
        self.tag_by_uid = {u: t for t, u in self.uid_by_tag.items()}
        self.copies = {}
        for tag, uid in self.uid_by_tag.items():
            inner_ctx = NodeContext(
                label=(tag, ctx.label), uid=uid,
                neighbors=tuple(sorted(wiring["nbrs"][uid])),
                n=wiring["n_prime"], node_input=None,
                edge_weights={w: 1.0 for w in wiring["nbrs"][uid]},
                vertex_weight=1.0)
            self.copies[tag] = _CopyState(self.inner_factory(), inner_ctx)

    def on_start(self, ctx: NodeContext) -> Dict[int, Message]:
        self._boot(ctx)
        for state in self.copies.values():
            state.outbox = state.algo.on_start(state.ctx)
        return self._flush(ctx)

    def on_round(self, ctx: NodeContext, messages: Dict[int, Message]) -> Dict[int, Message]:
        # collect incoming simulated messages (sender', receiver', payload)
        for payload in messages.values():
            for sender_p, receiver_p, msg in payload:
                self.pending_local.setdefault(receiver_p, {})[sender_p] = msg
        self.parity ^= 1
        if self.parity == 1:
            # odd real round: second delivery slot, no simulated step yet
            return self._flush(ctx, second_slot=True)
        # even real round: one full simulated round has been delivered
        all_halted = True
        for state in self.copies.values():
            if state.ctx.halted:
                continue
            inbox = self.pending_local.pop(state.ctx.uid, {})
            state.outbox = state.algo.on_round(state.ctx, inbox)
            all_halted = all_halted and state.ctx.halted
        if all_halted and not any(s.outbox for s in self.copies.values()):
            ctx.halt({tag: s.ctx.output for tag, s in self.copies.items()})
            return {}
        return self._flush(ctx)

    def _flush(self, ctx: NodeContext, second_slot: bool = False) -> Dict[int, Message]:
        """Route queued simulated messages.

        Copy-to-copy messages of the same vertex are delivered locally;
        cross-vertex messages are bundled per real neighbour.  The first
        slot carries out→in traffic, the second slot in→out traffic —
        one simulated message per real edge-direction per slot, which is
        what keeps Lemma 2.2 bandwidth-faithful.
        """
        out: Dict[int, list] = {}
        for state in self.copies.values():
            remaining: Dict[int, Message] = {}
            for receiver_p, msg in state.outbox.items():
                if receiver_p in self.tag_by_uid:
                    # sibling copy: free local delivery
                    self.pending_local.setdefault(receiver_p, {})[
                        state.ctx.uid] = msg
                    continue
                outgoing_is_out = self.tag_by_uid[state.ctx.uid] == "out" \
                    if state.ctx.uid in self.tag_by_uid else False
                slot_matches = (outgoing_is_out and not second_slot) or \
                    (not outgoing_is_out and second_slot)
                if slot_matches:
                    real_nbr = self.wiring["owner"][receiver_p]
                    out.setdefault(real_nbr, []).append(
                        (state.ctx.uid, receiver_p, msg))
                else:
                    remaining[receiver_p] = msg
            state.outbox = remaining
        return {nbr: tuple(payload) for nbr, payload in out.items()}


class _CopyState:
    def __init__(self, algo: NodeAlgorithm, ctx: NodeContext) -> None:
        self.algo = algo
        self.ctx = ctx
        self.outbox: Dict[int, Message] = {}


def run_split_simulation(
    dgraph: DiGraph,
    inner_factory: Callable[[], NodeAlgorithm],
    max_rounds: int = 100000,
) -> Tuple[Dict[Vertex, Any], CongestSimulator]:
    """Run an algorithm written for split(G) on the original digraph G.

    Returns per-original-vertex dicts ``{"in": ..., "mid": ..., "out":
    ...}`` of the copies' outputs, plus the simulator (whose round count
    is ≈ 2× the algorithm's round count on split(G), Lemma 2.2).
    """
    gprime = directed_to_undirected_hc(dgraph)
    prime_sim = CongestSimulator(gprime)  # for the uid assignment only
    uid_p = prime_sim.uid_of
    base = dgraph.to_undirected()

    wiring: Dict[Vertex, Dict[str, Any]] = {}
    owner_of_copy: Dict[int, Vertex] = {}
    for v in dgraph.vertices():
        for tag in ("in", "mid", "out"):
            owner_of_copy[uid_p[(tag, v)]] = v
    sim = CongestSimulator(base, bandwidth_factor=24)
    for v in dgraph.vertices():
        copies = {tag: uid_p[(tag, v)] for tag in ("in", "mid", "out")}
        nbrs = {copies[tag]: [uid_p[w] for w in gprime.neighbors((tag, v))]
                for tag in ("in", "mid", "out")}
        owner = {}
        for uid_list in nbrs.values():
            for w_p in uid_list:
                owner_vertex = owner_of_copy[w_p]
                if owner_vertex != v:
                    owner[w_p] = sim.uid_of[owner_vertex]
        wiring[v] = {"copies": copies, "nbrs": nbrs, "owner": owner,
                     "n_prime": gprime.n}

    outputs = sim.run(lambda: _TripleHost(inner_factory), inputs=wiring,
                      max_rounds=max_rounds)
    return outputs, sim
