"""The LOCAL model, for the separations the paper draws (Section 1, 4.1).

LOCAL is CONGEST without the bandwidth bound: the simulator runs with
``bandwidth=math.inf``.  Any problem is then solvable in O(D) rounds by
flooding complete neighbourhood knowledge — each round every vertex
forwards everything it knows, so after D rounds everyone holds the
whole graph and solves locally.

This is the model in which (1 + ε)-approximate MaxIS and k-MDS are easy
[20], so the paper's Ω̃(n²) CONGEST approximation bounds (Theorems 4.1,
4.3-4.5) are genuine CONGEST/LOCAL separations: the bandwidth, not the
locality, is the obstruction.  ``run_local_universal`` makes the
separation measurable — O(D) rounds here versus Θ(m) for the CONGEST
collect-and-solve on the same instance.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, FrozenSet, Optional, Set, Tuple

from repro.congest.model import CongestSimulator, Message, NodeAlgorithm, NodeContext
from repro.graphs import Graph, Vertex


class FloodKnowledge(NodeAlgorithm):
    """Each round, forward every known edge to every neighbour; halt once
    knowledge stabilizes everywhere (detected via a done-wave)."""

    def __init__(self, local_solver: Callable[[Graph], Dict[int, Any]]) -> None:
        self.local_solver = local_solver
        self.known: Set[Tuple[int, int]] = set()
        self.stable_rounds = 0

    def _my_edges(self, ctx: NodeContext) -> Set[Tuple[int, int]]:
        return {(min(ctx.uid, w), max(ctx.uid, w)) for w in ctx.neighbors}

    def on_start(self, ctx: NodeContext) -> Dict[int, Message]:
        self.known = self._my_edges(ctx)
        payload = tuple(sorted(self.known))
        return {w: payload for w in ctx.neighbors}

    def on_round(self, ctx: NodeContext, messages: Dict[int, Message]) -> Dict[int, Message]:
        before = len(self.known)
        for payload in messages.values():
            self.known.update(tuple(e) for e in payload)
        if len(self.known) == before:
            self.stable_rounds += 1
        else:
            self.stable_rounds = 0
        # knowledge of a connected graph stabilizes after ecc(v) rounds;
        # one extra quiet round guarantees every neighbour is stable too
        if self.stable_rounds >= 2:
            g = Graph()
            g.add_vertices(range(ctx.n))
            for u, v in self.known:
                g.add_edge(u, v)
            solution = self.local_solver(g)
            ctx.halt(solution.get(ctx.uid))
            return {}
        payload = tuple(sorted(self.known))
        return {w: payload for w in ctx.neighbors}


def run_local_universal(
    graph: Graph,
    local_solver: Callable[[Graph], Dict[int, Any]],
) -> Tuple[Dict[Vertex, Any], CongestSimulator]:
    """Solve any problem in O(D) LOCAL rounds by full-knowledge flooding.

    ``local_solver`` maps the reconstructed uid-graph to per-uid outputs
    (it must be deterministic so all vertices agree).  Returns outputs by
    label and the simulator (``sim.rounds`` ≈ diameter + O(1)).
    """
    sim = CongestSimulator(graph, bandwidth=math.inf)
    outputs = sim.run(lambda: FloodKnowledge(local_solver))
    return outputs, sim
