"""Local aggregate algorithms (Definition 4.1 and the Theorem 4.8 model).

A *local aggregate algorithm* restricts what a CONGEST vertex may do: in
each round its per-recipient message is a function of its own O(log n)-bit
round input, the recipient id, shared randomness, and an *aggregate
function* f of the messages received in the previous round, where f is
order-invariant and splits as f(X) = φ(f(X₁), f(X₂)) over any partition.

This restriction is what makes the Theorem 4.8 simulation work: for a
vertex simulated *jointly* by Alice and Bob, each player aggregates the
messages from its own side and they exchange only the two partial
aggregates (O(log n) bits) per shared vertex per round.

:func:`run_local_aggregate` executes a spec on the full graph;
:func:`simulate_shared_two_party` executes it in the two-player setting
with a shared vertex set, counting exactly the bits Theorem 4.8 charges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.congest.model import message_bits
from repro.graphs import Graph, Vertex


class LocalAggregateSpec:
    """Behaviour of one vertex of a local aggregate algorithm.

    Subclasses define the aggregate (monoid) and the per-round logic.
    States are per-vertex and opaque to the framework.
    """

    #: identity element of the aggregate monoid
    identity: Any = None

    def combine(self, a: Any, b: Any) -> Any:
        """The φ of Definition 4.1 (associative, commutative)."""
        raise NotImplementedError

    def initial_state(self, uid: int, n: int, weight: float,
                      degree: int) -> Any:
        raise NotImplementedError

    def message(self, state: Any, recipient: int) -> Any:
        """The message sent this round (O(log n) bits)."""
        raise NotImplementedError

    def update(self, state: Any, aggregate: Any) -> Tuple[Any, bool]:
        """Consume the round's aggregate; returns (state, done)."""
        raise NotImplementedError

    def output(self, state: Any) -> Any:
        raise NotImplementedError


@dataclass
class LocalAggregateRun:
    outputs: Dict[Vertex, Any]
    rounds: int
    shared_bits: int = 0
    direct_cut_bits: int = 0

    @property
    def total_two_party_bits(self) -> int:
        return self.shared_bits + self.direct_cut_bits


def _execute(graph: Graph, spec: LocalAggregateSpec, max_rounds: int,
             bit_counter: Optional[Callable[[Vertex, Vertex, Any], None]],
             ) -> Tuple[Dict[Vertex, Any], int]:
    labels = sorted(graph.vertices(), key=repr)
    uid_of = {v: i for i, v in enumerate(labels)}
    n = len(labels)
    states = {v: spec.initial_state(uid_of[v], n, graph.vertex_weight(v),
                                    graph.degree(v))
              for v in labels}
    done = {v: False for v in labels}
    rounds = 0
    # round 0 messages
    outbox: Dict[Vertex, Dict[Vertex, Any]] = {}
    for v in labels:
        outbox[v] = {w: spec.message(states[v], uid_of[w])
                     for w in graph.neighbors(v)}
    while not all(done.values()):
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("local aggregate algorithm did not converge")
        inbox: Dict[Vertex, List[Any]] = {v: [] for v in labels}
        for sender, msgs in outbox.items():
            for recipient, msg in msgs.items():
                inbox[recipient].append(msg)
                if bit_counter is not None:
                    bit_counter(sender, recipient, msg)
        outbox = {}
        for v in labels:
            if done[v]:
                outbox[v] = {}
                continue
            agg = spec.identity
            for msg in inbox[v]:
                agg = spec.combine(agg, msg)
            states[v], finished = spec.update(states[v], agg)
            if finished:
                done[v] = True
                outbox[v] = {}
            else:
                outbox[v] = {w: spec.message(states[v], uid_of[w])
                             for w in graph.neighbors(v)}
    return {v: spec.output(states[v]) for v in labels}, rounds


def run_local_aggregate(graph: Graph, spec: LocalAggregateSpec,
                        max_rounds: int = 10000) -> LocalAggregateRun:
    outputs, rounds = _execute(graph, spec, max_rounds, None)
    return LocalAggregateRun(outputs=outputs, rounds=rounds)


def simulate_shared_two_party(
    graph: Graph,
    alice: Iterable[Vertex],
    shared: Iterable[Vertex],
    spec: LocalAggregateSpec,
    max_rounds: int = 10000,
) -> LocalAggregateRun:
    """The Theorem 4.8 simulation.

    Vertices split into Alice's, Bob's, and *shared* (simulated by both
    players).  Per round, each shared vertex costs the exchange of both
    players' partial aggregates; messages on direct Alice-Bob edges are
    charged like in Theorem 1.1.  Messages to, from, or within a single
    side are free.
    """
    alice_set = set(alice)
    shared_set = set(shared)
    bob_set = set(graph.vertices()) - alice_set - shared_set
    counters = {"shared": 0, "direct": 0}
    partials: Dict[Vertex, Dict[str, Any]] = {}

    def side(v: Vertex) -> str:
        if v in shared_set:
            return "shared"
        return "A" if v in alice_set else "B"

    def bit_counter(sender: Vertex, recipient: Vertex, msg: Any) -> None:
        s, r = side(sender), side(recipient)
        if r == "shared" and s in ("A", "B"):
            # absorbed into the side's partial aggregate; the exchange is
            # charged once per shared vertex per round below
            key = partials.setdefault(recipient, {"A": None, "B": None})
            if key[s] is None:
                key[s] = 0
            key[s] = max(key[s], message_bits(msg))
        elif {s, r} == {"A", "B"}:
            counters["direct"] += message_bits(msg)
        # A->A, B->B, shared->anything: free (both players can compute
        # the shared vertex's outgoing messages locally)

    labels = sorted(graph.vertices(), key=repr)
    uid_of = {v: i for i, v in enumerate(labels)}
    n = len(labels)
    states = {v: spec.initial_state(uid_of[v], n, graph.vertex_weight(v),
                                    graph.degree(v))
              for v in labels}
    done = {v: False for v in labels}
    rounds = 0
    outbox: Dict[Vertex, Dict[Vertex, Any]] = {}
    for v in labels:
        outbox[v] = {w: spec.message(states[v], uid_of[w])
                     for w in graph.neighbors(v)}
    while not all(done.values()):
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("local aggregate algorithm did not converge")
        partials.clear()
        inbox: Dict[Vertex, List[Any]] = {v: [] for v in labels}
        for sender, msgs in outbox.items():
            for recipient, msg in msgs.items():
                inbox[recipient].append(msg)
                bit_counter(sender, recipient, msg)
        # charge the partial-aggregate exchange for each shared vertex
        # that received anything this round (both directions)
        for v, parts in partials.items():
            for s in ("A", "B"):
                if parts[s] is not None:
                    counters["shared"] += parts[s]
        outbox = {}
        for v in labels:
            if done[v]:
                outbox[v] = {}
                continue
            agg = spec.identity
            for msg in inbox[v]:
                agg = spec.combine(agg, msg)
            states[v], finished = spec.update(states[v], agg)
            if finished:
                done[v] = True
                outbox[v] = {}
            else:
                outbox[v] = {w: spec.message(states[v], uid_of[w])
                             for w in graph.neighbors(v)}
    outputs = {v: spec.output(states[v]) for v in labels}
    return LocalAggregateRun(outputs=outputs, rounds=rounds,
                             shared_bits=counters["shared"],
                             direct_cut_bits=counters["direct"])


# ----------------------------------------------------------------------
# a concrete member of the class: weight-aware greedy MDS
# ----------------------------------------------------------------------
class GreedyMdsSpec(LocalAggregateSpec):
    """Greedy span/weight MDS selection with distance-2 max aggregation.

    Messages are fixed-width ``(key, flag, 1)`` tuples of O(log n) bits;
    the aggregate combines componentwise as (max, sum, sum) — order
    invariant and partition-splitting, so the algorithm is local
    aggregate in the sense of Definition 4.1.

    Each 4-round phase mirrors
    :class:`repro.congest.algorithms.mds_greedy`: (0) broadcast the
    span/weight key, (1) forward the distance-1 max so every vertex sees
    the distance-2 max, (2) locally-maximal keys join and announce,
    (3) vertices announce domination; span counters refresh and fully
    dominated neighbourhoods halt.
    """

    identity = ((-1, -1), 0, 0)

    SCALE = 1 << 16

    def combine(self, a: Any, b: Any) -> Any:
        return (max(a[0], b[0]), a[1] + b[1], a[2] + b[2])

    def initial_state(self, uid: int, n: int, weight: float, degree: int) -> Any:
        return {
            "uid": uid,
            "weight": weight,
            "phase": 0,
            "in_set": False,
            "dominated": False,
            "undominated_nbrs": degree,
            "my_key": None,
            "best_key": None,
            "just_joined": False,
        }

    def _key(self, state: Dict[str, Any]) -> Tuple[int, int]:
        span = (0 if state["dominated"] else 1) + state["undominated_nbrs"]
        if span <= 0:
            return (0, state["uid"])
        if state["weight"] <= 0:
            ratio = span * self.SCALE * 1000  # free vertices first
        else:
            ratio = int(span * self.SCALE / state["weight"])
        return (max(1, ratio), state["uid"])

    def message(self, state: Dict[str, Any], recipient: int) -> Any:
        phase = state["phase"]
        if phase == 0:
            return (self._key(state), 0, 1)
        if phase == 1:
            return (state["best_key"], 0, 1)
        if phase == 2:
            return ((-1, -1), 1 if state["just_joined"] else 0, 1)
        return ((-1, -1), 1 if state["dominated"] else 0, 1)

    def update(self, state: Dict[str, Any], agg: Any) -> Tuple[Any, bool]:
        phase = state["phase"]
        state = dict(state)
        max_key, flag_sum, count = agg
        if phase == 0:
            state["my_key"] = self._key(state)
            state["best_key"] = max(max_key, state["my_key"])
            state["phase"] = 1
        elif phase == 1:
            overall = max(max_key, state["best_key"])
            join = (not state["in_set"] and state["my_key"][0] > 0
                    and overall == state["my_key"])
            state["just_joined"] = join
            if join:
                state["in_set"] = True
                state["dominated"] = True
            state["phase"] = 2
        elif phase == 2:
            if flag_sum > 0:
                state["dominated"] = True
            state["phase"] = 3
        else:
            # halted neighbours send nothing and are fully dominated
            state["undominated_nbrs"] = count - flag_sum
            state["phase"] = 0
            if state["dominated"] and state["undominated_nbrs"] == 0:
                return state, True
        return state, False

    def output(self, state: Dict[str, Any]) -> bool:
        return state["in_set"]
