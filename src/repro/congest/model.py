"""The synchronous CONGEST simulator.

Design notes
------------
- Vertices are identified by their graph labels.  CONGEST assumes
  O(log n)-bit identifiers; the simulator assigns each label an integer id
  in ``0..n-1`` and exposes both.  Uids follow the canonical label order
  of :func:`repro.graphs.label_sort_key` — ``(type name, repr)`` — so for
  integer labels the order is *repr order* (``10`` before ``2``), not
  numeric order.
- A round proceeds in lockstep: every awake vertex sees the messages
  delivered on its incident edges, updates state, and emits messages for
  the next round.  Message size is measured by :func:`message_bits` and
  checked against the bandwidth.  ``bandwidth=None`` selects the standard
  CONGEST ``Θ(log n)`` bound; ``bandwidth=math.inf`` is the LOCAL model —
  no bound, message sizes still accounted.
- Algorithms are written by subclassing :class:`NodeAlgorithm`.  One
  instance is created per vertex; the simulator owns scheduling and
  delivery only, so algorithms cannot cheat by sharing state.
"""

from __future__ import annotations

import math
import os
from array import array
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple, Union

from repro.graphs import DiGraph, Graph, Vertex, label_sort_key

Message = Any

#: Identity sentinel for the broadcast fast path in ``_check_fast``
#: (``None`` is a legal message, so a private object is required).
_NO_MESSAGE = object()

try:  # numpy accelerates the vectorized engine's per-round counter
    import numpy as _np  # flushes; everything works without it
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

#: Messages-per-round below which the vectorized engine's counter flush
#: uses the pure-python sweep even when numpy is importable (array
#: round-trip overhead beats the win on tiny rounds).  Tests monkeypatch
#: ``_np = None`` to pin the fallback path.
_VEC_NUMPY_MIN = 64

#: The recognised round-loop engines, in documentation order.
ENGINES = ("fast", "reference", "vectorized")

_DEFAULT_ENGINE = "fast"


def default_engine() -> str:
    """The engine :meth:`CongestSimulator.run` uses when none is given."""
    return _DEFAULT_ENGINE


def configure_engine(engine: str) -> str:
    """Set the process-wide default round-loop engine; returns the
    previous default so callers can restore it (the CLI ``--engine``
    flag and the parallel experiment workers route through this)."""
    global _DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}")
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous


class BandwidthExceeded(Exception):
    """A message exceeded the per-edge per-round bandwidth."""


def message_bits(msg: Message) -> int:
    """Size accounting for messages.

    Integers cost their two's-complement width, booleans 1 bit, floats 64,
    strings and byte strings 8 bits per character/byte, ``None`` 1 bit,
    and containers (tuples, lists, sets, frozensets, dicts) the sum of
    their items plus 2 bits of framing per item.  This deliberately
    over-counts a little; the paper's bounds are asymptotic and the
    simulator only needs a consistent, conservative measure.
    """
    if msg is None:
        return 1
    if isinstance(msg, bool):
        return 1
    if isinstance(msg, int):
        return max(1, msg.bit_length() + 1)
    if isinstance(msg, float):
        return 64
    if isinstance(msg, str):
        return 8 * len(msg)
    if isinstance(msg, (bytes, bytearray)):
        return 8 * len(msg)
    if isinstance(msg, (tuple, list)):
        return sum(message_bits(x) + 2 for x in msg)
    if isinstance(msg, dict):
        return sum(message_bits(k) + message_bits(v) + 4 for k, v in msg.items())
    if isinstance(msg, (set, frozenset)):
        return sum(message_bits(x) + 2 for x in msg)
    raise TypeError(f"unsupported message type {type(msg)!r}")


#: Bounded memo for :func:`message_bits`.  Keys are chosen so that no two
#: payloads with *different* bit costs can collide: scalars are keyed by
#: ``(type, value)`` (so ``True``/``1``/``1.0`` — equal under ``==`` but
#: differently sized — land in distinct buckets because their types
#: differ), and tuples are only cached when every element is exactly an
#: ``int`` (an equal tuple containing a ``bool``, e.g. ``(True, 2)`` vs
#: ``(1, 2)``, is never eligible for lookup or insertion, so the
#: collision cannot be observed).  The cache is cleared wholesale when it
#: reaches ``_BITS_CACHE_MAX`` entries — workloads cycle through a small
#: vocabulary of payload shapes, so eviction order is irrelevant.
_BITS_CACHE: Dict[Any, int] = {}
_BITS_CACHE_MAX = 4096


def cached_message_bits(msg: Message) -> int:
    """:func:`message_bits` with memoization for common hashable payloads.

    Falls back to the plain recursive computation for payload shapes the
    safe key scheme (see ``_BITS_CACHE``) does not cover.  Always returns
    exactly ``message_bits(msg)``.
    """
    tp = type(msg)
    if tp is tuple:
        for x in msg:
            if type(x) is not int:
                return message_bits(msg)
        key: Any = msg
    elif tp is str or tp is bytes:
        key = (tp, msg)
    else:
        return message_bits(msg)
    bits = _BITS_CACHE.get(key)
    if bits is None:
        if len(_BITS_CACHE) >= _BITS_CACHE_MAX:
            _BITS_CACHE.clear()
        bits = _BITS_CACHE[key] = message_bits(msg)
    return bits


def default_bandwidth(n: int, c: int = 8) -> int:
    """The standard CONGEST bandwidth ``c · ceil(log2 n)`` bits."""
    return c * max(1, math.ceil(math.log2(max(2, n))))


class NodeContext:
    """Everything a vertex is allowed to see locally.

    Attributes
    ----------
    label : the vertex label in the input graph
    uid : integer identifier in ``0..n-1`` (O(log n) bits)
    neighbors : sorted tuple of neighbour uids
    neighbor_set : the same uids as a frozenset (O(1) membership; the
        simulator's per-message destination check uses this)
    n : number of vertices (standard CONGEST assumption)
    input : per-vertex input (problem specific)
    """

    def __init__(self, label: Vertex, uid: int, neighbors: Tuple[int, ...],
                 n: int, node_input: Any,
                 edge_weights: Dict[int, float],
                 vertex_weight: float) -> None:
        self.label = label
        self.uid = uid
        self.neighbors = neighbors
        self.neighbor_set = frozenset(neighbors)
        self.n = n
        self.input = node_input
        self.edge_weights = edge_weights  # neighbour uid -> weight
        self.vertex_weight = vertex_weight
        self.output: Any = None
        self.halted = False

    def halt(self, output: Any = None) -> None:
        self.output = output
        self.halted = True


class NodeAlgorithm:
    """Base class for per-vertex CONGEST algorithms.

    Subclasses override :meth:`on_start` (messages for round 1) and
    :meth:`on_round` (invoked each round with the messages received).
    Both return a dict ``{neighbor uid: message}``; omitted neighbours get
    nothing.  Call ``ctx.halt(output)`` to stop; a halted vertex neither
    sends nor processes further messages.
    """

    def on_start(self, ctx: NodeContext) -> Dict[int, Message]:
        return {}

    def on_round(self, ctx: NodeContext, messages: Dict[int, Message]) -> Dict[int, Message]:
        raise NotImplementedError


class CongestSimulator:
    """Run a :class:`NodeAlgorithm` over a graph, enforcing bandwidth.

    The counters (``rounds``, ``total_messages``, ``total_bits``,
    ``max_message_bits``) are **per run**: :meth:`run` resets them on
    entry, so a reused simulator reports statistics for its latest run
    only.  Pass ``tracer=`` (see :mod:`repro.obs.trace`) to capture the
    full structured event stream; the legacy ``observer`` callback is
    kept working as an adapter layered on the same stream.
    """

    def __init__(
        self,
        graph: Union[Graph, DiGraph],
        bandwidth: Optional[float] = None,
        bandwidth_factor: int = 8,
        tracer: Optional[Any] = None,
    ) -> None:
        """``bandwidth=None`` selects the standard CONGEST
        ``bandwidth_factor·log2 n`` bits; ``math.inf`` gives the LOCAL
        model (no bound, sizes still accounted).  ``tracer=None``
        consults the ambient :func:`repro.obs.trace.default_tracer`
        (active inside ``trace_to_directory`` regions); pass
        ``NullTracer()`` to force tracing off.  A ``str``/path tracer
        opens a file tracer at that path via
        :func:`repro.obs.trace.open_tracer` (format inferred from the
        extension: ``.jsonl`` → JSON lines, else compact binary)."""
        self.graph = graph
        base = graph.to_undirected() if isinstance(graph, DiGraph) else graph
        self._base = base
        self.labels = sorted(base.vertices(), key=label_sort_key)
        self.uid_of = {v: i for i, v in enumerate(self.labels)}
        self.n = len(self.labels)
        if bandwidth is None:
            bandwidth = default_bandwidth(self.n, bandwidth_factor)
        self.bandwidth = bandwidth
        self.rounds = 0
        self.total_messages = 0
        self.total_bits = 0
        self.max_message_bits = 0
        if tracer is None:
            from repro.obs.trace import default_tracer
            tracer = default_tracer()
        elif isinstance(tracer, (str, os.PathLike)):
            from repro.obs.trace import open_tracer
            tracer = open_tracer(tracer)
        self.tracer = tracer
        #: the active event sink during :meth:`run` (tracer + observer
        #: adapter), or ``None`` when tracing is fully disabled.
        self._sink: Optional["Tracer"] = None
        #: optional callback ``(sender uid, receiver uid, bits)`` invoked on
        #: every message; used by the Theorem 1.1 two-party simulation.
        #: Internally implemented as an :class:`ObserverTracer` riding the
        #: event stream.
        self.observer: Optional[Callable[[int, int, int], None]] = None

    def _compose_sink(self) -> Optional["Tracer"]:
        """Combine the explicit tracer and the legacy observer into one
        sink; ``None`` when neither wants events (the hot path then skips
        event construction entirely)."""
        sinks = []
        if self.tracer is not None and getattr(self.tracer, "enabled", True):
            sinks.append(self.tracer)
        if self.observer is not None:
            from repro.obs.trace import ObserverTracer
            sinks.append(ObserverTracer(self.observer))
        if not sinks:
            return None
        if len(sinks) == 1:
            return sinks[0]
        from repro.obs.trace import MultiTracer
        return MultiTracer(sinks)

    def _emit(self, kind: str, **data: Any) -> None:
        from repro.obs.trace import TraceEvent
        self._sink.emit(TraceEvent(kind, self.rounds, data))

    def run(
        self,
        algorithm_factory: Callable[[], NodeAlgorithm],
        inputs: Optional[Dict[Vertex, Any]] = None,
        max_rounds: int = 100000,
        engine: Optional[str] = None,
    ) -> Dict[Vertex, Any]:
        """Execute until every vertex halts; return outputs by label.

        Counters are reset on entry, so ``sim.rounds`` etc. always
        describe the most recent run.

        ``engine`` selects the round loop: ``"fast"`` runs the
        active-set scheduler, ``"vectorized"`` the struct-of-arrays loop
        with batched counter accounting, and ``"reference"`` the
        straight-line loop both were derived from; ``None`` (the
        default) resolves to the process-wide default set by
        :func:`configure_engine` (initially ``"fast"``).  All three are
        observably identical — same outputs, counters, error selection,
        and trace event stream — and the ``congest_engine_equivalence``
        check in :mod:`repro.check` enforces this; ``"reference"``
        exists as that check's oracle and as executable documentation of
        the semantics.
        """
        if engine is None:
            engine = _DEFAULT_ENGINE
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}")
        self.rounds = 0
        self.total_messages = 0
        self.total_bits = 0
        self.max_message_bits = 0
        inputs = inputs or {}
        base = self._base
        contexts: Dict[int, NodeContext] = {}
        algos: Dict[int, NodeAlgorithm] = {}
        labels = self.labels
        for label in labels:
            uid = self.uid_of[label]
            nbrs = tuple(sorted(self.uid_of[w] for w in base.neighbors(label)))
            # Built from the sorted uid tuple, NOT by iterating the
            # neighbour set: set iteration order varies with
            # PYTHONHASHSEED, and edge_weights must present the same
            # dict order in every process.
            weights = {w: base.edge_weight(label, labels[w]) for w in nbrs}
            contexts[uid] = NodeContext(
                label, uid, nbrs, self.n, inputs.get(label),
                weights, base.vertex_weight(label))
            algos[uid] = algorithm_factory()

        self._sink = sink = self._compose_sink()
        if sink is not None:
            algo_name = type(next(iter(algos.values()))).__name__ \
                if algos else "?"
            self._emit("run_start", n=self.n, edges=base.m,
                       bandwidth=self.bandwidth, algorithm=algo_name)
        try:
            if engine == "fast":
                self._loop_fast(contexts, algos, max_rounds, sink)
            elif engine == "vectorized":
                self._loop_vectorized(contexts, algos, max_rounds, sink)
            else:
                self._loop_reference(contexts, algos, max_rounds, sink)
            if sink is not None:
                self._emit("run_end", rounds=self.rounds,
                           total_messages=self.total_messages,
                           total_bits=self.total_bits,
                           max_message_bits=self.max_message_bits)
        finally:
            if sink is not None:
                sink.flush()
            self._sink = None
        return {ctx.label: ctx.output for ctx in contexts.values()}

    def _loop_fast(
        self,
        contexts: Dict[int, NodeContext],
        algos: Dict[int, NodeAlgorithm],
        max_rounds: int,
        sink: Optional["Tracer"],
    ) -> None:
        """Active-set round loop.

        Instead of scanning every context each round, it keeps the list
        of non-halted uids (ascending, matching the reference loop's
        iteration order so halt/message events and first-error selection
        are identical), stores only non-empty outboxes, and allocates
        inbox dicts only for uids that actually receive something.  With
        tracing off (``sink is None``) message accounting goes through
        :meth:`_check_fast`, which skips event construction and the
        defensive outbox copy and memoizes :func:`message_bits`.
        """
        check = self._check if sink is not None else self._check_fast
        # round 0: on_start.  Every vertex participates, and a vertex
        # that halts here still gets its messages delivered next round.
        outbox: List[Tuple[int, Dict[int, Message]]] = []
        active: List[int] = []
        for uid, ctx in contexts.items():
            msgs = check(algos[uid].on_start(ctx), ctx)
            if msgs:
                outbox.append((uid, msgs))
            if ctx.halted:
                if sink is not None:
                    self._emit("halt", uid=uid)
            else:
                active.append(uid)

        n = len(contexts)
        while active:
            if self.rounds >= max_rounds:
                raise RuntimeError(f"exceeded {max_rounds} rounds")
            self.rounds += 1
            if sink is not None:
                self._emit("round_start", active=len(active))
                msgs_before = self.total_messages
                bits_before = self.total_bits
            # Deliver.  Senders appear in ascending uid order, so each
            # receiver's inbox is keyed by ascending sender uid exactly
            # as the reference loop builds it.
            inbox: Dict[int, Dict[int, Message]] = {}
            for sender, msgs in outbox:
                for receiver, msg in msgs.items():
                    box = inbox.get(receiver)
                    if box is None:
                        box = inbox[receiver] = {}
                    box[sender] = msg
            outbox = []
            new_active: List[int] = []
            for uid in active:
                ctx = contexts[uid]
                # Non-receivers get a fresh empty dict (algorithms own
                # and may mutate their inbox).
                msgs = check(
                    algos[uid].on_round(ctx, inbox.get(uid) or {}), ctx)
                if msgs:
                    outbox.append((uid, msgs))
                if ctx.halted:
                    if sink is not None:
                        self._emit("halt", uid=uid)
                else:
                    new_active.append(uid)
            active = new_active
            if sink is not None:
                self._emit("round_end",
                           messages=self.total_messages - msgs_before,
                           bits=self.total_bits - bits_before,
                           halted=n - len(active))

    def _loop_vectorized(
        self,
        contexts: Dict[int, NodeContext],
        algos: Dict[int, NodeAlgorithm],
        max_rounds: int,
        sink: Optional["Tracer"],
    ) -> None:
        """Struct-of-arrays round loop (``engine="vectorized"``).

        Outboxes are not kept as per-sender dicts: every checked message
        is appended to flat per-round buffers — parallel ``array('q')``
        columns of sender uid, receiver uid, and payload id, plus a
        payload table deduplicated by object identity so a payload
        broadcast to ``k`` neighbours is stored and measured once.
        Counter accounting is batched: per vertex the outgoing batch is
        validated and appended (:meth:`_ingest_vec`), and once per round
        the counters are flushed from the buffers (:meth:`_flush_vec`) —
        a numpy gather/reduce when the round is large enough, else a
        pure-python sweep.  The flush sits in a ``finally`` so the
        documented partial-counter semantics survive a mid-round raise:
        the buffers then hold exactly the messages checked so far, a
        :class:`BandwidthExceeded` offender included, a non-neighbor
        ``ValueError`` offender excluded.

        With a sink attached, validation and accounting go through
        :meth:`_check` per batch instead — the event stream must
        interleave per message — and the SoA buffers carry delivery
        only.  Vertex iteration is the fast loop's ascending active
        list, so halt events and first-error selection are identical.
        """
        traced = sink is not None
        senders = array("q")
        receivers = array("q")
        pids = array("q")
        pbits = array("q")
        payloads: List[Message] = []
        pid_of: Dict[int, int] = {}

        # round 0: on_start
        active: List[int] = []
        try:
            for uid, ctx in contexts.items():
                raw = algos[uid].on_start(ctx)
                if traced:
                    self._check(raw, ctx)
                if raw:
                    self._ingest_vec(raw, ctx, senders, receivers, pids,
                                     pbits, payloads, pid_of, traced)
                if ctx.halted:
                    if traced:
                        self._emit("halt", uid=uid)
                else:
                    active.append(uid)
        finally:
            if not traced:
                self._flush_vec(pids, pbits)

        n = len(contexts)
        while active:
            if self.rounds >= max_rounds:
                raise RuntimeError(f"exceeded {max_rounds} rounds")
            self.rounds += 1
            if traced:
                self._emit("round_start", active=len(active))
                msgs_before = self.total_messages
                bits_before = self.total_bits
            # Deliver from the previous round's buffers.  Append order
            # was ascending sender uid with batch dict order within a
            # sender, so replaying it keys each inbox by ascending
            # sender exactly as the reference loop builds it.
            inbox: Dict[int, Dict[int, Message]] = {}
            for i in range(len(pids)):
                r = receivers[i]
                box = inbox.get(r)
                if box is None:
                    box = inbox[r] = {}
                box[senders[i]] = payloads[pids[i]]
            senders, receivers, pids, pbits = (
                array("q"), array("q"), array("q"), array("q"))
            payloads = []
            pid_of = {}
            new_active: List[int] = []
            try:
                for uid in active:
                    ctx = contexts[uid]
                    raw = algos[uid].on_round(ctx, inbox.get(uid) or {})
                    if traced:
                        self._check(raw, ctx)
                    if raw:
                        self._ingest_vec(raw, ctx, senders, receivers,
                                         pids, pbits, payloads, pid_of,
                                         traced)
                    if ctx.halted:
                        if traced:
                            self._emit("halt", uid=uid)
                    else:
                        new_active.append(uid)
            finally:
                if not traced:
                    self._flush_vec(pids, pbits)
            active = new_active
            if traced:
                self._emit("round_end",
                           messages=self.total_messages - msgs_before,
                           bits=self.total_bits - bits_before,
                           halted=n - len(active))

    def _ingest_vec(
        self,
        raw: Dict[int, Message],
        ctx: NodeContext,
        senders: array,
        receivers: array,
        pids: array,
        pbits: array,
        payloads: List[Message],
        pid_of: Dict[int, int],
        traced: bool,
    ) -> None:
        """Validate one outgoing batch and append it to the round's SoA
        buffers (see :meth:`_loop_vectorized`).

        The payload table is per round, so every identity key in
        ``pid_of`` refers to an object kept alive by ``payloads`` — a
        recycled ``id()`` can never alias a dead entry.  Any payload
        over the bandwidth raises at its *first* occurrence, so
        memoized pids never need re-checking.  In traced mode
        :meth:`_check` already validated and counted the batch; only
        the appends remain.
        """
        uid = ctx.uid
        neighbor_set = ctx.neighbor_set
        # C-level subset check; the per-message membership walk only
        # runs when it fails (to find the first offender in order).
        all_ok = traced or raw.keys() <= neighbor_set
        bandwidth = self.bandwidth
        for receiver, msg in raw.items():
            if not all_ok and receiver not in neighbor_set:
                raise ValueError(
                    f"vertex {uid} sending to non-neighbor {receiver}")
            pid = pid_of.get(id(msg))
            if pid is None:
                bits = cached_message_bits(msg)
                pid = len(payloads)
                pid_of[id(msg)] = pid
                payloads.append(msg)
                pbits.append(bits)
                senders.append(uid)
                receivers.append(receiver)
                pids.append(pid)
                if not traced and bits > bandwidth:
                    raise BandwidthExceeded(
                        f"{bits}-bit message exceeds bandwidth "
                        f"{self.bandwidth}")
            else:
                senders.append(uid)
                receivers.append(receiver)
                pids.append(pid)

    def _flush_vec(self, pids: array, pbits: array) -> None:
        """Fold one round's SoA buffers into the public counters.

        ``total_bits``/``max_message_bits`` are a gather of per-payload
        bit sizes over the message column — ``np.frombuffer`` views the
        ``array('q')`` buffers zero-copy and reduces in C — with a
        pure-python sweep below ``_VEC_NUMPY_MIN`` messages or when
        numpy is unavailable.
        """
        k = len(pids)
        if not k:
            return
        self.total_messages += k
        if _np is not None and k >= _VEC_NUMPY_MIN:
            per_msg = _np.frombuffer(pbits, dtype=_np.int64)[
                _np.frombuffer(pids, dtype=_np.int64)]
            self.total_bits += int(per_msg.sum())
            mx = int(per_msg.max())
        else:
            total = 0
            mx = 0
            for p in pids:
                b = pbits[p]
                total += b
                if b > mx:
                    mx = b
            self.total_bits += total
        if mx > self.max_message_bits:
            self.max_message_bits = mx

    def _loop_reference(
        self,
        contexts: Dict[int, NodeContext],
        algos: Dict[int, NodeAlgorithm],
        max_rounds: int,
        sink: Optional["Tracer"],
    ) -> None:
        """The straight-line round loop the fast engine is checked
        against: scans every context each round and allocates an inbox
        per vertex, trading speed for obviousness."""
        # round 0: on_start
        outbox: Dict[int, Dict[int, Message]] = {}
        for uid, ctx in contexts.items():
            outbox[uid] = self._check(algos[uid].on_start(ctx), ctx)
            if sink is not None and ctx.halted:
                self._emit("halt", uid=uid)

        halted_total = sum(1 for ctx in contexts.values() if ctx.halted)
        while not all(ctx.halted for ctx in contexts.values()):
            if self.rounds >= max_rounds:
                raise RuntimeError(f"exceeded {max_rounds} rounds")
            self.rounds += 1
            if sink is not None:
                self._emit("round_start",
                           active=len(contexts) - halted_total)
                msgs_before = self.total_messages
                bits_before = self.total_bits
            inbox: Dict[int, Dict[int, Message]] = {uid: {} for uid in contexts}
            for sender, msgs in outbox.items():
                for receiver, msg in msgs.items():
                    inbox[receiver][sender] = msg
            outbox = {}
            for uid, ctx in contexts.items():
                if ctx.halted:
                    outbox[uid] = {}
                    continue
                outbox[uid] = self._check(
                    algos[uid].on_round(ctx, inbox[uid]), ctx)
                if ctx.halted:
                    halted_total += 1
                    if sink is not None:
                        self._emit("halt", uid=uid)
            if sink is not None:
                self._emit("round_end",
                           messages=self.total_messages - msgs_before,
                           bits=self.total_bits - bits_before,
                           halted=halted_total)

    def _check(self, msgs: Dict[int, Message], ctx: NodeContext) -> Dict[int, Message]:
        # A vertex may halt and still deliver the messages it returned in
        # the same round; it is only skipped from the next round onwards.
        #
        # Counter semantics on failure: messages are checked in the
        # batch's iteration order and the counters (``total_messages``,
        # ``total_bits``, ``max_message_bits``) are updated *per message
        # before* its bandwidth check.  When :class:`BandwidthExceeded`
        # is raised the counters therefore include every message checked
        # so far — the offending one included — and exclude the rest of
        # the rejected batch.  A simulator that raised mid-run reports
        # partial counts, not the counts of a completed run.
        sink = self._sink
        for receiver, msg in msgs.items():
            if receiver not in ctx.neighbor_set:
                raise ValueError(
                    f"vertex {ctx.uid} sending to non-neighbor {receiver}")
            bits = message_bits(msg)
            self.total_messages += 1
            self.total_bits += bits
            self.max_message_bits = max(self.max_message_bits, bits)
            ok = bits <= self.bandwidth
            if sink is not None:
                self._emit("message", sender=ctx.uid, receiver=receiver,
                           bits=bits, ok=ok)
            if not ok:
                raise BandwidthExceeded(
                    f"{bits}-bit message exceeds bandwidth {self.bandwidth}")
        return dict(msgs)

    def _check_fast(self, msgs: Dict[int, Message], ctx: NodeContext) -> Dict[int, Message]:
        # :meth:`_check` minus event construction and the defensive
        # ``dict(msgs)`` copy (no sink can observe the batch, and the
        # outbox is consumed before the algorithm runs again, so the
        # algorithm's own dict is delivered as-is).  Counters accumulate
        # locally and are flushed both on success and *before* either
        # raise, preserving the partial-counter semantics documented
        # above: on failure they include every message checked so far —
        # for :class:`BandwidthExceeded` the offending message included,
        # for the non-neighbor :class:`ValueError` excluded.
        if not msgs:
            return msgs
        neighbor_set = ctx.neighbor_set
        bandwidth = self.bandwidth
        batch_messages = 0
        batch_bits = 0
        batch_max = self.max_message_bits
        last_msg: Any = _NO_MESSAGE
        last_bits = 0
        for receiver, msg in msgs.items():
            if receiver not in neighbor_set:
                self.total_messages += batch_messages
                self.total_bits += batch_bits
                self.max_message_bits = batch_max
                raise ValueError(
                    f"vertex {ctx.uid} sending to non-neighbor {receiver}")
            if msg is last_msg:
                # broadcast fast path: the same payload object sent to
                # several neighbors is measured once
                bits = last_bits
            else:
                bits = cached_message_bits(msg)
                last_msg = msg
                last_bits = bits
            batch_messages += 1
            batch_bits += bits
            if bits > batch_max:
                batch_max = bits
            if bits > bandwidth:
                self.total_messages += batch_messages
                self.total_bits += batch_bits
                self.max_message_bits = batch_max
                raise BandwidthExceeded(
                    f"{bits}-bit message exceeds bandwidth {self.bandwidth}")
        self.total_messages += batch_messages
        self.total_bits += batch_bits
        self.max_message_bits = batch_max
        return msgs
