"""Lightweight graph structures used throughout the reproduction.

The paper's constructions are described over vertices with rich symbolic
names (row vertices ``('a', 1, i)``, bit-gadget vertices ``('f', 'A1', h)``,
and so on).  We therefore use hashable labels as vertices and keep explicit
adjacency dictionaries, with optional vertex weights and edge weights.

Two classes are provided:

- :class:`Graph` — simple undirected graphs with optional weights.
- :class:`DiGraph` — simple directed graphs with optional weights.

Both intentionally stay small and dependency-free; conversion helpers to
``networkx`` exist for cross-checking in tests.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


class GraphError(Exception):
    """Raised on structurally invalid graph operations."""


def label_sort_key(v: Vertex) -> Tuple[str, str]:
    """The canonical vertex ordering key: ``(type name, repr)``.

    Every place that needs a total order over arbitrary hashable labels
    (edge-weight keys, CONGEST uid assignment, content hashing) sorts by
    this key.  The type name prefix keeps labels of different types from
    colliding when their ``repr`` happens to coincide; within a type the
    order is *repr order*, which for integers is lexicographic
    (``repr(10) < repr(2)``), not numeric.
    """
    return (type(v).__name__, repr(v))


class Graph:
    """A simple undirected graph with optional vertex and edge weights.

    Vertices are arbitrary hashable labels.  Parallel edges and self loops
    are rejected: none of the paper's constructions use them, and rejecting
    them catches construction bugs early.
    """

    directed = False

    def __init__(self) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._edge_weight: Dict[Edge, float] = {}
        self._vertex_weight: Dict[Vertex, float] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex, weight: Optional[float] = None) -> None:
        """Add ``v`` (idempotent); optionally (re)set its weight."""
        if v not in self._adj:
            self._adj[v] = set()
        if weight is not None:
            self._vertex_weight[v] = weight

    def add_vertices(self, vs: Iterable[Vertex], weight: Optional[float] = None) -> None:
        for v in vs:
            self.add_vertex(v, weight=weight)

    def add_edge(self, u: Vertex, v: Vertex, weight: Optional[float] = None) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed."""
        if u == v:
            raise GraphError(f"self loop on {u!r} rejected")
        self.add_vertex(u)
        self.add_vertex(v)
        self._adj[u].add(v)
        self._adj[v].add(u)
        if weight is not None:
            self._edge_weight[self._key(u, v)] = weight

    def add_edges(self, edges: Iterable[Edge], weight: Optional[float] = None) -> None:
        for u, v in edges:
            self.add_edge(u, v, weight=weight)

    def add_clique(self, vs: Iterable[Vertex], weight: Optional[float] = None) -> None:
        vs = list(vs)
        for i, u in enumerate(vs):
            self.add_vertex(u)
            for v in vs[i + 1:]:
                self.add_edge(u, v, weight=weight)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not present")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._edge_weight.pop(self._key(u, v), None)

    def remove_vertex(self, v: Vertex) -> None:
        if v not in self._adj:
            raise GraphError(f"vertex {v!r} not present")
        for u in list(self._adj[v]):
            self.remove_edge(u, v)
        del self._adj[v]
        self._vertex_weight.pop(v, None)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @staticmethod
    def _key(u: Vertex, v: Vertex) -> Edge:
        ku, kv = label_sort_key(u), label_sort_key(v)
        if ku == kv and u != v:
            # Two distinct labels with identical type and repr would
            # silently share one edge-weight key; refuse early.
            raise GraphError(
                f"label collision: distinct vertices {u!r} and {v!r} have "
                f"identical sort key {ku}")
        return (u, v) if ku <= kv else (v, u)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    @property
    def n(self) -> int:
        return len(self._adj)

    @property
    def m(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def vertices(self) -> List[Vertex]:
        return list(self._adj)

    def edges(self) -> List[Edge]:
        # neighbour sets iterate in hash order, which for str/tuple labels
        # varies with PYTHONHASHSEED; sort so the edge list (and every
        # construction built by iterating it) is process-independent
        seen = set()
        out = []
        for u, nbrs in self._adj.items():
            for v in sorted(nbrs, key=label_sort_key):
                key = self._key(u, v)
                if key not in seen:
                    seen.add(key)
                    out.append(key)
        return out

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: Vertex) -> Set[Vertex]:
        return set(self._adj[v])

    def degree(self, v: Vertex) -> int:
        return len(self._adj[v])

    def max_degree(self) -> int:
        return max((len(nbrs) for nbrs in self._adj.values()), default=0)

    def closed_neighborhood(self, v: Vertex) -> Set[Vertex]:
        return self._adj[v] | {v}

    def edge_weight(self, u: Vertex, v: Vertex, default: float = 1.0) -> float:
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not present")
        return self._edge_weight.get(self._key(u, v), default)

    def vertex_weight(self, v: Vertex, default: float = 1.0) -> float:
        if v not in self._adj:
            raise GraphError(f"vertex {v!r} not present")
        return self._vertex_weight.get(v, default)

    def set_vertex_weight(self, v: Vertex, weight: float) -> None:
        self.add_vertex(v, weight=weight)

    def set_edge_weight(self, u: Vertex, v: Vertex, weight: float) -> None:
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not present")
        self._edge_weight[self._key(u, v)] = weight

    def total_edge_weight(self) -> float:
        return sum(self.edge_weight(u, v) for u, v in self.edges())

    def content_hash(self) -> str:
        """Canonical SHA-256 of the graph's full content.

        Covers directedness, every vertex with its effective weight, and
        every edge with its effective weight, all in :func:`label_sort_key`
        order — so two graphs built in different insertion orders hash
        identically iff they are the same weighted graph.  This is the
        solver-cache key material (see :mod:`repro.solvers.cache`).
        """
        return _content_hash(self)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        g = Graph()
        for v in self._adj:
            g.add_vertex(v)
        g._vertex_weight = dict(self._vertex_weight)
        for u, v in self.edges():
            g.add_edge(u, v)
        g._edge_weight = dict(self._edge_weight)
        return g

    def induced_subgraph(self, vs: Iterable[Vertex]) -> "Graph":
        keep = set(vs)
        for v in keep:
            if v not in self._adj:
                raise GraphError(f"vertex {v!r} not present")
        g = Graph()
        # insert in the parent's (deterministic) vertex order, not in
        # hash order of `keep`, so the subgraph is process-independent
        for v in self.vertices():
            if v in keep:
                g.add_vertex(v, weight=self._vertex_weight.get(v))
        for u, v in self.edges():
            if u in keep and v in keep:
                g.add_edge(u, v, weight=self._edge_weight.get(self._key(u, v)))
        return g

    def bfs_distances(self, source: Vertex) -> Dict[Vertex, int]:
        """Unweighted hop distances from ``source`` (unreachable omitted)."""
        dist = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def connected_components(self) -> List[Set[Vertex]]:
        remaining = set(self._adj)
        comps = []
        while remaining:
            src = next(iter(remaining))
            comp = set(self.bfs_distances(src))
            comps.append(comp)
            remaining -= comp
        return comps

    def is_connected(self) -> bool:
        if not self._adj:
            return True
        return len(self.bfs_distances(next(iter(self._adj)))) == self.n

    def diameter(self) -> int:
        """Hop diameter; raises on disconnected graphs."""
        if not self.is_connected():
            raise GraphError("diameter of a disconnected graph")
        best = 0
        for v in self._adj:
            best = max(best, max(self.bfs_distances(v).values(), default=0))
        return best

    def relabel(self, mapping: Dict[Vertex, Vertex]) -> "Graph":
        """Return a copy with vertices renamed through ``mapping``.

        Vertices absent from ``mapping`` keep their labels.  The mapping
        must be injective on the vertex set.
        """
        full = {v: mapping.get(v, v) for v in self._adj}
        if len(set(full.values())) != len(full):
            raise GraphError("relabel mapping is not injective")
        g = Graph()
        for v in self._adj:
            g.add_vertex(full[v], weight=self._vertex_weight.get(v))
        for u, v in self.edges():
            g.add_edge(full[u], full[v],
                       weight=self._edge_weight.get(self._key(u, v)))
        return g

    def to_networkx(self):
        import networkx as nx

        g = nx.Graph()
        for v in self._adj:
            g.add_node(v, weight=self.vertex_weight(v))
        for u, v in self.edges():
            g.add_edge(u, v, weight=self.edge_weight(u, v))
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.n}, m={self.m})"


class DiGraph:
    """A simple directed graph with optional vertex and edge weights."""

    directed = True

    def __init__(self) -> None:
        self._succ: Dict[Vertex, Set[Vertex]] = {}
        self._pred: Dict[Vertex, Set[Vertex]] = {}
        self._edge_weight: Dict[Edge, float] = {}
        self._vertex_weight: Dict[Vertex, float] = {}

    def add_vertex(self, v: Vertex, weight: Optional[float] = None) -> None:
        if v not in self._succ:
            self._succ[v] = set()
            self._pred[v] = set()
        if weight is not None:
            self._vertex_weight[v] = weight

    def add_vertices(self, vs: Iterable[Vertex], weight: Optional[float] = None) -> None:
        for v in vs:
            self.add_vertex(v, weight=weight)

    def add_edge(self, u: Vertex, v: Vertex, weight: Optional[float] = None) -> None:
        if u == v:
            raise GraphError(f"self loop on {u!r} rejected")
        self.add_vertex(u)
        self.add_vertex(v)
        self._succ[u].add(v)
        self._pred[v].add(u)
        if weight is not None:
            self._edge_weight[(u, v)] = weight

    def add_edges(self, edges: Iterable[Edge], weight: Optional[float] = None) -> None:
        for u, v in edges:
            self.add_edge(u, v, weight=weight)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    @property
    def n(self) -> int:
        return len(self._succ)

    @property
    def m(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def vertices(self) -> List[Vertex]:
        return list(self._succ)

    def edges(self) -> Iterator[Edge]:
        # sorted for the same process-independence as Graph.edges()
        for u, succ in self._succ.items():
            for v in sorted(succ, key=label_sort_key):
                yield (u, v)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._succ and v in self._succ[u]

    def successors(self, v: Vertex) -> Set[Vertex]:
        return set(self._succ[v])

    def predecessors(self, v: Vertex) -> Set[Vertex]:
        return set(self._pred[v])

    def out_degree(self, v: Vertex) -> int:
        return len(self._succ[v])

    def in_degree(self, v: Vertex) -> int:
        return len(self._pred[v])

    def edge_weight(self, u: Vertex, v: Vertex, default: float = 1.0) -> float:
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not present")
        return self._edge_weight.get((u, v), default)

    def vertex_weight(self, v: Vertex, default: float = 1.0) -> float:
        if v not in self._succ:
            raise GraphError(f"vertex {v!r} not present")
        return self._vertex_weight.get(v, default)

    def content_hash(self) -> str:
        """Canonical SHA-256 of the digraph's content (see
        :meth:`Graph.content_hash`; arc direction is part of the key)."""
        return _content_hash(self)

    def copy(self) -> "DiGraph":
        g = DiGraph()
        for v in self._succ:
            g.add_vertex(v)
        g._vertex_weight = dict(self._vertex_weight)
        for u, v in self.edges():
            g.add_edge(u, v)
        g._edge_weight = dict(self._edge_weight)
        return g

    def to_undirected(self) -> Graph:
        """Forget orientations (edge weights are kept; conflicts resolve
        arbitrarily to the last edge seen)."""
        g = Graph()
        for v in self._succ:
            g.add_vertex(v, weight=self._vertex_weight.get(v))
        for u, v in self.edges():
            g.add_edge(u, v, weight=self._edge_weight.get((u, v)))
        return g

    def to_networkx(self):
        import networkx as nx

        g = nx.DiGraph()
        for v in self._succ:
            g.add_node(v, weight=self.vertex_weight(v))
        for u, v in self.edges():
            g.add_edge(u, v, weight=self.edge_weight(u, v))
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiGraph(n={self.n}, m={self.m})"


def _content_hash(graph) -> str:
    """Shared :meth:`Graph.content_hash` / :meth:`DiGraph.content_hash`
    implementation: hash vertices and edges with their effective weights
    in canonical label order, guarding against label-key collisions."""
    h = hashlib.sha256()
    h.update(b"digraph;" if graph.directed else b"graph;")
    verts = sorted(graph.vertices(), key=label_sort_key)
    for a, b in zip(verts, verts[1:]):
        if a != b and label_sort_key(a) == label_sort_key(b):
            raise GraphError(
                f"label collision: distinct vertices {a!r} and {b!r} have "
                f"identical sort key {label_sort_key(a)}")
    for v in verts:
        tname, rep = label_sort_key(v)
        h.update(f"V|{tname}|{rep}|{graph.vertex_weight(v)!r};".encode())
    if graph.directed:
        arcs = sorted(graph.edges(),
                      key=lambda e: (label_sort_key(e[0]), label_sort_key(e[1])))
    else:
        arcs = sorted(
            (graph._key(u, v) for u, v in graph.edges()),
            key=lambda e: (label_sort_key(e[0]), label_sort_key(e[1])))
    for u, v in arcs:
        tu, ru = label_sort_key(u)
        tv, rv = label_sort_key(v)
        h.update(f"E|{tu}|{ru}|{tv}|{rv}|{graph.edge_weight(u, v)!r};".encode())
    return h.hexdigest()


def complete_graph(n: int) -> Graph:
    """K_n on vertices ``0..n-1``."""
    g = Graph()
    g.add_clique(range(n))
    if n == 1:
        g.add_vertex(0)
    return g


def cycle_graph(n: int) -> Graph:
    """C_n on vertices ``0..n-1``."""
    if n < 3:
        raise GraphError("cycles need at least 3 vertices")
    g = Graph()
    for i in range(n):
        g.add_edge(i, (i + 1) % n)
    return g


def path_graph(n: int) -> Graph:
    """P_n on vertices ``0..n-1``."""
    g = Graph()
    g.add_vertex(0)
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def random_graph(n: int, p: float, rng) -> Graph:
    """Erdős–Rényi G(n, p) using the supplied ``random.Random``."""
    g = Graph()
    g.add_vertices(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g
