"""Lightweight graph structures used throughout the reproduction.

The paper's constructions are described over vertices with rich symbolic
names (row vertices ``('a', 1, i)``, bit-gadget vertices ``('f', 'A1', h)``,
and so on).  We therefore use hashable labels as vertices and keep explicit
adjacency dictionaries, with optional vertex weights and edge weights.

Two classes are provided:

- :class:`Graph` — simple undirected graphs with optional weights.
- :class:`DiGraph` — simple directed graphs with optional weights.

Both intentionally stay small and dependency-free; conversion helpers to
``networkx`` exist for cross-checking in tests.
"""

from __future__ import annotations

import copyreg
import hashlib
import pickle
import struct
import sys
import zlib
from array import array
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, \
    Set, Tuple, Union

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


class GraphError(Exception):
    """Raised on structurally invalid graph operations."""


#: Bounded memo for :func:`label_sort_key`.  Only *repr-faithful* labels
#: participate (see :func:`_repr_faithful`): shapes for which two equal
#: values necessarily have equal reprs, so the ``(type, value)`` key can
#: never serve a wrong repr.  Counter-examples kept out of the cache:
#: ``(True, 2) == (1, 2)`` are equal tuples with different reprs (so
#: ``bool`` elements disqualify a tuple), as are ``-0.0 == 0.0`` floats.
_SORT_KEY_CACHE: Dict[Any, Tuple[str, str]] = {}
_SORT_KEY_CACHE_MAX = 1 << 16


def _repr_faithful(v: Any) -> bool:
    tp = type(v)
    if tp is int or tp is str or tp is bytes:
        return True
    if tp is tuple:
        for x in v:
            if not _repr_faithful(x):
                return False
        return True
    return False


def label_sort_key(v: Vertex) -> Tuple[str, str]:
    """The canonical vertex ordering key: ``(type name, repr)``.

    Every place that needs a total order over arbitrary hashable labels
    (edge-weight keys, CONGEST uid assignment, content hashing) sorts by
    this key.  The type name prefix keeps labels of different types from
    colliding when their ``repr`` happens to coincide; within a type the
    order is *repr order*, which for integers is lexicographic
    (``repr(10) < repr(2)``), not numeric.

    Keys for the common label shapes (ints, strings, tuples thereof) are
    memoized — constructions rebuild graphs over the same label
    vocabulary thousands of times, and ``repr`` of nested tuples is a
    measurable cost in the family-validation hot path.
    """
    tp = type(v)
    if tp is tuple:
        # depth-1 elements are checked inline; only nested tuples recurse
        for x in v:
            tx = type(x)
            if tx is int or tx is str or tx is bytes:
                continue
            if tx is tuple and _repr_faithful(x):
                continue
            return (tp.__name__, repr(v))
    elif not (tp is int or tp is str):
        return (tp.__name__, repr(v))
    key = (tp, v)
    sk = _SORT_KEY_CACHE.get(key)
    if sk is None:
        if len(_SORT_KEY_CACHE) >= _SORT_KEY_CACHE_MAX:
            _SORT_KEY_CACHE.clear()
        sk = _SORT_KEY_CACHE[key] = (tp.__name__, repr(v))
    return sk


#: cache entries that depend only on the *vertex set* (not on edges or
#: weights) — they survive :meth:`Graph._dirty_edges_only`
_VERTEX_SET_CACHES = ("sorted_vertices", "sort_keys")


def _sort_key_maps(graph) -> Tuple[Dict[Any, Tuple[str, str]],
                                   Dict[Any, int]]:
    """Cached ``({vertex: label_sort_key}, {vertex: canonical position})``
    for ``graph`` — vertex-set-derived, so it survives edge mutations
    and rides along in ``copy()``."""
    maps = graph._cache.get("sort_keys")
    if maps is None:
        verts = graph._cache.get("sorted_vertices")
        if verts is None:
            verts = tuple(sorted(graph.vertices(), key=label_sort_key))
            graph._cache["sorted_vertices"] = verts
        keys = {v: label_sort_key(v) for v in verts}
        pos = {v: i for i, v in enumerate(verts)}
        maps = graph._cache["sort_keys"] = (keys, pos)
    return maps


class CSR:
    """Compressed-sparse-row snapshot of a graph's adjacency.

    The flat-array substrate every int-indexed hot path reads:
    ``indptr`` (``n + 1`` offsets) and ``indices`` (neighbour indices,
    sorted within each row) are stdlib ``array('q')`` buffers — compact,
    picklable, and zero-copy viewable by numpy via the buffer protocol.
    Vertices are indexed ``0..n-1`` in the owning graph's deterministic
    insertion order; ``labels``/``index`` are the thin label view over
    that index space.  Neighbour bitmasks (bit ``j`` of ``masks()[i]``
    iff edge ``{i, j}``) are derived lazily and shared by every
    consumer (:class:`GraphKernel`, :class:`repro.solvers._bitmask.
    BitGraph`).

    A ``CSR`` is an immutable snapshot: the owning graph drops its
    cached instance on structural mutation and hands out a fresh one.
    Edge weights live in the aligned array returned by
    :meth:`Graph.csr_weights` (weight-only mutations invalidate that
    array without touching the structure).
    """

    __slots__ = ("n", "labels", "index", "indptr", "indices", "_masks",
                 "_adj_lists")

    def __init__(self, labels: Tuple[Vertex, ...],
                 index: Dict[Vertex, int],
                 indptr: array, indices: array) -> None:
        self.n = len(labels)
        self.labels = labels
        self.index = index
        self.indptr = indptr
        self.indices = indices
        self._masks: Optional[List[int]] = None
        self._adj_lists: Optional[List[List[int]]] = None

    @property
    def m(self) -> int:
        """Stored entries (2·edges for an undirected graph's CSR)."""
        return len(self.indices)

    def row(self, i: int) -> array:
        """Neighbour indices of vertex ``i`` (ascending)."""
        return self.indices[self.indptr[i]:self.indptr[i + 1]]

    def degree(self, i: int) -> int:
        return self.indptr[i + 1] - self.indptr[i]

    def adjacency(self) -> List[List[int]]:
        """Row slices materialised as lists (cached) — the layout the
        pure-Python BFS loops iterate fastest."""
        if self._adj_lists is None:
            indptr, indices = self.indptr, self.indices
            self._adj_lists = [list(indices[indptr[i]:indptr[i + 1]])
                               for i in range(self.n)]
        return self._adj_lists

    def masks(self) -> List[int]:
        """Per-vertex neighbour bitmasks (cached)."""
        if self._masks is None:
            out = []
            indptr, indices = self.indptr, self.indices
            for i in range(self.n):
                m = 0
                for j in indices[indptr[i]:indptr[i + 1]]:
                    m |= 1 << j
                out.append(m)
            self._masks = out
        return self._masks


def _build_csr(adj: Dict[Vertex, Any], index: Dict[Vertex, int]) -> CSR:
    """Construct the CSR arrays from a label-keyed adjacency mapping in
    insertion order (``index`` must already map every label)."""
    labels = tuple(adj)
    indptr = array("q", [0])
    indices = array("q")
    for v in labels:
        indices.extend(sorted(index[w] for w in adj[v]))
        indptr.append(len(indices))
    return CSR(labels, dict(index), indptr, indices)


# ----------------------------------------------------------------------
# compact binary wire format
# ----------------------------------------------------------------------
#
# Frame layout (version 1, all integers little-endian):
#
#   magic        7 bytes   b"RPROGRF"
#   version      u8        1
#   flags        u8        bit0 = directed, bit1 = label table pickled
#   n            u32       vertex count
#   nnz          u64       len(csr.indices)
#   width        u8        bytes per CSR entry (1, 2, or 8): the
#                          narrowest unsigned width holding every
#                          indptr/indices value
#   intern table           (absent when bit1 set)
#       count    u32
#       entry*   u32 byte length + UTF-8 bytes, id = entry position
#   label blob   u64 length + tagged label stream (or a pickle of the
#                label tuple when bit1 is set — exotic label types)
#   indptr       (n+1) * width raw
#   indices      nnz * width raw
#   edge weights u32 count + (u32 ui, u32 vi, f64)* — the explicit
#                ``_edge_weight`` entries only, in dict order, endpoint
#                indices preserving the canonical key orientation
#   vert weights u32 count + (u32 vi, f64)*
#   crc32        u32       over every preceding byte of the frame
#
# The label stream reuses the string-interning trick from the ``.rtb``
# trace format (:mod:`repro.obs.binary`): each distinct string is
# written once in the intern table and referenced by id.  Only the
# *explicit* weight dicts are serialized — never the derived caches —
# so the frame size is independent of how warmed the source graph was.

_WIRE_MAGIC = b"RPROGRF"
_WIRE_VERSION = 1
_FLAG_DIRECTED = 0x01
_FLAG_LABELS_PICKLED = 0x02

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_EDGE_W = struct.Struct("<IId")
_VERT_W = struct.Struct("<Id")

#: label stream tags
(_L_INT, _L_STR, _L_TUPLE, _L_BYTES, _L_NONE, _L_FLOAT,
 _L_FALSE, _L_TRUE) = range(8)

_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1


class _WireFallback(Exception):
    """Internal: a label shape the compact stream cannot encode."""


def _encode_label(v: Any, out: bytearray, intern: Dict[str, int]) -> None:
    tp = type(v)
    if tp is int:
        # exact type check: bool is an int subclass but must round-trip
        # as bool, and arbitrary-precision ints overflow the i64 slot
        if _I64_MIN <= v <= _I64_MAX:
            out += _U8.pack(_L_INT)
            out += _I64.pack(v)
        else:
            raise _WireFallback
    elif tp is str:
        sid = intern.get(v)
        if sid is None:
            sid = intern[v] = len(intern)
        out += _U8.pack(_L_STR)
        out += _U32.pack(sid)
    elif tp is tuple:
        if len(v) > 0xFF:
            raise _WireFallback
        out += _U8.pack(_L_TUPLE)
        out += _U8.pack(len(v))
        for x in v:
            _encode_label(x, out, intern)
    elif tp is bytes:
        out += _U8.pack(_L_BYTES)
        out += _U32.pack(len(v))
        out += v
    elif v is None:
        out += _U8.pack(_L_NONE)
    elif tp is float:
        out += _U8.pack(_L_FLOAT)
        out += _F64.pack(v)
    elif tp is bool:
        out += _U8.pack(_L_TRUE if v else _L_FALSE)
    else:
        raise _WireFallback


def _decode_label(buf: bytes, pos: int,
                  strings: List[str]) -> Tuple[Any, int]:
    tag = buf[pos]
    pos += 1
    if tag == _L_INT:
        return _I64.unpack_from(buf, pos)[0], pos + 8
    if tag == _L_STR:
        return strings[_U32.unpack_from(buf, pos)[0]], pos + 4
    if tag == _L_TUPLE:
        arity = buf[pos]
        pos += 1
        items = []
        for __ in range(arity):
            x, pos = _decode_label(buf, pos, strings)
            items.append(x)
        return tuple(items), pos
    if tag == _L_BYTES:
        k = _U32.unpack_from(buf, pos)[0]
        pos += 4
        if pos + k > len(buf):
            raise GraphError("graph wire: truncated bytes label")
        return buf[pos:pos + k], pos + k
    if tag == _L_NONE:
        return None, pos
    if tag == _L_FLOAT:
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag == _L_FALSE:
        return False, pos
    if tag == _L_TRUE:
        return True, pos
    raise GraphError(f"graph wire: unknown label tag {tag}")


def _array_le_bytes(arr: array) -> bytes:
    if sys.byteorder == "little":
        return arr.tobytes()
    swapped = array(arr.typecode, arr)  # pragma: no cover - big endian
    swapped.byteswap()
    return swapped.tobytes()


def _index_width(maxval: int) -> int:
    if maxval < 0x100:
        return 1
    if maxval < 0x10000:
        return 2
    return 8


def _pack_index_array(arr: array, width: int) -> bytes:
    if width == 8:
        return _array_le_bytes(arr)
    narrow = array("B" if width == 1 else "H", arr)
    if width == 2:
        return _array_le_bytes(narrow)
    return narrow.tobytes()


def _unpack_index_array(buf: bytes, pos: int, count: int,
                        width: int) -> Tuple[array, int]:
    span = count * width
    chunk = buf[pos:pos + span]
    if len(chunk) != span:
        raise GraphError("graph wire: truncated CSR arrays")
    if width == 8:
        out = array("q")
        out.frombytes(chunk)
        if sys.byteorder != "little":  # pragma: no cover - big endian
            out.byteswap()
    else:
        narrow = array("B" if width == 1 else "H")
        narrow.frombytes(chunk)
        if width == 2 and sys.byteorder != "little":  # pragma: no cover
            narrow.byteswap()
        out = array("q", narrow)
    return out, pos + span


def graph_to_bytes(graph: Union["Graph", "DiGraph"]) -> bytes:
    """Serialize ``graph`` to the versioned compact wire format.

    The frame is backed directly by the graph's :class:`CSR` snapshot —
    building it warms the ``csr`` cache but serializes no cache content,
    so the blob is byte-identical however warmed the source graph is.
    """
    csr = graph.csr()
    flags = _FLAG_DIRECTED if graph.directed else 0
    intern: Dict[str, int] = {}
    lbuf = bytearray()
    try:
        for v in csr.labels:
            _encode_label(v, lbuf, intern)
    except _WireFallback:
        lbuf = bytearray(pickle.dumps(csr.labels,
                                      protocol=pickle.HIGHEST_PROTOCOL))
        flags |= _FLAG_LABELS_PICKLED
        intern = {}
    nnz = len(csr.indices)
    width = _index_width(max(nnz, csr.n - 1 if csr.n else 0))
    out = bytearray(_WIRE_MAGIC)
    out += _U8.pack(_WIRE_VERSION)
    out += _U8.pack(flags)
    out += _U32.pack(csr.n)
    out += _U64.pack(nnz)
    out += _U8.pack(width)
    if not flags & _FLAG_LABELS_PICKLED:
        out += _U32.pack(len(intern))
        for s in intern:  # insertion order == intern id order
            sb = s.encode("utf-8")
            out += _U32.pack(len(sb))
            out += sb
    out += _U64.pack(len(lbuf))
    out += lbuf
    out += _pack_index_array(csr.indptr, width)
    out += _pack_index_array(csr.indices, width)
    index = csr.index
    ew = graph._edge_weight
    out += _U32.pack(len(ew))
    for (u, v), w in ew.items():
        out += _EDGE_W.pack(index[u], index[v], w)
    vw = graph._vertex_weight
    out += _U32.pack(len(vw))
    for v, w in vw.items():
        out += _VERT_W.pack(index[v], w)
    out += _U32.pack(zlib.crc32(out) & 0xFFFFFFFF)
    return bytes(out)


def graph_from_bytes(data: bytes) -> Union["Graph", "DiGraph"]:
    """Decode a :func:`graph_to_bytes` frame into a fresh graph.

    Returns a :class:`Graph` or :class:`DiGraph` according to the frame's
    directedness flag, with its CSR substrate pre-seeded from the decoded
    buffers.  Any corrupt, truncated, or foreign input raises a clean
    :class:`GraphError` — never an arbitrary decoding exception.
    """
    buf = bytes(data)
    if len(buf) < len(_WIRE_MAGIC) + 2 + 4 + 8 + 1 + 4:
        raise GraphError("graph wire: truncated frame")
    if buf[:len(_WIRE_MAGIC)] != _WIRE_MAGIC:
        raise GraphError("graph wire: bad magic")
    if buf[len(_WIRE_MAGIC)] != _WIRE_VERSION:
        raise GraphError(
            f"graph wire: unsupported version {buf[len(_WIRE_MAGIC)]}")
    stored = _U32.unpack_from(buf, len(buf) - 4)[0]
    if zlib.crc32(memoryview(buf)[:-4]) & 0xFFFFFFFF != stored:
        raise GraphError("graph wire: checksum mismatch (corrupt frame)")
    try:
        return _decode_frame(buf)
    except GraphError:
        raise
    except Exception as exc:
        raise GraphError(f"graph wire: malformed frame ({exc!r})") from exc


def _decode_frame(buf: bytes) -> Union["Graph", "DiGraph"]:
    pos = len(_WIRE_MAGIC) + 1
    flags = buf[pos]
    pos += 1
    n = _U32.unpack_from(buf, pos)[0]
    pos += 4
    nnz = _U64.unpack_from(buf, pos)[0]
    pos += 8
    width = buf[pos]
    pos += 1
    if width not in (1, 2, 8):
        raise GraphError(f"graph wire: bad index width {width}")
    strings: List[str] = []
    if not flags & _FLAG_LABELS_PICKLED:
        count = _U32.unpack_from(buf, pos)[0]
        pos += 4
        for __ in range(count):
            k = _U32.unpack_from(buf, pos)[0]
            pos += 4
            strings.append(buf[pos:pos + k].decode("utf-8"))
            pos += k
    lblob_len = _U64.unpack_from(buf, pos)[0]
    pos += 8
    lblob = buf[pos:pos + lblob_len]
    pos += lblob_len
    if len(lblob) != lblob_len:
        raise GraphError("graph wire: truncated label table")
    if flags & _FLAG_LABELS_PICKLED:
        labels = tuple(pickle.loads(lblob))
    else:
        decoded = []
        lpos = 0
        while lpos < lblob_len:
            v, lpos = _decode_label(lblob, lpos, strings)
            decoded.append(v)
        labels = tuple(decoded)
    if len(labels) != n:
        raise GraphError(
            f"graph wire: label table has {len(labels)} entries for n={n}")
    indptr, pos = _unpack_index_array(buf, pos, n + 1, width)
    indices, pos = _unpack_index_array(buf, pos, nnz, width)
    if len(indptr) != n + 1 or len(indices) != nnz \
            or indptr[0] != 0 or indptr[-1] != nnz:
        raise GraphError("graph wire: inconsistent CSR arrays")
    index = {v: i for i, v in enumerate(labels)}
    if len(index) != n:
        raise GraphError("graph wire: duplicate labels")
    ew_count = _U32.unpack_from(buf, pos)[0]
    pos += 4
    edge_w = []
    for __ in range(ew_count):
        edge_w.append(_EDGE_W.unpack_from(buf, pos))
        pos += _EDGE_W.size
    vw_count = _U32.unpack_from(buf, pos)[0]
    pos += 4
    vert_w = []
    for __ in range(vw_count):
        vert_w.append(_VERT_W.unpack_from(buf, pos))
        pos += _VERT_W.size
    if pos != len(buf) - 4:
        raise GraphError("graph wire: trailing bytes in frame")
    csr = CSR(labels, index, indptr, indices)
    g: Union[Graph, DiGraph]
    if flags & _FLAG_DIRECTED:
        g = DiGraph()
        pred: Dict[Vertex, Set[Vertex]] = {v: set() for v in labels}
        succ: Dict[Vertex, Set[Vertex]] = {}
        for i, u in enumerate(labels):
            row = indices[indptr[i]:indptr[i + 1]]
            out_set = set()
            for j in row:
                w = labels[j]
                out_set.add(w)
                pred[w].add(u)
            succ[u] = out_set
        g._succ = succ
        g._pred = pred
    else:
        g = Graph()
        g._adj = {u: {labels[j] for j in indices[indptr[i]:indptr[i + 1]]}
                  for i, u in enumerate(labels)}
    # indices preserve the canonical key orientation, so the decoded
    # dicts reproduce the originals exactly (keys and insertion order)
    g._edge_weight = {(labels[ui], labels[vi]): w for ui, vi, w in edge_w}
    g._vertex_weight = {labels[vi]: w for vi, w in vert_w}
    g._cache["csr"] = csr
    return g


class GraphKernel:
    """Int-indexed view of a :class:`Graph` for hot loops.

    Obtained via :meth:`Graph.kernel`.  Vertices are indexed ``0..n-1``
    in the graph's (deterministic) insertion order — the same order
    :class:`repro.solvers._bitmask.BitGraph` uses, so the two layers can
    share adjacency data.  The adjacency itself is read from the
    graph's :class:`CSR` substrate (:meth:`Graph.csr`); on top of it
    the kernel caches single-source BFS rows (one list of hop distances
    per source, ``-1`` marking unreachable) and distance-k ball masks.
    ``bfs_runs`` counts actual BFS sweeps, letting tests assert work is
    *not* repeated.

    The owning graph drops its kernel on any structural mutation, so a
    *freshly obtained* kernel can never be stale.  A kernel object held
    across a mutation, however, would silently serve a torn mix of
    pre-/post-mutation data; every read therefore checks the graph's
    generation stamp and raises :class:`GraphError` on stale use.
    """

    __slots__ = ("vertices", "index", "n", "_graph", "_generation",
                 "_csr", "_rows", "_balls", "bfs_runs")

    def __init__(self, graph: "Graph") -> None:
        csr = graph.csr()
        self._csr = csr
        self.vertices: List[Vertex] = list(csr.labels)
        self.index: Dict[Vertex, int] = csr.index
        self.n = csr.n
        self._graph = graph
        self._generation = graph._generation
        self._rows: Dict[int, List[int]] = {}
        self._balls: Dict[int, List[int]] = {}
        self.bfs_runs = 0

    def _fresh(self) -> None:
        """Raise on any read after the owning graph structurally
        mutated (the regression the generation stamp exists for)."""
        if self._generation != self._graph._generation:
            raise GraphError(
                "stale GraphKernel: the owning graph was structurally "
                "mutated after this kernel was obtained; call "
                "graph.kernel() again for a fresh one")

    def adjacency(self) -> List[List[int]]:
        """Integer adjacency lists (sorted, so iteration order is
        process-independent); read straight from the CSR substrate."""
        self._fresh()
        return self._csr.adjacency()

    def neighbor_masks(self) -> List[int]:
        """Per-vertex neighbour sets as bitmasks (bit ``j`` of mask ``i``
        iff edge ``{i, j}``); shared with the CSR substrate."""
        self._fresh()
        return self._csr.masks()

    def bfs_row(self, i: int) -> List[int]:
        """Hop distances from vertex index ``i`` (``-1`` = unreachable),
        computed once per source and cached."""
        self._fresh()
        row = self._rows.get(i)
        if row is not None:
            return row
        adj = self._csr.adjacency()
        dist = [-1] * self.n
        dist[i] = 0
        frontier = [i]
        d = 0
        while frontier:
            d += 1
            nxt = []
            for u in frontier:
                for w in adj[u]:
                    if dist[w] < 0:
                        dist[w] = d
                        nxt.append(w)
            frontier = nxt
        self._rows[i] = dist
        self.bfs_runs += 1
        return dist

    def ball_masks(self, k: int) -> List[int]:
        """Distance-``k`` closed balls of every vertex, as bitmasks.

        Bit ``j`` of mask ``i`` iff ``dist(i, j) <= k``.  Computed by a
        bitmask BFS truncated at depth ``k`` — frontiers are expanded by
        OR-ing neighbour masks, so no per-vertex distance arrays are
        built and the sweep stops as soon as the ball saturates.  Cached
        per ``k``.
        """
        self._fresh()
        balls = self._balls.get(k)
        if balls is not None:
            return balls
        if k <= 0:
            balls = [1 << i for i in range(self.n)]
            self._balls[k] = balls
            return balls
        masks = self.neighbor_masks()
        balls = []
        for i in range(self.n):
            ball = masks[i] | (1 << i)
            frontier = ball
            for __ in range(k - 1):
                new = 0
                m = frontier
                while m:
                    low = m & -m
                    new |= masks[low.bit_length() - 1]
                    m ^= low
                frontier = new & ~ball
                if not frontier:
                    break
                ball |= frontier
            balls.append(ball)
        self._balls[k] = balls
        return balls

    def eccentricity(self, i: int) -> int:
        """Max hop distance from ``i``; raises on disconnected graphs."""
        row = self.bfs_row(i)
        ecc = 0
        for d in row:
            if d < 0:
                raise GraphError("eccentricity in a disconnected graph")
            if d > ecc:
                ecc = d
        return ecc


class Graph:
    """A simple undirected graph with optional vertex and edge weights.

    Vertices are arbitrary hashable labels.  Parallel edges and self loops
    are rejected: none of the paper's constructions use them, and rejecting
    them catches construction bugs early.
    """

    directed = False

    def __init__(self) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._edge_weight: Dict[Edge, float] = {}
        self._vertex_weight: Dict[Vertex, float] = {}
        #: derived-data cache (CSR substrate, kernel, edge list, sorted
        #: vertices, content hash, all-pairs distances); structural
        #: mutations clear all of it, weight-only mutations clear just
        #: the entries that depend on weights (see the _dirty* methods)
        self._cache: Dict[str, Any] = {}
        #: structural generation stamp: bumped on every structural
        #: mutation (never on weight-only changes, which leave all
        #: adjacency-derived snapshots valid).  Kernels record the stamp
        #: they were built against and refuse stale reads.
        self._generation = 0

    def _dirty(self) -> None:
        """Invalidate every derived cache; called on structural mutation."""
        self._generation += 1
        if self._cache:
            self._cache.clear()

    def _dirty_edges_only(self) -> None:
        """Invalidate for an edge insert/removal between *existing*
        vertices: everything adjacency-derived dies, but the vertex-set
        caches (canonical order, per-label sort keys) stay valid — they
        depend only on which vertices exist.  This is the delta-build
        hot path: ``apply_inputs`` toggles a handful of edges on a
        skeleton copy, and the copy keeps the skeleton's vertex order."""
        self._generation += 1
        if self._cache:
            keep = [(k, self._cache[k]) for k in _VERTEX_SET_CACHES
                    if k in self._cache]
            self._cache.clear()
            self._cache.update(keep)

    def _dirty_vertex_weights(self) -> None:
        """Invalidate only vertex-weight-dependent caches.  Adjacency,
        edge lists, kernels and distances are untouched by a vertex
        weight change; only the content hash covers it."""
        self._cache.pop("content_hash", None)

    def _dirty_edge_weights(self) -> None:
        """Invalidate only edge-weight-dependent caches (the edge *list*
        and everything adjacency-derived stay valid)."""
        self._cache.pop("content_hash", None)
        self._cache.pop("edge_weights", None)
        self._cache.pop("csr_weights", None)

    def kernel(self) -> GraphKernel:
        """The cached int-indexed :class:`GraphKernel` for this graph's
        current content (rebuilt automatically after mutations)."""
        kern = self._cache.get("kernel")
        if kern is None:
            kern = self._cache["kernel"] = GraphKernel(self)
        return kern

    def csr(self) -> CSR:
        """The cached :class:`CSR` snapshot of the current adjacency.

        Vertex ``i`` is the ``i``-th vertex in insertion order — the
        same index space as :meth:`kernel` and
        :class:`repro.solvers._bitmask.BitGraph`.  The snapshot is
        immutable; a structural mutation drops it and the next call
        rebuilds.
        """
        csr = self._cache.get("csr")
        if csr is None:
            index = {v: i for i, v in enumerate(self._adj)}
            csr = self._cache["csr"] = _build_csr(self._adj, index)
        return csr

    def csr_weights(self) -> array:
        """Edge weights aligned entry-for-entry with ``csr().indices``
        (an ``array('d')``, default weight 1.0).  Cached separately from
        the structure: weight-only mutations invalidate this array but
        keep the structural snapshot."""
        w = self._cache.get("csr_weights")
        if w is None:
            csr = self.csr()
            index = csr.index
            pair: Dict[Tuple[int, int], float] = {}
            for (u, v), wt in self._edge_weight.items():
                iu, iv = index[u], index[v]
                pair[(iu, iv)] = wt
                pair[(iv, iu)] = wt
            if pair:
                get = pair.get
                indptr, indices = csr.indptr, csr.indices
                w = array("d")
                for i in range(csr.n):
                    for j in indices[indptr[i]:indptr[i + 1]]:
                        w.append(get((i, j), 1.0))
            else:
                w = array("d", [1.0]) * len(csr.indices)
            self._cache["csr_weights"] = w
        return w

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex, weight: Optional[float] = None) -> None:
        """Add ``v`` (idempotent); optionally (re)set its weight."""
        if v not in self._adj:
            self._adj[v] = set()
            self._dirty()
        if weight is not None and self._vertex_weight.get(v) != weight:
            self._vertex_weight[v] = weight
            self._dirty_vertex_weights()

    def add_vertices(self, vs: Iterable[Vertex], weight: Optional[float] = None) -> None:
        for v in vs:
            self.add_vertex(v, weight=weight)

    def add_edge(self, u: Vertex, v: Vertex, weight: Optional[float] = None) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed."""
        if u == v:
            raise GraphError(f"self loop on {u!r} rejected")
        known = u in self._adj and v in self._adj
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            if known:
                self._dirty_edges_only()
            else:
                self._dirty()
        if weight is not None:
            key = self._key(u, v)
            if self._edge_weight.get(key) != weight:
                self._edge_weight[key] = weight
                self._dirty_edge_weights()

    def add_edges(self, edges: Iterable[Edge], weight: Optional[float] = None) -> None:
        for u, v in edges:
            self.add_edge(u, v, weight=weight)

    def add_clique(self, vs: Iterable[Vertex], weight: Optional[float] = None) -> None:
        vs = list(vs)
        for i, u in enumerate(vs):
            self.add_vertex(u)
            for v in vs[i + 1:]:
                self.add_edge(u, v, weight=weight)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not present")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._edge_weight.pop(self._key(u, v), None)
        self._dirty_edges_only()

    def remove_vertex(self, v: Vertex) -> None:
        if v not in self._adj:
            raise GraphError(f"vertex {v!r} not present")
        for u in list(self._adj[v]):
            self.remove_edge(u, v)
        del self._adj[v]
        self._vertex_weight.pop(v, None)
        self._dirty()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @staticmethod
    def _key(u: Vertex, v: Vertex) -> Edge:
        ku, kv = label_sort_key(u), label_sort_key(v)
        if ku == kv and u != v:
            # Two distinct labels with identical type and repr would
            # silently share one edge-weight key; refuse early.
            raise GraphError(
                f"label collision: distinct vertices {u!r} and {v!r} have "
                f"identical sort key {ku}")
        return (u, v) if ku <= kv else (v, u)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    @property
    def n(self) -> int:
        return len(self._adj)

    @property
    def m(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def vertices(self) -> List[Vertex]:
        return list(self._adj)

    def sorted_vertices(self) -> Tuple[Vertex, ...]:
        """Vertices in canonical :func:`label_sort_key` order (cached)."""
        verts = self._cache.get("sorted_vertices")
        if verts is None:
            verts = tuple(sorted(self._adj, key=label_sort_key))
            self._cache["sorted_vertices"] = verts
        return verts

    def edges(self) -> List[Edge]:
        # neighbour sets iterate in hash order, which for str/tuple labels
        # varies with PYTHONHASHSEED; sort so the edge list (and every
        # construction built by iterating it) is process-independent.
        # The computed list is cached until the next mutation; callers
        # get a fresh shallow copy so they may mutate their list freely.
        cached = self._cache.get("edges")
        if cached is None:
            # one sort key per vertex instead of one per adjacency entry
            sk = {v: label_sort_key(v) for v in self._adj}
            get = sk.__getitem__
            seen = set()
            cached = []
            for u, nbrs in self._adj.items():
                ku = sk[u]
                for v in sorted(nbrs, key=get):
                    kv = sk[v]
                    if ku == kv:
                        # same guard as _key: distinct labels with one
                        # sort key would share an edge-weight slot
                        raise GraphError(
                            f"label collision: distinct vertices {u!r} "
                            f"and {v!r} have identical sort key {ku}")
                    key = (u, v) if ku < kv else (v, u)
                    if key not in seen:
                        seen.add(key)
                        cached.append(key)
            self._cache["edges"] = cached
        return list(cached)

    def edge_weights(self) -> Dict[Edge, float]:
        """``{canonical edge key: weight}`` for every edge, in
        :meth:`edges` order (cached; callers get a fresh shallow copy).
        One dict lookup per edge replaces the per-call label sorting of
        repeated :meth:`edge_weight` queries."""
        ew = self._cache.get("edge_weights")
        if ew is None:
            weights = self._edge_weight
            ew = {key: weights.get(key, 1.0) for key in self.edges()}
            self._cache["edge_weights"] = ew
        return dict(ew)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: Vertex) -> Set[Vertex]:
        return set(self._adj[v])

    def degree(self, v: Vertex) -> int:
        return len(self._adj[v])

    def max_degree(self) -> int:
        return max((len(nbrs) for nbrs in self._adj.values()), default=0)

    def closed_neighborhood(self, v: Vertex) -> Set[Vertex]:
        return self._adj[v] | {v}

    def edge_weight(self, u: Vertex, v: Vertex, default: float = 1.0) -> float:
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not present")
        return self._edge_weight.get(self._key(u, v), default)

    def vertex_weight(self, v: Vertex, default: float = 1.0) -> float:
        if v not in self._adj:
            raise GraphError(f"vertex {v!r} not present")
        return self._vertex_weight.get(v, default)

    def set_vertex_weight(self, v: Vertex, weight: float) -> None:
        self.add_vertex(v, weight=weight)

    def set_edge_weight(self, u: Vertex, v: Vertex, weight: float) -> None:
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not present")
        key = self._key(u, v)
        if self._edge_weight.get(key) != weight:
            self._edge_weight[key] = weight
            self._dirty_edge_weights()

    def total_edge_weight(self) -> float:
        return sum(self.edge_weight(u, v) for u, v in self.edges())

    def content_hash(self) -> str:
        """Canonical SHA-256 of the graph's full content.

        Covers directedness, every vertex with its effective weight, and
        every edge with its effective weight, all in :func:`label_sort_key`
        order — so two graphs built in different insertion orders hash
        identically iff they are the same weighted graph.  This is the
        solver-cache key material (see :mod:`repro.solvers.cache`).

        The digest is memoized and invalidated on mutation, so repeated
        solver-cache lookups against the same graph hash it once.
        """
        digest = self._cache.get("content_hash")
        if digest is None:
            digest = self._cache["content_hash"] = _content_hash(self)
        return digest

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Versioned compact binary frame of this graph's full content
        (see :func:`graph_to_bytes`); decode with :meth:`from_bytes`."""
        return graph_to_bytes(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Graph":
        """Decode a :meth:`to_bytes` frame; raises :class:`GraphError`
        on corrupt input or a frame that encodes a digraph."""
        g = graph_from_bytes(data)
        if g.directed:
            raise GraphError("graph wire: frame encodes a DiGraph, "
                             "not a Graph")
        return g

    def __reduce__(self):
        # every pickle site (fork payloads, sweep shards, disk caches)
        # rides the compact wire format; subclasses fall back to the
        # generic reconstructor since their extra state is unknown here
        if type(self) is Graph:
            return (graph_from_bytes, (graph_to_bytes(self),))
        return (copyreg._reconstructor, (type(self), object, None),
                self.__dict__)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        # direct structural copy (no per-edge mutation API round trips);
        # vertex insertion order — the deterministic iteration order —
        # is preserved by the dict comprehension
        g = Graph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        g._vertex_weight = dict(self._vertex_weight)
        g._edge_weight = dict(self._edge_weight)
        # Identical content means identical derived values, so the copy
        # can share the read-only value caches — including the CSR
        # snapshot, which is immutable.  The kernel must NOT be shared:
        # it stamps *this* graph's generation and holds its BFS caches,
        # so each graph gets its own.
        cache = self._cache
        for key in ("sorted_vertices", "sort_keys", "edges", "edge_weights",
                    "csr", "csr_weights", "all_pairs", "content_hash"):
            val = cache.get(key)
            if val is not None:
                g._cache[key] = val
        return g

    def induced_subgraph(self, vs: Iterable[Vertex]) -> "Graph":
        keep = set(vs)
        for v in keep:
            if v not in self._adj:
                raise GraphError(f"vertex {v!r} not present")
        g = Graph()
        # insert in the parent's (deterministic) vertex order, not in
        # hash order of `keep`, so the subgraph is process-independent
        for v in self.vertices():
            if v in keep:
                g.add_vertex(v, weight=self._vertex_weight.get(v))
        for u, v in self.edges():
            if u in keep and v in keep:
                g.add_edge(u, v, weight=self._edge_weight.get(self._key(u, v)))
        return g

    def bfs_distances(self, source: Vertex) -> Dict[Vertex, int]:
        """Unweighted hop distances from ``source`` (unreachable omitted).

        Runs over the int-indexed kernel; each source's BFS row is
        cached, so repeated calls on an unchanged graph pay only the
        dict construction.
        """
        kern = self.kernel()
        row = kern.bfs_row(kern.index[source])
        verts = kern.vertices
        return {verts[j]: d for j, d in enumerate(row) if d >= 0}

    def all_pairs_distances(self) -> Dict[Vertex, Dict[Vertex, int]]:
        """Hop distances between every pair (unreachable pairs omitted).

        One BFS sweep per vertex, computed once and cached until the
        next mutation — the shared substrate for :meth:`diameter`,
        repeated :meth:`bfs_distances` callers, and the distance-k ball
        construction in :mod:`repro.solvers.dominating`.  Treat the
        returned mapping as read-only; the inner dicts are shared with
        the cache.
        """
        apd = self._cache.get("all_pairs")
        if apd is None:
            apd = {v: self.bfs_distances(v) for v in self._adj}
            self._cache["all_pairs"] = apd
        return dict(apd)

    def connected_components(self) -> List[Set[Vertex]]:
        remaining = set(self._adj)
        comps = []
        while remaining:
            src = next(iter(remaining))
            comp = set(self.bfs_distances(src))
            comps.append(comp)
            remaining -= comp
        return comps

    def is_connected(self) -> bool:
        if not self._adj:
            return True
        return len(self.bfs_distances(next(iter(self._adj)))) == self.n

    def diameter(self) -> int:
        """Hop diameter; raises on disconnected graphs.

        Disconnection is detected from the *first* BFS (its row misses a
        vertex), so a disconnected graph fails after one sweep instead
        of n — the remaining eccentricities are never computed.
        """
        if not self._adj:
            return 0
        kern = self.kernel()
        try:
            best = 0
            for i in range(kern.n):
                ecc = kern.eccentricity(i)
                if ecc > best:
                    best = ecc
        except GraphError:
            raise GraphError("diameter of a disconnected graph")
        return best

    def relabel(self, mapping: Dict[Vertex, Vertex]) -> "Graph":
        """Return a copy with vertices renamed through ``mapping``.

        Vertices absent from ``mapping`` keep their labels.  The mapping
        must be injective on the vertex set.
        """
        full = {v: mapping.get(v, v) for v in self._adj}
        if len(set(full.values())) != len(full):
            raise GraphError("relabel mapping is not injective")
        g = Graph()
        for v in self._adj:
            g.add_vertex(full[v], weight=self._vertex_weight.get(v))
        for u, v in self.edges():
            g.add_edge(full[u], full[v],
                       weight=self._edge_weight.get(self._key(u, v)))
        return g

    def to_networkx(self):
        import networkx as nx

        g = nx.Graph()
        for v in self._adj:
            g.add_node(v, weight=self.vertex_weight(v))
        for u, v in self.edges():
            g.add_edge(u, v, weight=self.edge_weight(u, v))
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.n}, m={self.m})"


class DiGraph:
    """A simple directed graph with optional vertex and edge weights."""

    directed = True

    def __init__(self) -> None:
        self._succ: Dict[Vertex, Set[Vertex]] = {}
        self._pred: Dict[Vertex, Set[Vertex]] = {}
        self._edge_weight: Dict[Edge, float] = {}
        self._vertex_weight: Dict[Vertex, float] = {}
        self._cache: Dict[str, Any] = {}
        self._generation = 0

    def _dirty(self) -> None:
        self._generation += 1
        if self._cache:
            self._cache.clear()

    def _dirty_edges_only(self) -> None:
        # same contract as Graph._dirty_edges_only: arc flips between
        # existing vertices keep the vertex-set caches alive
        self._generation += 1
        if self._cache:
            keep = [(k, self._cache[k]) for k in _VERTEX_SET_CACHES
                    if k in self._cache]
            self._cache.clear()
            self._cache.update(keep)

    def csr(self) -> CSR:
        """Cached :class:`CSR` snapshot of the *successor* adjacency
        (row ``i`` lists out-neighbours; same index space contract as
        :meth:`Graph.csr`)."""
        csr = self._cache.get("csr")
        if csr is None:
            index = {v: i for i, v in enumerate(self._succ)}
            csr = self._cache["csr"] = _build_csr(self._succ, index)
        return csr

    def _dirty_vertex_weights(self) -> None:
        # Same invalidation classes as Graph: vertex-weight changes only
        # affect the content hash, not any adjacency-derived cache.
        self._cache.pop("content_hash", None)

    def _dirty_edge_weights(self) -> None:
        self._cache.pop("content_hash", None)
        self._cache.pop("edge_weights", None)

    def add_vertex(self, v: Vertex, weight: Optional[float] = None) -> None:
        if v not in self._succ:
            self._succ[v] = set()
            self._pred[v] = set()
            self._dirty()
        if weight is not None and self._vertex_weight.get(v) != weight:
            self._vertex_weight[v] = weight
            self._dirty_vertex_weights()

    def add_vertices(self, vs: Iterable[Vertex], weight: Optional[float] = None) -> None:
        for v in vs:
            self.add_vertex(v, weight=weight)

    def add_edge(self, u: Vertex, v: Vertex, weight: Optional[float] = None) -> None:
        if u == v:
            raise GraphError(f"self loop on {u!r} rejected")
        known = u in self._succ and v in self._succ
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._succ[u]:
            self._succ[u].add(v)
            self._pred[v].add(u)
            if known:
                self._dirty_edges_only()
            else:
                self._dirty()
        if weight is not None and self._edge_weight.get((u, v)) != weight:
            self._edge_weight[(u, v)] = weight
            self._dirty_edge_weights()

    def add_edges(self, edges: Iterable[Edge], weight: Optional[float] = None) -> None:
        for u, v in edges:
            self.add_edge(u, v, weight=weight)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    @property
    def n(self) -> int:
        return len(self._succ)

    @property
    def m(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def vertices(self) -> List[Vertex]:
        return list(self._succ)

    def edges(self) -> Iterator[Edge]:
        # sorted for the same process-independence as Graph.edges()
        for u, succ in self._succ.items():
            for v in sorted(succ, key=label_sort_key):
                yield (u, v)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._succ and v in self._succ[u]

    def successors(self, v: Vertex) -> Set[Vertex]:
        return set(self._succ[v])

    def predecessors(self, v: Vertex) -> Set[Vertex]:
        return set(self._pred[v])

    def out_degree(self, v: Vertex) -> int:
        return len(self._succ[v])

    def in_degree(self, v: Vertex) -> int:
        return len(self._pred[v])

    def edge_weight(self, u: Vertex, v: Vertex, default: float = 1.0) -> float:
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not present")
        return self._edge_weight.get((u, v), default)

    def edge_weights(self) -> Dict[Edge, float]:
        """``{(u, v): weight}`` for every arc, in :meth:`edges` order
        (cached; callers get a fresh shallow copy)."""
        ew = self._cache.get("edge_weights")
        if ew is None:
            weights = self._edge_weight
            ew = {arc: weights.get(arc, 1.0) for arc in self.edges()}
            self._cache["edge_weights"] = ew
        return dict(ew)

    def vertex_weight(self, v: Vertex, default: float = 1.0) -> float:
        if v not in self._succ:
            raise GraphError(f"vertex {v!r} not present")
        return self._vertex_weight.get(v, default)

    def content_hash(self) -> str:
        """Canonical SHA-256 of the digraph's content (see
        :meth:`Graph.content_hash`; arc direction is part of the key).
        Memoized until the next mutation."""
        digest = self._cache.get("content_hash")
        if digest is None:
            digest = self._cache["content_hash"] = _content_hash(self)
        return digest

    def to_bytes(self) -> bytes:
        """Versioned compact binary frame (see :func:`graph_to_bytes`);
        decode with :meth:`from_bytes`."""
        return graph_to_bytes(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "DiGraph":
        """Decode a :meth:`to_bytes` frame; raises :class:`GraphError`
        on corrupt input or a frame that encodes an undirected graph."""
        g = graph_from_bytes(data)
        if not g.directed:
            raise GraphError("graph wire: frame encodes a Graph, "
                             "not a DiGraph")
        return g

    def __reduce__(self):
        if type(self) is DiGraph:
            return (graph_from_bytes, (graph_to_bytes(self),))
        return (copyreg._reconstructor, (type(self), object, None),
                self.__dict__)

    def copy(self) -> "DiGraph":
        """Structural copy that carries over still-valid caches (see
        :meth:`Graph.copy`; all DiGraph caches are plain values, so every
        populated entry is shareable)."""
        g = DiGraph()
        g._succ = {v: set(s) for v, s in self._succ.items()}
        g._pred = {v: set(p) for v, p in self._pred.items()}
        g._vertex_weight = dict(self._vertex_weight)
        g._edge_weight = dict(self._edge_weight)
        for key in ("csr", "edge_weights", "content_hash",
                    "sorted_vertices", "sort_keys"):
            val = self._cache.get(key)
            if val is not None:
                g._cache[key] = val
        return g

    def to_undirected(self) -> Graph:
        """Forget orientations (edge weights are kept; conflicts resolve
        arbitrarily to the last edge seen)."""
        g = Graph()
        for v in self._succ:
            g.add_vertex(v, weight=self._vertex_weight.get(v))
        for u, v in self.edges():
            g.add_edge(u, v, weight=self._edge_weight.get((u, v)))
        return g

    def to_networkx(self):
        import networkx as nx

        g = nx.DiGraph()
        for v in self._succ:
            g.add_node(v, weight=self.vertex_weight(v))
        for u, v in self.edges():
            g.add_edge(u, v, weight=self.edge_weight(u, v))
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiGraph(n={self.n}, m={self.m})"


def _content_hash(graph) -> str:
    """Shared :meth:`Graph.content_hash` / :meth:`DiGraph.content_hash`
    implementation: hash vertices and edges with their effective weights
    in canonical label order, guarding against label-key collisions."""
    h = hashlib.sha256()
    h.update(b"digraph;" if graph.directed else b"graph;")
    keys, pos = _sort_key_maps(graph)
    verts = graph._cache["sorted_vertices"]
    for a, b in zip(verts, verts[1:]):
        if keys[a] == keys[b]:
            raise GraphError(
                f"label collision: distinct vertices {a!r} and {b!r} have "
                f"identical sort key {keys[a]}")
    vweights = graph._vertex_weight
    for v in verts:
        tname, rep = keys[v]
        h.update(f"V|{tname}|{rep}|{vweights.get(v, 1.0)!r};".encode())
    # Graph.edges() already yields canonical (sorted-endpoint) keys;
    # DiGraph.edges() yields arcs, whose direction is part of the key.
    # Sorting by cached canonical *position* is equivalent to sorting by
    # label_sort_key (the positions are assigned in key order and the
    # collision guard above makes the order strict).
    arcs = sorted(graph.edges(), key=lambda e: (pos[e[0]], pos[e[1]]))
    eweights = graph._edge_weight
    for u, v in arcs:
        tu, ru = keys[u]
        tv, rv = keys[v]
        h.update(f"E|{tu}|{ru}|{tv}|{rv}|{eweights.get((u, v), 1.0)!r};".encode())
    return h.hexdigest()


def complete_graph(n: int) -> Graph:
    """K_n on vertices ``0..n-1``."""
    g = Graph()
    g.add_clique(range(n))
    if n == 1:
        g.add_vertex(0)
    return g


def cycle_graph(n: int) -> Graph:
    """C_n on vertices ``0..n-1``."""
    if n < 3:
        raise GraphError("cycles need at least 3 vertices")
    g = Graph()
    for i in range(n):
        g.add_edge(i, (i + 1) % n)
    return g


def path_graph(n: int) -> Graph:
    """P_n on vertices ``0..n-1``."""
    g = Graph()
    g.add_vertex(0)
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def random_graph(n: int, p: float, rng) -> Graph:
    """Erdős–Rényi G(n, p) using the supplied ``random.Random``."""
    g = Graph()
    g.add_vertices(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g
