"""repro — a working reproduction of *Hardness of Distributed
Optimization* (Bachrach, Censor-Hillel, Dory, Efron, Leitersdorf, Paz;
PODC 2019, arXiv:1905.10284).

The package builds every lower-bound graph family in the paper as an
executable construction, verifies the carrying lemmas with exact
solvers, simulates the CONGEST model and the Theorem 1.1 Alice–Bob
argument with exact bit accounting, and implements the Section 5
limitation protocols and proof labeling schemes.

Quick start::

    from repro import MdsFamily, verify_iff, theorem_1_1_bound
    from repro.cc import random_input_pairs
    import random

    fam = MdsFamily(k=4)                    # the Figure 1 family
    pairs = random_input_pairs(fam.k_bits, 6, random.Random(0))
    verify_iff(fam, pairs, negate=True)     # Lemma 2.1, machine-checked
    print(theorem_1_1_bound(fam))           # the Ω(n²/log²n) formula

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
per-theorem reproduction record.
"""

from repro.graphs import DiGraph, Graph
from repro.core.family import (
    LowerBoundGraphFamily,
    FamilyValidationError,
    validate_family,
    verify_iff,
    theorem_1_1_bound,
)
from repro.core.mds import MdsFamily
from repro.core.hamiltonian import HamiltonianCycleFamily, HamiltonianPathFamily
from repro.core.steiner import SteinerTreeFamily
from repro.core.maxcut import MaxCutFamily
from repro.core.mvc import MvcMaxISFamily
from repro.core.bounded_degree import BoundedDegreeMaxIS
from repro.core.approx_maxis import (
    LinearApproxMaxISFamily,
    UnweightedApproxMaxISFamily,
    WeightedApproxMaxISFamily,
)
from repro.core.kmds import KMdsFamily
from repro.core.steiner_approx import (
    DirectedSteinerFamily,
    NodeWeightedSteinerFamily,
)
from repro.core.restricted_mds import RestrictedMdsConstruction
from repro.core.reductions import (
    ReducedFamily,
    two_ecss_family,
    undirected_hc_family,
    undirected_hp_family,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "DiGraph",
    "LowerBoundGraphFamily",
    "FamilyValidationError",
    "validate_family",
    "verify_iff",
    "theorem_1_1_bound",
    "MdsFamily",
    "HamiltonianPathFamily",
    "HamiltonianCycleFamily",
    "SteinerTreeFamily",
    "MaxCutFamily",
    "MvcMaxISFamily",
    "BoundedDegreeMaxIS",
    "WeightedApproxMaxISFamily",
    "UnweightedApproxMaxISFamily",
    "LinearApproxMaxISFamily",
    "KMdsFamily",
    "NodeWeightedSteinerFamily",
    "DirectedSteinerFamily",
    "RestrictedMdsConstruction",
    "ReducedFamily",
    "undirected_hc_family",
    "undirected_hp_family",
    "two_ecss_family",
]
