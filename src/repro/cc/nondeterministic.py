"""Nondeterministic two-party protocols and the Γ(f) measure (Section 5.2).

A nondeterministic protocol consists of a *prover* that, given both
inputs, produces certificates for Alice and Bob, and a deterministic
*verifier* protocol run on (input, certificate) pairs.  Completeness:
TRUE instances have an accepting certificate (the prover's).  Soundness:
FALSE instances accept under no certificate — checked exhaustively on
tiny instances by :meth:`NondeterministicProtocol.check_soundness`.

Γ(f) = CC(f) / max(CCN(f), CCN(¬f)) bounds how much a lower bound via
Theorem 1.1 can exceed what nondeterministic protocols allow
(Claim 5.10); the table records the paper's instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Tuple

from repro.cc.functions import CCFunction
from repro.cc.protocol import Channel, ProtocolResult

Prover = Callable[[Any, Any], Tuple[Any, Any]]
# verifier(x, cert_a, y, cert_b, channel) -> bool (accept)
Verifier = Callable[[Any, Any, Any, Any, Channel], bool]


@dataclass
class NondeterministicProtocol:
    """A (prover, verifier) pair for verifying a predicate on (x, y)."""

    name: str
    prover: Prover
    verifier: Verifier

    def run_honest(self, x: Any, y: Any) -> ProtocolResult:
        """Run the verifier on the honest prover's certificates."""
        cert_a, cert_b = self.prover(x, y)
        channel = Channel()
        accept = self.verifier(x, cert_a, y, cert_b, channel)
        return ProtocolResult(output=accept, bits=channel.bits,
                              messages=channel.messages,
                              transcript=channel.transcript)

    def check_completeness(self, x: Any, y: Any) -> ProtocolResult:
        result = self.run_honest(x, y)
        if not result.output:
            raise AssertionError(
                f"{self.name}: honest certificate rejected on a TRUE instance")
        return result

    def check_soundness(self, x: Any, y: Any,
                        certificate_space: Iterable[Tuple[Any, Any]]) -> None:
        """Exhaustively confirm no certificate is accepted (FALSE instance)."""
        for cert_a, cert_b in certificate_space:
            channel = Channel()
            if self.verifier(x, cert_a, y, cert_b, channel):
                raise AssertionError(
                    f"{self.name}: certificate accepted on a FALSE instance")


def gamma(f: CCFunction, k_bits: int) -> float:
    """Γ(f) = CC(f) / max(CCN(f), CCN(¬f)) at input length ``k_bits``."""
    denom = max(f.ccn(k_bits), f.ccn_complement(k_bits))
    return f.cc(k_bits) / denom


#: Section 5.2's worked values: Γ(DISJ) = O(1) and Γ(EQ) = O(1) — both
#: have full-complexity nondeterministic certificates for one side —
#: while in general Γ(f) = O(sqrt(CC(f))).
GAMMA_TABLE = {
    "DISJ": "Γ = Θ(1): CCN(DISJ) = Θ(K) [35, Ex 1.23/Def 2.3]",
    "EQ": "Γ = Θ(1): CCN(EQ) = Θ(K)",
    "general": "Γ(f) = O(sqrt(CC(f))) since CC ≤ O(CCN(f)·CCN(¬f)) [35, Thm 2.11]",
}
