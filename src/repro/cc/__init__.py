"""Two-party communication complexity (Section 1.3) and the Theorem 1.1
Alice–Bob simulation of CONGEST algorithms (Section 1.4)."""

from repro.cc.protocol import Channel, ProtocolResult, run_protocol
from repro.cc.functions import (
    DISJ,
    EQ,
    CCFunction,
    disjointness,
    equality,
    gap_disjointness,
    intersection_size,
    all_inputs,
    random_input_pairs,
    random_disjoint_pair,
    random_intersecting_pair,
)
from repro.cc.alice_bob import (
    TwoPartySimulation,
    simulate_two_party,
    implied_round_lower_bound,
)
from repro.cc.randomized import (
    equality_fingerprint_protocol,
    estimate_error,
)
from repro.cc.nondeterministic import (
    NondeterministicProtocol,
    gamma,
    GAMMA_TABLE,
)

__all__ = [
    "Channel",
    "ProtocolResult",
    "run_protocol",
    "DISJ",
    "EQ",
    "CCFunction",
    "disjointness",
    "equality",
    "gap_disjointness",
    "intersection_size",
    "all_inputs",
    "random_input_pairs",
    "random_disjoint_pair",
    "random_intersecting_pair",
    "TwoPartySimulation",
    "simulate_two_party",
    "implied_round_lower_bound",
    "equality_fingerprint_protocol",
    "estimate_error",
    "NondeterministicProtocol",
    "gamma",
    "GAMMA_TABLE",
]
