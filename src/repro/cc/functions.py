"""The communication problems the paper reduces from (Section 1.3, 5.2).

Inputs are bit strings represented as tuples of 0/1.  Known complexity
facts are recorded on each :class:`CCFunction` as callables of K — they
are *cited* bounds (Kushilevitz–Nisan [35]), used to evaluate the
Theorem 1.1 formula, not re-proven here.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from itertools import product
from typing import Callable, Iterator, List, Sequence, Tuple

Bits = Tuple[int, ...]


def disjointness(x: Sequence[int], y: Sequence[int]) -> bool:
    """DISJ_K: TRUE iff no index i has x_i = y_i = 1."""
    if len(x) != len(y):
        raise ValueError("input length mismatch")
    return not any(a == 1 and b == 1 for a, b in zip(x, y))


def equality(x: Sequence[int], y: Sequence[int]) -> bool:
    """EQ_K: TRUE iff x = y."""
    if len(x) != len(y):
        raise ValueError("input length mismatch")
    return tuple(x) == tuple(y)


def intersection_size(x: Sequence[int], y: Sequence[int]) -> int:
    """|{i : x_i = y_i = 1}| — the quantity gap disjointness promises on."""
    if len(x) != len(y):
        raise ValueError("input length mismatch")
    return sum(1 for a, b in zip(x, y) if a == 1 and b == 1)


def gap_disjointness(x: Sequence[int], y: Sequence[int], gap: int) -> bool:
    """Gap set disjointness (the gap-embedding tool of Section 1.1, after
    [9]): TRUE iff the inputs are disjoint; inputs with intersection size
    strictly between 0 and ``gap`` are promise violations.

    Raises ``ValueError`` on promise violations so that constructions
    reducing from the gap version fail loudly on illegal inputs.
    """
    size = intersection_size(x, y)
    if 0 < size < gap:
        raise ValueError(f"promise violation: intersection {size} in (0, {gap})")
    return size == 0


@dataclass(frozen=True)
class CCFunction:
    """A two-party Boolean function plus its known complexities.

    ``cc``/``ccr``/``ccn``/``ccn_complement`` give the deterministic,
    randomized, nondeterministic, and complement-nondeterministic
    communication complexities as functions of the input length K (up to
    constants; Θ of the returned expression).
    """

    name: str
    evaluate: Callable[[Sequence[int], Sequence[int]], bool]
    cc: Callable[[int], float]
    ccr: Callable[[int], float]
    ccn: Callable[[int], float]
    ccn_complement: Callable[[int], float]

    def __call__(self, x: Sequence[int], y: Sequence[int]) -> bool:
        return self.evaluate(x, y)


#: Set disjointness: CC = CCR = CCN = Θ(K); CCN(¬DISJ) = Θ(log K)
#: ([35, Example 3.22] and [35, Example 1.23 / Definition 2.3]).
DISJ = CCFunction(
    name="DISJ",
    evaluate=disjointness,
    cc=lambda K: float(K),
    ccr=lambda K: float(K),
    ccn=lambda K: float(K),
    ccn_complement=lambda K: math.log2(max(2, K)),
)

#: Equality: CC = CCN = Θ(K), CCR = Θ(log K), CCN(¬EQ) = Θ(log K).
EQ = CCFunction(
    name="EQ",
    evaluate=equality,
    cc=lambda K: float(K),
    ccr=lambda K: math.log2(max(2, K)),
    ccn=lambda K: float(K),
    ccn_complement=lambda K: math.log2(max(2, K)),
)


def all_inputs(k_bits: int) -> Iterator[Bits]:
    """All bit strings of length ``k_bits`` (use only for tiny K)."""
    for bits in product((0, 1), repeat=k_bits):
        yield bits


def random_input_pairs(k_bits: int, count: int, rng: random.Random,
                       ) -> List[Tuple[Bits, Bits]]:
    """Random (x, y) pairs, balanced between TRUE and FALSE DISJ instances.

    Uniform pairs are almost always intersecting for large K; the sweep
    needs both sides of the predicate, so half the pairs are forced
    disjoint and half forced intersecting.
    """
    pairs = []
    for i in range(count):
        if i % 2 == 0:
            pairs.append(random_disjoint_pair(k_bits, rng))
        else:
            pairs.append(random_intersecting_pair(k_bits, rng))
    return pairs


def random_disjoint_pair(k_bits: int, rng: random.Random) -> Tuple[Bits, Bits]:
    x = []
    y = []
    for __ in range(k_bits):
        choice = rng.randint(0, 2)  # (0,0), (1,0), (0,1)
        x.append(1 if choice == 1 else 0)
        y.append(1 if choice == 2 else 0)
    return tuple(x), tuple(y)


def random_intersecting_pair(k_bits: int, rng: random.Random) -> Tuple[Bits, Bits]:
    x = [rng.randint(0, 1) for __ in range(k_bits)]
    y = [rng.randint(0, 1) for __ in range(k_bits)]
    i = rng.randrange(k_bits)
    x[i] = 1
    y[i] = 1
    return tuple(x), tuple(y)
