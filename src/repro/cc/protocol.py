"""Two-party protocols with exact bit accounting.

A protocol is an ordinary function ``protocol(x, y, channel)`` written
from the global view; it must route every piece of information that
crosses between the players through the :class:`Channel`, whose methods
count bits with the same measure the CONGEST simulator uses.  The paper's
limitation results (Section 5) are all statements of the form "Alice and
Bob can decide P with so-many bits" — each is implemented as such a
function and its measured cost asserted in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Tuple

from repro.congest.model import message_bits


@dataclass
class ProtocolResult:
    output: Any
    bits: int
    messages: int
    transcript: List[Tuple[str, Any]] = field(repr=False, default_factory=list)


class Channel:
    """Counts every bit exchanged between Alice and Bob."""

    def __init__(self) -> None:
        self.bits = 0
        self.messages = 0
        self.transcript: List[Tuple[str, Any]] = []

    def a_to_b(self, value: Any) -> Any:
        """Alice sends ``value`` to Bob (returned for Bob's code to use)."""
        return self._send("A->B", value)

    def b_to_a(self, value: Any) -> Any:
        """Bob sends ``value`` to Alice."""
        return self._send("B->A", value)

    def _send(self, direction: str, value: Any) -> Any:
        self.bits += message_bits(value)
        self.messages += 1
        self.transcript.append((direction, value))
        return value


def run_protocol(protocol: Callable[[Any, Any, Channel], Any],
                 x: Any, y: Any) -> ProtocolResult:
    """Execute ``protocol`` on inputs ``(x, y)`` with a fresh channel."""
    channel = Channel()
    output = protocol(x, y, channel)
    return ProtocolResult(output=output, bits=channel.bits,
                          messages=channel.messages,
                          transcript=channel.transcript)
