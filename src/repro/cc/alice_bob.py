"""The Theorem 1.1 simulation argument, executed for real.

Given a family instance with partition (VA, VB), Alice simulates G[VA]
and Bob simulates G[VB]; a T-round CONGEST algorithm costs them at most
2·T·|Ecut|·B bits, B the bandwidth.  Combined with CC(f) ≥ K for the
reduced-from function f, this yields the paper's round lower bound

    T = Ω( CC(f) / (|Ecut| · log n) ).

``simulate_two_party`` runs an actual algorithm and measures the bits that
cross the cut (verifying the 2·T·|Ecut|·B accounting), and
``implied_round_lower_bound`` evaluates the formula.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional, Set, Tuple

from repro.congest.model import CongestSimulator, NodeAlgorithm
from repro.graphs import Graph, Vertex


@dataclass
class TwoPartySimulation:
    """Outcome of co-simulating a CONGEST algorithm across a fixed cut."""

    rounds: int
    cut_bits: int
    cut_messages: int
    ecut_size: int
    bandwidth: int
    outputs: Dict[Vertex, Any] = field(repr=False, default_factory=dict)

    @property
    def bits_budget(self) -> int:
        """Theorem 1.1's accounting: 2 · rounds · |Ecut| · bandwidth."""
        return 2 * self.rounds * self.ecut_size * self.bandwidth

    @property
    def within_budget(self) -> bool:
        return self.cut_bits <= self.bits_budget


def simulate_two_party(
    graph: Graph,
    va: Iterable[Vertex],
    algorithm_factory: Callable[[], NodeAlgorithm],
    inputs: Optional[Dict[Vertex, Any]] = None,
    bandwidth_factor: int = 8,
    max_rounds: int = 100000,
) -> TwoPartySimulation:
    """Run ``algorithm_factory`` on ``graph``, charging only cut traffic.

    ``va`` is Alice's vertex set; everything else is Bob's.  Messages
    within a side are free (each player simulates its side locally);
    messages across the cut are the protocol's communication.
    """
    va_set: Set[Vertex] = set(va)
    vb_set = set(graph.vertices()) - va_set
    if not va_set or not vb_set:
        raise ValueError("both sides of the partition must be non-empty")
    ecut = [(u, v) for u, v in graph.edges()
            if (u in va_set) != (v in va_set)]

    sim = CongestSimulator(graph, bandwidth_factor=bandwidth_factor)
    side_of_uid = {sim.uid_of[v]: (v in va_set) for v in graph.vertices()}
    counter = {"bits": 0, "messages": 0}

    def observer(sender: int, receiver: int, bits: int) -> None:
        if side_of_uid[sender] != side_of_uid[receiver]:
            counter["bits"] += bits
            counter["messages"] += 1

    sim.observer = observer
    outputs = sim.run(algorithm_factory, inputs=inputs, max_rounds=max_rounds)
    return TwoPartySimulation(
        rounds=sim.rounds,
        cut_bits=counter["bits"],
        cut_messages=counter["messages"],
        ecut_size=len(ecut),
        bandwidth=sim.bandwidth,
        outputs=outputs,
    )


def implied_round_lower_bound(cc_bits: float, ecut_size: int, n: int) -> float:
    """Theorem 1.1: rounds ≥ CC(f) / (2 · |Ecut| · log2 n) (constant 2 for
    the two directions of each cut edge)."""
    if ecut_size <= 0:
        raise ValueError("empty cut")
    return cc_bits / (2.0 * ecut_size * math.log2(max(2, n)))
