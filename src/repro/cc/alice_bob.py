"""The Theorem 1.1 simulation argument, executed for real.

Given a family instance with partition (VA, VB), Alice simulates G[VA]
and Bob simulates G[VB]; a T-round CONGEST algorithm costs them at most
2·T·|Ecut|·B bits, B the bandwidth.  Combined with CC(f) ≥ K for the
reduced-from function f, this yields the paper's round lower bound

    T = Ω( CC(f) / (|Ecut| · log n) ).

``simulate_two_party`` runs an actual algorithm and measures the bits that
cross the cut (verifying the 2·T·|Ecut|·B accounting), and
``implied_round_lower_bound`` evaluates the formula.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional, Set, Tuple

from repro.congest.model import CongestSimulator, NodeAlgorithm
from repro.graphs import Graph, Vertex
from repro.obs.metrics import CutBitCounter
from repro.obs.trace import MultiTracer, Tracer


@dataclass
class TwoPartySimulation:
    """Outcome of co-simulating a CONGEST algorithm across a fixed cut."""

    rounds: int
    cut_bits: int
    cut_messages: int
    ecut_size: int
    bandwidth: int
    outputs: Dict[Vertex, Any] = field(repr=False, default_factory=dict)
    #: bits crossing the cut in each round (round 0 = ``on_start``),
    #: from the trace-level :class:`repro.obs.metrics.CutBitCounter`.
    cut_bits_by_round: Dict[int, int] = field(repr=False, default_factory=dict)

    @property
    def bits_budget(self) -> int:
        """Theorem 1.1's accounting: 2 · rounds · |Ecut| · bandwidth."""
        return 2 * self.rounds * self.ecut_size * self.bandwidth

    @property
    def within_budget(self) -> bool:
        return self.cut_bits <= self.bits_budget


def simulate_two_party(
    graph: Graph,
    va: Iterable[Vertex],
    algorithm_factory: Callable[[], NodeAlgorithm],
    inputs: Optional[Dict[Vertex, Any]] = None,
    bandwidth: Optional[float] = None,
    bandwidth_factor: int = 8,
    max_rounds: int = 100000,
    tracer: Optional[Tracer] = None,
) -> TwoPartySimulation:
    """Run ``algorithm_factory`` on ``graph``, charging only cut traffic.

    ``va`` is Alice's vertex set; everything else is Bob's.  Messages
    within a side are free (each player simulates its side locally);
    messages across the cut are the protocol's communication.

    ``bandwidth``/``bandwidth_factor`` follow the
    :class:`CongestSimulator` convention: ``bandwidth=None`` selects the
    standard CONGEST ``bandwidth_factor·log2 n`` bits, ``math.inf`` the
    LOCAL model, and any other value a custom per-edge bound — so the
    Theorem 1.1 accounting can be measured under every model.

    The cut bits are counted twice, independently: once by the legacy
    per-message ``observer`` callback and once by a trace-level
    :class:`CutBitCounter`.  The two totals are asserted equal, so the
    Theorem 1.1 accounting is cross-checked on every simulation.  An
    extra ``tracer`` (e.g. a ``JsonlTracer``) receives the full event
    stream alongside the counter.
    """
    va_set: Set[Vertex] = set(va)
    vb_set = set(graph.vertices()) - va_set
    if not va_set or not vb_set:
        raise ValueError("both sides of the partition must be non-empty")
    ecut = [(u, v) for u, v in graph.edges()
            if (u in va_set) != (v in va_set)]

    sim = CongestSimulator(graph, bandwidth=bandwidth,
                           bandwidth_factor=bandwidth_factor,
                           tracer=tracer)
    alice_uids = {sim.uid_of[v] for v in va_set}
    cut_counter = CutBitCounter(alice_uids)
    # layer the cut counter on top of whatever tracer was resolved
    # (explicit argument or the ambient trace_to_directory tracer)
    saved_tracer, saved_observer = sim.tracer, sim.observer
    sinks = [cut_counter] + ([sim.tracer] if sim.tracer is not None else [])
    sim.tracer = MultiTracer(sinks)
    side_of_uid = {sim.uid_of[v]: (v in va_set) for v in graph.vertices()}
    counter = {"bits": 0, "messages": 0}

    def observer(sender: int, receiver: int, bits: int) -> None:
        if side_of_uid[sender] != side_of_uid[receiver]:
            counter["bits"] += bits
            counter["messages"] += 1

    sim.observer = observer
    try:
        outputs = sim.run(algorithm_factory, inputs=inputs,
                          max_rounds=max_rounds)
    finally:
        # leave the simulator as constructed: a caller reusing `sim` for
        # another run must not inherit this run's cut counter/observer
        sim.tracer, sim.observer = saved_tracer, saved_observer
    if (counter["bits"], counter["messages"]) != (
            cut_counter.cut_bits, cut_counter.cut_messages):
        raise AssertionError(
            "cut accounting mismatch: observer saw "
            f"{counter['bits']} bits / {counter['messages']} messages, "
            f"trace saw {cut_counter.cut_bits} / {cut_counter.cut_messages}")
    return TwoPartySimulation(
        rounds=sim.rounds,
        cut_bits=counter["bits"],
        cut_messages=counter["messages"],
        ecut_size=len(ecut),
        bandwidth=sim.bandwidth,
        outputs=outputs,
        cut_bits_by_round=dict(sorted(cut_counter.bits_by_round.items())),
    )


def implied_round_lower_bound(cc_bits: float, ecut_size: int, n: int) -> float:
    """Theorem 1.1: rounds ≥ CC(f) / (2 · |Ecut| · log2 n) (constant 2 for
    the two directions of each cut edge)."""
    if ecut_size <= 0:
        raise ValueError("empty cut")
    return cc_bits / (2.0 * ecut_size * math.log2(max(2, n)))
