"""Randomized two-party protocols (Section 1.3's model).

The paper's randomized model lets Alice and Bob share truly random bits
and demands correctness probability ≥ 2/3.  Two classic protocols are
implemented because Section 5 leans on their complexities:

- public-coin *equality fingerprinting*: CCR(EQ) = O(log K) — this is
  why EQ-based families cannot give randomized bounds beyond Ω̃(1), and
  why the paper reduces from DISJ (CCR(DISJ) = Θ(K) even with shared
  randomness) everywhere;
- the trivial one-bit send for comparison of error behaviour.

``estimate_error`` measures the empirical failure probability, which
the tests compare against the analytic 2^{-repetitions} bound.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence, Tuple

from repro.cc.protocol import Channel


def equality_fingerprint_protocol(
    x: Sequence[int],
    y: Sequence[int],
    channel: Channel,
    shared_rng: random.Random,
    repetitions: int = 8,
) -> bool:
    """Public-coin equality test: ⟨x, r⟩ = ⟨y, r⟩ (mod 2) for
    ``repetitions`` shared random vectors r.

    Always accepts equal inputs; rejects unequal inputs except with
    probability 2^{-repetitions}.  Cost: ``repetitions`` bits from Alice
    plus one answer bit — O(log(1/δ)), independent of K.
    """
    if len(x) != len(y):
        raise ValueError("input length mismatch")
    k = len(x)
    for __ in range(repetitions):
        r = [shared_rng.randint(0, 1) for _ in range(k)]
        fx = sum(a * b for a, b in zip(x, r)) % 2
        fy = sum(a * b for a, b in zip(y, r)) % 2
        sent = channel.a_to_b(fx)
        if sent != fy:
            channel.b_to_a(False)
            return False
    channel.b_to_a(True)
    return True


def disjointness_trivial_protocol(
    x: Sequence[int],
    y: Sequence[int],
    channel: Channel,
) -> bool:
    """The K-bit baseline for DISJ: Alice sends her whole input.

    Unlike equality, no fingerprinting shortcut exists — CCR(DISJ) =
    Θ(K) even with shared randomness ([35, Example 3.22]), which is why
    every family in the paper reduces from DISJ.  The tests contrast
    this protocol's K-bit cost against the O(log(1/δ)) equality test.
    """
    received = channel.a_to_b(tuple(x))
    answer = not any(a == 1 and b == 1 for a, b in zip(received, y))
    channel.b_to_a(answer)
    return answer


def estimate_error(
    protocol: Callable[..., bool],
    truth: Callable[[Sequence[int], Sequence[int]], bool],
    pairs: Sequence[Tuple[Sequence[int], Sequence[int]]],
    trials: int = 50,
    seed: int = 0,
    **kwargs,
) -> float:
    """Empirical error rate of a randomized protocol over input pairs."""
    wrong = 0
    total = 0
    master = random.Random(seed)
    for x, y in pairs:
        for __ in range(trials):
            shared = random.Random(master.getrandbits(64))
            channel = Channel()
            answer = protocol(x, y, channel, shared, **kwargs)
            if answer != truth(x, y):
                wrong += 1
            total += 1
    return wrong / total
