"""Parallel experiment execution with crash isolation.

``run_parallel`` fans the registered experiments out over a
:class:`concurrent.futures.ProcessPoolExecutor` while keeping the
*report* exactly what the serial runner produces:

- **deterministic order** — records come back in request order, so the
  markdown table from ``repro experiments --jobs 4`` is byte-identical
  to the serial one (modulo the wall-clock fields ``solver_profile`` /
  ``solver_cache`` that ``profile=True`` adds);
- **crash isolation** — a worker that dies (hard crash, not a Python
  exception) breaks the pool; the jobs that were in flight are re-run
  one at a time in fresh single-worker pools, so the crasher is
  attributed a ``FAIL`` record after its bounded retries while innocent
  co-runners complete normally.  The batch never aborts;
- **timeouts** — each experiment gets ``timeout`` seconds of wall
  clock; an expired experiment yields a ``FAIL`` record and its stuck
  worker is terminated;
- **exceptions** — an ordinary Python exception inside an experiment is
  caught *in the worker* and returned as a ``FAIL`` record with the
  traceback in ``notes``.

Workers prefer the ``fork`` start method where available so experiments
registered at runtime (tests) exist in the children; on spawn-only
platforms the children re-import :mod:`repro.experiments`, which
registers the built-in suite.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import deque
from concurrent import futures
from concurrent.futures import process as futures_process
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import EXPERIMENTS, ExperimentRecord, run_experiment

#: ``measured`` keys that legitimately differ between serial and
#: parallel runs (wall-clock times, per-process cache counters).
WALL_CLOCK_KEYS = ("solver_profile", "solver_cache")


def strip_wallclock(record: ExperimentRecord) -> ExperimentRecord:
    """A copy of ``record`` without the wall-clock ``measured`` fields."""
    measured = {k: v for k, v in record.measured.items()
                if k not in WALL_CLOCK_KEYS}
    return replace(record, measured=measured)


def records_equivalent(a: ExperimentRecord, b: ExperimentRecord) -> bool:
    """Equality modulo wall-clock fields — the parallel-vs-serial
    determinism contract."""
    return strip_wallclock(a) == strip_wallclock(b)


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _worker(experiment_id: str, quick: bool, trace_dir: Optional[str],
            profile: bool, trace_format: str, cache_enabled: bool,
            cache_dir: Optional[str],
            engine: Optional[str] = None) -> ExperimentRecord:
    """Process-pool entry point: run one experiment, never raise.

    Ordinary exceptions become FAIL records here so only genuine worker
    death (``os._exit``, signals, OOM kills) reaches the pool machinery.
    """
    from repro.solvers import cache as solver_cache
    solver_cache.configure(enabled=cache_enabled, cache_dir=cache_dir)
    try:
        return run_experiment(experiment_id, quick=quick,
                              trace_dir=trace_dir, profile=profile,
                              trace_format=trace_format, engine=engine)
    except Exception:
        return ExperimentRecord(
            experiment_id=experiment_id,
            paper_claim="",
            passed=False,
            notes="EXCEPTION in worker:\n" + traceback.format_exc(),
        )


def _timeout_record(experiment_id: str,
                    timeout: Optional[float]) -> ExperimentRecord:
    return ExperimentRecord(
        experiment_id=experiment_id,
        paper_claim="",
        parameters={"timeout_s": timeout},
        passed=False,
        notes=f"TIMEOUT: exceeded {timeout}s wall clock; worker terminated",
    )


def _crash_record(experiment_id: str, detail: str,
                  retries: int) -> ExperimentRecord:
    return ExperimentRecord(
        experiment_id=experiment_id,
        paper_claim="",
        parameters={"retries": retries},
        passed=False,
        notes=f"CRASH: {detail} (after {retries} bounded "
              f"retr{'y' if retries == 1 else 'ies'})",
    )


def _error_record(experiment_id: str, tb: str) -> ExperimentRecord:
    return ExperimentRecord(
        experiment_id=experiment_id,
        paper_claim="",
        passed=False,
        notes="EXCEPTION dispatching experiment:\n" + tb,
    )


def _terminate(executor: futures.ProcessPoolExecutor) -> None:
    """Abandon a pool fast: cancel queued work and kill live workers
    (needed when a worker is stuck past its timeout)."""
    # snapshot first: shutdown() drops the _processes reference even with
    # wait=False, and a wedged worker left alive keeps the pool's manager
    # thread (and interpreter exit) blocked until its task finishes
    procs = dict(getattr(executor, "_processes", None) or {})
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive
        pass
    for proc in procs.values():
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - already gone
            pass


def _run_isolated(experiment_id: str, quick: bool, trace_dir: Optional[str],
                  profile: bool, trace_format: str,
                  cache_cfg: Tuple[bool, Optional[str]],
                  timeout: Optional[float], retries: int, ctx,
                  first_error: Optional[BaseException],
                  engine: Optional[str] = None) -> ExperimentRecord:
    """Re-run one pool-breaking job alone, once per allowed retry."""
    detail = (f"worker process died ({first_error!r})"
              if first_error is not None else "worker process died")
    for __ in range(max(0, retries)):
        executor = futures.ProcessPoolExecutor(max_workers=1, mp_context=ctx)
        try:
            fut = executor.submit(_worker, experiment_id, quick, trace_dir,
                                  profile, trace_format, *cache_cfg,
                                  engine=engine)
            try:
                return fut.result(timeout=timeout)
            except futures.TimeoutError:
                return _timeout_record(experiment_id, timeout)
            except futures_process.BrokenProcessPool as exc:
                detail = f"worker process died ({exc!r})"
            except futures.BrokenExecutor as exc:
                detail = f"worker process died ({exc!r})"
            except Exception:
                return _error_record(experiment_id, traceback.format_exc())
        finally:
            _terminate(executor)
    return _crash_record(experiment_id, detail, retries)


def run_parallel(ids: Sequence[str],
                 quick: bool = True,
                 jobs: int = 2,
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 trace_dir: Optional[str] = None,
                 profile: bool = False,
                 trace_format: str = "binary",
                 engine: Optional[str] = None) -> List[ExperimentRecord]:
    """Run ``ids`` over ``jobs`` worker processes; records in ``ids`` order.

    ``timeout`` is per-experiment wall clock in seconds (``None`` = no
    limit).  ``retries`` bounds how often a job whose worker *died* is
    re-attempted in isolation before it is recorded as a CRASH FAIL.
    Jobs that merely shared a pool with a dying worker are re-run
    without burning their own retries.  ``engine`` pins the CONGEST
    round loop inside every worker.
    """
    order = list(ids)
    for eid in order:
        if eid not in EXPERIMENTS:
            raise KeyError(eid)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")

    from repro.solvers.cache import CACHE
    cache_cfg = (CACHE.enabled, CACHE.cache_dir)
    ctx = _mp_context()

    results: Dict[str, ExperimentRecord] = {}
    pending: deque = deque(order)
    while pending:
        suspects: List[Tuple[str, BaseException]] = []
        executor = futures.ProcessPoolExecutor(max_workers=jobs,
                                               mp_context=ctx)
        inflight: Dict[Any, Tuple[str, Optional[float]]] = {}
        broken = False
        try:
            while (pending or inflight) and not broken:
                # keep at most `jobs` in flight so a submitted job starts
                # immediately and its deadline is meaningful
                while pending and len(inflight) < jobs:
                    eid = pending.popleft()
                    try:
                        fut = executor.submit(_worker, eid, quick, trace_dir,
                                              profile, trace_format,
                                              *cache_cfg, engine=engine)
                    except Exception:
                        pending.appendleft(eid)
                        broken = True
                        break
                    deadline = (None if timeout is None
                                else time.monotonic() + timeout)
                    inflight[fut] = (eid, deadline)
                if broken or not inflight:
                    break
                deadlines = [d for __, d in inflight.values() if d is not None]
                wait_for = (max(0.0, min(deadlines) - time.monotonic())
                            if deadlines else None)
                done, __ = futures.wait(set(inflight), timeout=wait_for,
                                        return_when=futures.FIRST_COMPLETED)
                if not done:
                    now = time.monotonic()
                    expired = [f for f, (__, d) in inflight.items()
                               if d is not None and d <= now]
                    if not expired:
                        continue
                    for fut in expired:
                        eid, __ = inflight.pop(fut)
                        results[eid] = _timeout_record(eid, timeout)
                    # the expired workers are wedged; tear the pool down
                    # to reclaim their slots (co-runners are requeued)
                    broken = True
                    continue
                for fut in done:
                    eid, __ = inflight.pop(fut)
                    try:
                        record = fut.result()
                    except (futures_process.BrokenProcessPool,
                            futures.BrokenExecutor) as exc:
                        suspects.append((eid, exc))
                        broken = True
                    except futures.CancelledError:
                        pending.appendleft(eid)
                    except Exception:
                        results[eid] = _error_record(
                            eid, traceback.format_exc())
                    else:
                        results[eid] = record
        finally:
            for fut, (eid, __) in inflight.items():
                if eid not in results and all(eid != s for s, __ in suspects):
                    pending.appendleft(eid)
            _terminate(executor)
        for eid, exc in suspects:
            results[eid] = _run_isolated(eid, quick, trace_dir, profile,
                                         trace_format, cache_cfg, timeout,
                                         retries, ctx, first_error=exc,
                                         engine=engine)
    return [results[eid] for eid in order]
