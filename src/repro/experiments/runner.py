"""Experiment registry and reporting.

Observability hooks: ``run_experiment(..., trace_dir=...)`` makes every
CONGEST simulator constructed inside the experiment stream its events to
``trace_dir/<experiment id>-NNNN.rtb`` — compact binary by default,
``trace_format="jsonl"`` for JSON lines — render them with ``repro
report trace``; and ``profile=True`` surfaces the exact-solver
wall-clock / call-count profile through
``ExperimentRecord.measured["solver_profile"]``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

ExperimentFn = Callable[..., "ExperimentRecord"]

EXPERIMENTS: Dict[str, ExperimentFn] = {}


def _escape_cell(text: Any) -> str:
    """Make a value safe inside one markdown table cell.

    ``|`` would end the cell and newlines would end the row, silently
    corrupting the table; escape the pipe and fold line breaks to
    ``<br>`` (backslashes first, so the escape itself survives).
    """
    s = str(text)
    s = s.replace("\\", "\\\\").replace("|", "\\|")
    return s.replace("\r\n", "<br>").replace("\n", "<br>").replace("\r", "<br>")


@dataclass
class ExperimentRecord:
    """Paper-claim vs measured outcome for one theorem/figure."""

    experiment_id: str
    paper_claim: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    measured: Dict[str, Any] = field(default_factory=dict)
    passed: bool = True
    notes: str = ""

    def as_row(self) -> str:
        params = ", ".join(f"{_escape_cell(k)}={_escape_cell(v)}"
                           for k, v in self.parameters.items())
        meas = "; ".join(f"{_escape_cell(k)}={_escape_cell(v)}"
                         for k, v in self.measured.items())
        status = "PASS" if self.passed else "FAIL"
        return (f"| {_escape_cell(self.experiment_id)} "
                f"| {_escape_cell(self.paper_claim)} | {params} "
                f"| {meas} | {status} |")


def experiment(experiment_id: str) -> Callable[[ExperimentFn], ExperimentFn]:
    def register(fn: ExperimentFn) -> ExperimentFn:
        EXPERIMENTS[experiment_id] = fn
        return fn
    return register


def run_experiment(experiment_id: str, quick: bool = True,
                   trace_dir: Optional[str] = None,
                   profile: bool = False,
                   trace_format: str = "binary",
                   engine: Optional[str] = None) -> ExperimentRecord:
    if engine is not None:
        # pin the CONGEST round loop for every simulator the experiment
        # constructs (they consult the process default), restoring the
        # previous default afterwards
        from repro.congest.model import configure_engine
        previous = configure_engine(engine)
        try:
            return run_experiment(experiment_id, quick=quick,
                                  trace_dir=trace_dir, profile=profile,
                                  trace_format=trace_format)
        finally:
            configure_engine(previous)
    fn = EXPERIMENTS[experiment_id]
    if trace_dir is None and not profile:
        return fn(quick=quick)

    from repro.obs.profile import (
        diff_cache_stats,
        diff_profile,
        format_cache_stats,
        format_profile,
        profile_stats,
        solver_cache_stats,
    )
    from repro.obs.trace import trace_to_directory

    before = profile_stats() if profile else {}
    cache_before = solver_cache_stats() if profile else {}
    if trace_dir is not None:
        with trace_to_directory(os.fspath(trace_dir), prefix=experiment_id,
                                fmt=trace_format):
            record = fn(quick=quick)
    else:
        record = fn(quick=quick)
    if profile:
        delta = diff_profile(before, profile_stats())
        record.measured["solver_profile"] = format_profile(delta) or "(none)"
        cache_delta = diff_cache_stats(cache_before, solver_cache_stats())
        record.measured["solver_cache"] = (
            format_cache_stats(cache_delta) or "(none)")
    return record


def run_all(quick: bool = True,
            only: Optional[List[str]] = None,
            trace_dir: Optional[str] = None,
            profile: bool = False,
            jobs: int = 1,
            timeout: Optional[float] = None,
            retries: int = 1,
            trace_format: str = "binary",
            engine: Optional[str] = None,
            warm: bool = True) -> List[ExperimentRecord]:
    """Run experiments and return their records in deterministic order.

    The order is always the request order (``only`` as given, else ids
    sorted) regardless of ``jobs``, so a parallel run's report is
    byte-identical to the serial one modulo wall-clock fields
    (``solver_profile`` / ``solver_cache`` under ``profile=True``).
    ``jobs > 1`` fans out over worker processes with per-experiment
    ``timeout`` seconds and ``retries`` bounded retries on worker death
    (see :mod:`repro.experiments.parallel`).  ``engine`` pins the
    CONGEST round loop for every simulator (in workers too).
    """
    ids = only if only is not None else sorted(EXPERIMENTS)
    if jobs and jobs > 1:
        if warm:
            # persistent lanes: worker processes (and their solver
            # caches) survive across run_all calls; None = fall back
            from repro.experiments import warm_pool
            records = warm_pool.run_experiments(
                ids, quick=quick, jobs=jobs, timeout=timeout,
                retries=retries, trace_dir=trace_dir, profile=profile,
                trace_format=trace_format, engine=engine)
            if records is not None:
                return records
        from repro.experiments.parallel import run_parallel
        return run_parallel(ids, quick=quick, jobs=jobs, timeout=timeout,
                            retries=retries, trace_dir=trace_dir,
                            profile=profile, trace_format=trace_format,
                            engine=engine)
    return [run_experiment(eid, quick=quick, trace_dir=trace_dir,
                           profile=profile, trace_format=trace_format,
                           engine=engine)
            for eid in ids]


def format_markdown(records: List[ExperimentRecord]) -> str:
    lines = [
        "| experiment | paper claim | parameters | measured | status |",
        "|---|---|---|---|---|",
    ]
    lines.extend(r.as_row() for r in records)
    return "\n".join(lines)
