"""Experiment registry and reporting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

ExperimentFn = Callable[..., "ExperimentRecord"]

EXPERIMENTS: Dict[str, ExperimentFn] = {}


@dataclass
class ExperimentRecord:
    """Paper-claim vs measured outcome for one theorem/figure."""

    experiment_id: str
    paper_claim: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    measured: Dict[str, Any] = field(default_factory=dict)
    passed: bool = True
    notes: str = ""

    def as_row(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
        meas = "; ".join(f"{k}={v}" for k, v in self.measured.items())
        status = "PASS" if self.passed else "FAIL"
        return (f"| {self.experiment_id} | {self.paper_claim} | {params} "
                f"| {meas} | {status} |")


def experiment(experiment_id: str) -> Callable[[ExperimentFn], ExperimentFn]:
    def register(fn: ExperimentFn) -> ExperimentFn:
        EXPERIMENTS[experiment_id] = fn
        return fn
    return register


def run_experiment(experiment_id: str, quick: bool = True) -> ExperimentRecord:
    return EXPERIMENTS[experiment_id](quick=quick)


def run_all(quick: bool = True,
            only: Optional[List[str]] = None) -> List[ExperimentRecord]:
    ids = only if only is not None else sorted(EXPERIMENTS)
    return [run_experiment(eid, quick=quick) for eid in ids]


def format_markdown(records: List[ExperimentRecord]) -> str:
    lines = [
        "| experiment | paper claim | parameters | measured | status |",
        "|---|---|---|---|---|",
    ]
    lines.extend(r.as_row() for r in records)
    return "\n".join(lines)
