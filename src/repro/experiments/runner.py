"""Experiment registry and reporting.

Observability hooks: ``run_experiment(..., trace_dir=...)`` makes every
CONGEST simulator constructed inside the experiment stream its events to
``trace_dir/<experiment id>-NNNN.jsonl`` (render them with ``repro
report``), and ``profile=True`` surfaces the exact-solver wall-clock /
call-count profile through ``ExperimentRecord.measured["solver_profile"]``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

ExperimentFn = Callable[..., "ExperimentRecord"]

EXPERIMENTS: Dict[str, ExperimentFn] = {}


@dataclass
class ExperimentRecord:
    """Paper-claim vs measured outcome for one theorem/figure."""

    experiment_id: str
    paper_claim: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    measured: Dict[str, Any] = field(default_factory=dict)
    passed: bool = True
    notes: str = ""

    def as_row(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
        meas = "; ".join(f"{k}={v}" for k, v in self.measured.items())
        status = "PASS" if self.passed else "FAIL"
        return (f"| {self.experiment_id} | {self.paper_claim} | {params} "
                f"| {meas} | {status} |")


def experiment(experiment_id: str) -> Callable[[ExperimentFn], ExperimentFn]:
    def register(fn: ExperimentFn) -> ExperimentFn:
        EXPERIMENTS[experiment_id] = fn
        return fn
    return register


def run_experiment(experiment_id: str, quick: bool = True,
                   trace_dir: Optional[str] = None,
                   profile: bool = False) -> ExperimentRecord:
    fn = EXPERIMENTS[experiment_id]
    if trace_dir is None and not profile:
        return fn(quick=quick)

    from repro.obs.profile import diff_profile, format_profile, profile_stats
    from repro.obs.trace import trace_to_directory

    before = profile_stats() if profile else {}
    if trace_dir is not None:
        with trace_to_directory(os.fspath(trace_dir), prefix=experiment_id):
            record = fn(quick=quick)
    else:
        record = fn(quick=quick)
    if profile:
        delta = diff_profile(before, profile_stats())
        record.measured["solver_profile"] = format_profile(delta) or "(none)"
    return record


def run_all(quick: bool = True,
            only: Optional[List[str]] = None,
            trace_dir: Optional[str] = None,
            profile: bool = False) -> List[ExperimentRecord]:
    ids = only if only is not None else sorted(EXPERIMENTS)
    return [run_experiment(eid, quick=quick, trace_dir=trace_dir,
                           profile=profile) for eid in ids]


def format_markdown(records: List[ExperimentRecord]) -> str:
    lines = [
        "| experiment | paper claim | parameters | measured | status |",
        "|---|---|---|---|---|",
    ]
    lines.extend(r.as_row() for r in records)
    return "\n".join(lines)
