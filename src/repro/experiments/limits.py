"""Experiments for Theorem 1.1 mechanics and the Section 5 limitations."""

from __future__ import annotations

import random
from typing import Dict

from repro.cc.alice_bob import implied_round_lower_bound, simulate_two_party
from repro.cc.functions import DISJ, EQ, random_input_pairs
from repro.cc.nondeterministic import gamma
from repro.cc.protocol import Channel
from repro.congest.algorithms.basic import FloodMinId
from repro.core.maxcut import MaxCutFamily
from repro.core.mds import MdsFamily
from repro.experiments.runner import ExperimentRecord, experiment
from repro.graphs import random_graph
from repro.limits import (
    PartitionedInstance,
    max_flow_at_least_protocol,
    max_flow_less_than_protocol,
    maxcut_weighted_two_thirds_protocol,
    maxis_half_protocol,
    mds_two_approx_protocol,
    mvc_three_halves_protocol,
)
from repro.pls import (
    MatchingAtLeastPls,
    SpanningTreePls,
    check_completeness,
    pls_to_nondeterministic_protocol,
)
from repro.pls.scheme import PlsInstance, edge_key
from repro.solvers import (
    cut_weight,
    is_dominating_set,
    is_vertex_cover,
    max_cut_value,
    max_flow,
    max_independent_set,
    min_dominating_set,
    min_vertex_cover_size,
)


@experiment("E-T1.1-simulation")
def run_theorem11(quick: bool = True) -> ExperimentRecord:
    """Run a real CONGEST algorithm through the Alice-Bob simulation and
    check the 2·T·|Ecut|·B accounting, then evaluate the implied bound."""
    fam = MdsFamily(4)
    rng = random.Random(0x11)
    x, y = random_input_pairs(fam.k_bits, 2, rng)[0]
    g = fam.build(x, y)
    sim = simulate_two_party(g, fam.alice_vertices(), FloodMinId)
    assert sim.within_budget
    bound = implied_round_lower_bound(fam.function.cc(fam.k_bits),
                                      sim.ecut_size, g.n)
    return ExperimentRecord(
        experiment_id="E-T1.1-simulation",
        paper_claim="T-round algorithms cost Alice+Bob ≤ 2T·|Ecut|·B "
                    "bits; rounds ≥ CC(f)/(|Ecut| log n) (Thm 1.1)",
        parameters={"family": "MdsFamily", "k": 4},
        measured={
            "rounds": sim.rounds,
            "cut_bits": sim.cut_bits,
            "budget": sim.bits_budget,
            "within_budget": sim.within_budget,
            "implied_round_bound": round(bound, 3),
        },
        passed=sim.within_budget,
    )


@experiment("E-C5.4-C5.9-protocol-limits")
def run_protocol_limits(quick: bool = True) -> ExperimentRecord:
    """General-graph approximation protocols cap what Theorem 1.1 can
    prove (Claims 5.4-5.9): measure their bits on family instances."""
    rng = random.Random(0x54)
    fam = MaxCutFamily(2)
    x, y = random_input_pairs(4, 2, rng)[1]
    g = fam.build(x, y)
    inst = PartitionedInstance(graph=g, alice=fam.alice_vertices())
    measured: Dict[str, object] = {"ecut": len(inst.cut_edges())}

    ch = Channel()
    side = maxcut_weighted_two_thirds_protocol(inst, ch)
    opt = max_cut_value(g)
    measured["maxcut_2/3_bits"] = ch.bits
    measured["maxcut_2/3_ratio"] = round(cut_weight(g, side) / opt, 3)
    assert cut_weight(g, side) >= (2 / 3) * opt - 1e-9

    ch = Channel()
    cover = mvc_three_halves_protocol(inst, ch)
    assert is_vertex_cover(g, cover)
    measured["mvc_3/2_bits"] = ch.bits
    measured["mvc_3/2_ratio"] = round(
        len(set(cover)) / min_vertex_cover_size(g), 3)

    ch = Channel()
    ds = mds_two_approx_protocol(inst, ch)
    assert is_dominating_set(g, ds)
    measured["mds_2_bits"] = ch.bits
    measured["mds_2_ratio"] = round(
        len(set(ds)) / len(min_dominating_set(g)), 3)

    ch = Channel()
    mis = maxis_half_protocol(inst, ch)
    measured["maxis_1/2_bits"] = ch.bits
    measured["maxis_1/2_ratio"] = round(
        len(mis) / max(1, len(max_independent_set(g))), 3)
    return ExperimentRecord(
        experiment_id="E-C5.4-C5.9-protocol-limits",
        paper_claim="cheap 2-party protocols: (1−ε)/2-3 max-cut, 3/2 & "
                    "(1+ε) MVC, 2 MDS, 1/2 MaxIS (Claims 5.4-5.9)",
        parameters={"instance": "MaxCutFamily(k=2)"},
        measured=measured,
    )


@experiment("E-C5.10-C5.11-nondeterminism")
def run_nondeterminism(quick: bool = True) -> ExperimentRecord:
    rng = random.Random(0x51)
    # Γ(f) values (Claim 5.10 and the discussion around it)
    gammas = {f"gamma(DISJ)@K={K}": round(gamma(DISJ, K), 3)
              for K in (64, 1024)}
    gammas.update({f"gamma(EQ)@K={K}": round(gamma(EQ, K), 3)
                   for K in (64, 1024)})
    # max-flow ND protocols on random partitioned instances (Claim 5.11)
    bits_at_least = bits_less = 0
    checks = 0
    for __ in range(3 if quick else 8):
        g = random_graph(8, 0.5, rng)
        if not g.is_connected():
            continue
        for u, v in g.edges():
            g.set_edge_weight(u, v, rng.randint(1, 5))
        vs = g.vertices()
        inst = PartitionedInstance(graph=g, alice=set(vs[:4]))
        s, t = vs[0], vs[-1]
        mf, __f = max_flow(g, s, t)
        proto = max_flow_at_least_protocol(inst, s, t, mf)
        res = proto.check_completeness(None, None)
        bits_at_least = max(bits_at_least, res.bits)
        proto2 = max_flow_less_than_protocol(inst, s, t, mf + 1)
        res2 = proto2.check_completeness(None, None)
        bits_less = max(bits_less, res2.bits)
        checks += 1
    return ExperimentRecord(
        experiment_id="E-C5.10-C5.11-nondeterminism",
        paper_claim="CCN certificates cap Thm 1.1 at Ω(Γ(f)); max-flow "
                    "has O(|Ecut| log n) ND protocols both ways "
                    "(Claims 5.10, 5.11)",
        parameters={"instances": checks},
        measured={**gammas,
                  "flow_geq_bits": bits_at_least,
                  "flow_less_bits": bits_less},
    )


@experiment("E-T5.1-pls-compiler")
def run_pls_compiler(quick: bool = True) -> ExperimentRecord:
    """Theorem 5.1: compile PLS into ND protocols over a family."""
    rng = random.Random(0x52)
    fam = MdsFamily(4)
    va = fam.alice_vertices()
    import networkx as nx

    def build_instance(x, y):
        g = fam.build(x, y)
        tree = list(nx.bfs_tree(g.to_networkx(),
                                sorted(g.vertices(), key=repr)[0]).edges())
        return PlsInstance(
            graph=g,
            subgraph=frozenset(edge_key(u, v) for u, v in tree))

    proto = pls_to_nondeterministic_protocol(SpanningTreePls(),
                                             build_instance, va)
    x, y = random_input_pairs(fam.k_bits, 2, rng)[0]
    res = proto.check_completeness(x, y)
    # matching PLS label sizes (Claim 5.12)
    g = random_graph(8, 0.5, rng)
    from repro.solvers import max_matching_size

    nu = max_matching_size(g)
    bits = check_completeness(MatchingAtLeastPls(),
                              PlsInstance(graph=g, k=nu))
    return ExperimentRecord(
        experiment_id="E-T5.1-pls-compiler",
        paper_claim="any PLS compiles to an ND protocol of "
                    "O(pls-size·|Ecut|) bits (Thm 5.1); matching and "
                    "distance have O(log n) PLS (Claims 5.12, 5.13)",
        parameters={"family": "MdsFamily(k=4)"},
        measured={
            "compiled_protocol_bits": res.bits,
            "ecut": len(fam.cut_edges()),
            "matching_pls_label_bits": bits,
        },
    )
