"""Experiments for Section 3 (Theorems 3.1-3.4)."""

from __future__ import annotations

import math
import random
from typing import Dict

from repro.cc.functions import disjointness, random_input_pairs
from repro.core.bounded_degree import (
    BoundedDegreeMaxIS,
    expand_formula,
    formula_to_graph,
    graph_to_formula,
    mvc_to_mds_graph,
    mvc_to_two_spanner_graph,
)
from repro.experiments.runner import ExperimentRecord, experiment
from repro.graphs import random_graph
from repro.limits.protocols import solve_disjointness_via_bounded_degree_maxis
from repro.solvers import (
    is_independent_set,
    max_independent_set,
    max_sat_value,
    min_dominating_set,
    min_two_spanner_cost,
    min_vertex_cover_size,
)


@experiment("E-F4-T3.1-bounded-degree-maxis")
def run_bounded_degree(quick: bool = True) -> ExperimentRecord:
    rng = random.Random(0x31)
    # chain claims on small random graphs (Claims 3.1, 3.3/Cor 3.1, 3.4)
    chain_checks = 0
    for t in range(2 if quick else 5):
        g = random_graph(5, 0.5, rng)
        phi = graph_to_formula(g)
        f_phi = max_sat_value(phi)
        alpha = len(max_independent_set(g))
        assert f_phi == alpha + g.m              # Claim 3.1
        ex = expand_formula(phi, seed=t)
        gp = formula_to_graph(ex.cnf)
        a2 = len(max_independent_set(gp))
        assert a2 == f_phi + ex.n_expander_clauses  # Cor 3.1 + Claim 3.4
        assert gp.max_degree() <= 5
        chain_checks += 1
    # full construction at k = 2: exact α chain, witness, Claim 3.6
    from repro.solvers import independence_number

    bd = BoundedDegreeMaxIS(2, seed=1)
    pairs = random_input_pairs(4, 4 if quick else 8, rng)
    max_degree = 0
    diam = 0
    protocol_bits = 0
    for idx, (x, y) in enumerate(pairs):
        inst = bd.build(x, y)
        max_degree = max(max_degree, inst.graph.max_degree())
        diam = max(diam, inst.graph.diameter())
        alpha = independence_number(inst.graph)
        alpha_base = independence_number(inst.base_graph)
        assert alpha == alpha_base + inst.alpha_offset()
        assert (alpha == bd.alpha_target(inst)) == (not disjointness(x, y))
        if not disjointness(x, y):
            w = bd.witness_independent_set(inst, x, y)
            assert len(w) == bd.alpha_target(inst)
            assert is_independent_set(inst.graph, w)
        if idx < 2:
            answer, bits, __ = solve_disjointness_via_bounded_degree_maxis(
                bd, x, y)
            assert answer == disjointness(x, y)
            protocol_bits = max(protocol_bits, bits)
    nprime = inst.graph.n
    return ExperimentRecord(
        experiment_id="E-F4-T3.1-bounded-degree-maxis",
        paper_claim="MaxIS on Δ≤5, O(log n)-diameter graphs needs "
                    "Ω(n/log²n) (Thm 3.1, Claims 3.1-3.6)",
        parameters={"base_k": 2, "n_prime": nprime},
        measured={
            "chain_checks": chain_checks,
            "max_degree": max_degree,
            "diameter": diam,
            "log2_n": round(math.log2(nprime), 1),
            "claim36_protocol_bits": protocol_bits,
        },
        passed=max_degree <= 5,
    )


@experiment("E-T3.3-T3.4-bounded-degree-reductions")
def run_bounded_reductions(quick: bool = True) -> ExperimentRecord:
    rng = random.Random(0x33)
    mds_checks = spanner_checks = 0
    while mds_checks < (3 if quick else 8):
        g = random_graph(6, 0.5, rng)
        if any(g.degree(v) == 0 for v in g.vertices()):
            continue
        gd = mvc_to_mds_graph(g)
        assert len(min_dominating_set(gd)) == min_vertex_cover_size(g)
        mds_checks += 1
    while spanner_checks < (2 if quick else 5):
        g = random_graph(4, 0.7, rng)
        if g.m == 0 or any(g.degree(v) == 0 for v in g.vertices()):
            continue
        h = mvc_to_two_spanner_graph(g)
        assert min_two_spanner_cost(h, limit_edges=12) == \
            min_vertex_cover_size(g)
        spanner_checks += 1
    return ExperimentRecord(
        experiment_id="E-T3.3-T3.4-bounded-degree-reductions",
        paper_claim="MVC→MDS (degree-preserving) and MVC→weighted "
                    "2-spanner carry Thm 3.2 to Thms 3.3, 3.4",
        parameters={},
        measured={"mvc_to_mds_checks": mds_checks,
                  "mvc_to_spanner_checks": spanner_checks},
        notes="2-spanner reduction is a verified substitution for [9]'s "
              "(see DESIGN.md).",
    )
