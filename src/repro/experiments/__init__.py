"""Per-theorem reproduction experiments.

Every theorem and figure of the paper has an experiment that builds the
relevant construction, machine-checks its carrying lemma, and reports
paper-claim vs measured quantities.  ``run_all()`` produces the records
behind EXPERIMENTS.md; the benchmark suite wraps the same runners.
"""

from repro.experiments.runner import (
    ExperimentRecord,
    EXPERIMENTS,
    experiment,
    run_experiment,
    run_all,
    format_markdown,
)
from repro.experiments.parallel import (
    records_equivalent,
    run_parallel,
    strip_wallclock,
)
import repro.experiments.exact  # noqa: F401  (registers experiments)
import repro.experiments.bounded  # noqa: F401
import repro.experiments.approx  # noqa: F401
import repro.experiments.congest  # noqa: F401
import repro.experiments.limits  # noqa: F401

__all__ = [
    "ExperimentRecord",
    "EXPERIMENTS",
    "experiment",
    "run_experiment",
    "run_all",
    "run_parallel",
    "records_equivalent",
    "strip_wallclock",
    "format_markdown",
]
