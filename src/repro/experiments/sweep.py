"""Work-stealing fork fan-out for predicate sweeps
(:func:`repro.core.family.sweep`).

The sweep engine hands us a family instance and its list of *unique*
undecided (x, y) pairs; we pickle the family once (sweep-local caches
are stripped by ``DeltaBuildMixin.__getstate__``, so the payload size
is independent of sweep history), split the pairs into many small
*shards*, and let ``jobs`` fork workers drain the shard queue.  Small
shards are the work-stealing part: a worker that lands a pathological
instance keeps only its own shard busy while the others steal the rest
of the queue, so one slow pair can no longer serialize the batch the
way static ``len(pairs)/jobs`` chunking did.

Failure semantics follow the PR 2 parallel runner:

- a worker that *raises* re-raises in the parent (by re-deciding the
  shard serially there — a serial sweep would have raised the same
  error);
- a worker that *dies* (hard crash, OOM kill) breaks the pool; the
  suspect shard is retried in a fresh pool up to ``retries`` times and
  then decided serially by the parent, while innocent co-runners are
  requeued for free;
- a shard that exceeds ``timeout`` seconds of wall clock is decided
  serially by the parent and its wedged worker is terminated.

Anything that prevents fan-out entirely — an unpicklable family
(transform wrappers hold lambdas), a daemonic parent process (nested
pools), pool setup failure before any shard ran — returns ``None`` and
the caller falls back to the serial loop.  Fan-out is an optimisation,
never a correctness concern.

When a :class:`repro.experiments.sweep_store.SweepStore` is passed,
every worker persists each decision the moment it is made (atomic
per-entry writes, safe under concurrent forks), so a campaign killed
mid-grid resumes from the last completed pair instead of from zero.
"""

from __future__ import annotations

import pickle
import time
from collections import deque
from concurrent import futures
from concurrent.futures import process as futures_process
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.parallel import _mp_context, _terminate

Bits = Tuple[int, ...]

#: shards per worker: small enough that a pathological pair strands at
#: most ``1/(jobs · this)`` of the batch on one worker, large enough
#: that per-shard dispatch overhead stays negligible.
SHARDS_PER_WORKER = 4


def _decide_serial(family, pairs: Sequence[Tuple[Bits, Bits]],
                   store=None, fkey=None, batch: bool = True,
                   timings: Optional[Dict[Tuple[Bits, Bits], float]] = None,
                   counters: Optional[Dict[str, int]] = None) -> List[bool]:
    """Decide ``pairs`` in this process, persisting each decision as it
    lands (the crash-resume property of the serial path).

    With ``batch`` on (the default), the family's batched decision
    kernel (:meth:`repro.core.family.DeltaBuildMixin.decide_batch`) is
    consulted first; pairs it answers skip the per-pair
    ``predicate(build(x, y))`` path entirely.  This is the single
    integration point for batching: the serial sweep, the cold fork
    shards (:func:`_decide_shard`), and every parent-side mop-up
    fallback all pass through here.
    """
    batched: Dict[Tuple[Bits, Bits], bool] = {}
    if batch and pairs:
        decide_batch = getattr(family, "decide_batch", None)
        if decide_batch is not None:
            try:
                batched = decide_batch(None, pairs, timings=timings) or {}
            except NotImplementedError:
                batched = {}
    decisions: List[bool] = []
    for x, y in pairs:
        key = (tuple(x), tuple(y))
        if key in batched:
            decision = batched[key]
            if counters is not None:
                counters["batched"] += 1
        else:
            t0 = time.perf_counter()
            decision = family.predicate(family.build(x, y))
            if timings is not None:
                timings[key] = time.perf_counter() - t0
        if store is not None:
            store.store(fkey, x, y, decision)
        decisions.append(decision)
    return decisions


def _decide_shard(payload: Tuple[bytes, List[Tuple[Bits, Bits]],
                                 Optional[str], Optional[tuple], bool],
                  ) -> List[bool]:
    """Worker entry point: decide one shard, streaming decisions into
    the store (when configured) as they complete."""
    blob, shard, store_root, fkey_tuple, batch = payload
    family = pickle.loads(blob)
    store = fkey = None
    if store_root is not None and fkey_tuple is not None:
        from repro.experiments.sweep_store import FamilyKey, SweepStore
        # workers skip the stale-tmp sweep: the parent already did it,
        # and a fleet of forks rescanning per shard is pure overhead
        store = SweepStore(store_root, sweep_stale=False)
        fkey = FamilyKey(*fkey_tuple)
    return _decide_serial(family, shard, store=store, fkey=fkey, batch=batch)


def parallel_decisions(
    family,
    pairs: Sequence[Tuple[Bits, Bits]],
    jobs: int,
    timeout: Optional[float] = None,
    retries: int = 1,
    store=None,
    fkey=None,
    batch: bool = True,
) -> Optional[List[bool]]:
    """Decide ``pairs`` over ``jobs`` fork workers, in request order.

    Returns ``None`` only when fan-out is impossible from the start
    (unpicklable family, nested pool, pool construction failure) so the
    caller can run serially.  Once any shard has run, shard-level
    failures are healed internally — retried in a fresh pool or decided
    serially by the parent — and a complete decision list is returned.
    """
    if not pairs:
        return []
    jobs = max(1, min(int(jobs), len(pairs)))
    try:
        blob = pickle.dumps(family)
    except Exception:
        return None
    shard_size = max(1, -(-len(pairs) // (jobs * SHARDS_PER_WORKER)))
    shards = [list(pairs[i:i + shard_size])
              for i in range(0, len(pairs), shard_size)]
    store_root = getattr(store, "root", None) if store is not None else None
    fkey_tuple = fkey.as_tuple() if fkey is not None else None
    payloads = [(blob, shard, store_root, fkey_tuple, batch)
                for shard in shards]

    ctx = _mp_context()
    results: Dict[int, List[bool]] = {}
    pending: deque = deque(range(len(shards)))
    attempts: Dict[int, int] = {}
    started = False
    while pending:
        try:
            executor = futures.ProcessPoolExecutor(max_workers=jobs,
                                                   mp_context=ctx)
        except Exception:
            # daemonic nesting, no fork support — if nothing ever ran,
            # let the caller take the serial path wholesale; otherwise
            # the parent mops up what is left below
            if not started:
                return None
            break
        inflight: Dict[Any, Tuple[int, Optional[float]]] = {}
        suspects: List[int] = []
        broken = False
        try:
            while (pending or inflight) and not broken:
                while pending and len(inflight) < jobs:
                    idx = pending.popleft()
                    try:
                        fut = executor.submit(_decide_shard, payloads[idx])
                    except Exception:
                        pending.appendleft(idx)
                        broken = True
                        break
                    started = True
                    deadline = (None if timeout is None
                                else time.monotonic() + timeout)
                    inflight[fut] = (idx, deadline)
                if broken or not inflight:
                    break
                deadlines = [d for __, d in inflight.values()
                             if d is not None]
                wait_for = (max(0.0, min(deadlines) - time.monotonic())
                            if deadlines else None)
                done, __ = futures.wait(set(inflight), timeout=wait_for,
                                        return_when=futures.FIRST_COMPLETED)
                if not done:
                    now = time.monotonic()
                    expired = [f for f, (__, d) in inflight.items()
                               if d is not None and d <= now]
                    if not expired:
                        continue
                    # pathological shards: the parent decides them while
                    # the wedged workers are torn down (co-runners are
                    # requeued in the finally block)
                    for fut in expired:
                        idx, __ = inflight.pop(fut)
                        results[idx] = _decide_serial(family, shards[idx],
                                                      store, fkey, batch)
                    broken = True
                    continue
                for fut in done:
                    idx, __ = inflight.pop(fut)
                    try:
                        results[idx] = fut.result()
                    except (futures_process.BrokenProcessPool,
                            futures.BrokenExecutor):
                        suspects.append(idx)
                        broken = True
                    except futures.CancelledError:
                        pending.appendleft(idx)
                    except Exception:
                        # an ordinary exception from the predicate:
                        # re-decide here so it raises in the caller's
                        # frame exactly like a serial sweep would
                        results[idx] = _decide_serial(family, shards[idx],
                                                      store, fkey, batch)
        finally:
            for fut, (idx, __) in inflight.items():
                if idx not in results and idx not in suspects:
                    pending.appendleft(idx)
            _terminate(executor)
        for idx in suspects:
            attempts[idx] = attempts.get(idx, 0) + 1
            if attempts[idx] > max(0, retries):
                results[idx] = _decide_serial(family, shards[idx],
                                              store, fkey, batch)
            else:
                pending.appendleft(idx)

    while pending:  # pool died mid-run and could not be rebuilt
        idx = pending.popleft()
        if idx not in results:
            results[idx] = _decide_serial(family, shards[idx], store, fkey,
                                          batch)

    decisions: List[bool] = []
    for idx in range(len(shards)):
        decisions.extend(results[idx])
    return decisions
