"""Fork-pool fan-out for predicate sweeps (:func:`repro.core.family.sweep`).

The sweep engine hands us a family instance and its list of *unique*
(x, y) pairs; we pickle the family once, chunk the pairs, and decide
each chunk in a worker.  Workers rebuild graphs via the same delta path
(the skeleton is re-derived once per worker) and share nothing mutable,
so decisions are deterministic and merged back in request order.

Anything that prevents fan-out — an unpicklable family (transform
wrappers hold lambdas), a daemonic parent process (nested pools), pool
setup failure — returns ``None`` and the caller falls back to the
serial loop.  Fan-out is an optimisation, never a correctness concern.
"""

from __future__ import annotations

import pickle
from concurrent import futures
from typing import List, Optional, Sequence, Tuple

from repro.experiments.parallel import _mp_context

Bits = Tuple[int, ...]


def _decide_chunk(payload: Tuple[bytes, List[Tuple[Bits, Bits]]]) -> List[bool]:
    """Worker entry point: decide the predicate for one chunk of pairs."""
    family = pickle.loads(payload[0])
    return [family.predicate(family.build(x, y)) for x, y in payload[1]]


def parallel_decisions(
    family,
    pairs: Sequence[Tuple[Bits, Bits]],
    jobs: int,
) -> Optional[List[bool]]:
    """Decide ``pairs`` over ``jobs`` fork workers, in request order.

    Returns ``None`` when fan-out is impossible (unpicklable family,
    nested pool, pool failure) so the caller can run serially.
    """
    try:
        blob = pickle.dumps(family)
    except Exception:
        return None
    jobs = min(jobs, len(pairs))
    chunk_size = (len(pairs) + jobs - 1) // jobs
    chunks = [list(pairs[i:i + chunk_size])
              for i in range(0, len(pairs), chunk_size)]
    try:
        with futures.ProcessPoolExecutor(
                max_workers=jobs, mp_context=_mp_context()) as pool:
            results = list(pool.map(_decide_chunk,
                                    [(blob, chunk) for chunk in chunks]))
    except Exception:
        # daemonic nesting, broken pool, worker import failure — all
        # legitimate reasons to decide serially instead
        return None
    decisions: List[bool] = []
    for chunk_result in results:
        decisions.extend(chunk_result)
    return decisions
