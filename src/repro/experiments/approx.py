"""Experiments for Section 4 (Theorems 4.1-4.8)."""

from __future__ import annotations

import random
from typing import Dict

from repro.cc.functions import disjointness, random_input_pairs
from repro.core.approx_maxis import (
    LinearApproxMaxISFamily,
    UnweightedApproxMaxISFamily,
    WeightedApproxMaxISFamily,
)
from repro.core.family import (
    sweep,
    theorem_1_1_bound,
    validate_family,
    verify_iff,
)
from repro.core.kmds import KMdsFamily
from repro.core.restricted_mds import RestrictedMdsConstruction
from repro.core.steiner_approx import (
    DirectedSteinerFamily,
    NodeWeightedSteinerFamily,
)
from repro.covering.designs import build_covering_collection
from repro.experiments.runner import ExperimentRecord, experiment
from repro.solvers import is_dominating_set, max_independent_set_weight


def _default_collection(quick: bool = True):
    return build_covering_collection(universe_size=16, T=6, r=2, seed=0)


@experiment("E-F5-T4.3-T4.1-approx-maxis")
def run_approx_maxis(quick: bool = True) -> ExperimentRecord:
    rng = random.Random(0x41)
    fam = WeightedApproxMaxISFamily(2)
    validate_family(fam)
    pairs = random_input_pairs(4, 4 if quick else 10, rng)
    report = verify_iff(fam, pairs, negate=True)
    # structured solver cross-check against the generic branch-and-bound
    cross = 0
    for x, y in pairs[: 2 if quick else 6]:
        g = fam.build(x, y)
        assert max_independent_set_weight(g, weighted=True) == \
            fam.structured_max_weight(g)
        cross += 1
    ufam = UnweightedApproxMaxISFamily(2)
    validate_family(ufam)
    ureport = verify_iff(ufam, pairs[:4], negate=True)
    fam4 = WeightedApproxMaxISFamily(4)
    r4 = verify_iff(fam4, random_input_pairs(16, 2 if quick else 6, rng),
                    negate=True)
    return ExperimentRecord(
        experiment_id="E-F5-T4.3-T4.1-approx-maxis",
        paper_claim="(7/8+ε)-approx MaxIS needs Ω̃(n²) "
                    "(Thms 4.1, 4.3; Lemma 4.1)",
        parameters={"k": 2, "ell": fam.ell, "t": fam.t, "q": fam.q},
        measured={
            "iff_checked": report.checked + ureport.checked + r4.checked,
            "generic_cross_checks": cross,
            "gap_yes": fam.alpha_yes,
            "gap_no": fam.alpha_no,
            "ratio@k=2": round(fam.gap_ratio(), 4),
            "ratio@k=4": round(fam4.gap_ratio(), 4),
            "ratio_limit": 7 / 8,
        },
    )


@experiment("E-T4.2-linear-maxis")
def run_linear_maxis(quick: bool = True) -> ExperimentRecord:
    rng = random.Random(0x42)
    fam = LinearApproxMaxISFamily(4)
    validate_family(fam)
    pairs = random_input_pairs(4, 4 if quick else 10, rng)
    report = verify_iff(fam, pairs, negate=True)
    cross = 0
    for x, y in pairs[: 2 if quick else 5]:
        g = fam.build(x, y)
        assert max_independent_set_weight(g, weighted=True) == \
            fam.structured_max_weight(g)
        cross += 1
    return ExperimentRecord(
        experiment_id="E-T4.2-linear-maxis",
        paper_claim="(5/6+ε)-approx MaxIS needs Ω(n/log⁶n) (Thm 4.2)",
        parameters={"k": 4, "ell": fam.ell, "t": fam.t},
        measured={
            "iff_checked": report.checked,
            "generic_cross_checks": cross,
            "gap_yes": fam.alpha_yes,
            "gap_no": fam.alpha_no,
            "ratio": round(fam.gap_ratio(), 4),
            "ratio_limit": 5 / 6,
        },
    )


@experiment("E-F6-T4.4-T4.5-kmds")
def run_kmds(quick: bool = True) -> ExperimentRecord:
    rng = random.Random(0x44)
    cc = _default_collection(quick)
    measured: Dict[str, object] = {"T": cc.T, "ell": cc.universe_size,
                                   "r": cc.r}
    for k in (2, 3):
        fam = KMdsFamily(cc, k=k)
        validate_family(fam)
        pairs = random_input_pairs(cc.T, 4 if quick else 8, rng)
        report = verify_iff(fam, pairs, negate=True)
        # the gap: weight 2 vs > r
        for x, y in pairs[:2]:
            opt = fam.optimum(fam.build(x, y))
            if disjointness(x, y):
                assert opt > fam.no_weight_exceeds
            else:
                assert opt == fam.yes_weight
        measured[f"iff_checked@k={k}"] = report.checked
        measured[f"gap_ratio@k={k}"] = fam.gap_ratio()
    return ExperimentRecord(
        experiment_id="E-F6-T4.4-T4.5-kmds",
        paper_claim="O(log n)-approx weighted k-MDS needs Ω̃(n^{1−ε}) "
                    "(Thms 4.4, 4.5; Lemmas 4.2-4.4)",
        parameters={"ks": [2, 3]},
        measured=measured,
    )


@experiment("E-F7-T4.6-T4.7-steiner-approx")
def run_steiner_approx(quick: bool = True) -> ExperimentRecord:
    rng = random.Random(0x46)
    cc = _default_collection(quick)
    pairs = random_input_pairs(cc.T, 4 if quick else 8, rng)
    nw = NodeWeightedSteinerFamily(cc)
    validate_family(nw)
    rep_nw = verify_iff(nw, pairs, negate=True)
    ds = DirectedSteinerFamily(cc)
    validate_family(ds)
    rep_ds = verify_iff(ds, pairs, negate=True)
    return ExperimentRecord(
        experiment_id="E-F7-T4.6-T4.7-steiner-approx",
        paper_claim="O(log n)-approx node-weighted / directed Steiner "
                    "tree needs Ω̃(n^{1−ε}) (Thms 4.6, 4.7)",
        parameters={"T": cc.T, "ell": cc.universe_size, "r": cc.r},
        measured={
            "node_weighted_iff": rep_nw.checked,
            "directed_iff": rep_ds.checked,
            "gap": f"2 vs >{cc.r}",
        },
    )


@experiment("E-T4.8-restricted-mds")
def run_restricted_mds(quick: bool = True) -> ExperimentRecord:
    rng = random.Random(0x48)
    cc = _default_collection(quick)
    rm = RestrictedMdsConstruction(cc)
    pairs = random_input_pairs(cc.T, 4 if quick else 8, rng)
    report = sweep(rm, pairs)
    for (x, y), decided in zip(pairs, report.decisions):
        assert decided == (not disjointness(x, y))
    x, y = pairs[0]
    run = rm.simulate_greedy_two_party(x, y)
    ds = [v for v, b in run.outputs.items() if b]
    graph = rm.build(x, y)
    assert is_dominating_set(graph, ds)
    per_round = run.total_two_party_bits / max(1, run.rounds)
    return ExperimentRecord(
        experiment_id="E-T4.8-restricted-mds",
        paper_claim="local-aggregate O(log n)-approx weighted MDS needs "
                    "Ω̃(n^{1−ε}) (Thm 4.8, Lemma 4.7)",
        parameters={"T": cc.T, "ell": cc.universe_size},
        measured={
            "iff_checked": len(pairs),
            "greedy_rounds": run.rounds,
            "shared_bits": run.shared_bits,
            "bits_per_round": round(per_round, 1),
            "ell_logn_budget": cc.universe_size * 16,
        },
    )
