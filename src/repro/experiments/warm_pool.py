"""Persistent warm worker pool for the sweep/experiment fabric.

The cold fan-out paths (:mod:`repro.experiments.sweep`,
:mod:`repro.experiments.parallel`) build a throwaway
``ProcessPoolExecutor`` per call and pickle the full family into every
payload, so each campaign re-forks, re-imports, and re-warms skeleton,
kernel, and solver caches from nothing.  This module keeps a pool of
*lanes* — single-worker executors — alive across ``sweep()`` /
``run_all()`` calls:

- **one broadcast per (lane, FamilyKey)** — the pickled family (caches
  stripped) plus its warmed skeleton as compact wire bytes
  (:func:`repro.graphs.graph_to_bytes`), shipped through
  ``multiprocessing.shared_memory`` when available with an inline-bytes
  fallback.  The worker rebuilds the skeleton once, re-warms its
  derived caches, and keeps the family (and its sweep memo) hot;
- **tiny steady-state payloads** — after the broadcast, each shard
  ships only the ``(x, y)`` bit tuples plus a digest string, an
  order of magnitude below the cold path's family-blob-per-shard;
- **PR 2 / PR 8 failure semantics, per lane** — a shard that *raises*
  is re-decided serially in the parent (as a serial sweep would have
  raised); a lane whose worker *dies* is respawned and the suspect
  shard retried up to ``retries`` times before the parent decides it
  serially; a shard past its ``timeout`` is decided by the parent while
  its wedged lane is killed and respawned.  Because each lane is its
  own pool, innocent lanes keep both their tasks *and their warmth*;
- **deterministic record order** — results are reassembled by shard
  index exactly like the cold scheduler, so warm ≡ cold ≡ serial.

Experiment runs (:func:`run_experiments`) reuse the same lanes (and the
same worker processes, so solver caches stay warm across ``run_all``
calls) with the PR 2 record semantics: TIMEOUT/CRASH/EXCEPTION FAIL
records, bounded retries for pool-breakers, request-order reports.
Lanes are respawned when the experiment registry changed since they
were forked, so runtime-registered experiments behave as under the cold
runner.

Anything that prevents warm fan-out (daemonic parent, unpicklable
family, pool construction failure) returns ``None`` and the caller
falls back to the cold path — the pool is an optimisation, never a
correctness concern.  :func:`pool_stats` (surfaced as
``repro.obs.warm_pool_stats``) exposes the broadcast/payload/warm-hit
counters the ``payload-budget`` CI gate asserts on.
"""

from __future__ import annotations

import atexit
import multiprocessing
import pickle
import time
import traceback
from collections import OrderedDict, deque
from concurrent import futures
from concurrent.futures import process as futures_process
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.experiments.parallel import (
    _crash_record,
    _error_record,
    _mp_context,
    _run_isolated,
    _terminate,
    _timeout_record,
    _worker,
)

Bits = Tuple[int, ...]

#: shards per lane — same work-stealing granularity as the cold
#: scheduler (:data:`repro.experiments.sweep.SHARDS_PER_WORKER`).
SHARDS_PER_WORKER = 4

#: skeleton blobs at least this large go through a shared-memory
#: segment; smaller ones ride inline (segment setup would cost more
#: than the copy it saves).
SHM_MIN_BYTES = 512

#: per-worker LRU bound on warmed families, so a long session sweeping
#: many distinct FamilyKeys cannot grow worker memory without bound.
MAX_WARM_FAMILIES = 8


# ----------------------------------------------------------------------
# worker side: per-process warmed state
# ----------------------------------------------------------------------
#: digest → (warmed family instance, FamilyKey tuple), LRU-ordered.
#: Lives in the *worker* process; one entry per broadcast — steady-state
#: shard payloads carry only the digest, not the family identity.
_WARM_FAMILIES: "OrderedDict[str, Tuple[Any, tuple]]" = OrderedDict()

#: store root → SweepStore, so workers reopen each store once.
_WARM_STORES: Dict[str, Any] = {}


def _pack_pairs(pairs: Sequence[Tuple[Bits, Bits]], k_bits: int) -> bytes:
    """Encode ``(x, y)`` bit-tuple pairs as fixed-width big-endian
    integers — the only thing a steady-state shard ships per pair."""
    width = max(1, (k_bits + 7) >> 3)
    out = bytearray()
    for x, y in pairs:
        for bits in (x, y):
            value = 0
            for b in bits:
                value = (value << 1) | (1 if b else 0)
            out += value.to_bytes(width, "big")
    return bytes(out)


def _unpack_pairs(data: bytes, k_bits: int) -> List[Tuple[Bits, Bits]]:
    width = max(1, (k_bits + 7) >> 3)
    pairs: List[Tuple[Bits, Bits]] = []
    step = 2 * width
    for off in range(0, len(data), step):
        halves = []
        for ho in (off, off + width):
            value = int.from_bytes(data[ho:ho + width], "big")
            halves.append(tuple((value >> (k_bits - 1 - i)) & 1
                                for i in range(k_bits)))
        pairs.append((halves[0], halves[1]))
    return pairs


def _read_shm(spec: Tuple[str, int]) -> Optional[bytes]:
    """Copy ``size`` bytes out of the named shared-memory segment, or
    None when shared memory is unusable here (caller falls back to the
    inline bytes)."""
    name, size = spec
    try:
        from multiprocessing import shared_memory
        seg = shared_memory.SharedMemory(name=name)
    except Exception:
        return None
    try:
        return bytes(seg.buf[:size])
    finally:
        # no unregister here: fork workers share the parent's resource
        # tracker, so the attach-registration (bpo-39959) collapses into
        # the parent's own entry, which the parent's unlink() clears —
        # an extra unregister would KeyError inside the tracker.  Spawn
        # platforms never reach this path (see _make_segment).
        seg.close()


def _load_family(digest: str, blob: bytes, fkey_tuple: tuple,
                 shm_spec: Optional[Tuple[str, int]],
                 skel_bytes: Optional[bytes]) -> bool:
    """Worker entry point: install one warmed family under ``digest``.

    The skeleton arrives as wire bytes (shared memory preferred, inline
    fallback); families without the skeleton/delta protocol ship none
    and simply warm up on first build.
    """
    if digest in _WARM_FAMILIES:
        _WARM_FAMILIES.move_to_end(digest)
        return True
    family = pickle.loads(blob)
    data = skel_bytes
    if shm_spec is not None:
        data = _read_shm(shm_spec)
        if data is None:
            data = skel_bytes
    if data is not None:
        from repro.core.family import _warm_graph_caches
        from repro.graphs import graph_from_bytes
        skeleton = graph_from_bytes(data)
        _warm_graph_caches(skeleton)
        family._skeleton_store = skeleton
    family._sweep_memo = {}
    _WARM_FAMILIES[digest] = (family, fkey_tuple)
    while len(_WARM_FAMILIES) > MAX_WARM_FAMILIES:
        _WARM_FAMILIES.popitem(last=False)
    return True


def _warm_shard(digest: str, packed: bytes, store_root: Optional[str],
                cache_cfg: Tuple[bool, Optional[str]],
                batch: bool = True,
                ) -> Tuple[str, Optional[List[bool]], int,
                           Tuple[int, int, int]]:
    """Worker entry point: decide one packed shard against the warmed
    family.

    Returns ``("ok", decisions, memo_hits, kernel_stats)``, or
    ``("miss", None, 0, (0, 0, 0))`` when ``digest`` was never
    broadcast here (lane respawn, LRU eviction) so the parent can
    re-broadcast and resubmit.  ``kernel_stats`` is
    ``(kernel_pairs, state_hits_delta, state_misses_delta)``: because
    the warmed family persists in this lane across shards, its batch
    kernel — transient under pickling — is built once per lane and
    reused for every later shard of the same skeleton.
    """
    entry = _WARM_FAMILIES.get(digest)
    if entry is None:
        return ("miss", None, 0, (0, 0, 0))
    family, fkey_tuple = entry
    _WARM_FAMILIES.move_to_end(digest)
    from repro.solvers import cache as solver_cache
    solver_cache.configure(enabled=cache_cfg[0], cache_dir=cache_cfg[1])
    store = fkey = None
    if store_root is not None:
        from repro.experiments.sweep_store import FamilyKey, SweepStore
        store = _WARM_STORES.get(store_root)
        if store is None:
            # parent already swept stale tmp files; see _decide_shard
            store = SweepStore(store_root, sweep_stale=False)
            _WARM_STORES[store_root] = store
        fkey = FamilyKey(*fkey_tuple)
    memo = getattr(family, "_sweep_memo", None)
    if memo is None:
        memo = family._sweep_memo = {}
    pairs = list(_unpack_pairs(packed, int(fkey_tuple[2])))
    batched: Dict[Tuple[Bits, Bits], bool] = {}
    events_before = (0, 0)
    events_after = (0, 0)
    if batch:
        decide_batch = getattr(family, "decide_batch", None)
        if decide_batch is not None:
            todo = [key for key in pairs if key not in memo]
            events = getattr(family, "kernel_events", None)
            if events is not None:
                ev = events()
                events_before = (ev["state_hits"], ev["state_misses"])
            try:
                batched = decide_batch(None, todo) or {}
            except NotImplementedError:
                batched = {}
            if events is not None:
                ev = events()
                events_after = (ev["state_hits"], ev["state_misses"])
    decisions: List[bool] = []
    hits = 0
    kernel_pairs = 0
    for key in pairs:
        if key in memo:
            decision = memo[key]
            hits += 1
        elif key in batched:
            decision = batched[key]
            memo[key] = decision
            kernel_pairs += 1
        else:
            x, y = key
            decision = family.predicate(family.build(x, y))
            memo[key] = decision
        # the parent only ships pairs absent from the store, so persist
        # memo-served decisions too — exactly the entries a serial sweep
        # would have written
        if store is not None:
            store.store(fkey, key[0], key[1], decision)
        decisions.append(decision)
    kstats = (kernel_pairs,
              events_after[0] - events_before[0],
              events_after[1] - events_before[1])
    return ("ok", decisions, hits, kstats)


# ----------------------------------------------------------------------
# parent side: lanes, stats, the pool
# ----------------------------------------------------------------------
@dataclass
class PoolStats:
    """Cumulative counters for the process-wide warm pool."""

    broadcasts: int = 0        #: skeleton/family broadcasts (lane × key)
    broadcast_bytes: int = 0   #: bytes shipped in broadcast payloads
    shm_segments: int = 0      #: broadcasts that rode shared memory
    pair_payload_bytes: int = 0  #: pickled bytes of steady-state shards
    pairs_shipped: int = 0     #: pairs decided through the warm path
    shards: int = 0            #: shard tasks completed by lanes
    warm_hits: int = 0         #: pairs served from a worker's hot memo
    lane_respawns: int = 0     #: lanes rebuilt after death/timeout
    experiments: int = 0       #: experiment records produced by lanes
    kernel_batched: int = 0    #: pairs answered by batched kernels
    kernel_state_hits: int = 0    #: kernel reused (skeleton hash match)
    kernel_state_misses: int = 0  #: kernel (re)built in a lane

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))


class _Lane:
    """One single-worker executor plus what its worker has been sent."""

    def __init__(self, ctx) -> None:
        self.executor = futures.ProcessPoolExecutor(max_workers=1,
                                                    mp_context=ctx)
        #: family digests broadcast to this lane's worker
        self.loaded: Set[str] = set()
        #: experiment-registry stamp at the worker's fork (set on first
        #: submit — the executor forks lazily), None until then
        self.stamp: Optional[tuple] = None


def _registry_stamp() -> tuple:
    from repro.experiments.runner import EXPERIMENTS
    return tuple(sorted(EXPERIMENTS))


class WarmPool:
    """A resizable set of persistent lanes shared by every warm caller."""

    def __init__(self) -> None:
        self._ctx = _mp_context()
        self.lanes: List[_Lane] = []
        self.stats = PoolStats()
        #: live shared-memory segments: [(segment, [broadcast futures])]
        self._segments: List[Tuple[Any, List[Any]]] = []

    # -- lane lifecycle ------------------------------------------------
    def ensure(self, jobs: int) -> None:
        while len(self.lanes) < jobs:
            self.lanes.append(_Lane(self._ctx))

    def _respawn(self, lane: _Lane) -> None:
        _terminate(lane.executor)
        lane.executor = futures.ProcessPoolExecutor(max_workers=1,
                                                    mp_context=self._ctx)
        lane.loaded = set()
        lane.stamp = None
        self.stats.lane_respawns += 1

    def shutdown(self) -> None:
        for lane in self.lanes:
            _terminate(lane.executor)
        self.lanes = []
        self._reap_segments(force=True)

    # -- shared-memory broadcast plumbing ------------------------------
    def _make_segment(self, data: bytes) -> Optional[Tuple[str, int]]:
        try:
            # spawn workers run their own resource tracker, which would
            # unlink the parent's live segment when the worker exits;
            # only fork's shared-tracker semantics make attach safe
            if self._ctx.get_start_method() != "fork":
                return None
            from multiprocessing import shared_memory
            seg = shared_memory.SharedMemory(create=True, size=len(data))
        except Exception:
            return None
        seg.buf[:len(data)] = data
        self._segments.append((seg, []))
        self.stats.shm_segments += 1
        return (seg.name, len(data))

    def _reap_segments(self, force: bool = False) -> None:
        """Unlink segments whose broadcast readers have all finished."""
        keep: List[Tuple[Any, List[Any]]] = []
        for seg, futs in self._segments:
            if force or all(f.done() for f in futs):
                try:
                    seg.close()
                    seg.unlink()
                except Exception:
                    pass
            else:
                keep.append((seg, futs))
        self._segments = keep

    def _broadcast(self, lane: _Lane, digest: str, blob: bytes,
                   fkey_tuple: tuple, shm_spec: Optional[Tuple[str, int]],
                   skel_bytes: Optional[bytes]) -> None:
        """Queue the family broadcast ahead of this lane's next shard
        (single-worker lanes execute FIFO, so no waiting is needed)."""
        inline = skel_bytes if shm_spec is None else None
        fut = lane.executor.submit(_load_family, digest, blob, fkey_tuple,
                                   shm_spec, inline)
        if lane.stamp is None:
            lane.stamp = _registry_stamp()
        if shm_spec is not None:
            for seg, futs in self._segments:
                if seg.name == shm_spec[0]:
                    futs.append(fut)
        lane.loaded.add(digest)
        self.stats.broadcasts += 1
        self.stats.broadcast_bytes += len(blob) + (len(inline) if inline
                                                   else 0)

    # -- sweep fan-out -------------------------------------------------
    def decide(self, family, pairs: Sequence[Tuple[Bits, Bits]], jobs: int,
               timeout: Optional[float] = None, retries: int = 1,
               store=None, fkey=None,
               batch: bool = True) -> Optional[List[bool]]:
        """Decide ``pairs`` across warm lanes, in request order.

        Mirrors :func:`repro.experiments.sweep.parallel_decisions`:
        ``None`` only when warm fan-out is impossible from the start.
        """
        if not pairs:
            return []
        jobs = max(1, min(int(jobs), len(pairs)))
        try:
            if fkey is None:
                from repro.experiments.sweep_store import family_key
                fkey = family_key(family)
            digest = fkey.digest[:16]
            blob = pickle.dumps(family)
            try:
                family.skeleton()  # populate _skeleton_store
                skel_bytes = family._skeleton_store.to_bytes()
            except NotImplementedError:
                skel_bytes = None
            self.ensure(jobs)
        except Exception:
            return None

        from repro.experiments.sweep import _decide_serial
        from repro.solvers.cache import CACHE
        cache_cfg = (CACHE.enabled, CACHE.cache_dir)
        store_root = (getattr(store, "root", None)
                      if store is not None else None)
        fkey_tuple = fkey.as_tuple()
        k_bits = int(fkey_tuple[2])

        shard_size = max(1, -(-len(pairs) // (jobs * SHARDS_PER_WORKER)))
        shards = [list(pairs[i:i + shard_size])
                  for i in range(0, len(pairs), shard_size)]
        packed = [_pack_pairs(shard, k_bits) for shard in shards]
        # the shared-memory segment is created lazily, on the first lane
        # that actually needs the broadcast (usually none: steady state)
        shm_spec: Optional[Tuple[str, int]] = None
        shm_tried = False

        results: Dict[int, List[bool]] = {}
        pending: deque = deque(range(len(shards)))
        attempts: Dict[int, int] = {}
        free: deque = deque(self.lanes[:jobs])
        inflight: Dict[Any, Tuple[_Lane, int, Optional[float]]] = {}
        started = False
        while pending or inflight:
            while pending and free:
                lane = free.popleft()
                idx = pending.popleft()
                try:
                    if digest not in lane.loaded:
                        if (not shm_tried and skel_bytes is not None
                                and len(skel_bytes) >= SHM_MIN_BYTES):
                            shm_spec = self._make_segment(skel_bytes)
                            shm_tried = True
                        self._broadcast(lane, digest, blob, fkey_tuple,
                                        shm_spec, skel_bytes)
                    fut = lane.executor.submit(
                        _warm_shard, digest, packed[idx], store_root,
                        cache_cfg, batch)
                except Exception:
                    # lane unusable at submit (interpreter teardown,
                    # broken executor): rebuild it and let the shard be
                    # retried — bounded by the attempts counter below
                    attempts[idx] = attempts.get(idx, 0) + 1
                    if attempts[idx] > max(1, retries):
                        results[idx] = _decide_serial(family, shards[idx],
                                                      store, fkey,
                                                      batch=batch)
                    else:
                        pending.appendleft(idx)
                    try:
                        self._respawn(lane)
                        free.append(lane)
                    except Exception:
                        if not started and not inflight:
                            return None
                    continue
                started = True
                self.stats.pair_payload_bytes += len(pickle.dumps(
                    (digest, packed[idx], store_root, cache_cfg, batch)))
                deadline = (None if timeout is None
                            else time.monotonic() + timeout)
                inflight[fut] = (lane, idx, deadline)
            if not inflight:
                if pending:  # no usable lanes left: parent mops up
                    idx = pending.popleft()
                    results[idx] = _decide_serial(family, shards[idx],
                                                  store, fkey, batch=batch)
                continue
            deadlines = [d for __, __, d in inflight.values()
                         if d is not None]
            wait_for = (max(0.0, min(deadlines) - time.monotonic())
                        if deadlines else None)
            done, __ = futures.wait(set(inflight), timeout=wait_for,
                                    return_when=futures.FIRST_COMPLETED)
            if not done:
                now = time.monotonic()
                expired = [f for f, (__, __, d) in inflight.items()
                           if d is not None and d <= now]
                # pathological shards: the parent decides them while the
                # wedged lanes are respawned; innocent lanes keep both
                # their in-flight shards and their warmth
                for fut in expired:
                    lane, idx, __ = inflight.pop(fut)
                    results[idx] = _decide_serial(family, shards[idx],
                                                  store, fkey, batch=batch)
                    self._respawn(lane)
                    free.append(lane)
                continue
            for fut in done:
                lane, idx, __ = inflight.pop(fut)
                try:
                    status, decisions, hits, kstats = fut.result()
                except (futures_process.BrokenProcessPool,
                        futures.BrokenExecutor):
                    # only this lane died; its shard is the suspect
                    attempts[idx] = attempts.get(idx, 0) + 1
                    if attempts[idx] > max(0, retries):
                        results[idx] = _decide_serial(family, shards[idx],
                                                      store, fkey,
                                                      batch=batch)
                    else:
                        pending.appendleft(idx)
                    self._respawn(lane)
                    free.append(lane)
                except Exception:
                    # ordinary predicate exception: re-decide here so it
                    # raises in the caller's frame like a serial sweep
                    results[idx] = _decide_serial(family, shards[idx],
                                                  store, fkey, batch=batch)
                    free.append(lane)
                else:
                    if status == "miss":
                        # worker lost the family (respawn, LRU): force a
                        # re-broadcast on resubmit, bounded like a crash
                        lane.loaded.discard(digest)
                        attempts[idx] = attempts.get(idx, 0) + 1
                        if attempts[idx] > max(1, retries):
                            results[idx] = _decide_serial(
                                family, shards[idx], store, fkey,
                                batch=batch)
                        else:
                            pending.appendleft(idx)
                    else:
                        results[idx] = decisions
                        self.stats.warm_hits += hits
                        self.stats.shards += 1
                        self.stats.pairs_shipped += len(shards[idx])
                        self.stats.kernel_batched += kstats[0]
                        self.stats.kernel_state_hits += kstats[1]
                        self.stats.kernel_state_misses += kstats[2]
                    free.append(lane)
        self._reap_segments()

        out: List[bool] = []
        for idx in range(len(shards)):
            out.extend(results[idx])
        return out

    # -- experiment fan-out --------------------------------------------
    def run(self, ids: Sequence[str], quick: bool, jobs: int,
            timeout: Optional[float], retries: int,
            trace_dir: Optional[str], profile: bool, trace_format: str,
            engine: Optional[str]) -> Optional[List[Any]]:
        """Run experiments across warm lanes; records in ``ids`` order.

        Same record semantics as :func:`~repro.experiments.parallel.
        run_parallel`; ``None`` when warm fan-out is impossible.
        """
        order = list(ids)
        if not order:
            return []
        jobs = max(1, min(int(jobs), len(order)))
        try:
            self.ensure(jobs)
        except Exception:
            return None
        from repro.solvers.cache import CACHE
        cache_cfg = (CACHE.enabled, CACHE.cache_dir)
        stamp = _registry_stamp()
        for lane in self.lanes[:jobs]:
            # a lane forked before the current registry existed cannot
            # see runtime-registered experiments — refork it
            if lane.stamp is not None and lane.stamp != stamp:
                self._respawn(lane)

        results: Dict[str, Any] = {}
        pending: deque = deque(order)
        attempts: Dict[str, int] = {}
        crash_detail: Dict[str, str] = {}
        free: deque = deque(self.lanes[:jobs])
        inflight: Dict[Any, Tuple[_Lane, str, Optional[float]]] = {}
        started = False
        while pending or inflight:
            while pending and free:
                lane = free.popleft()
                eid = pending.popleft()
                try:
                    fut = lane.executor.submit(
                        _worker, eid, quick, trace_dir, profile,
                        trace_format, *cache_cfg, engine=engine)
                except Exception:
                    pending.appendleft(eid)
                    try:
                        self._respawn(lane)
                        free.append(lane)
                    except Exception:
                        if not started and not inflight:
                            return None
                    continue
                if lane.stamp is None:
                    lane.stamp = stamp
                started = True
                deadline = (None if timeout is None
                            else time.monotonic() + timeout)
                inflight[fut] = (lane, eid, deadline)
            if not inflight:
                if pending and not free:
                    break  # every lane lost: cold isolation mops up
                continue
            deadlines = [d for __, __, d in inflight.values()
                         if d is not None]
            wait_for = (max(0.0, min(deadlines) - time.monotonic())
                        if deadlines else None)
            done, __ = futures.wait(set(inflight), timeout=wait_for,
                                    return_when=futures.FIRST_COMPLETED)
            if not done:
                now = time.monotonic()
                expired = [f for f, (__, __, d) in inflight.items()
                           if d is not None and d <= now]
                for fut in expired:
                    lane, eid, __ = inflight.pop(fut)
                    results[eid] = _timeout_record(eid, timeout)
                    self._respawn(lane)
                    free.append(lane)
                continue
            for fut in done:
                lane, eid, __ = inflight.pop(fut)
                try:
                    record = fut.result()
                except (futures_process.BrokenProcessPool,
                        futures.BrokenExecutor) as exc:
                    # the respawned lane IS the fresh isolation pool the
                    # cold runner would retry in
                    attempts[eid] = attempts.get(eid, 0) + 1
                    crash_detail[eid] = f"worker process died ({exc!r})"
                    if attempts[eid] > max(0, retries):
                        results[eid] = _crash_record(
                            eid, crash_detail[eid], retries)
                    else:
                        pending.appendleft(eid)
                    self._respawn(lane)
                    free.append(lane)
                except Exception:
                    results[eid] = _error_record(eid, traceback.format_exc())
                    free.append(lane)
                else:
                    results[eid] = record
                    self.stats.experiments += 1
                    free.append(lane)
        while pending:  # lanes exhausted: fall back to cold isolation
            eid = pending.popleft()
            if eid not in results:
                results[eid] = _run_isolated(
                    eid, quick, trace_dir, profile, trace_format,
                    cache_cfg, timeout, max(1, retries), self._ctx,
                    first_error=None, engine=engine)
        return [results[eid] for eid in order]


# ----------------------------------------------------------------------
# module-level pool singleton
# ----------------------------------------------------------------------
_POOL: Optional[WarmPool] = None


def get_pool(jobs: Optional[int] = None) -> WarmPool:
    """The process-wide warm pool, created (and registered for atexit
    teardown) on first use; ``jobs`` grows it to at least that many
    lanes."""
    global _POOL
    if _POOL is None:
        _POOL = WarmPool()
        atexit.register(shutdown_pool)
    if jobs:
        _POOL.ensure(jobs)
    return _POOL


def shutdown_pool() -> None:
    """Tear down the warm pool (used by tests and atexit); the next
    warm caller starts a fresh one."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


def pool_stats() -> Dict[str, int]:
    """A snapshot of the warm pool's cumulative counters (all zeros
    when no pool has been created)."""
    stats = _POOL.stats.as_dict() if _POOL is not None else \
        PoolStats().as_dict()
    stats["lanes"] = len(_POOL.lanes) if _POOL is not None else 0
    return stats


def _warmable() -> bool:
    # lanes are a per-*process-tree* resource: only the main process may
    # build them.  Child processes (pool workers are non-daemonic, so a
    # daemon check alone is not enough) would each fork their own lane
    # forest — and forking executors from a forked worker whose parent
    # had live executor threads is a known deadlock.
    try:
        proc = multiprocessing.current_process()
        return not proc.daemon and proc.name == "MainProcess"
    except Exception:
        return False


def pool_decisions(family, pairs: Sequence[Tuple[Bits, Bits]], jobs: int,
                   timeout: Optional[float] = None, retries: int = 1,
                   store=None, fkey=None,
                   batch: bool = True) -> Optional[List[bool]]:
    """Warm-pool twin of :func:`repro.experiments.sweep.
    parallel_decisions` — ``None`` means fall back to the cold path."""
    if not _warmable():
        return None
    try:
        pool = get_pool(jobs)
    except Exception:
        return None
    return pool.decide(family, pairs, jobs, timeout=timeout,
                       retries=retries, store=store, fkey=fkey, batch=batch)


def run_experiments(ids: Sequence[str], quick: bool = True, jobs: int = 2,
                    timeout: Optional[float] = None, retries: int = 1,
                    trace_dir: Optional[str] = None, profile: bool = False,
                    trace_format: str = "binary",
                    engine: Optional[str] = None) -> Optional[List[Any]]:
    """Warm-pool twin of :func:`~repro.experiments.parallel.run_parallel`
    — ``None`` means fall back to the cold runner."""
    if not _warmable():
        return None
    try:
        pool = get_pool(jobs)
    except Exception:
        return None
    return pool.run(ids, quick, jobs, timeout, retries, trace_dir,
                    profile, trace_format, engine)
