"""Content-addressed, resumable result store for predicate sweeps.

Exhaustive Theorem 1.1 campaigns decide P(G_{x,y}) over every pair of a
2^k × 2^k input grid.  The per-instance ``_sweep_memo`` of
:func:`repro.core.family.sweep` dies with the process, so before this
store a crashed (or merely repeated) campaign redid all of its work.
:class:`SweepStore` persists every decision under a content-addressed
key so a sweep can resume mid-grid after a crash and a repeat sweep is
near-free.

Key definition
--------------
A stored decision is keyed on ``(family name, skeleton content_hash,
k_bits, x, y)``:

- the *family name* scopes decisions to one construction class;
- the *skeleton hash* (:meth:`repro.graphs.Graph.content_hash` of the
  input-independent ``build_skeleton()`` graph) captures every
  parameter that shapes the instance — ``k``, covering collections,
  gadget choices — so changing the construction changes the key and
  stale decisions are never resurrected.  Families that do not
  implement the skeleton/delta protocol fall back to the hash of
  ``build(0…0, 0…0)``, tagged so the two can never collide;
- ``(x, y)`` are the input bits themselves.

Invalidation is therefore structural, exactly like the PR 2 solver
cache: mutate the construction and the key moves.  The store only needs
manual clearing (:meth:`SweepStore.clear` or delete the directory) when
a *predicate implementation* changes semantics without changing the
skeleton.

Layout and concurrency
----------------------
One directory per family key (named by its digest) under the store
root (default ``~/.cache/repro/sweeps/``), one JSON file per decided
pair plus a human-readable ``meta.json``.  Writes go through
``mkstemp`` + ``os.replace`` — the PR 2 disk-cache pattern — so
concurrent fork workers draining shards of the same grid can write the
same key simultaneously: readers see a complete old or complete new
entry, never a torn one, and equal workloads write equal values so
last-write-wins is benign.  A killed writer leaves only a ``*.tmp``
file, which startup sweeping removes once it is stale; a corrupt or
truncated entry is dropped (and deleted best-effort) so it degrades to
a recompute, never a crash.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Set, Tuple

from repro.solvers.cache import default_cache_dir, sweep_stale_tmp

Bits = Tuple[int, ...]
Pair = Tuple[Bits, Bits]


def default_sweep_store_dir() -> str:
    """``$XDG_CACHE_HOME/repro/sweeps`` (``~/.cache/repro/sweeps``)."""
    return os.path.join(default_cache_dir(), "sweeps")


def _bits_str(bits: Sequence[int]) -> str:
    return "".join("1" if int(b) else "0" for b in bits)


def _bits_tuple(text: str) -> Bits:
    return tuple(1 if ch == "1" else 0 for ch in text)


@dataclass(frozen=True)
class FamilyKey:
    """The content-addressed identity of one family instance."""

    family: str
    skeleton_hash: str
    k_bits: int

    @property
    def digest(self) -> str:
        raw = f"{self.family}\x00{self.skeleton_hash}\x00{self.k_bits}"
        return hashlib.sha256(raw.encode()).hexdigest()

    def as_tuple(self) -> Tuple[str, str, int]:
        """A picklable flat form for worker payloads."""
        return (self.family, self.skeleton_hash, self.k_bits)


def family_key(family: Any) -> FamilyKey:
    """Compute the store key for a family instance.

    Uses the cached skeleton (one build per instance, hash cached on
    the graph); non-skeleton families hash their all-zeros build under
    a distinct tag so the two schemes never collide.
    """
    try:
        skeleton_hash = "skel:" + family.skeleton().content_hash()
    except NotImplementedError:
        zero = tuple([0] * family.k_bits)
        skeleton_hash = "zero:" + family.build(zero, zero).content_hash()
    return FamilyKey(family=type(family).__name__,
                     skeleton_hash=skeleton_hash,
                     k_bits=int(family.k_bits))


class SweepStore:
    """Persistent ``(family key, x, y) → decision`` store (see module
    docstring for key semantics, layout, and concurrency guarantees).

    ``sweep_stale=True`` (the default) removes stale ``*.tmp`` leftovers
    of killed writers on startup; shard workers pass ``False`` so a
    fleet of forks does not rescan the tree once per shard.
    """

    def __init__(self, root: Optional[str] = None,
                 sweep_stale: bool = True) -> None:
        self.root = os.fspath(root) if root else default_sweep_store_dir()
        self._meta_written: Set[str] = set()
        if sweep_stale and os.path.isdir(self.root):
            for name in os.listdir(self.root):
                fdir = os.path.join(self.root, name)
                if os.path.isdir(fdir):
                    sweep_stale_tmp(fdir)

    # -- paths ---------------------------------------------------------
    def family_dir(self, fkey: FamilyKey) -> str:
        return os.path.join(self.root, fkey.digest)

    @staticmethod
    def _pair_name(x: Sequence[int], y: Sequence[int]) -> str:
        raw = f"{_bits_str(x)}:{_bits_str(y)}"
        return hashlib.sha256(raw.encode()).hexdigest() + ".json"

    # -- read side -----------------------------------------------------
    def _read_entry(self, path: str, k_bits: int) -> Optional[Tuple[Pair, bool]]:
        """Decode one entry file; None (and best-effort deletion) for
        anything corrupt, truncated, or shaped wrong — a damaged store
        degrades to recomputation, never a crash."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            x, y = payload["x"], payload["y"]
            decision = payload["decision"]
            if (not isinstance(x, str) or not isinstance(y, str)
                    or len(x) != k_bits or len(y) != k_bits
                    or (set(x) | set(y)) - {"0", "1"}
                    or not isinstance(decision, bool)):
                raise ValueError("malformed sweep entry")
        except (OSError, ValueError, KeyError, TypeError):
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        return (_bits_tuple(x), _bits_tuple(y)), decision

    def lookup(self, fkey: FamilyKey, x: Sequence[int],
               y: Sequence[int]) -> Optional[bool]:
        """The stored decision for one pair, or None when absent."""
        path = os.path.join(self.family_dir(fkey), self._pair_name(x, y))
        if not os.path.exists(path):
            return None
        entry = self._read_entry(path, fkey.k_bits)
        return None if entry is None else entry[1]

    def load_pairs(self, fkey: FamilyKey) -> Dict[Pair, bool]:
        """Every stored decision for one family key (one directory
        scan; corrupt entries are skipped)."""
        fdir = self.family_dir(fkey)
        out: Dict[Pair, bool] = {}
        try:
            names = os.listdir(fdir)
        except OSError:
            return out
        for fname in names:
            if not fname.endswith(".json") or fname == "meta.json":
                continue
            entry = self._read_entry(os.path.join(fdir, fname), fkey.k_bits)
            if entry is not None:
                out[entry[0]] = entry[1]
        return out

    def coverage(self, fkey: FamilyKey,
                 pairs: Sequence[Pair]) -> int:
        """How many of ``pairs`` already have a stored decision."""
        stored = self.load_pairs(fkey)
        return sum(1 for x, y in pairs
                   if (tuple(x), tuple(y)) in stored)

    # -- write side ----------------------------------------------------
    def _write_meta(self, fkey: FamilyKey, fdir: str) -> None:
        if fdir in self._meta_written:
            return
        self._meta_written.add(fdir)
        path = os.path.join(fdir, "meta.json")
        if os.path.exists(path):
            return
        payload = {"family": fkey.family,
                   "skeleton_hash": fkey.skeleton_hash,
                   "k_bits": fkey.k_bits}
        self._atomic_write(fdir, path, payload)

    @staticmethod
    def _atomic_write(fdir: str, path: str, payload: Dict[str, Any]) -> None:
        fd, tmp = tempfile.mkstemp(dir=fdir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def store(self, fkey: FamilyKey, x: Sequence[int], y: Sequence[int],
              decision: bool) -> None:
        """Persist one decision atomically; an unwritable store degrades
        to memory-only (the sweep memo still holds the decision)."""
        fdir = self.family_dir(fkey)
        payload = {"x": _bits_str(x), "y": _bits_str(y),
                   "decision": bool(decision)}
        try:
            os.makedirs(fdir, exist_ok=True)
            self._write_meta(fkey, fdir)
            self._atomic_write(
                fdir, os.path.join(fdir, self._pair_name(x, y)), payload)
        except OSError:
            pass

    # -- maintenance ---------------------------------------------------
    def clear(self, fkey: Optional[FamilyKey] = None) -> None:
        """Delete every entry (or just one family's), ``*.tmp`` leftovers
        included."""
        if fkey is not None:
            dirs = [self.family_dir(fkey)]
        else:
            try:
                dirs = [os.path.join(self.root, n)
                        for n in os.listdir(self.root)]
            except OSError:
                return
        for fdir in dirs:
            try:
                names = os.listdir(fdir)
            except OSError:
                continue
            for fname in names:
                if fname.endswith(".json") or fname.endswith(".tmp"):
                    try:
                        os.unlink(os.path.join(fdir, fname))
                    except OSError:
                        pass
            try:
                os.rmdir(fdir)
            except OSError:
                pass
        self._meta_written.clear()
