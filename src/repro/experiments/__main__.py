"""Regenerate the experiment record table: ``python -m repro.experiments``.

Writes the markdown table that EXPERIMENTS.md embeds.  ``--full`` runs
the slower, larger sweeps (the benchmark-suite scale).
"""

from __future__ import annotations

import sys
import time

from repro.experiments import format_markdown, run_all


def main() -> None:
    quick = "--full" not in sys.argv
    started = time.time()
    records = run_all(quick=quick)
    print(format_markdown(records))
    print(f"\n<!-- {len(records)} experiments, "
          f"{time.time() - started:.1f}s, quick={quick} -->")


if __name__ == "__main__":
    main()
