"""Experiments for the CONGEST upper bounds (Theorem 2.9 and the
folklore O(m + D) universal algorithm that matches the Section 2 lower
bounds)."""

from __future__ import annotations

import random
from typing import Dict, List

from repro.congest.algorithms import (
    run_local_universal,
    run_maxcut_sampling,
    run_universal_exact,
)
from repro.core.mds import MdsFamily
from repro.cc.functions import random_input_pairs
from repro.experiments.runner import ExperimentRecord, experiment
from repro.graphs import Graph, random_graph
from repro.solvers import (
    cut_weight,
    is_dominating_set,
    max_cut_value,
    min_dominating_set,
)


@experiment("E-T2.9-congest-maxcut")
def run_congest_maxcut(quick: bool = True) -> ExperimentRecord:
    rng = random.Random(0x29)
    sizes = [12, 16] if quick else [12, 16, 20]
    rounds_by_n: Dict[int, int] = {}
    ratios: List[float] = []
    for n in sizes:
        g = random_graph(n, 0.4, rng)
        while not g.is_connected():
            g = random_graph(n, 0.4, rng)
        exact = max_cut_value(g)
        res = run_maxcut_sampling(g, p=0.75, seed=n)
        achieved = cut_weight(g, [v for v, s in res.sides.items() if s])
        ratios.append(achieved / exact)
        rounds_by_n[n] = res.rounds
        # p = 1 must recover the exact optimum
        res_full = run_maxcut_sampling(g, p=1.0, seed=n)
        assert res_full.sampled_value == exact
    return ExperimentRecord(
        experiment_id="E-T2.9-congest-maxcut",
        paper_claim="(1−ε)-approx unweighted max-cut in Õ(n) CONGEST "
                    "rounds (Thm 2.9, after [51])",
        parameters={"sizes": sizes, "p": 0.75},
        measured={
            "rounds": rounds_by_n,
            "approx_ratios": [round(r, 3) for r in ratios],
            "rounds_linear_in": "n + m_p + D",
        },
        passed=min(ratios) >= 0.5,
    )


@experiment("E-universal-upper-bound")
def run_universal(quick: bool = True) -> ExperimentRecord:
    """The O(m + D) learn-everything algorithm on the MDS family — the
    matching upper bound for the Ω̃(n²) lower bounds (m = Θ(n²))."""
    fam = MdsFamily(4)
    rng = random.Random(0x99)
    x, y = random_input_pairs(fam.k_bits, 2, rng)[1]
    g = fam.build(x, y)

    def solver(gg: Graph):
        ds = min_dominating_set(gg)
        return len(ds), {u: (u in set(ds)) for u in gg.vertices()}

    outputs, sim = run_universal_exact(g, solver)
    members_uid = [sim.uid_of[v] for v, o in outputs.items() if o["value"]]
    size = next(iter(outputs.values()))["global"]
    assert size == len(members_uid)
    # check the distributed answer is a genuine optimal dominating set
    members = [v for v, o in outputs.items() if o["value"]]
    assert is_dominating_set(g, members)
    assert len(members) == len(min_dominating_set(g))
    return ExperimentRecord(
        experiment_id="E-universal-upper-bound",
        paper_claim="every problem solvable in O(m + D) = O(n²) rounds "
                    "by learning the graph (Section 1)",
        parameters={"family": "MdsFamily", "k": 4, "n": g.n, "m": g.m},
        measured={
            "rounds": sim.rounds,
            "rounds_minus_3n": sim.rounds - 3 * g.n,
            "mds_size": size,
        },
    )


@experiment("E-congest-local-separation")
def run_separation(quick: bool = True) -> ExperimentRecord:
    """The LOCAL/CONGEST separation underneath Section 4: on the same
    instance LOCAL solves everything in ~D rounds while CONGEST's
    universal algorithm pays Θ(m + n)."""
    fam = MdsFamily(4)
    rng = random.Random(0x77)
    x, y = random_input_pairs(fam.k_bits, 2, rng)[1]
    g = fam.build(x, y)

    def local_solver(gg: Graph):
        ds = set(min_dominating_set(gg))
        return {u: (u in ds) for u in gg.vertices()}

    local_out, local_sim = run_local_universal(g, local_solver)

    def congest_solver(gg: Graph):
        ds = set(min_dominating_set(gg))
        return len(ds), {u: (u in ds) for u in gg.vertices()}

    congest_out, congest_sim = run_universal_exact(g, congest_solver)
    local_members = [v for v, b in local_out.items() if b]
    assert is_dominating_set(g, local_members)
    passed = (local_sim.rounds <= g.diameter() + 4
              and congest_sim.rounds > 3 * local_sim.rounds)
    return ExperimentRecord(
        experiment_id="E-congest-local-separation",
        paper_claim="the Section 4 bounds separate CONGEST from LOCAL: "
                    "bandwidth, not locality, is the obstruction",
        parameters={"family": "MdsFamily", "k": 4, "n": g.n,
                    "diameter": g.diameter()},
        measured={
            "local_rounds": local_sim.rounds,
            "congest_rounds": congest_sim.rounds,
            "local_max_message_bits": local_sim.max_message_bits,
            "congest_bandwidth": congest_sim.bandwidth,
        },
        passed=passed,
    )
