"""Experiments for the Section 2 exact lower bounds (Theorems 2.1-2.8).

Each experiment sweeps input pairs, machine-checks the carrying lemma
(predicate ⇔ ¬DISJ) with the exact solvers, records the family
parameters (n, |Ecut|, K), and evaluates the Theorem 1.1 bound at two
sizes to exhibit the claimed growth.
"""

from __future__ import annotations

import math
import random
from itertools import product
from typing import Dict, List

from repro.cc.functions import random_input_pairs
from repro.core.family import theorem_1_1_bound, validate_family, verify_iff
from repro.core.hamiltonian import HamiltonianCycleFamily, HamiltonianPathFamily, START
from repro.core.maxcut import MaxCutFamily
from repro.core.mds import MdsFamily
from repro.core.mvc import MvcMaxISFamily
from repro.core.reductions import (
    directed_to_undirected_hc,
    hc_to_hp,
    two_ecss_family,
    undirected_hc_family,
)
from repro.core.steiner import SteinerTreeFamily
from repro.experiments.runner import ExperimentRecord, experiment
from repro.graphs import DiGraph, random_graph
from repro.solvers import (
    has_hamiltonian_cycle,
    has_hamiltonian_path,
    has_two_ecss_with_edges,
    max_cut,
)


def _bound_growth(make_family, ks: List[int]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for k in ks:
        fam = make_family(k)
        out[f"bound@k={k}"] = round(theorem_1_1_bound(fam), 4)
        out[f"n@k={k}"] = fam.n_vertices()
        out[f"ecut@k={k}"] = len(fam.cut_edges())
    return out


@experiment("E-F1-T2.1-mds")
def run_mds(quick: bool = True) -> ExperimentRecord:
    k = 4
    fam = MdsFamily(k)
    rng = random.Random(0xF1)
    validate_family(fam)
    pairs = random_input_pairs(fam.k_bits, 4 if quick else 10, rng)
    report = verify_iff(fam, pairs, negate=True)
    witness = fam.witness_dominating_set(
        *next(p for p in pairs if not fam.function(*p)))
    measured = {
        "iff_checked": report.checked,
        "witness_size": len(witness),
        "target_size": fam.target_size,
    }
    measured.update(_bound_growth(MdsFamily, [4, 8, 16]))
    return ExperimentRecord(
        experiment_id="E-F1-T2.1-mds",
        paper_claim="MDS exact requires Ω(n²/log²n) (Thm 2.1, Lemma 2.1)",
        parameters={"k": k, "K": fam.k_bits},
        measured=measured,
    )


@experiment("E-F2-T2.2-hamiltonian-path")
def run_hamiltonian(quick: bool = True) -> ExperimentRecord:
    fam = HamiltonianPathFamily(2)
    validate_family(fam)
    if quick:
        rng = random.Random(0xF2)
        pairs = random_input_pairs(4, 8, rng)
    else:
        pairs = [(x, y) for x in product((0, 1), repeat=4)
                 for y in product((0, 1), repeat=4)]
    report = verify_iff(fam, pairs, negate=True)
    # constructive witness at k = 4 (126 vertices)
    fam4 = HamiltonianPathFamily(4)
    rng = random.Random(0xF3)
    x, y = next(p for p in random_input_pairs(16, 4, rng)
                if not fam4.function(*p))
    witness = fam4.witness_path(x, y)
    measured = {
        "iff_checked": report.checked,
        "witness_len@k=4": len(witness),
        "n@k=4": fam4.n_vertices(),
        "bound@k=2": round(theorem_1_1_bound(fam), 4),
        "bound@k=4": round(theorem_1_1_bound(fam4), 4),
    }
    return ExperimentRecord(
        experiment_id="E-F2-T2.2-hamiltonian-path",
        paper_claim="directed Ham. path requires Ω(n²/log⁴n) (Thm 2.2)",
        parameters={"k": 2, "exhaustive": not quick},
        measured=measured,
    )


@experiment("E-T2.3-T2.4-hamiltonian-variants")
def run_hamiltonian_variants(quick: bool = True) -> ExperimentRecord:
    rng = random.Random(0xF4)
    famc = HamiltonianCycleFamily(2)
    validate_family(famc)
    pairs = random_input_pairs(4, 4 if quick else 8, rng)
    report = verify_iff(famc, pairs, negate=True)
    # Lemma 2.2 / 2.3 graph-level equivalences on random digraphs
    lemma22 = lemma23 = 0
    for __ in range(6 if quick else 20):
        dg = DiGraph()
        for u in range(6):
            dg.add_vertex(u)
        for u in range(6):
            for v in range(6):
                if u != v and rng.random() < 0.35:
                    dg.add_edge(u, v)
        und = directed_to_undirected_hc(dg)
        assert has_hamiltonian_cycle(dg) == has_hamiltonian_cycle(und)
        lemma22 += 1
        g = random_graph(7, 0.5, rng)
        hp = hc_to_hp(g, pivot=g.vertices()[0])
        assert has_hamiltonian_cycle(g) == has_hamiltonian_path(hp)
        lemma23 += 1
    uhc = undirected_hc_family(famc)
    validate_family(uhc)
    return ExperimentRecord(
        experiment_id="E-T2.3-T2.4-hamiltonian-variants",
        paper_claim="directed/undirected Ham. cycle & path all Ω̃(n²) "
                    "(Thms 2.3, 2.4; Lemmas 2.2, 2.3)",
        parameters={"k": 2},
        measured={
            "cycle_iff_checked": report.checked,
            "lemma22_equivalences": lemma22,
            "lemma23_equivalences": lemma23,
            "undirected_n": uhc.n_vertices(),
            "undirected_ecut": len(uhc.cut_edges()),
        },
    )


@experiment("E-L2.2-split-simulation")
def run_split_simulation_experiment(quick: bool = True) -> ExperimentRecord:
    """Lemma 2.2, executed distributedly: an algorithm for split(G)
    hosted on G costs exactly 2× the rounds."""
    from repro.congest.algorithms.basic import FloodMinId
    from repro.congest.algorithms.split_simulation import run_split_simulation
    from repro.congest.model import CongestSimulator
    from repro.core.reductions import directed_to_undirected_hc

    rng = random.Random(0x22)
    overheads = []
    for __ in range(2 if quick else 5):
        dg = DiGraph()
        for v in range(6):
            dg.add_vertex(v)
        for u in range(6):
            for v in range(6):
                if u != v and rng.random() < 0.4:
                    dg.add_edge(u, v)
        if not dg.to_undirected().is_connected():
            continue
        outputs, sim = run_split_simulation(dg, FloodMinId)
        gprime = directed_to_undirected_hc(dg)
        direct = CongestSimulator(gprime)
        direct_out = direct.run(FloodMinId)
        got = {o for out in outputs.values() for o in out.values()}
        assert got == set(direct_out.values())
        overheads.append(sim.rounds / direct.rounds)
    return ExperimentRecord(
        experiment_id="E-L2.2-split-simulation",
        paper_claim="each split-graph round simulates in 2 rounds on the "
                    "original graph (Lemma 2.2)",
        parameters={"instances": len(overheads)},
        measured={"round_overheads": [round(o, 2) for o in overheads]},
        passed=bool(overheads) and max(overheads) <= 2.2,
    )


@experiment("E-T2.5-two-ecss")
def run_two_ecss(quick: bool = True) -> ExperimentRecord:
    rng = random.Random(0xF5)
    checks = 0
    for __ in range(4 if quick else 12):
        g = random_graph(6, 0.6, rng)
        assert has_two_ecss_with_edges(g, g.n) == has_hamiltonian_cycle(g)
        checks += 1
    fam = two_ecss_family(HamiltonianCycleFamily(2))
    validate_family(fam)
    return ExperimentRecord(
        experiment_id="E-T2.5-two-ecss",
        paper_claim="min 2-ECSS exact requires Ω(n²/log⁴n) "
                    "(Thm 2.5, Claim 2.7)",
        parameters={"k": 2},
        measured={"claim27_checks": checks,
                  "family_n": fam.n_vertices(),
                  "family_ecut": len(fam.cut_edges())},
    )


@experiment("E-T2.7-steiner")
def run_steiner(quick: bool = True) -> ExperimentRecord:
    k = 4
    fam = SteinerTreeFamily(k)
    validate_family(fam)
    rng = random.Random(0xF7)
    pairs = random_input_pairs(fam.k_bits, 4 if quick else 8, rng)
    report = verify_iff(fam, pairs, negate=True)
    witness = fam.witness_steiner_tree(
        *next(p for p in pairs if not fam.function(*p)))
    return ExperimentRecord(
        experiment_id="E-T2.7-steiner",
        paper_claim="min Steiner tree exact requires Ω(n²/log²n) "
                    "(Thm 2.7, Claim 2.8)",
        parameters={"k": k, "terminals": len(fam.terminals())},
        measured={
            "iff_checked": report.checked,
            "witness_edges": len(witness),
            "target_edges": fam.target_edges,
            "n": fam.n_vertices(),
            "ecut": len(fam.cut_edges()),
        },
    )


@experiment("E-F3-T2.8-maxcut")
def run_maxcut(quick: bool = True) -> ExperimentRecord:
    fam = MaxCutFamily(2)
    validate_family(fam)
    rng = random.Random(0xF8)
    pairs = random_input_pairs(4, 4 if quick else 8, rng)
    report = verify_iff(fam, pairs, negate=True)
    # structural claims on an exact optimum
    x, y = next(p for p in pairs if not fam.function(*p))
    g = fam.build(x, y)
    value, side = max_cut(g)
    claims = fam.structural_claims_hold(side, g)
    # witness at k = 4
    fam4 = MaxCutFamily(4)
    x4, y4 = next(p for p in random_input_pairs(16, 4, rng)
                  if not fam4.function(*p))
    fam4.witness_side(x4, y4)
    return ExperimentRecord(
        experiment_id="E-F3-T2.8-maxcut",
        paper_claim="weighted max-cut exact requires Ω(n²/log²n) "
                    "(Thm 2.8, Claims 2.9-2.12, Lemma 2.4)",
        parameters={"k": 2, "M": fam.target_weight},
        measured={
            "iff_checked": report.checked,
            "optimum@yes": value,
            "claims_2.9-2.11_hold": claims,
            "M@k=4": fam4.target_weight,
        },
        passed=claims,
    )


@experiment("E-base-mvc")
def run_base_mvc(quick: bool = True) -> ExperimentRecord:
    rng = random.Random(0xB0)
    measured: Dict[str, object] = {}
    for k in (2, 4):
        fam = MvcMaxISFamily(k)
        validate_family(fam)
        pairs = random_input_pairs(fam.k_bits, 4 if quick else 8, rng)
        report = verify_iff(fam, pairs, negate=True)
        measured[f"iff_checked@k={k}"] = report.checked
        measured[f"alpha_yes@k={k}"] = fam.alpha_yes
        measured[f"n@k={k}"] = fam.n_vertices()
        measured[f"ecut@k={k}"] = len(fam.cut_edges())
    return ExperimentRecord(
        experiment_id="E-base-mvc",
        paper_claim="the [10]-style MVC/MaxIS base family "
                    "(substitution; see DESIGN.md)",
        parameters={"ks": [2, 4]},
        measured=measured,
    )
