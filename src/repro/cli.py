"""Command-line interface: ``python -m repro <command>``.

Commands
--------
families              list every lower-bound family with its parameters
describe FAMILY [-k]  build one family and print its Definition 1.1 data
verify FAMILY [-k] [--pairs N]
                      machine-check the family's iff-lemma on N input pairs
verify FAMILY --grid [--store-dir DIR] [--expect-store-hits PCT]
                      exhaustive 2^k x 2^k grid sweep through the
                      persistent result store: coverage reporting,
                      crash-resumable, repeat sweeps near-free
experiments [--full] [--only ID ...] [--trace-dir DIR] [--profile]
                      run the per-theorem experiments and print the table
paper                 print the theorem-by-theorem coverage index
check [--seed S] [--cases N] [--family F] [--deep] [--jobs N]
      [--report-dir DIR] [--trace-dir DIR]
                      differential correctness harness: fuzz graphs,
                      cross-validate solvers against naive references and
                      metamorphic invariants, shrink failures to minimal
                      reproducers (see repro.check)
report trace TRACE [--run N] [--cut UIDS] [--edges N]
                      render a simulator trace (binary or JSONL,
                      auto-detected) into a round-by-round summary;
                      `report TRACE` is the legacy spelling
report bench [FILE]   p50-per-SHA bench trajectory with deltas and
                      regression flags (default: BENCH_simulator.json)
report fuzz DIR       summarize a `check --report-dir` artifact dir
report convert SRC DST
                      convert a trace between JSONL and binary
"""

from __future__ import annotations

import argparse
import os
import random
import sys
from typing import Dict, Optional

from repro.core.family import LowerBoundGraphFamily, validate_family, verify_iff


def _family_registry() -> Dict[str, object]:
    from repro import (
        HamiltonianCycleFamily,
        HamiltonianPathFamily,
        KMdsFamily,
        LinearApproxMaxISFamily,
        MaxCutFamily,
        MdsFamily,
        MvcMaxISFamily,
        NodeWeightedSteinerFamily,
        SteinerTreeFamily,
        UnweightedApproxMaxISFamily,
        WeightedApproxMaxISFamily,
    )
    from repro.core.steiner_approx import DirectedSteinerFamily
    from repro.covering import build_covering_collection

    def with_collection(cls):
        def make(k: int):
            cc = build_covering_collection(universe_size=16, T=6, r=2, seed=0)
            return cls(cc)
        return make

    return {
        "mds": MdsFamily,
        "hamiltonian-path": HamiltonianPathFamily,
        "hamiltonian-cycle": HamiltonianCycleFamily,
        "steiner": SteinerTreeFamily,
        "maxcut": MaxCutFamily,
        "mvc": MvcMaxISFamily,
        "approx-maxis": WeightedApproxMaxISFamily,
        "approx-maxis-unweighted": UnweightedApproxMaxISFamily,
        "approx-maxis-linear": LinearApproxMaxISFamily,
        "kmds": with_collection(lambda cc: KMdsFamily(cc, k=2)),
        "node-weighted-steiner": with_collection(NodeWeightedSteinerFamily),
        "directed-steiner": with_collection(DirectedSteinerFamily),
    }


def _build(name: str, k: int) -> LowerBoundGraphFamily:
    registry = _family_registry()
    if name not in registry:
        raise SystemExit(f"unknown family {name!r}; try: "
                         + ", ".join(sorted(registry)))
    return registry[name](k)  # type: ignore[operator]


def cmd_families(args: argparse.Namespace) -> None:
    for name in sorted(_family_registry()):
        try:
            fam = _build(name, 4 if "maxcut" not in name
                         and "hamiltonian" not in name else 2)
            d = fam.describe()
            print(f"{name:<26} n={d['n']:5d}  |Ecut|={d['ecut']:4d}  "
                  f"K={d['K']:4d}  bound={d['implied_bound']:.3f}")
        except Exception as exc:  # pragma: no cover - CLI resilience
            print(f"{name:<26} (unavailable at default size: {exc})")


def cmd_describe(args: argparse.Namespace) -> None:
    fam = _build(args.family, args.k)
    for key, value in fam.describe().items():
        print(f"{key:>14}: {value}")


def _parse_bits(text: str, k_bits: int, flag: str) -> tuple:
    if len(text) != k_bits or set(text) - {"0", "1"}:
        raise SystemExit(
            f"{flag} expects a string of {k_bits} bits (0/1), got {text!r}")
    return tuple(int(b) for b in text)


def _grid_pairs(k_bits: int) -> list:
    return [(tuple(int(b) for b in format(i, f"0{k_bits}b")),
             tuple(int(b) for b in format(j, f"0{k_bits}b")))
            for i in range(1 << k_bits) for j in range(1 << k_bits)]


def _verify_grid(fam, args: argparse.Namespace) -> None:
    """``verify --grid``: decide P(G_{x,y}) over the *full* 2^k × 2^k
    input grid through the persistent sweep store, report coverage
    (restored / freshly solved / remaining) instead of sampling, and
    check the iff-lemma on every pair.  Because each decision is
    persisted the moment it lands, a run killed mid-grid resumes from
    the last completed pair."""
    from repro.core.family import sweep as run_sweep
    from repro.core.family import verify_iff
    from repro.experiments.sweep_store import SweepStore, family_key

    k_bits = fam.k_bits
    total = (1 << k_bits) ** 2
    if k_bits > 10:
        raise SystemExit(
            f"--grid would enumerate 2^{k_bits} × 2^{k_bits} = {total} "
            f"pairs; grids beyond k_bits=10 (~1M pairs) need a smaller k")
    store = SweepStore(args.store_dir)  # None -> ~/.cache/repro/sweeps
    fkey = family_key(fam)
    pairs = _grid_pairs(k_bits)
    pre = store.coverage(fkey, pairs)
    print(f"grid sweep {args.family} (k={args.k}): "
          f"2^{k_bits} x 2^{k_bits} = {total} pairs")
    print(f"  store: {store.root}")
    print(f"  coverage before: {pre}/{total} stored, {total - pre} remaining")
    report = run_sweep(fam, pairs, store=store)
    hit_pct = 100.0 * report.store_hits / max(1, report.unique_pairs)
    print(f"  coverage after: {report.unique_pairs}/{total} decided "
          f"({report.store_hits} restored from store, "
          f"{report.solved} freshly solved, 0 remaining)")
    print(f"  store hits: {report.store_hits}/{report.unique_pairs} "
          f"({hit_pct:.1f}%)")
    if report.batched:
        print(f"  batched kernel: {report.batched}/{report.solved} "
              f"solved pairs")
    if report.solve_ms:
        from repro.obs.profile import percentile
        print(f"  decision latency: p50={percentile(report.solve_ms, 50):.3f}ms "
              f"p95={percentile(report.solve_ms, 95):.3f}ms "
              f"over {len(report.solve_ms)} decided pairs")
    # every decision is already memoized, so the iff check re-solves
    # nothing — it only compares each decision against f(x, y)
    iff = verify_iff(fam, pairs, negate=True)
    print(f"  iff-lemma over the full grid: {iff}")
    if (args.expect_store_hits is not None
            and hit_pct < args.expect_store_hits):
        raise SystemExit(
            f"store hit rate {hit_pct:.1f}% below the required "
            f"{args.expect_store_hits:.1f}% (resume/caching regression?)")
    if args.recheck_batch:
        # satellite of the batched-kernel protocol: a *fresh* family's
        # decide_batch over the full grid must match every stored entry
        fresh = _build(args.family, args.k)
        batched = fresh.decide_batch(None, pairs)
        if batched is None:
            raise SystemExit(
                f"--recheck-batch: {type(fresh).__name__} has no batch "
                f"kernel to re-check with")
        stored = store.load_pairs(fkey)
        mismatches = sum(
            1 for key, dec in batched.items()
            if key in stored and stored[key] != dec)
        unstored = sum(1 for key in batched if key not in stored)
        print(f"  batch recheck: {len(batched)} kernel decisions vs "
              f"{len(stored)} stored entries -> {mismatches} mismatches")
        if mismatches or unstored:
            raise SystemExit(
                f"--recheck-batch: {mismatches} kernel/store mismatches, "
                f"{unstored} pairs missing from the store")


def cmd_verify(args: argparse.Namespace) -> None:
    from repro.cc.functions import random_input_pairs
    from repro.core.family import configure_sweep

    if args.sweep_jobs:
        configure_sweep(args.sweep_jobs)
    if args.no_warm_pool:
        configure_sweep(warm=False)
    if args.no_batch:
        configure_sweep(batch=False)
    fam = _build(args.family, args.k)
    if args.grid:
        if args.xbits is not None or args.ybits is not None:
            raise SystemExit("--grid enumerates every pair; it cannot be "
                             "combined with --x/--y")
        _verify_grid(fam, args)
        return
    if args.xbits is not None or args.ybits is not None:
        # single-pair mode: re-check one (x, y), as emitted in
        # verify_iff mismatch repro commands
        if args.xbits is None or args.ybits is None:
            raise SystemExit("--x and --y must be given together")
        x = _parse_bits(args.xbits, fam.k_bits, "--x")
        y = _parse_bits(args.ybits, fam.k_bits, "--y")
        expected = not fam.function(x, y)  # negate=True convention
        actual = fam.predicate(fam.build(x, y))
        status = "OK" if actual == expected else "MISMATCH"
        print(f"x={x}, y={y}: predicate={actual}, expected={expected} "
              f"-> {status}")
        if actual != expected:
            raise SystemExit(1)
        return
    print(f"validating Definition 1.1 for {args.family} (k={args.k}) ...")
    validate_family(fam)
    print("  structural requirements: OK")
    rng = random.Random(args.seed)
    pairs = random_input_pairs(fam.k_bits, args.pairs, rng)
    report = verify_iff(fam, pairs, negate=True)
    print(f"  iff-lemma: {report}")


def cmd_paper(args: argparse.Namespace) -> None:
    from repro.paper import coverage_table

    print(coverage_table())


def cmd_experiments(args: argparse.Namespace) -> None:
    from repro.core.family import configure_sweep
    from repro.experiments import format_markdown, run_all
    from repro.solvers.cache import configure as configure_cache, default_cache_dir

    cache_dir = args.cache_dir
    if cache_dir == "DEFAULT":
        cache_dir = default_cache_dir()
    configure_cache(enabled=not args.no_cache, cache_dir=cache_dir)
    if args.sweep_jobs:
        configure_sweep(args.sweep_jobs)
    if args.no_warm_pool:
        configure_sweep(warm=False)
    records = run_all(quick=not args.full,
                      only=args.only if args.only else None,
                      trace_dir=args.trace_dir,
                      profile=args.profile,
                      jobs=args.jobs,
                      timeout=args.timeout,
                      retries=args.retries,
                      trace_format=args.trace_format,
                      engine=args.engine,
                      warm=not args.no_warm_pool)
    print(format_markdown(records))
    failed = [r.experiment_id for r in records if not r.passed]
    if failed:
        raise SystemExit(f"FAILED: {failed}")


def cmd_check(args: argparse.Namespace) -> None:
    from repro.check import run_check

    report = run_check(seed=args.seed, cases=args.cases, family=args.family,
                       deep=args.deep, jobs=args.jobs,
                       do_shrink=not args.no_shrink,
                       report_dir=args.report_dir,
                       trace_dir=args.trace_dir,
                       trace_format=args.trace_format)
    print(report.summary())
    if not report.ok:
        raise SystemExit(1)


def _report_trace(path: str, args: argparse.Namespace) -> None:
    from repro.obs import iter_trace, render_report
    from repro.obs.binary import TraceFormatError

    alice = None
    if args.cut:
        try:
            alice = {int(u) for u in args.cut.split(",") if u.strip()}
        except ValueError:
            raise SystemExit("--cut expects comma-separated integer uids")
    try:
        report = render_report(iter_trace(path), alice_uids=alice,
                               top_edges=args.edges, run=args.run)
    except OSError as exc:
        raise SystemExit(f"cannot read trace {path!r}: {exc}")
    except TraceFormatError as exc:
        raise SystemExit(f"corrupt trace {path!r}: {exc}")
    except ValueError as exc:
        # render_report: empty trace, or --run beyond the last run
        raise SystemExit(f"trace {path!r}: {exc}")
    print(report)


def _report_bench(args: argparse.Namespace) -> None:
    from repro.obs.report import (BenchHistoryError, load_bench_history,
                                  render_bench_report)

    path = args.path or "BENCH_simulator.json"
    try:
        history = load_bench_history(path)
    except BenchHistoryError as exc:
        # corrupt/empty/truncated file: one-line nonzero exit, not a
        # raw json traceback
        raise SystemExit(str(exc))
    if not history:
        raise SystemExit(f"no bench history at {path!r} "
                         "(run benchmarks/record.py --update)")
    print(render_bench_report(history))


def _report_fuzz(args: argparse.Namespace) -> None:
    from repro.obs.report import render_fuzz_report

    if args.path is None:
        raise SystemExit("usage: repro report fuzz <report-dir>")
    try:
        print(render_fuzz_report(args.path))
    except FileNotFoundError as exc:
        raise SystemExit(str(exc))


def _report_pool(args: argparse.Namespace) -> None:
    """``repro report pool``: the process-wide warm-pool counters —
    broadcast/payload economics, warm memo hits, and the batched-kernel
    counters (pairs answered by kernels, kernel-state hits/misses)."""
    from repro.obs.profile import format_warm_pool_stats, warm_pool_stats

    stats = warm_pool_stats()
    print(format_warm_pool_stats(stats))
    for key in sorted(stats):
        print(f"  {key:>22}: {stats[key]}")
    if not stats.get("pairs_shipped") and not stats.get("lanes"):
        print("  (no warm pool has run in this process; the counters "
              "are cumulative per process, so this view is most useful "
              "from code that drives sweeps and then reports)")


def _report_convert(args: argparse.Namespace) -> None:
    from repro.obs import convert_trace

    if args.path is None or args.dst is None:
        raise SystemExit("usage: repro report convert <src> <dst> "
                         "(dst format inferred from extension: "
                         ".jsonl → JSON lines, else binary)")
    try:
        out = convert_trace(args.path, args.dst)
    except OSError as exc:
        raise SystemExit(f"cannot convert {args.path!r}: {exc}")
    print(f"wrote {out}")


def cmd_report(args: argparse.Namespace) -> None:
    what = args.what
    if what == "trace":
        if args.path is None:
            raise SystemExit("usage: repro report trace <trace-file>")
        _report_trace(args.path, args)
    elif what == "bench":
        _report_bench(args)
    elif what == "fuzz":
        _report_fuzz(args)
    elif what == "pool":
        _report_pool(args)
    elif what == "convert":
        _report_convert(args)
    else:
        # legacy spelling: `repro report <trace-file>`
        if args.path is not None:
            raise SystemExit(f"unknown report view {what!r}; expected "
                             "trace, bench, fuzz, pool, or convert")
        _report_trace(what, args)


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hardness of Distributed Optimization (PODC 2019) "
                    "reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("families", help="list available lower-bound families")

    p = sub.add_parser("describe", help="print one family's parameters")
    p.add_argument("family")
    p.add_argument("-k", type=int, default=4)

    p = sub.add_parser("verify", help="machine-check a family's iff-lemma")
    p.add_argument("family")
    p.add_argument("-k", type=int, default=4)
    p.add_argument("--pairs", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--x", dest="xbits", default=None, metavar="BITS",
                   help="with --y: check the single input pair given as "
                        "0/1 strings instead of sampling (the repro-"
                        "command form verify_iff emits on mismatch)")
    p.add_argument("--y", dest="ybits", default=None, metavar="BITS")
    p.add_argument("--sweep-jobs", type=int, default=0, metavar="N",
                   help="fan predicate sweeps over N worker processes")
    p.add_argument("--no-warm-pool", action="store_true",
                   help="route parallel sweeps through throwaway cold "
                        "pools instead of the persistent warm pool")
    p.add_argument("--no-batch", action="store_true",
                   help="disable batched decision kernels; every pair "
                        "goes through the per-pair predicate(build(x,y)) "
                        "path")
    p.add_argument("--grid", action="store_true",
                   help="decide the predicate over the FULL 2^k x 2^k "
                        "input grid through the persistent sweep store, "
                        "reporting coverage (restored / freshly solved) "
                        "instead of sampling; resumable after a crash")
    p.add_argument("--store-dir", default=None, metavar="DIR",
                   help="sweep result store directory for --grid "
                        "(default: ~/.cache/repro/sweeps)")
    p.add_argument("--expect-store-hits", type=float, default=None,
                   metavar="PCT",
                   help="with --grid: exit nonzero when the store served "
                        "fewer than PCT%% of the grid (the CI resume gate)")
    p.add_argument("--recheck-batch", action="store_true",
                   help="with --grid: after the sweep, re-decide the full "
                        "grid through a fresh family's batch kernel and "
                        "exit nonzero unless every decision matches the "
                        "stored entries (the CI batched-path gate)")

    p = sub.add_parser("experiments", help="run the per-theorem experiments")
    p.add_argument("--full", action="store_true")
    p.add_argument("--only", nargs="*", default=None)
    p.add_argument("--trace-dir", default=None, metavar="DIR",
                   help="write one simulator trace per CONGEST run "
                        "(compact binary by default; see --trace-format)")
    p.add_argument("--trace-format", choices=("binary", "jsonl"),
                   default="binary",
                   help="trace file format for --trace-dir "
                        "(default: binary)")
    p.add_argument("--profile", action="store_true",
                   help="record exact-solver wall-clock/call-count profile "
                        "(and cache hit/miss counters) in each record")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="run experiments over N worker processes "
                        "(default 1 = serial; output order is identical)")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="per-experiment wall-clock timeout in seconds "
                        "(parallel runs; an expired experiment FAILs "
                        "instead of stalling the batch)")
    p.add_argument("--retries", type=int, default=1, metavar="N",
                   help="bounded retries for experiments whose worker "
                        "process died (default 1)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the exact-solver memoization cache")
    p.add_argument("--cache-dir", nargs="?", const="DEFAULT", default=None,
                   metavar="DIR",
                   help="persist solver results to DIR (bare --cache-dir "
                        "uses ~/.cache/repro); default is memory-only")
    p.add_argument("--sweep-jobs", type=int, default=0, metavar="N",
                   help="fan each family's predicate sweep over N worker "
                        "processes (independent of --jobs; reports are "
                        "byte-identical to serial sweeps)")
    p.add_argument("--no-warm-pool", action="store_true",
                   help="use throwaway cold worker pools instead of the "
                        "persistent warm pool for --jobs/--sweep-jobs "
                        "fan-out")
    p.add_argument("--engine", choices=("fast", "reference", "vectorized"),
                   default=None,
                   help="CONGEST round-loop engine for every simulator "
                        "(default: the process default, \"fast\"); all "
                        "engines are observably identical — see "
                        "repro check congest:engine-equivalence")

    sub.add_parser("paper", help="theorem-by-theorem coverage index")

    p = sub.add_parser("check", help="differential correctness harness: "
                                     "fuzz, cross-validate, shrink")
    p.add_argument("--seed", type=int, default=0,
                   help="base fuzz seed; (seed, family, index) regenerates "
                        "any case bit-for-bit in any process")
    p.add_argument("--cases", type=int, default=50,
                   help="how many fuzz cases, round-robin over families")
    p.add_argument("--family", default="all",
                   help="restrict to one fuzz family "
                        "(er, bounded, weighted, structured, paper)")
    p.add_argument("--deep", action="store_true",
                   help="larger instances (nightly deep-fuzz tier)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fan case chunks over N worker processes")
    p.add_argument("--no-shrink", action="store_true",
                   help="report failures without minimising them")
    p.add_argument("--report-dir", default=None, metavar="DIR",
                   help="write check-report.json and one JSON reproducer "
                        "per failure to DIR (render with `repro report "
                        "fuzz DIR`)")
    p.add_argument("--trace-dir", default=None, metavar="DIR",
                   help="write one simulator trace per CONGEST run the "
                        "checks perform")
    p.add_argument("--trace-format", choices=("binary", "jsonl"),
                   default="binary",
                   help="trace file format for --trace-dir "
                        "(default: binary)")

    p = sub.add_parser(
        "report",
        help="analytics studio: render traces, bench trajectory, "
             "fuzz artifacts",
        description="Views: `report trace FILE` renders a simulator "
                    "trace (binary or JSONL, auto-detected); `report "
                    "bench [FILE]` renders the p50-per-SHA trajectory "
                    "from BENCH_simulator.json; `report fuzz DIR` "
                    "summarizes a `check --report-dir` directory; "
                    "`report pool` prints the warm worker pool's "
                    "cumulative counters (incl. batched-kernel state "
                    "hits/misses); `report convert SRC DST` converts a "
                    "trace between formats.  `report FILE` (no view "
                    "keyword) is the legacy spelling of `report trace "
                    "FILE`.")
    p.add_argument("what", metavar="VIEW",
                   help="trace | bench | fuzz | pool | convert, or "
                        "directly a trace path (legacy)")
    p.add_argument("path", nargs="?", default=None,
                   help="trace file / bench history / fuzz report dir / "
                        "conversion source, per the view")
    p.add_argument("dst", nargs="?", default=None,
                   help="destination path (convert view only; format "
                        "inferred from extension)")
    p.add_argument("--run", type=int, default=None, metavar="N",
                   help="restrict the trace view to the N-th run "
                        "(1-based) of a multi-run trace")
    p.add_argument("--cut", default=None, metavar="UIDS",
                   help="comma-separated Alice-side uids: adds Theorem 1.1 "
                        "cut-bit accounting")
    p.add_argument("--edges", type=int, default=5,
                   help="how many busiest edges to list (default 5)")

    args = parser.parse_args(argv)
    try:
        {
            "families": cmd_families,
            "describe": cmd_describe,
            "verify": cmd_verify,
            "experiments": cmd_experiments,
            "paper": cmd_paper,
            "check": cmd_check,
            "report": cmd_report,
        }[args.command](args)
        sys.stdout.flush()
    except BrokenPipeError:
        # reader (head, a pager) went away mid-output: exit quietly, and
        # point stdout at devnull so interpreter shutdown stays silent
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(0)


if __name__ == "__main__":  # pragma: no cover
    main()
