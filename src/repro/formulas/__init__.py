"""CNF formulas and the MaxIS↔max-2SAT transformations of Section 3.1."""

from repro.formulas.cnf import CNF, Clause, Literal, neg, pos

__all__ = ["CNF", "Clause", "Literal", "neg", "pos"]
