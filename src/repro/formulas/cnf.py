"""CNF formulas for the Section 3.1 reduction chain.

Variables are arbitrary hashable labels; a literal is ``(variable,
polarity)`` with ``polarity=True`` for the positive literal.  Clauses are
tuples of literals.  The paper only needs 1- and 2-literal clauses
(max-2SAT), but nothing here depends on that.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

Variable = Hashable
Literal = Tuple[Variable, bool]
Clause = Tuple[Literal, ...]


def pos(var: Variable) -> Literal:
    """The positive literal of ``var``."""
    return (var, True)


def neg(var: Variable) -> Literal:
    """The negated literal of ``var``."""
    return (var, False)


class CNF:
    """A CNF formula as an ordered multiset of clauses."""

    def __init__(self, clauses: Iterable[Sequence[Literal]] = ()) -> None:
        self.clauses: List[Clause] = [tuple(c) for c in clauses]
        for clause in self.clauses:
            if not clause:
                raise ValueError("empty clause")

    def add_clause(self, *literals: Literal) -> None:
        if not literals:
            raise ValueError("empty clause")
        self.clauses.append(tuple(literals))

    @property
    def n_clauses(self) -> int:
        return len(self.clauses)

    def variables(self) -> List[Variable]:
        seen: Dict[Variable, None] = {}
        for clause in self.clauses:
            for var, __ in clause:
                seen.setdefault(var)
        return list(seen)

    def occurrences(self, var: Variable) -> int:
        """Number of clauses containing ``var`` (in either polarity)."""
        return sum(1 for clause in self.clauses
                   if any(v == var for v, __ in clause))

    def max_clause_width(self) -> int:
        return max((len(c) for c in self.clauses), default=0)

    def satisfied_count(self, assignment: Dict[Variable, bool]) -> int:
        """Number of clauses satisfied under ``assignment``."""
        count = 0
        for clause in self.clauses:
            if any(assignment[var] == polarity for var, polarity in clause):
                count += 1
        return count

    def literal_occurrences(self, literal: Literal) -> int:
        return sum(1 for clause in self.clauses if literal in clause)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CNF(vars={len(self.variables())}, clauses={self.n_clauses})"
