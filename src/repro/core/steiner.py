"""The Theorem 2.7 family: minimum Steiner tree, via reduction from MDS.

Construction (Section 2.3.2).  From the Figure 1 MDS graph G_{x,y} on
vertex set V = VA ∪ VB, build G'_{x,y} on V ∪ Ṽ (a copy ṽ per vertex)
with four edge groups:

1. *identity* edges (ṽ, v);
2. *original* edges (ũ, v) for every {u, v} ∈ E_{x,y} (both directions of
   each undirected edge);
3. *clique* edges inside ṼA and inside ṼB;
4. exactly two *crossing* edges e₁ = (f̃⁰_{A1}, f̃⁰_{B1}),
   e₂ = (t̃⁰_{A1}, t̃⁰_{B1}).

The terminal set is Term = V.  Claim 2.8: G' has a Steiner tree with
exactly 4k + 16·log k + 1 edges iff G has a dominating set of size
4·log k + 2, i.e. iff DISJ(x, y) = FALSE.

Verification uses the structure the proof establishes: the original
vertices form an independent set, so every Steiner tree normalizes to
one where terminals are leaves, and then

    min Steiner size = |Term| − 1 + min{ |X| : X ⊆ V dominates G_{x,y}
                                         and G'[X̃] is connected }.

X̃ is connected iff X stays within one side or contains both endpoints
of e₁ or of e₂ — four cases, each an instance of constrained minimum
domination, solved exactly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.family import LowerBoundGraphFamily
from repro.core.mds import MdsFamily, fvert, row, tvert
from repro.graphs import Graph, Vertex
from repro.solvers.dominating import constrained_min_dominating_set
from repro.solvers.steiner import is_steiner_tree


def copy_of(v: Vertex) -> Vertex:
    return ("copy", v)


class SteinerTreeFamily(LowerBoundGraphFamily):
    """Theorem 2.7 / Claim 2.8 family for exact minimum Steiner tree."""

    cli_name = "steiner"

    def __init__(self, k: int) -> None:
        self.k = k
        self.mds = MdsFamily(k)
        self.log_k = self.mds.log_k
        # |Term| = 4k + 12 log k, target tree size 4k + 16 log k + 1
        self.target_edges = 4 * k + 16 * self.log_k + 1
        self.crossing_pairs = [
            (fvert("A1", 0), fvert("B1", 0)),
            (tvert("A1", 0), tvert("B1", 0)),
        ]

    @property
    def k_bits(self) -> int:
        return self.mds.k_bits

    def terminals(self) -> List[Vertex]:
        return self.mds.fixed_graph().vertices()

    def build_skeleton(self) -> Graph:
        # doubled-graph transform of the (input-free) MDS skeleton
        base = self.mds.skeleton()
        g = Graph()
        originals = base.vertices()
        for v in originals:
            g.add_vertex(v)
            g.add_vertex(copy_of(v))
            g.add_edge(copy_of(v), v)                      # identity
        for u, v in base.edges():
            g.add_edge(copy_of(u), v)                       # original
            g.add_edge(copy_of(v), u)
        va = self.mds.alice_vertices()
        g.add_clique(copy_of(v) for v in originals if v in va)      # cliques
        g.add_clique(copy_of(v) for v in originals if v not in va)
        for u, v in self.crossing_pairs:                    # crossing
            g.add_edge(copy_of(u), copy_of(v))
        return g

    def apply_inputs(self, g: Graph, x: Sequence[int], y: Sequence[int]) -> None:
        # the doubled image of the MDS input edges {u, v}: (ũ, v), (ṽ, u)
        k = self.k
        for i in range(k):
            for j in range(k):
                if x[i * k + j]:
                    u, v = row("A1", i), row("A2", j)
                    g.add_edge(copy_of(u), v)
                    g.add_edge(copy_of(v), u)
                if y[i * k + j]:
                    u, v = row("B1", i), row("B2", j)
                    g.add_edge(copy_of(u), v)
                    g.add_edge(copy_of(v), u)

    def alice_vertices(self) -> Set[Vertex]:
        va = self.mds.alice_vertices()
        return va | {copy_of(v) for v in va}

    # ------------------------------------------------------------------
    def _base_graph_from(self, graph: Graph) -> Graph:
        """Recover G_{x,y} (the MDS graph) from a built G'_{x,y}."""
        base = Graph()
        originals = [v for v in graph.vertices()
                     if not (isinstance(v, tuple) and v and v[0] == "copy")]
        base.add_vertices(originals)
        original_set = set(originals)
        for u, v in graph.edges():
            cu = isinstance(u, tuple) and u and u[0] == "copy"
            cv = isinstance(v, tuple) and v and v[0] == "copy"
            if cu != cv:
                plain_u = u[1] if cu else u
                plain_v = v[1] if cv else v
                if plain_u != plain_v and plain_u in original_set \
                        and plain_v in original_set:
                    base.add_edge(plain_u, plain_v)
        return base

    def min_steiner_size(self, graph: Graph,
                         budget: Optional[int] = None) -> Optional[int]:
        """Exact minimum Steiner tree size via the structured reduction.

        Returns the size, or None if it exceeds the domination ``budget``
        (budget counts |X|, the copies used).
        """
        base = self._base_graph_from(graph)
        va = self.mds.alice_vertices()
        vb = set(base.vertices()) - va
        dom_budget = float("inf") if budget is None else budget + 0.5
        best = float("inf")
        cases = [
            {"candidates": va},
            {"candidates": vb},
            {"forced": list(self.crossing_pairs[0])},
            {"forced": list(self.crossing_pairs[1])},
        ]
        for case in cases:
            weight, picked = constrained_min_dominating_set(
                base, budget=min(dom_budget, best), **case)
            if picked is not None:
                best = min(best, len(picked))
        if best == float("inf"):
            return None
        return len(base.vertices()) - 1 + int(best)

    def predicate(self, graph: Graph) -> bool:
        """P: a Steiner tree with exactly 4k + 16·log k + 1 edges exists
        (iff DISJ(x, y) = FALSE)."""
        size = self.min_steiner_size(graph, budget=4 * self.log_k + 2)
        return size is not None and size <= self.target_edges

    # ------------------------------------------------------------------
    def witness_steiner_tree(self, x: Sequence[int], y: Sequence[int],
                             ) -> List[Tuple[Vertex, Vertex]]:
        """The constructive half of Claim 2.8: an explicit Steiner tree of
        size 4k + 16·log k + 1 for intersecting inputs."""
        dom = self.mds.witness_dominating_set(x, y)
        graph = self.build(x, y)
        base = self.mds.build(x, y)
        va = self.mds.alice_vertices()
        da = [v for v in dom if v in va]
        db = [v for v in dom if v not in va]
        # find the crossing pair inside the witness
        pair = next(p for p in self.crossing_pairs
                    if p[0] in dom and p[1] in dom)
        edges: List[Tuple[Vertex, Vertex]] = []
        # star each side's copies on its crossing endpoint (clique edges)
        for side, anchor in ((da, pair[0]), (db, pair[1])):
            for v in side:
                if v != anchor:
                    edges.append((copy_of(anchor), copy_of(v)))
        edges.append((copy_of(pair[0]), copy_of(pair[1])))
        # attach every terminal as a leaf to one dominating copy
        dom_set = set(dom)
        for v in base.vertices():
            if v in dom_set:
                edges.append((copy_of(v), v))
            else:
                u = next(u for u in base.neighbors(v) if u in dom_set)
                edges.append((copy_of(u), v))
        assert len(edges) == self.target_edges, len(edges)
        assert is_steiner_tree(graph, edges, self.terminals())
        return edges
