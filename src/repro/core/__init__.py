"""The paper's primary contribution: lower-bound graph families.

Each submodule implements one of the constructions (Figures 1-7 and the
Section 3/4 reductions) as a :class:`~repro.core.family.LowerBoundGraphFamily`
that can be built, validated against Definition 1.1, and checked against
its carrying lemma with the exact solvers.
"""

from repro.core.family import (
    LowerBoundGraphFamily,
    FamilyValidationError,
    validate_family,
    verify_iff,
    theorem_1_1_bound,
)

__all__ = [
    "LowerBoundGraphFamily",
    "FamilyValidationError",
    "validate_family",
    "verify_iff",
    "theorem_1_1_bound",
]
