"""The Figure 1 family: minimum dominating set (Theorem 2.1, Lemma 2.1).

Construction (Section 2.1).  k a power of two; K = k².  Four rows of k
vertices A1, A2, B1, B2.  For each row-set S and bit position
h ∈ [log k], three bit-gadget vertices f^h_S, t^h_S, u^h_S; for each
side-index ℓ ∈ {1,2} and h, the 6-cycle
(f^h_{Aℓ}, t^h_{Aℓ}, u^h_{Aℓ}, f^h_{Bℓ}, t^h_{Bℓ}, u^h_{Bℓ}).  Row vertex
s^i is adjacent to bin(s^i) = {f^h : i_h = 0} ∪ {t^h : i_h = 1} of its own
set.  Input edges: (a^i_1, a^j_2) iff x_{i,j} = 1 and (b^i_1, b^j_2) iff
y_{i,j} = 1.

Lemma 2.1: G_{x,y} has a dominating set of size 4·log k + 2 iff
DISJ(x, y) = FALSE.  n = Θ(k), |Ecut| = Θ(log k), so Theorem 1.1 yields
Ω(n² / log² n) rounds for exact MDS (Theorem 2.1).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Set, Tuple

from repro.core.family import LowerBoundGraphFamily
from repro.graphs import Graph, Vertex
from repro.solvers.dominating import has_dominating_set_of_size, is_dominating_set

SETS = ("A1", "A2", "B1", "B2")


def _check_power_of_two(k: int) -> int:
    if k < 2 or k & (k - 1):
        raise ValueError(f"k must be a power of two >= 2, got {k}")
    return k.bit_length() - 1


def row(set_name: str, i: int) -> Vertex:
    return ("row", set_name, i)


def fvert(set_name: str, h: int) -> Vertex:
    return ("f", set_name, h)


def tvert(set_name: str, h: int) -> Vertex:
    return ("t", set_name, h)


def uvert(set_name: str, h: int) -> Vertex:
    return ("u", set_name, h)


def bin_set(set_name: str, i: int, log_k: int) -> List[Vertex]:
    """bin(s^i): f^h for zero bits of i, t^h for one bits."""
    out = []
    for h in range(log_k):
        if (i >> h) & 1:
            out.append(tvert(set_name, h))
        else:
            out.append(fvert(set_name, h))
    return out


def cobin_set(set_name: str, i: int, log_k: int) -> List[Vertex]:
    """The complement coding bin̄(s^i): f^h for one bits, t^h for zero bits."""
    out = []
    for h in range(log_k):
        if (i >> h) & 1:
            out.append(fvert(set_name, h))
        else:
            out.append(tvert(set_name, h))
    return out


class MdsFamily(LowerBoundGraphFamily):
    """Figure 1 / Theorem 2.1 lower-bound family for exact MDS."""

    cli_name = "mds"

    def __init__(self, k: int) -> None:
        self.k = k
        self.log_k = _check_power_of_two(k)
        self.target_size = 4 * self.log_k + 2

    @property
    def k_bits(self) -> int:
        return self.k * self.k

    # ------------------------------------------------------------------
    def build_skeleton(self) -> Graph:
        g = Graph()
        k, log_k = self.k, self.log_k
        for s in SETS:
            g.add_vertices(row(s, i) for i in range(k))
            g.add_vertices(fvert(s, h) for h in range(log_k))
            g.add_vertices(tvert(s, h) for h in range(log_k))
            g.add_vertices(uvert(s, h) for h in range(log_k))
        # 6-cycles per (ℓ, h)
        for ell in ("1", "2"):
            a, b = "A" + ell, "B" + ell
            for h in range(log_k):
                cycle = [fvert(a, h), tvert(a, h), uvert(a, h),
                         fvert(b, h), tvert(b, h), uvert(b, h)]
                for i in range(6):
                    g.add_edge(cycle[i], cycle[(i + 1) % 6])
        # binary-coding edges
        for s in SETS:
            for i in range(k):
                for v in bin_set(s, i, log_k):
                    g.add_edge(row(s, i), v)
        return g

    def apply_inputs(self, g: Graph, x: Sequence[int], y: Sequence[int]) -> None:
        k = self.k
        for i in range(k):
            for j in range(k):
                if x[i * k + j]:
                    g.add_edge(row("A1", i), row("A2", j))
                if y[i * k + j]:
                    g.add_edge(row("B1", i), row("B2", j))

    def alice_vertices(self) -> Set[Vertex]:
        va: Set[Vertex] = set()
        for s in ("A1", "A2"):
            va.update(row(s, i) for i in range(self.k))
            va.update(fvert(s, h) for h in range(self.log_k))
            va.update(tvert(s, h) for h in range(self.log_k))
            va.update(uvert(s, h) for h in range(self.log_k))
        return va

    def predicate(self, graph: Graph) -> bool:
        """P: a dominating set of size 4·log k + 2 exists (holds iff
        DISJ(x, y) = FALSE, so use ``verify_iff(..., negate=True)``)."""
        return has_dominating_set_of_size(graph, self.target_size)

    def make_batch_kernel(self, skeleton: Graph):
        """Ball masks of the fixed gadget once; each pair patches the
        few neighbourhoods its input edges touch (bit p = i·k + j adds
        row edge (s^i_1, s^j_2), matching :meth:`apply_inputs`)."""
        from repro.solvers.batch_kernels import DominationBatchKernel
        k = self.k
        x_edges = [(row("A1", i), row("A2", j))
                   for i in range(k) for j in range(k)]
        y_edges = [(row("B1", i), row("B2", j))
                   for i in range(k) for j in range(k)]
        return DominationBatchKernel(skeleton, x_edges, y_edges,
                                     self.target_size)

    # ------------------------------------------------------------------
    def witness_dominating_set(self, x: Sequence[int], y: Sequence[int],
                               ) -> List[Vertex]:
        """The constructive half of Lemma 2.1: for intersecting inputs,
        the explicit dominating set of size 4·log k + 2."""
        k, log_k = self.k, self.log_k
        idx = next(p for p in range(k * k) if x[p] == 1 and y[p] == 1)
        i, j = divmod(idx, k)
        witness = [row("A1", i), row("B1", i)]
        witness += cobin_set("A1", i, log_k)
        witness += cobin_set("B1", i, log_k)
        witness += cobin_set("A2", j, log_k)
        witness += cobin_set("B2", j, log_k)
        assert len(witness) == self.target_size
        graph = self.build(x, y)
        assert is_dominating_set(graph, witness), "witness fails to dominate"
        return witness
