"""A CKP-style MVC / MaxIS lower-bound family (the base of Sections 3-4).

Sections 3.2 and 4.1 build on the vertex-cover family of [10]
(Censor-Hillel, Khoury, Paz 2017), which this paper uses but does not
restate.  We implement a faithful equivalent with the same interface
(see DESIGN.md, substitutions):

- rows A1, A2, B1, B2, each a k-clique;
- per set S and bit h, gadget vertices f^h_S and t^h_S; per (h, ℓ) the
  4-cycle f^h_{Aℓ} – t^h_{Aℓ} – f^h_{Bℓ} – t^h_{Bℓ} – f^h_{Aℓ}, whose
  maximum independent sets are exactly the *consistent* pairs
  {f^h_{Aℓ}, f^h_{Bℓ}} and {t^h_{Aℓ}, t^h_{Bℓ}};
- row s^i adjacent to the complement coding cobin(s^i) = {f^h : i_h = 1}
  ∪ {t^h : i_h = 0}, so s^i is compatible exactly with the gadget pairs
  spelling i;
- input edges (a^i_1, a^j_2) iff x_{i,j} = 0 and (b^i_1, b^j_2) iff
  y_{i,j} = 0 (an *absent* edge lets both rows join the IS);
- two low-degree connectors: c_A adjacent to a⁰_1 and a⁰_2 with a
  pendant p_A, and symmetrically c_B, p_B.  They make the graph
  connected with constant diameter; by the standard pendant-swap
  argument they shift α by exactly +2 and never touch the cut, and they
  keep every degree small enough for the Section 3 expander gadgets to
  be exactly verifiable.

Then α(G_{x,y}) = 4·log k + 6 iff DISJ(x, y) = FALSE, and otherwise
α ≤ 4·log k + 5 (dense inputs, which add many edges, can push α lower
still — the iff is what the reduction uses).  Equivalently
MVC = n − α.  n = Θ(k), |Ecut| = Θ(log k), row degrees Θ(n), diameter
O(1) — the exact interface Section 3.2 requires of the [10]
construction.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.core.family import LowerBoundGraphFamily
from repro.core.mds import _check_power_of_two
from repro.graphs import Graph, Vertex
from repro.solvers.mis import is_independent_set, max_independent_set

SETS = ("A1", "A2", "B1", "B2")
W_A = ("conn", "A")
W_B = ("conn", "B")
WP_A = ("pendant", "A")
WP_B = ("pendant", "B")


def row(set_name: str, i: int) -> Vertex:
    return ("row", set_name, i)


def fvert(set_name: str, h: int) -> Vertex:
    return ("f", set_name, h)


def tvert(set_name: str, h: int) -> Vertex:
    return ("t", set_name, h)


def cobin(set_name: str, i: int, log_k: int) -> List[Vertex]:
    """cobin(s^i): f^h for one bits, t^h for zero bits (conflict coding)."""
    return [fvert(set_name, h) if (i >> h) & 1 else tvert(set_name, h)
            for h in range(log_k)]


def bin_pairs(set_name: str, i: int, log_k: int) -> List[Vertex]:
    """The gadget vertices compatible with s^i: f^h for zero bits, t^h
    for one bits."""
    return [tvert(set_name, h) if (i >> h) & 1 else fvert(set_name, h)
            for h in range(log_k)]


class MvcMaxISFamily(LowerBoundGraphFamily):
    """CKP-style family: α = 4·log k + 6 iff DISJ = FALSE."""

    cli_name = "mvc"

    def __init__(self, k: int) -> None:
        self.k = k
        self.log_k = _check_power_of_two(k)
        self.alpha_yes = 4 * self.log_k + 6
        #: upper bound on α for DISJOINT inputs (attained by sparse ones)
        self.alpha_no = 4 * self.log_k + 5

    @property
    def k_bits(self) -> int:
        return self.k * self.k

    @property
    def mvc_target(self) -> int:
        return self.n_vertices() - self.alpha_yes

    # ------------------------------------------------------------------
    def build_skeleton(self) -> Graph:
        g = Graph()
        k, log_k = self.k, self.log_k
        for s in SETS:
            g.add_clique(row(s, i) for i in range(k))
            g.add_vertices(fvert(s, h) for h in range(log_k))
            g.add_vertices(tvert(s, h) for h in range(log_k))
        for ell in ("1", "2"):
            a, b = "A" + ell, "B" + ell
            for h in range(log_k):
                cyc = [fvert(a, h), tvert(a, h), fvert(b, h), tvert(b, h)]
                for i in range(4):
                    g.add_edge(cyc[i], cyc[(i + 1) % 4])
        for s in SETS:
            for i in range(k):
                for v in cobin(s, i, log_k):
                    g.add_edge(row(s, i), v)
        # connectivity connectors + pendants (cut untouched)
        for side, w, wp in (("A", W_A, WP_A), ("B", W_B, WP_B)):
            g.add_edge(w, wp)
            g.add_edge(w, row(side + "1", 0))
            g.add_edge(w, row(side + "2", 0))
        return g

    def apply_inputs(self, g: Graph, x: Sequence[int], y: Sequence[int]) -> None:
        k = self.k
        for i in range(k):
            for j in range(k):
                if not x[i * k + j]:
                    g.add_edge(row("A1", i), row("A2", j))
                if not y[i * k + j]:
                    g.add_edge(row("B1", i), row("B2", j))

    def alice_vertices(self) -> Set[Vertex]:
        va: Set[Vertex] = {W_A, WP_A}
        for s in ("A1", "A2"):
            va.update(row(s, i) for i in range(self.k))
            va.update(fvert(s, h) for h in range(self.log_k))
            va.update(tvert(s, h) for h in range(self.log_k))
        return va

    def predicate(self, graph: Graph) -> bool:
        """P: α(G) = 4·log k + 6 (iff DISJ = FALSE)."""
        return len(max_independent_set(graph)) >= self.alpha_yes

    # ------------------------------------------------------------------
    def witness_independent_set(self, x: Sequence[int], y: Sequence[int],
                                ) -> List[Vertex]:
        """The explicit MaxIS of size 4·log k + 6 for intersecting inputs."""
        k, log_k = self.k, self.log_k
        idx = next(p for p in range(k * k) if x[p] == 1 and y[p] == 1)
        i, j = divmod(idx, k)
        witness = [row("A1", i), row("B1", i), row("A2", j), row("B2", j),
                   WP_A, WP_B]
        for s, val in (("A1", i), ("B1", i), ("A2", j), ("B2", j)):
            witness += bin_pairs(s, val, log_k)
        graph = self.build(x, y)
        assert len(witness) == self.alpha_yes
        assert is_independent_set(graph, witness)
        return witness
