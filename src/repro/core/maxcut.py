"""The Figure 3 family: weighted max-cut (Theorem 2.8, Claims 2.9-2.12).

Construction (Section 2.4.1).  k a power of two; K = k².  Rows A1, A2,
B1, B2 of k vertices; per set S and bit h, vertices f^h_S and t^h_S (no u
vertices here); special vertices CA, C̄A, CB, NA, NB.

Heavy edges (weight k⁴): (CA, NA), (CB, NB), (CA, C̄A), (C̄A, CB) and,
for each z ∈ {1,2}, h, the 4-cycle (t^h_{Az}, f^h_{Az}, t^h_{Bz},
f^h_{Bz}).  Row s^j connects to Bin(s^j) = {t^h : j_h = 1} ∪
{f^h : j_h = 0} with weight 2k², and to its C-vertex with weight
2k²·log k − k².  Rows also connect to their N-vertex with
input-dependent weight: w(a^i_1, NA) = Σ_j x_{i,j}, w(a^i_2, NA) =
Σ_j x_{j,i} (similarly for B with y).  Input edges of weight 1 join
a^i_1 to a^j_2 iff x_{i,j} = 0 (and b-rows via y) — so every row's total
weight towards its opposite row-set plus its N-vertex is exactly k.

Lemma 2.4: max-cut weight ≥ M iff DISJ(x, y) = FALSE, where
M = k⁴(8·log k + 4) + k³(12·log k − 4) + 4k² + 4k.  n = Θ(k),
|Ecut| = Θ(log k); Theorem 1.1 gives Ω(n²/log² n) (Theorem 2.8).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.family import LowerBoundGraphFamily
from repro.core.mds import _check_power_of_two
from repro.graphs import Graph, Vertex
from repro.solvers.maxcut import cut_weight, max_cut

SETS = ("A1", "A2", "B1", "B2")
CA = ("special", "CA")
CA_BAR = ("special", "CA_bar")
CB = ("special", "CB")
NA = ("special", "NA")
NB = ("special", "NB")


def row(set_name: str, j: int) -> Vertex:
    return ("row", set_name, j)


def fvert(set_name: str, h: int) -> Vertex:
    return ("f", set_name, h)


def tvert(set_name: str, h: int) -> Vertex:
    return ("t", set_name, h)


def bin_vertices(set_name: str, j: int, log_k: int) -> List[Vertex]:
    """Bin(s^j): t^h for one bits of j, f^h for zero bits."""
    return [tvert(set_name, h) if (j >> h) & 1 else fvert(set_name, h)
            for h in range(log_k)]


class MaxCutFamily(LowerBoundGraphFamily):
    """Figure 3 / Theorem 2.8 family for exact weighted max-cut."""

    cli_name = "maxcut"

    def __init__(self, k: int) -> None:
        self.k = k
        self.log_k = _check_power_of_two(k)

    @property
    def k_bits(self) -> int:
        return self.k * self.k

    @property
    def heavy(self) -> int:
        return self.k ** 4

    @property
    def target_weight(self) -> int:
        """M of Theorem 2.8."""
        k, log_k = self.k, self.log_k
        return (k ** 4 * (8 * log_k + 4) + k ** 3 * (12 * log_k - 4)
                + 4 * k ** 2 + 4 * k)

    @property
    def fixed_cut_part(self) -> int:
        """M' of Claim 2.12 (cut weight outside the row/N edges)."""
        return self.target_weight - 4 * self.k

    # ------------------------------------------------------------------
    def build_skeleton(self) -> Graph:
        g = Graph()
        k, log_k = self.k, self.log_k
        heavy = self.heavy
        for s in SETS:
            g.add_vertices(row(s, j) for j in range(k))
            g.add_vertices(fvert(s, h) for h in range(log_k))
            g.add_vertices(tvert(s, h) for h in range(log_k))
        g.add_vertices([CA, CA_BAR, CB, NA, NB])
        g.add_edge(CA, NA, weight=heavy)
        g.add_edge(CB, NB, weight=heavy)
        g.add_edge(CA, CA_BAR, weight=heavy)
        g.add_edge(CA_BAR, CB, weight=heavy)
        for z in ("1", "2"):
            a, b = "A" + z, "B" + z
            for h in range(log_k):
                cyc = [tvert(a, h), fvert(a, h), tvert(b, h), fvert(b, h)]
                for i in range(4):
                    g.add_edge(cyc[i], cyc[(i + 1) % 4], weight=heavy)
        for s in SETS:
            cvert = CA if s.startswith("A") else CB
            for j in range(k):
                for v in bin_vertices(s, j, log_k):
                    g.add_edge(row(s, j), v, weight=2 * k * k)
                g.add_edge(row(s, j), cvert,
                           weight=2 * k * k * log_k - k * k)
        return g

    def apply_inputs(self, g: Graph, x: Sequence[int], y: Sequence[int]) -> None:
        k = self.k
        for i in range(k):
            for j in range(k):
                if not x[i * k + j]:
                    g.add_edge(row("A1", i), row("A2", j), weight=1)
                if not y[i * k + j]:
                    g.add_edge(row("B1", i), row("B2", j), weight=1)
        # the N-edges exist for every input (their weight may be 0)
        for i in range(k):
            g.add_edge(row("A1", i), NA,
                       weight=sum(x[i * k + j] for j in range(k)))
            g.add_edge(row("A2", i), NA,
                       weight=sum(x[j * k + i] for j in range(k)))
            g.add_edge(row("B1", i), NB,
                       weight=sum(y[i * k + j] for j in range(k)))
            g.add_edge(row("B2", i), NB,
                       weight=sum(y[j * k + i] for j in range(k)))

    def alice_vertices(self) -> Set[Vertex]:
        va: Set[Vertex] = {CA, CA_BAR, NA}
        for s in ("A1", "A2"):
            va.update(row(s, j) for j in range(self.k))
            va.update(fvert(s, h) for h in range(self.log_k))
            va.update(tvert(s, h) for h in range(self.log_k))
        return va

    def predicate(self, graph: Graph) -> bool:
        """P: a cut of weight ≥ M exists (iff DISJ(x, y) = FALSE).

        Exact; limited to k = 2 instances (n = 21) by the solver."""
        value, __ = max_cut(graph)
        return value >= self.target_weight

    def make_batch_kernel(self, skeleton: Graph):
        """Collapse the skeleton's cut landscape onto the delta-touched
        vertices (the 4k rows plus NA/NB) once; a pair is then a numpy
        row over the 2^(4k+2) delta assignments.  ``delta_edges_fn``
        must mirror :meth:`apply_inputs` exactly — weight-1 row edges on
        *zero* bits, N-edge weights from the row sums."""
        from repro.solvers.batch_kernels import ThresholdCutBatchKernel
        k = self.k
        delta_vertices = ([row(s, j) for s in SETS for j in range(k)]
                          + [NA, NB])

        def delta_edges(x, y):
            edges = []
            for i in range(k):
                for j in range(k):
                    if not x[i * k + j]:
                        edges.append((row("A1", i), row("A2", j), 1))
                    if not y[i * k + j]:
                        edges.append((row("B1", i), row("B2", j), 1))
            for i in range(k):
                edges.append((row("A1", i), NA,
                              sum(x[i * k + j] for j in range(k))))
                edges.append((row("A2", i), NA,
                              sum(x[j * k + i] for j in range(k))))
                edges.append((row("B1", i), NB,
                              sum(y[i * k + j] for j in range(k))))
                edges.append((row("B2", i), NB,
                              sum(y[j * k + i] for j in range(k))))
            return edges

        try:
            return ThresholdCutBatchKernel(skeleton, delta_vertices,
                                           self.target_weight, delta_edges)
        except (ImportError, ValueError):
            return None  # no numpy / out-of-range k: per-pair fallback

    # ------------------------------------------------------------------
    def witness_side(self, x: Sequence[int], y: Sequence[int]) -> List[Vertex]:
        """The constructive half of Lemma 2.4: for intersecting inputs, an
        explicit S with cut weight ≥ M (checked)."""
        k, log_k = self.k, self.log_k
        idx = next(p for p in range(k * k) if x[p] == 1 and y[p] == 1)
        j1, j2 = divmod(idx, k)
        side: List[Vertex] = [row("A1", j1), row("B1", j1),
                              row("A2", j2), row("B2", j2), CA, CB]
        for s, j in (("A1", j1), ("B1", j1), ("A2", j2), ("B2", j2)):
            chosen = set(bin_vertices(s, j, log_k))
            for h in range(log_k):
                for v in (fvert(s, h), tvert(s, h)):
                    if v not in chosen:
                        side.append(v)
        graph = self.build(x, y)
        weight = cut_weight(graph, side)
        assert weight >= self.target_weight, (weight, self.target_weight)
        return side

    def structural_claims_hold(self, side: Sequence[Vertex],
                               graph: Graph) -> bool:
        """Check Claims 2.9-2.11 on a (claimed optimal) cut side S.

        Normalizes so CA ∈ S, then checks the special-vertex placement,
        the f/t consistency across the cut gadget, the row/Bin coupling,
        and the unique-selected-row property.
        """
        s: Set[Vertex] = set(side)
        if CA not in s:
            s = set(graph.vertices()) - s
        # Claim 2.9
        if CB not in s or s & {NA, NB, CA_BAR}:
            return False
        for z in ("1", "2"):
            for h in range(self.log_k):
                t_a, f_a = tvert("A" + z, h) in s, fvert("A" + z, h) in s
                t_b, f_b = tvert("B" + z, h) in s, fvert("B" + z, h) in s
                if not (t_a == t_b and f_a == f_b and t_a != f_a):
                    return False
        # Claims 2.10 / 2.11
        for z in ("1", "2"):
            selected_a = []
            for j in range(self.k):
                in_s = row("A" + z, j) in s
                bin_hit = bool(set(bin_vertices("A" + z, j, self.log_k)) & s)
                if in_s == bin_hit:
                    return False
                if in_s != (row("B" + z, j) in s):
                    return False
                if in_s:
                    selected_a.append(j)
            if len(selected_a) != 1:
                return False
        return True
