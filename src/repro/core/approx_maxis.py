"""Section 4.1: hardness of approximating MaxIS (Theorems 4.1-4.3).

The code gadget.  Parameters: k (a power of two) rows per set, t = log k,
ℓ ≈ log²k chosen so that q = ℓ + t + 1 is prime, and a Reed-Solomon code
C with parameters (ℓ+t, t, ℓ+1, q).  Each row vertex S^i is represented
by the codeword g(i); distinct rows differ in ≥ ℓ coordinates, which is
what turns the ±1 slack of the exact constructions into a Θ(ℓ) gap.

Weighted family (Theorem 4.3): rows A1, A2, B1, B2 are k-cliques of
weight-ℓ vertices.  Per set S, coordinate j ∈ [ℓ+t] and symbol α ∈ F_q a
weight-1 gadget vertex α^S_j; row(j, S) is a clique; row(j, Az) and
row(j, Bz) are joined by a complete bipartite graph minus the perfect
matching (same-α pairs stay independent).  S^i is adjacent to every
gadget vertex of its set *except* its own codeword positions.  Input
edges (a^i_1, a^{i'}_2) iff x_{i,i'} = 0 (and b-rows via y).

Lemma 4.1:  max-weight IS = 8ℓ + 4t iff DISJ = FALSE, else ≤ 7ℓ + 4t
(the ceiling is attained whenever a player's input contains a 1) —
a 7/8 + ε gap with |Ecut| = O((ℓ+t)²) = O(log⁴ n), giving Ω̃(n²)
(Theorem 4.3).  The unweighted family (Theorem 4.1) blows each row
vertex up into a batch of ℓ unit-weight twins.  The linear family
(Theorem 4.2) drops the A1/B1 side for batches batch(v_A), batch(v_B)
joined to the remaining rows by DISJ_k, giving a 5/6 + ε gap at Ω̃(n).

Verification: the structured exact solver below enumerates the ≤ 1
row-per-clique choices and solves each gadget column independently
(justified by Claim 4.1, which tests re-verify against the generic
branch-and-bound solver on the smallest instances).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.codes.gf import PrimeField, next_prime
from repro.codes.reed_solomon import ReedSolomonCode
from repro.core.family import LowerBoundGraphFamily
from repro.core.mds import _check_power_of_two
from repro.graphs import Graph, Vertex

SETS = ("A1", "A2", "B1", "B2")


def row(set_name: str, i: int) -> Vertex:
    return ("row", set_name, i)


def batch_row(set_name: str, i: int, xi: int) -> Vertex:
    return ("batch", set_name, i, xi)


def gadget(set_name: str, j: int, alpha: int) -> Vertex:
    return ("cg", set_name, j, alpha)


def choose_code_params(k: int) -> Tuple[int, int, int]:
    """Pick (ℓ, t, q): t = log k, ℓ the smallest value ≥ max(2, log²k)
    with q = ℓ + t + 1 prime (the paper fixes q = ℓ + t + 1 and adjusts
    the constant in ℓ = c·log²k)."""
    log_k = _check_power_of_two(k)
    t = log_k
    ell = max(2, log_k * log_k)
    while not _is_prime(ell + t + 1):
        ell += 1
    return ell, t, ell + t + 1


def _is_prime(n: int) -> bool:
    from repro.codes.gf import is_prime

    return is_prime(n)


class WeightedApproxMaxISFamily(LowerBoundGraphFamily):
    """Theorem 4.3 family: (7/8 + ε)-approximate weighted MaxIS."""

    cli_name = "approx-maxis"

    def __init__(self, k: int) -> None:
        self.k = k
        self.ell, self.t, self.q = choose_code_params(k)
        self.field = PrimeField(self.q)
        self.code = ReedSolomonCode(self.field, n=self.ell + self.t, k=self.t)
        if self.code.size < k:
            raise ValueError("code too small to name all rows")
        self.codewords = [self.code.encode_int(i) for i in range(k)]
        self.alpha_yes = 8 * self.ell + 4 * self.t
        #: ceiling for DISJOINT inputs (attained when some x- or y-bit is 1)
        self.alpha_no = 7 * self.ell + 4 * self.t

    @property
    def k_bits(self) -> int:
        return self.k * self.k

    @property
    def n_coords(self) -> int:
        return self.ell + self.t

    # ------------------------------------------------------------------
    def build_skeleton(self) -> Graph:
        g = Graph()
        k = self.k
        for s in SETS:
            g.add_clique([row(s, i) for i in range(k)])
            for i in range(k):
                g.set_vertex_weight(row(s, i), self.ell)
            for j in range(self.n_coords):
                col = [gadget(s, j, a) for a in range(self.q)]
                g.add_clique(col)
                for v in col:
                    g.set_vertex_weight(v, 1)
        # complete bipartite minus perfect matching between matching columns
        for z in ("1", "2"):
            a, b = "A" + z, "B" + z
            for j in range(self.n_coords):
                for alpha in range(self.q):
                    for alpha2 in range(self.q):
                        if alpha != alpha2:
                            g.add_edge(gadget(a, j, alpha), gadget(b, j, alpha2))
        # rows to everything except their own codeword
        for s in SETS:
            for i in range(k):
                word = self.codewords[i]
                for j in range(self.n_coords):
                    for alpha in range(self.q):
                        if alpha != word[j]:
                            g.add_edge(row(s, i), gadget(s, j, alpha))
        return g

    def apply_inputs(self, g: Graph, x: Sequence[int], y: Sequence[int]) -> None:
        k = self.k
        for i in range(k):
            for i2 in range(k):
                if not x[i * k + i2]:
                    g.add_edge(row("A1", i), row("A2", i2))
                if not y[i * k + i2]:
                    g.add_edge(row("B1", i), row("B2", i2))

    def alice_vertices(self) -> Set[Vertex]:
        va: Set[Vertex] = set()
        for s in ("A1", "A2"):
            va.update(row(s, i) for i in range(self.k))
            va.update(gadget(s, j, a) for j in range(self.n_coords)
                      for a in range(self.q))
        return va

    # ------------------------------------------------------------------
    # structured exact solver (Claim 4.1 + Lemma 4.1 decomposition)
    # ------------------------------------------------------------------
    def structured_max_weight(self, graph: Graph) -> int:
        """Exact maximum weight of an independent set of a family graph.

        Enumerates one-or-no row per clique; given the row choices the
        gadget columns decompose independently, each contributing 2 if
        the allowed symbol sets on the two sides intersect, else 1.
        """
        k = self.k
        choices = list(range(k)) + [None]
        best = 0
        for ia1 in choices:
            for ia2 in choices:
                if ia1 is not None and ia2 is not None \
                        and graph.has_edge(row("A1", ia1), row("A2", ia2)):
                    continue
                for ib1 in choices:
                    for ib2 in choices:
                        if ib1 is not None and ib2 is not None \
                                and graph.has_edge(row("B1", ib1),
                                                   row("B2", ib2)):
                            continue
                        val = self._value_for(ia1, ia2, ib1, ib2)
                        if val > best:
                            best = val
        return best

    def _value_for(self, ia1: Optional[int], ia2: Optional[int],
                   ib1: Optional[int], ib2: Optional[int]) -> int:
        rows_taken = sum(v is not None for v in (ia1, ia2, ib1, ib2))
        total = self.ell * rows_taken
        for a_row, b_row in ((ia1, ib1), (ia2, ib2)):
            for j in range(self.n_coords):
                a_sym = None if a_row is None else self.codewords[a_row][j]
                b_sym = None if b_row is None else self.codewords[b_row][j]
                if a_sym is None or b_sym is None or a_sym == b_sym:
                    total += 2
                else:
                    total += 1
        return total

    def predicate(self, graph: Graph) -> bool:
        """P: a weighted IS of weight 8ℓ + 4t exists (iff DISJ = FALSE)."""
        return self.structured_max_weight(graph) >= self.alpha_yes

    def gap_ratio(self) -> float:
        """The inapproximability ratio (7ℓ+4t)/(8ℓ+4t) → 7/8."""
        return self.alpha_no / self.alpha_yes


class UnweightedApproxMaxISFamily(WeightedApproxMaxISFamily):
    """Theorem 4.1: replace each row vertex by a batch of ℓ unit twins."""

    cli_name = "approx-maxis-unweighted"

    def build_skeleton(self) -> Graph:
        weighted = super().build_skeleton()
        g = Graph()

        def copies(v: Vertex) -> List[Vertex]:
            if isinstance(v, tuple) and v[0] == "row":
                return [batch_row(v[1], v[2], xi) for xi in range(self.ell)]
            return [v]

        for v in weighted.vertices():
            for c in copies(v):
                g.add_vertex(c, weight=1)
        for u, v in weighted.edges():
            for cu in copies(u):
                for cv in copies(v):
                    g.add_edge(cu, cv)
        return g

    def apply_inputs(self, g: Graph, x: Sequence[int], y: Sequence[int]) -> None:
        # the blown-up image of the weighted input edges: ℓ×ℓ twin pairs
        k, ell = self.k, self.ell
        for i in range(k):
            for i2 in range(k):
                if not x[i * k + i2]:
                    for cu in range(ell):
                        for cv in range(ell):
                            g.add_edge(batch_row("A1", i, cu),
                                       batch_row("A2", i2, cv))
                if not y[i * k + i2]:
                    for cu in range(ell):
                        for cv in range(ell):
                            g.add_edge(batch_row("B1", i, cu),
                                       batch_row("B2", i2, cv))

    def alice_vertices(self) -> Set[Vertex]:
        va: Set[Vertex] = set()
        for s in ("A1", "A2"):
            va.update(batch_row(s, i, xi)
                      for i in range(self.k) for xi in range(self.ell))
            va.update(gadget(s, j, a) for j in range(self.n_coords)
                      for a in range(self.q))
        return va

    def structured_max_weight(self, graph: Graph) -> int:
        """Batches behave exactly like weight-ℓ vertices (all twins share
        their neighbourhood), so the weighted enumeration carries over;
        row-row adjacency is read off the batch representatives."""
        k = self.k
        choices = list(range(k)) + [None]
        best = 0
        for ia1 in choices:
            for ia2 in choices:
                if ia1 is not None and ia2 is not None and graph.has_edge(
                        batch_row("A1", ia1, 0), batch_row("A2", ia2, 0)):
                    continue
                for ib1 in choices:
                    for ib2 in choices:
                        if ib1 is not None and ib2 is not None \
                                and graph.has_edge(batch_row("B1", ib1, 0),
                                                   batch_row("B2", ib2, 0)):
                            continue
                        val = self._value_for(ia1, ia2, ib1, ib2)
                        if val > best:
                            best = val
        return best


class LinearApproxMaxISFamily(LowerBoundGraphFamily):
    """Theorem 4.2: a (5/6 + ε) gap already at Ω̃(n), from DISJ_k.

    Only the A2/B2 sides and their code gadgets remain; batches
    batch(v_A), batch(v_B) connect to a^i_2 / b^i_2 iff x_i = 0 / y_i = 0.
    Max IS = 6ℓ + 2t iff DISJ_k(x, y) = FALSE, else ≤ 5ℓ + 2t.
    """

    V_A = "vA"
    V_B = "vB"

    cli_name = "approx-maxis-linear"

    def __init__(self, k: int) -> None:
        self.k = k
        self.ell, self.t, self.q = choose_code_params(k)
        self.field = PrimeField(self.q)
        self.code = ReedSolomonCode(self.field, n=self.ell + self.t, k=self.t)
        self.codewords = [self.code.encode_int(i) for i in range(k)]
        self.alpha_yes = 6 * self.ell + 2 * self.t
        #: ceiling for DISJOINT inputs
        self.alpha_no = 5 * self.ell + 2 * self.t

    @property
    def k_bits(self) -> int:
        return self.k

    @property
    def n_coords(self) -> int:
        return self.ell + self.t

    def _batch(self, tag: str) -> List[Vertex]:
        return [("batch", tag, xi) for xi in range(self.ell)]

    def build_skeleton(self) -> Graph:
        g = Graph()
        k = self.k
        for s in ("A2", "B2"):
            g.add_clique([row(s, i) for i in range(k)])
            for i in range(k):
                g.set_vertex_weight(row(s, i), self.ell)
            for j in range(self.n_coords):
                col = [gadget(s, j, a) for a in range(self.q)]
                g.add_clique(col)
                for v in col:
                    g.set_vertex_weight(v, 1)
            for i in range(k):
                word = self.codewords[i]
                for j in range(self.n_coords):
                    for alpha in range(self.q):
                        if alpha != word[j]:
                            g.add_edge(row(s, i), gadget(s, j, alpha))
        for j in range(self.n_coords):
            for alpha in range(self.q):
                for alpha2 in range(self.q):
                    if alpha != alpha2:
                        g.add_edge(gadget("A2", j, alpha),
                                   gadget("B2", j, alpha2))
        for v in self._batch(self.V_A) + self._batch(self.V_B):
            g.add_vertex(v, weight=1)
        return g

    def apply_inputs(self, g: Graph, x: Sequence[int], y: Sequence[int]) -> None:
        for i in range(self.k):
            if not x[i]:
                for v in self._batch(self.V_A):
                    g.add_edge(v, row("A2", i))
            if not y[i]:
                for v in self._batch(self.V_B):
                    g.add_edge(v, row("B2", i))

    def alice_vertices(self) -> Set[Vertex]:
        va: Set[Vertex] = set(self._batch(self.V_A))
        va.update(row("A2", i) for i in range(self.k))
        va.update(gadget("A2", j, a) for j in range(self.n_coords)
                  for a in range(self.q))
        return va

    def structured_max_weight(self, graph: Graph) -> int:
        choices = list(range(self.k)) + [None]
        best = 0
        for ia in choices:
            for take_va in (False, True):
                if take_va and ia is not None and graph.has_edge(
                        ("batch", self.V_A, 0), row("A2", ia)):
                    continue
                for ib in choices:
                    for take_vb in (False, True):
                        if take_vb and ib is not None and graph.has_edge(
                                ("batch", self.V_B, 0), row("B2", ib)):
                            continue
                        val = self.ell * (int(take_va) + int(take_vb)
                                          + (ia is not None)
                                          + (ib is not None))
                        for j in range(self.n_coords):
                            a_sym = None if ia is None else self.codewords[ia][j]
                            b_sym = None if ib is None else self.codewords[ib][j]
                            if a_sym is None or b_sym is None or a_sym == b_sym:
                                val += 2
                            else:
                                val += 1
                        best = max(best, val)
        return best

    def predicate(self, graph: Graph) -> bool:
        """P: an IS of weight 6ℓ + 2t exists (iff DISJ_k = FALSE)."""
        return self.structured_max_weight(graph) >= self.alpha_yes

    def gap_ratio(self) -> float:
        return self.alpha_no / self.alpha_yes
