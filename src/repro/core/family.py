"""Families of lower bound graphs (Definition 1.1) and Theorem 1.1.

A family is, for fixed K and n, a map (x, y) ↦ G_{x,y} over a *fixed*
vertex set with a *fixed* partition (VA, VB) such that

1. only G[VA] (edges/weights inside VA) depends on x,
2. only G[VB] depends on y,
3. the cut edge set E(VA, VB) is the same for all inputs, and
4. G_{x,y} satisfies the predicate P iff f(x, y) = TRUE.

Theorem 1.1 then gives a CONGEST round lower bound of
Ω(CC(f) / (|Ecut| · log n)) for deciding P.

:func:`validate_family` machine-checks items 1-3 on sampled inputs and
:func:`verify_iff` checks item 4 with an exact predicate decision.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.cc.functions import CCFunction, DISJ, random_input_pairs
from repro.graphs import DiGraph, Graph, Vertex

Bits = Tuple[int, ...]
AnyGraph = Union[Graph, DiGraph]


class FamilyValidationError(AssertionError):
    """A Definition 1.1 requirement failed on concrete inputs."""


class LowerBoundGraphFamily(ABC):
    """Abstract base for every construction in the paper.

    Subclasses fix K (``k_bits``), the reduced-from function
    (``function``, usually DISJ), the partition, the builder, and an
    exact predicate decision procedure.
    """

    #: the two-party function reduced from (Definition 1.1's f)
    function: CCFunction = DISJ

    @property
    @abstractmethod
    def k_bits(self) -> int:
        """Input length K of each player's bit string."""

    @abstractmethod
    def build(self, x: Sequence[int], y: Sequence[int]) -> AnyGraph:
        """Construct G_{x,y}."""

    @abstractmethod
    def alice_vertices(self) -> Set[Vertex]:
        """The fixed part VA simulated by Alice."""

    @abstractmethod
    def predicate(self, graph: AnyGraph) -> bool:
        """Decide P on a graph of this family, exactly."""

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def bob_vertices(self) -> Set[Vertex]:
        g = self.build(self.zero_input(), self.zero_input())
        return set(g.vertices()) - self.alice_vertices()

    def zero_input(self) -> Bits:
        return tuple([0] * self.k_bits)

    def cut_edges(self, graph: Optional[AnyGraph] = None) -> List[Tuple[Vertex, Vertex]]:
        if graph is None:
            graph = self.build(self.zero_input(), self.zero_input())
        va = self.alice_vertices()
        edges = graph.edges() if isinstance(graph, Graph) else list(graph.edges())
        return [(u, v) for u, v in edges if (u in va) != (v in va)]

    def n_vertices(self) -> int:
        return self.build(self.zero_input(), self.zero_input()).n

    def describe(self) -> Dict[str, Any]:
        g = self.build(self.zero_input(), self.zero_input())
        return {
            "family": type(self).__name__,
            "K": self.k_bits,
            "n": g.n,
            "m": g.m,
            "ecut": len(self.cut_edges(g)),
            "function": self.function.name,
            "implied_bound": theorem_1_1_bound(self),
        }


def theorem_1_1_bound(family: LowerBoundGraphFamily) -> float:
    """Evaluate Ω(CC(f)/(|Ecut| log n)) for a family instance (the
    constant-free value of the Theorem 1.1 round lower bound)."""
    n = family.n_vertices()
    ecut = len(family.cut_edges())
    cc = family.function.cc(family.k_bits)
    return cc / (ecut * math.log2(max(2, n)))


# ----------------------------------------------------------------------
# structural comparison helpers
# ----------------------------------------------------------------------
def _edge_key(u: Vertex, v: Vertex) -> FrozenSet:
    return frozenset((u, v))


def _signature(graph: AnyGraph, inside: Set[Vertex]) -> Dict[Any, float]:
    """Weighted edge multiset of G[inside] plus vertex weights of inside."""
    sig: Dict[Any, float] = {}
    if isinstance(graph, DiGraph):
        for (u, v), w in graph.edge_weights().items():
            if u in inside and v in inside:
                sig[("e", u, v)] = w
    else:
        for (u, v), w in graph.edge_weights().items():
            if u in inside and v in inside:
                sig[("e", _edge_key(u, v))] = w
    for v in inside:
        sig[("w", v)] = graph.vertex_weight(v)
    return sig


def _cut_signature(graph: AnyGraph, va: Set[Vertex]) -> Dict[Any, float]:
    sig: Dict[Any, float] = {}
    if isinstance(graph, DiGraph):
        for (u, v), w in graph.edge_weights().items():
            if (u in va) != (v in va):
                sig[("e", u, v)] = w
    else:
        for (u, v), w in graph.edge_weights().items():
            if (u in va) != (v in va):
                sig[("e", _edge_key(u, v))] = w
    return sig


def validate_family(
    family: LowerBoundGraphFamily,
    input_pairs: Optional[Sequence[Tuple[Bits, Bits]]] = None,
    rng: Optional[random.Random] = None,
    samples: int = 6,
) -> None:
    """Machine-check Definition 1.1's structural requirements (items 1-3).

    For sampled inputs: the vertex set is fixed; G[VA] is identical for
    equal x (any y); G[VB] is identical for equal y (any x); and the cut
    (with weights) is identical for all inputs.  Raises
    :class:`FamilyValidationError` on violation.
    """
    rng = rng or random.Random(0xC0FFEE)
    if input_pairs is None:
        input_pairs = random_input_pairs(family.k_bits, samples, rng)
    xs = [p[0] for p in input_pairs]
    ys = [p[1] for p in input_pairs]

    va = family.alice_vertices()
    base = family.build(xs[0], ys[0])
    vertex_set = set(base.vertices())
    vb = vertex_set - va
    if not va <= vertex_set:
        raise FamilyValidationError("VA is not a subset of the vertex set")
    cut_sig = _cut_signature(base, va)

    for x in xs[:3]:
        sigs = {frozenset(_signature(family.build(x, y), va).items())
                for y in ys}
        if len(sigs) != 1:
            raise FamilyValidationError("G[VA] depends on y")
    for y in ys[:3]:
        sigs = {frozenset(_signature(family.build(x, y), vb).items())
                for x in xs}
        if len(sigs) != 1:
            raise FamilyValidationError("G[VB] depends on x")
    for x, y in zip(xs, ys):
        g = family.build(x, y)
        if set(g.vertices()) != vertex_set:
            raise FamilyValidationError("vertex set varies with the input")
        if _cut_signature(g, va) != cut_sig:
            raise FamilyValidationError("Ecut varies with the input")


@dataclass
class IffReport:
    """Outcome of a predicate ⇔ f sweep."""

    checked: int
    true_instances: int
    false_instances: int

    def __str__(self) -> str:
        return (f"{self.checked} input pairs checked "
                f"({self.true_instances} TRUE / {self.false_instances} FALSE)")


def verify_iff(
    family: LowerBoundGraphFamily,
    input_pairs: Sequence[Tuple[Bits, Bits]],
    negate: bool = False,
) -> IffReport:
    """Check item 4 of Definition 1.1: P(G_{x,y}) ⇔ f(x, y).

    Most constructions in the paper satisfy P iff DISJ = FALSE; they pass
    ``negate=True`` (the predicate then tracks ¬f, which is the same
    family up to renaming the predicate).
    """
    true_count = 0
    false_count = 0
    for x, y in input_pairs:
        expected = family.function(x, y)
        if negate:
            expected = not expected
        actual = family.predicate(family.build(x, y))
        if actual != expected:
            raise FamilyValidationError(
                f"predicate mismatch on x={x}, y={y}: "
                f"predicate={actual}, expected={expected}")
        if expected:
            true_count += 1
        else:
            false_count += 1
    return IffReport(checked=len(input_pairs),
                     true_instances=true_count,
                     false_instances=false_count)
