"""Families of lower bound graphs (Definition 1.1) and Theorem 1.1.

A family is, for fixed K and n, a map (x, y) ↦ G_{x,y} over a *fixed*
vertex set with a *fixed* partition (VA, VB) such that

1. only G[VA] (edges/weights inside VA) depends on x,
2. only G[VB] depends on y,
3. the cut edge set E(VA, VB) is the same for all inputs, and
4. G_{x,y} satisfies the predicate P iff f(x, y) = TRUE.

Theorem 1.1 then gives a CONGEST round lower bound of
Ω(CC(f) / (|Ecut| · log n)) for deciding P.

:func:`validate_family` machine-checks items 1-3 on sampled inputs and
:func:`verify_iff` checks item 4 with an exact predicate decision.

Incremental builds.  Definition 1.1 makes every family a fixed skeleton
perturbed per input pair, so :class:`DeltaBuildMixin` splits ``build``
into ``build_skeleton()`` (the input-independent graph, built and
cache-warmed once per family instance) and ``apply_inputs(g, x, y)``
(the x/y-dependent edge/weight deltas applied to a cache-carrying
copy).  Sweeps over many pairs then cost one skeleton construction plus
one cheap delta per pair; :func:`sweep` additionally memoizes predicate
decisions on the ``(x, y)`` delta signature so repeated pairs — the
common case across ``validate_family`` / ``verify_iff`` / witness
checks — never rebuild or re-solve at all.
"""

from __future__ import annotations

import math
import os
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.cc.functions import CCFunction, DISJ, random_input_pairs
from repro.graphs import DiGraph, Graph, Vertex

Bits = Tuple[int, ...]
AnyGraph = Union[Graph, DiGraph]


class FamilyValidationError(AssertionError):
    """A Definition 1.1 requirement failed on concrete inputs."""


#: module default for sweep fan-out; set via :func:`configure_sweep`
#: (the CLI's ``--sweep-jobs``).  ``verify_iff``/``sweep`` callers that
#: pass ``jobs=None`` use this value.
_DEFAULT_SWEEP_JOBS = 1

_UNSET = object()

#: default persistent result store directory for sweeps (None = no
#: store); set via :func:`configure_sweep`.  Explicit ``store=`` args
#: to :func:`sweep` / :func:`verify_iff` override it per call.
_SWEEP_STORE_DIR: Optional[str] = None
_SWEEP_STORE_CACHE: Dict[str, Any] = {}

#: whether ``jobs > 1`` sweeps go through the persistent warm worker
#: pool (:mod:`repro.experiments.warm_pool`) before the cold fork
#: scheduler; set via :func:`configure_sweep` (``--no-sweep-warm``).
_DEFAULT_SWEEP_WARM = True


def configure_sweep(jobs: Optional[int] = None,
                    store_dir: Any = _UNSET,
                    warm: Optional[bool] = None) -> None:
    """Set sweep defaults: ``jobs`` workers for predicate fan-out
    (``1`` is serial), a persistent result-store directory (``None``
    disables the store), and/or ``warm`` routing of parallel sweeps
    through the persistent warm pool.  Fork-based experiment workers
    inherit all three settings."""
    global _DEFAULT_SWEEP_JOBS, _SWEEP_STORE_DIR, _DEFAULT_SWEEP_WARM
    if jobs is not None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        _DEFAULT_SWEEP_JOBS = jobs
    if store_dir is not _UNSET:
        _SWEEP_STORE_DIR = os.fspath(store_dir) if store_dir else None
    if warm is not None:
        _DEFAULT_SWEEP_WARM = bool(warm)


def _configured_store():
    """The module-default :class:`~repro.experiments.sweep_store.SweepStore`
    (one instance per directory), or None when no store is configured."""
    if _SWEEP_STORE_DIR is None:
        return None
    store = _SWEEP_STORE_CACHE.get(_SWEEP_STORE_DIR)
    if store is None:
        from repro.experiments.sweep_store import SweepStore
        store = SweepStore(_SWEEP_STORE_DIR)
        _SWEEP_STORE_CACHE[_SWEEP_STORE_DIR] = store
    return store


def _warm_graph_caches(graph: AnyGraph) -> None:
    """Precompute the derived caches a cache-carrying ``copy()`` shares,
    so every per-input build starts with them populated (the trick
    KMdsFamily proved out before it was hoisted here)."""
    if isinstance(graph, Graph):
        graph.sorted_vertices()
        graph.edges()
        graph.edge_weights()
    else:
        graph.edge_weights()
    # populates the vertex-set caches (sorted order, sort-key maps) that
    # survive the weight/edge deltas apply_inputs makes on each copy
    graph.content_hash()


class DeltaBuildMixin:
    """The skeleton/delta incremental-build protocol.

    Implementors provide :meth:`build_skeleton` (input-independent
    graph) and :meth:`apply_inputs` (x/y-dependent deltas); the mixin
    supplies a ``build`` that copies a cached, cache-warmed skeleton
    and applies the deltas.  Structural deltas (``add_edge``) drop the
    copy's derived caches; weight-only deltas (``set_vertex_weight`` /
    weighted ``add_edge`` re-weights) keep the adjacency-derived caches
    alive via the class-based invalidation in :mod:`repro.graphs`.

    Classes that cannot split their construction (transform wrappers,
    varying vertex sets) simply override ``build`` directly; everything
    here degrades gracefully to that.
    """

    #: per-instance caches that :meth:`skeleton` and :func:`sweep`
    #: accrete over a family's lifetime.  They are pure derived state,
    #: so pickling strips them — a fan-out payload must not grow with
    #: sweep history (workers rebuild the skeleton once each, and
    #: shipping thousands of memoized decisions they never read would
    #: dwarf the family itself).
    _PICKLE_TRANSIENT = ("_skeleton_store", "_sweep_memo")

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        for key in self._PICKLE_TRANSIENT:
            state.pop(key, None)
        return state

    def build_skeleton(self) -> AnyGraph:
        """Construct the input-independent part of G_{x,y} from scratch."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the skeleton/delta "
            f"protocol; override build() directly or provide "
            f"build_skeleton() + apply_inputs()")

    def apply_inputs(self, graph: AnyGraph, x: Sequence[int],
                     y: Sequence[int]) -> None:
        """Install the x/y-dependent edge/weight deltas on ``graph``."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement apply_inputs()")

    def skeleton(self) -> AnyGraph:
        """A fresh copy of the cached skeleton (built once per instance,
        derived caches warmed; the copy is safe to mutate)."""
        store = getattr(self, "_skeleton_store", None)
        if store is None:
            store = self.build_skeleton()
            _warm_graph_caches(store)
            self._skeleton_store = store
        return store.copy()

    def fixed_graph(self) -> AnyGraph:
        """Historical name for :meth:`skeleton` (a warmed mutable copy
        of the input-independent graph)."""
        return self.skeleton()

    def _require_inputs(self, x: Sequence[int], y: Sequence[int]) -> None:
        k_bits = self.k_bits  # type: ignore[attr-defined]
        if len(x) != k_bits or len(y) != k_bits:
            raise ValueError(f"input length must be {k_bits}")

    def build(self, x: Sequence[int], y: Sequence[int]) -> AnyGraph:
        """Construct G_{x,y} as skeleton-copy + delta."""
        self._require_inputs(x, y)
        g = self.skeleton()
        self.apply_inputs(g, x, y)
        return g

    def build_scratch(self, x: Sequence[int], y: Sequence[int]) -> AnyGraph:
        """Reference build that bypasses the skeleton cache entirely —
        the differential baseline the ``family:delta-equivalence`` check
        pins ``build`` against.  Falls back to ``build`` for families
        that override it directly."""
        try:
            g = self.build_skeleton()
        except NotImplementedError:
            return self.build(x, y)
        self._require_inputs(x, y)
        self.apply_inputs(g, x, y)
        return g


class LowerBoundGraphFamily(DeltaBuildMixin, ABC):
    """Abstract base for every construction in the paper.

    Subclasses fix K (``k_bits``), the reduced-from function
    (``function``, usually DISJ), the partition, the builder — either
    ``build_skeleton`` + ``apply_inputs`` (preferred, see
    :class:`DeltaBuildMixin`) or a direct ``build`` override — and an
    exact predicate decision procedure.
    """

    #: the two-party function reduced from (Definition 1.1's f)
    function: CCFunction = DISJ

    #: ``repro verify`` registry name, when the family is constructible
    #: from the CLI — lets verify_iff emit one-line repro commands.
    cli_name: Optional[str] = None

    @property
    @abstractmethod
    def k_bits(self) -> int:
        """Input length K of each player's bit string."""

    @abstractmethod
    def alice_vertices(self) -> Set[Vertex]:
        """The fixed part VA simulated by Alice."""

    @abstractmethod
    def predicate(self, graph: AnyGraph) -> bool:
        """Decide P on a graph of this family, exactly."""

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def bob_vertices(self) -> Set[Vertex]:
        g = self.build(self.zero_input(), self.zero_input())
        return set(g.vertices()) - self.alice_vertices()

    def zero_input(self) -> Bits:
        return tuple([0] * self.k_bits)

    def cut_edges(self, graph: Optional[AnyGraph] = None) -> List[Tuple[Vertex, Vertex]]:
        if graph is None:
            graph = self.build(self.zero_input(), self.zero_input())
        va = self.alice_vertices()
        edges = graph.edges() if isinstance(graph, Graph) else list(graph.edges())
        return [(u, v) for u, v in edges if (u in va) != (v in va)]

    def n_vertices(self) -> int:
        return self.build(self.zero_input(), self.zero_input()).n

    def describe(self) -> Dict[str, Any]:
        g = self.build(self.zero_input(), self.zero_input())
        return {
            "family": type(self).__name__,
            "K": self.k_bits,
            "n": g.n,
            "m": g.m,
            "ecut": len(self.cut_edges(g)),
            "function": self.function.name,
            "implied_bound": theorem_1_1_bound(self),
        }


def theorem_1_1_bound(family: LowerBoundGraphFamily) -> float:
    """Evaluate Ω(CC(f)/(|Ecut| log n)) for a family instance (the
    constant-free value of the Theorem 1.1 round lower bound)."""
    n = family.n_vertices()
    ecut = len(family.cut_edges())
    cc = family.function.cc(family.k_bits)
    return cc / (ecut * math.log2(max(2, n)))


# ----------------------------------------------------------------------
# structural comparison helpers
# ----------------------------------------------------------------------
def _edge_key(u: Vertex, v: Vertex) -> FrozenSet:
    return frozenset((u, v))


def _signature(graph: AnyGraph, inside: Set[Vertex]) -> Dict[Any, float]:
    """Weighted edge multiset of G[inside] plus vertex weights of inside."""
    sig: Dict[Any, float] = {}
    if isinstance(graph, DiGraph):
        for (u, v), w in graph.edge_weights().items():
            if u in inside and v in inside:
                sig[("e", u, v)] = w
    else:
        for (u, v), w in graph.edge_weights().items():
            if u in inside and v in inside:
                sig[("e", _edge_key(u, v))] = w
    for v in inside:
        sig[("w", v)] = graph.vertex_weight(v)
    return sig


def _cut_signature(graph: AnyGraph, va: Set[Vertex]) -> Dict[Any, float]:
    sig: Dict[Any, float] = {}
    if isinstance(graph, DiGraph):
        for (u, v), w in graph.edge_weights().items():
            if (u in va) != (v in va):
                sig[("e", u, v)] = w
    else:
        for (u, v), w in graph.edge_weights().items():
            if (u in va) != (v in va):
                sig[("e", _edge_key(u, v))] = w
    return sig


def validate_family(
    family: LowerBoundGraphFamily,
    input_pairs: Optional[Sequence[Tuple[Bits, Bits]]] = None,
    rng: Optional[random.Random] = None,
    samples: int = 6,
) -> None:
    """Machine-check Definition 1.1's structural requirements (items 1-3).

    For sampled inputs: the vertex set is fixed; G[VA] is identical for
    equal x (any y); G[VB] is identical for equal y (any x); and the cut
    (with weights) is identical for all inputs.  Raises
    :class:`FamilyValidationError` on violation.
    """
    rng = rng or random.Random(0xC0FFEE)
    if input_pairs is None:
        input_pairs = random_input_pairs(family.k_bits, samples, rng)
    xs = [p[0] for p in input_pairs]
    ys = [p[1] for p in input_pairs]

    # the three scans below revisit the same (x, y) combinations; build
    # each graph once (deltas are cheap but solver-free builds are not
    # always, e.g. transform wrappers)
    built: Dict[Tuple[Bits, Bits], AnyGraph] = {}

    def build(x: Bits, y: Bits) -> AnyGraph:
        key = (tuple(x), tuple(y))
        g = built.get(key)
        if g is None:
            g = built[key] = family.build(x, y)
        return g

    va = family.alice_vertices()
    base = build(xs[0], ys[0])
    vertex_set = set(base.vertices())
    vb = vertex_set - va
    if not va <= vertex_set:
        raise FamilyValidationError("VA is not a subset of the vertex set")
    cut_sig = _cut_signature(base, va)

    for x in xs[:3]:
        sigs = {frozenset(_signature(build(x, y), va).items())
                for y in ys}
        if len(sigs) != 1:
            raise FamilyValidationError("G[VA] depends on y")
    for y in ys[:3]:
        sigs = {frozenset(_signature(build(x, y), vb).items())
                for x in xs}
        if len(sigs) != 1:
            raise FamilyValidationError("G[VB] depends on x")
    for x, y in zip(xs, ys):
        g = build(x, y)
        if set(g.vertices()) != vertex_set:
            raise FamilyValidationError("vertex set varies with the input")
        if _cut_signature(g, va) != cut_sig:
            raise FamilyValidationError("Ecut varies with the input")


@dataclass
class SweepReport:
    """Outcome of a batched predicate sweep (see :func:`sweep`).

    ``decisions[i]`` is the predicate value for ``pairs[i]``; reports
    are order-preserving and byte-identical regardless of memoization,
    store restores, or worker fan-out.  ``unique_pairs`` splits into
    ``store_hits`` (restored from the persistent result store) plus
    ``solved`` (freshly decided this sweep) — coverage reporting relies
    on the two being distinguishable.
    """

    decisions: List[bool]
    pairs: int
    unique_pairs: int
    memo_hits: int
    solved: int
    store_hits: int = 0

    def __str__(self) -> str:
        stored = (f", {self.store_hits} store hits"
                  if self.store_hits else "")
        return (f"{self.pairs} pairs swept "
                f"({self.unique_pairs} unique, {self.memo_hits} memo hits"
                f"{stored}, {self.solved} solved)")


def sweep(
    family: LowerBoundGraphFamily,
    input_pairs: Sequence[Tuple[Bits, Bits]],
    jobs: Optional[int] = None,
    memo: bool = True,
    store: Any = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    warm: Optional[bool] = None,
) -> SweepReport:
    """Decide P(G_{x,y}) for a batch of input pairs through the
    incremental-build path.

    The per-instance memo keys decisions on the ``(x, y)`` delta
    signature — for a fixed family instance the graph, and hence the
    predicate, is a pure function of the pair, so equal pairs (within
    this batch or across earlier sweeps on the same instance) are never
    rebuilt or re-solved.  Distinct pairs yielding equal graphs still
    collapse into :mod:`repro.solvers.cache` hits via ``content_hash``.

    ``store`` is a :class:`repro.experiments.sweep_store.SweepStore`
    (default: the one configured via :func:`configure_sweep`, usually
    none): undecided pairs found there are *restored* instead of
    re-solved (counted as ``store_hits``), and every fresh decision is
    persisted the moment it lands — serially or inside a fork worker —
    so a sweep killed mid-batch resumes where it stopped.

    ``jobs > 1`` fans the remaining pairs over the persistent warm
    worker pool (:mod:`repro.experiments.warm_pool` — skeleton
    broadcast once per :class:`~repro.experiments.sweep_store.FamilyKey`,
    per-pair payloads reduced to the bit strings; disable with
    ``warm=False`` / ``configure_sweep(warm=False)``), falling back to
    the cold work-stealing shard queue (:mod:`repro.experiments.sweep`)
    and then to the serial loop when fan-out is impossible.  All paths
    share the per-shard ``timeout``/``retries`` crash semantics and
    return decisions in request order.
    """
    if jobs is None:
        jobs = _DEFAULT_SWEEP_JOBS
    if warm is None:
        warm = _DEFAULT_SWEEP_WARM
    if store is None:
        store = _configured_store()
    memo_store: Dict[Tuple[Bits, Bits], bool]
    if memo:
        memo_store = getattr(family, "_sweep_memo", None)
        if memo_store is None:
            memo_store = family._sweep_memo = {}
    else:
        memo_store = {}

    keys = [(tuple(x), tuple(y)) for x, y in input_pairs]
    todo: List[Tuple[Bits, Bits]] = []
    seen: Set[Tuple[Bits, Bits]] = set()
    for key in keys:
        if key not in memo_store and key not in seen:
            seen.add(key)
            todo.append(key)
    # prior-sweep hits and in-batch duplicates both skip the solver
    memo_hits = len(keys) - len(todo)

    fkey = None
    store_hits = 0
    if store is not None and todo:
        from repro.experiments.sweep_store import family_key
        fkey = family_key(family)
        stored = store.load_pairs(fkey)
        if stored:
            remaining: List[Tuple[Bits, Bits]] = []
            for key in todo:
                decision = stored.get(key)
                if decision is None:
                    remaining.append(key)
                else:
                    memo_store[key] = decision
                    store_hits += 1
            todo = remaining

    decided: Optional[List[bool]] = None
    if jobs > 1 and len(todo) > 1:
        if warm:
            from repro.experiments.warm_pool import pool_decisions
            decided = pool_decisions(family, todo, jobs, timeout=timeout,
                                     retries=retries, store=store, fkey=fkey)
        if decided is None:
            from repro.experiments.sweep import parallel_decisions
            decided = parallel_decisions(family, todo, jobs, timeout=timeout,
                                         retries=retries, store=store,
                                         fkey=fkey)
    if decided is None:
        from repro.experiments.sweep import _decide_serial
        decided = _decide_serial(family, todo, store=store, fkey=fkey)
    for key, decision in zip(todo, decided):
        memo_store[key] = decision

    return SweepReport(
        decisions=[memo_store[key] for key in keys],
        pairs=len(keys),
        unique_pairs=len(todo) + store_hits,
        memo_hits=memo_hits,
        solved=len(todo),
        store_hits=store_hits,
    )


def pair_repro_command(
    family: LowerBoundGraphFamily,
    x: Sequence[int],
    y: Sequence[int],
) -> str:
    """A copy-pasteable one-liner re-checking one (x, y) pair, in the
    ``repro check`` repro-command convention.

    Only meaningful for CLI-registered families (``cli_name`` set);
    collection-backed families assume the CLI's default covering
    collection, which matches the experiment defaults.
    """
    name = getattr(family, "cli_name", None)
    if name is None:
        return (f"(no CLI repro available for {type(family).__name__}; "
                f"x={tuple(x)}, y={tuple(y)})")
    xbits = "".join(str(int(b)) for b in x)
    ybits = "".join(str(int(b)) for b in y)
    cmd = f"python -m repro verify {name}"
    k = getattr(family, "k", None)
    if isinstance(k, int):
        cmd += f" -k {k}"
    return f"{cmd} --x {xbits} --y {ybits}"


@dataclass
class IffReport:
    """Outcome of a predicate ⇔ f sweep."""

    checked: int
    true_instances: int
    false_instances: int

    def __str__(self) -> str:
        return (f"{self.checked} input pairs checked "
                f"({self.true_instances} TRUE / {self.false_instances} FALSE)")


def verify_iff(
    family: LowerBoundGraphFamily,
    input_pairs: Sequence[Tuple[Bits, Bits]],
    negate: bool = False,
    jobs: Optional[int] = None,
    memo: bool = True,
    store: Any = None,
) -> IffReport:
    """Check item 4 of Definition 1.1: P(G_{x,y}) ⇔ f(x, y).

    Most constructions in the paper satisfy P iff DISJ = FALSE; they pass
    ``negate=True`` (the predicate then tracks ¬f, which is the same
    family up to renaming the predicate).

    Decisions run through :func:`sweep` (delta builds, per-pair
    memoization, optional ``jobs`` fan-out and persistent ``store``
    restores).  On failure, *all*
    mismatching pairs are collected into the
    :class:`FamilyValidationError`, each with a one-line repro command.
    """
    report = sweep(family, input_pairs, jobs=jobs, memo=memo, store=store)
    true_count = 0
    false_count = 0
    mismatches: List[str] = []
    for (x, y), actual in zip(input_pairs, report.decisions):
        expected = family.function(x, y)
        if negate:
            expected = not expected
        if actual != expected:
            mismatches.append(
                f"  x={tuple(x)}, y={tuple(y)}: "
                f"predicate={actual}, expected={expected}\n"
                f"    reproduce: {pair_repro_command(family, x, y)}")
        if expected:
            true_count += 1
        else:
            false_count += 1
    if mismatches:
        raise FamilyValidationError(
            f"{len(mismatches)} predicate mismatch(es) over "
            f"{len(input_pairs)} pairs on {type(family).__name__}:\n"
            + "\n".join(mismatches))
    return IffReport(checked=len(input_pairs),
                     true_instances=true_count,
                     false_instances=false_count)
