"""Families of lower bound graphs (Definition 1.1) and Theorem 1.1.

A family is, for fixed K and n, a map (x, y) ↦ G_{x,y} over a *fixed*
vertex set with a *fixed* partition (VA, VB) such that

1. only G[VA] (edges/weights inside VA) depends on x,
2. only G[VB] depends on y,
3. the cut edge set E(VA, VB) is the same for all inputs, and
4. G_{x,y} satisfies the predicate P iff f(x, y) = TRUE.

Theorem 1.1 then gives a CONGEST round lower bound of
Ω(CC(f) / (|Ecut| · log n)) for deciding P.

:func:`validate_family` machine-checks items 1-3 on sampled inputs and
:func:`verify_iff` checks item 4 with an exact predicate decision.

Incremental builds.  Definition 1.1 makes every family a fixed skeleton
perturbed per input pair, so :class:`DeltaBuildMixin` splits ``build``
into ``build_skeleton()`` (the input-independent graph, built and
cache-warmed once per family instance) and ``apply_inputs(g, x, y)``
(the x/y-dependent edge/weight deltas applied to a cache-carrying
copy).  Sweeps over many pairs then cost one skeleton construction plus
one cheap delta per pair; :func:`sweep` additionally memoizes predicate
decisions on the ``(x, y)`` delta signature so repeated pairs — the
common case across ``validate_family`` / ``verify_iff`` / witness
checks — never rebuild or re-solve at all.
"""

from __future__ import annotations

import math
import os
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.cc.functions import CCFunction, DISJ, random_input_pairs
from repro.graphs import DiGraph, Graph, Vertex

Bits = Tuple[int, ...]
AnyGraph = Union[Graph, DiGraph]


class FamilyValidationError(AssertionError):
    """A Definition 1.1 requirement failed on concrete inputs."""


#: module default for sweep fan-out; set via :func:`configure_sweep`
#: (the CLI's ``--sweep-jobs``).  ``verify_iff``/``sweep`` callers that
#: pass ``jobs=None`` use this value.
_DEFAULT_SWEEP_JOBS = 1

_UNSET = object()

#: default persistent result store directory for sweeps (None = no
#: store); set via :func:`configure_sweep`.  Explicit ``store=`` args
#: to :func:`sweep` / :func:`verify_iff` override it per call.
_SWEEP_STORE_DIR: Optional[str] = None
_SWEEP_STORE_CACHE: Dict[str, Any] = {}

#: whether ``jobs > 1`` sweeps go through the persistent warm worker
#: pool (:mod:`repro.experiments.warm_pool`) before the cold fork
#: scheduler; set via :func:`configure_sweep` (``--no-sweep-warm``).
_DEFAULT_SWEEP_WARM = True

#: whether sweeps consult a family's batched decision kernel
#: (:meth:`DeltaBuildMixin.decide_batch`) for pairs that survive
#: memo/store dedup; set via :func:`configure_sweep` (``--no-batch``).
_DEFAULT_SWEEP_BATCH = True


def configure_sweep(jobs: Optional[int] = None,
                    store_dir: Any = _UNSET,
                    warm: Optional[bool] = None,
                    batch: Optional[bool] = None) -> None:
    """Set sweep defaults: ``jobs`` workers for predicate fan-out
    (``1`` is serial), a persistent result-store directory (``None``
    disables the store), ``warm`` routing of parallel sweeps through
    the persistent warm pool, and/or ``batch`` use of batched decision
    kernels.  Fork-based experiment workers inherit all four
    settings."""
    global _DEFAULT_SWEEP_JOBS, _SWEEP_STORE_DIR, _DEFAULT_SWEEP_WARM
    global _DEFAULT_SWEEP_BATCH
    if jobs is not None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        _DEFAULT_SWEEP_JOBS = jobs
    if store_dir is not _UNSET:
        _SWEEP_STORE_DIR = os.fspath(store_dir) if store_dir else None
    if warm is not None:
        _DEFAULT_SWEEP_WARM = bool(warm)
    if batch is not None:
        _DEFAULT_SWEEP_BATCH = bool(batch)


def _configured_store():
    """The module-default :class:`~repro.experiments.sweep_store.SweepStore`
    (one instance per directory), or None when no store is configured."""
    if _SWEEP_STORE_DIR is None:
        return None
    store = _SWEEP_STORE_CACHE.get(_SWEEP_STORE_DIR)
    if store is None:
        from repro.experiments.sweep_store import SweepStore
        store = SweepStore(_SWEEP_STORE_DIR)
        _SWEEP_STORE_CACHE[_SWEEP_STORE_DIR] = store
    return store


def _warm_graph_caches(graph: AnyGraph) -> None:
    """Precompute the derived caches a cache-carrying ``copy()`` shares,
    so every per-input build starts with them populated (the trick
    KMdsFamily proved out before it was hoisted here)."""
    if isinstance(graph, Graph):
        graph.sorted_vertices()
        graph.edges()
        graph.edge_weights()
    else:
        graph.edge_weights()
    # populates the vertex-set caches (sorted order, sort-key maps) that
    # survive the weight/edge deltas apply_inputs makes on each copy
    graph.content_hash()


class DeltaBuildMixin:
    """The skeleton/delta incremental-build protocol.

    Implementors provide :meth:`build_skeleton` (input-independent
    graph) and :meth:`apply_inputs` (x/y-dependent deltas); the mixin
    supplies a ``build`` that copies a cached, cache-warmed skeleton
    and applies the deltas.  Structural deltas (``add_edge``) drop the
    copy's derived caches; weight-only deltas (``set_vertex_weight`` /
    weighted ``add_edge`` re-weights) keep the adjacency-derived caches
    alive via the class-based invalidation in :mod:`repro.graphs`.

    Classes that cannot split their construction (transform wrappers,
    varying vertex sets) simply override ``build`` directly; everything
    here degrades gracefully to that.
    """

    #: per-instance caches that :meth:`skeleton` and :func:`sweep`
    #: accrete over a family's lifetime.  They are pure derived state,
    #: so pickling strips them — a fan-out payload must not grow with
    #: sweep history (workers rebuild the skeleton once each, and
    #: shipping thousands of memoized decisions they never read would
    #: dwarf the family itself).  Batch-kernel state rides along:
    #: kernels hold solver tables derived from the skeleton, so workers
    #: rebuild them once per lane rather than unpickling them.
    _PICKLE_TRANSIENT = ("_skeleton_store", "_sweep_memo",
                         "_batch_kernel", "_kernel_events")

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        for key in self._PICKLE_TRANSIENT:
            state.pop(key, None)
        return state

    def build_skeleton(self) -> AnyGraph:
        """Construct the input-independent part of G_{x,y} from scratch."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the skeleton/delta "
            f"protocol; override build() directly or provide "
            f"build_skeleton() + apply_inputs()")

    def apply_inputs(self, graph: AnyGraph, x: Sequence[int],
                     y: Sequence[int]) -> None:
        """Install the x/y-dependent edge/weight deltas on ``graph``."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement apply_inputs()")

    def skeleton(self) -> AnyGraph:
        """A fresh copy of the cached skeleton (built once per instance,
        derived caches warmed; the copy is safe to mutate)."""
        store = getattr(self, "_skeleton_store", None)
        if store is None:
            store = self.build_skeleton()
            _warm_graph_caches(store)
            self._skeleton_store = store
        return store.copy()

    def fixed_graph(self) -> AnyGraph:
        """Historical name for :meth:`skeleton` (a warmed mutable copy
        of the input-independent graph)."""
        return self.skeleton()

    def _require_inputs(self, x: Sequence[int], y: Sequence[int]) -> None:
        k_bits = self.k_bits  # type: ignore[attr-defined]
        if len(x) != k_bits or len(y) != k_bits:
            raise ValueError(f"input length must be {k_bits}")

    def build(self, x: Sequence[int], y: Sequence[int]) -> AnyGraph:
        """Construct G_{x,y} as skeleton-copy + delta."""
        self._require_inputs(x, y)
        g = self.skeleton()
        self.apply_inputs(g, x, y)
        return g

    def build_scratch(self, x: Sequence[int], y: Sequence[int]) -> AnyGraph:
        """Reference build that bypasses the skeleton cache entirely —
        the differential baseline the ``family:delta-equivalence`` check
        pins ``build`` against.  Falls back to ``build`` for families
        that override it directly."""
        try:
            g = self.build_skeleton()
        except NotImplementedError:
            return self.build(x, y)
        self._require_inputs(x, y)
        self.apply_inputs(g, x, y)
        return g

    # ------------------------------------------------------------------
    # batched decision kernels
    # ------------------------------------------------------------------
    def make_batch_kernel(self, skeleton: AnyGraph) -> Optional[Any]:
        """Build a batched decision kernel from ``skeleton``, or None.

        A kernel carries solver-side state precomputed from the
        input-independent skeleton (ball-mask tables, successor
        bitmasks, cut-landscape tables — see
        :mod:`repro.solvers.batch_kernels`) and exposes
        ``decide(x, y) -> bool`` answering the family predicate by
        evaluating only the delta, plus a ``monotone`` flag declaring
        the predicate monotone non-decreasing in every input bit.
        Returning None (the default, and the escape hatch for
        parameter regimes a kernel cannot handle) sends every pair down
        the per-pair ``predicate(build(x, y))`` path.
        """
        return None

    def supports_batch(self) -> bool:
        """Whether this family can answer through a batched kernel.

        A kernel bakes in the predicate semantics of the class that
        defined :meth:`make_batch_kernel`; a subclass (or instance
        monkeypatch) that changes ``predicate`` or ``build`` without
        also overriding the kernel factory would silently get the
        *parent's* answers, so those cases decline batching and fall
        back to the per-pair path.
        """
        cls = type(self)
        if cls.make_batch_kernel is DeltaBuildMixin.make_batch_kernel:
            return False
        if "predicate" in self.__dict__ or "build" in self.__dict__:
            return False
        kernel_owner = next(c for c in cls.__mro__
                            if "make_batch_kernel" in vars(c))
        for meth in ("predicate", "build"):
            owner = next((c for c in cls.__mro__ if meth in vars(c)), None)
            if (owner is not None and owner is not kernel_owner
                    and issubclass(owner, kernel_owner)):
                return False
        return True

    def kernel_events(self) -> Dict[str, int]:
        """Lifetime kernel-state counters for this instance:
        ``state_hits`` (a cached kernel matched the current skeleton's
        content hash) and ``state_misses`` (a kernel was built — first
        use or hash change)."""
        events = getattr(self, "_kernel_events", None)
        if events is None:
            events = self._kernel_events = {"state_hits": 0,
                                            "state_misses": 0}
        return events

    def _batch_kernel_for(self, skeleton: AnyGraph) -> Optional[Any]:
        """The cached kernel for ``skeleton``, keyed on its content
        hash — a skeleton whose content changed (or a different
        skeleton object) invalidates the cache and rebuilds."""
        chash = skeleton.content_hash()
        cached = getattr(self, "_batch_kernel", None)
        events = self.kernel_events()
        if cached is not None and cached[0] == chash:
            events["state_hits"] += 1
            return cached[1]
        events["state_misses"] += 1
        kernel = self.make_batch_kernel(skeleton)
        self._batch_kernel = (chash, kernel)
        return kernel

    def decide_batch(
        self,
        skeleton: Optional[AnyGraph],
        pairs: Sequence[Tuple[Sequence[int], Sequence[int]]],
        timings: Optional[Dict[Tuple[Bits, Bits], float]] = None,
    ) -> Optional[Dict[Tuple[Bits, Bits], bool]]:
        """Decide the predicate for ``pairs`` through the batched
        kernel, or return None when no kernel applies.

        ``skeleton`` defaults to this instance's cached skeleton store
        (read-only — kernels must not mutate it).  The kernel is built
        at most once per skeleton content hash (:meth:`_batch_kernel_for`)
        and reused across calls; ``timings`` (when given) receives the
        per-pair decision seconds for latency reporting.  Inferred
        decisions on monotone kernels are recorded at zero cost.

        For ``monotone`` kernels the driver exploits that the predicate
        is monotone non-decreasing in every bit: pairs are solved in
        ascending popcount order and a pair that dominates a known-TRUE
        pair bitwise (or is dominated by a known-FALSE one) is inferred
        without touching the solver.  On the paper's gadget grids this
        collapses most of the 2^K × 2^K lattice into a few extremal
        solver calls.
        """
        if not self.supports_batch():
            return None
        if skeleton is None:
            self.skeleton()  # ensure the cached store exists
            skeleton = self._skeleton_store
        kernel = self._batch_kernel_for(skeleton)
        if kernel is None:
            return None

        import time as _time

        for x, y in pairs:
            self._require_inputs(x, y)
        keys = [(tuple(x), tuple(y)) for x, y in pairs]
        out: Dict[Tuple[Bits, Bits], bool] = {}
        if not getattr(kernel, "monotone", False):
            for key in keys:
                if key in out:
                    continue
                t0 = _time.perf_counter()
                out[key] = bool(kernel.decide(*key))
                if timings is not None:
                    timings[key] = _time.perf_counter() - t0
            return out

        def mask(bits: Bits) -> int:
            m = 0
            for i, b in enumerate(bits):
                if b:
                    m |= 1 << i
            return m

        order = sorted(set(keys), key=lambda kv: sum(kv[0]) + sum(kv[1]))
        true_mins: List[Tuple[int, int]] = []
        false_maxs: List[Tuple[int, int]] = []
        for key in order:
            t0 = _time.perf_counter()
            xm, ym = mask(key[0]), mask(key[1])
            dec: Optional[bool] = None
            for txm, tym in true_mins:
                if txm & xm == txm and tym & ym == tym:
                    dec = True  # dominates a TRUE pair
                    break
            if dec is None:
                for fxm, fym in false_maxs:
                    if xm | fxm == fxm and ym | fym == fym:
                        dec = False  # dominated by a FALSE pair
                        break
            if dec is None:
                dec = bool(kernel.decide(*key))
                # ascending-popcount order makes solved TRUEs minimal
                # and solved FALSEs maximal among solved pairs so far
                (true_mins if dec else false_maxs).append((xm, ym))
            out[key] = dec
            if timings is not None:
                timings[key] = _time.perf_counter() - t0
        return out


class LowerBoundGraphFamily(DeltaBuildMixin, ABC):
    """Abstract base for every construction in the paper.

    Subclasses fix K (``k_bits``), the reduced-from function
    (``function``, usually DISJ), the partition, the builder — either
    ``build_skeleton`` + ``apply_inputs`` (preferred, see
    :class:`DeltaBuildMixin`) or a direct ``build`` override — and an
    exact predicate decision procedure.
    """

    #: the two-party function reduced from (Definition 1.1's f)
    function: CCFunction = DISJ

    #: ``repro verify`` registry name, when the family is constructible
    #: from the CLI — lets verify_iff emit one-line repro commands.
    cli_name: Optional[str] = None

    @property
    @abstractmethod
    def k_bits(self) -> int:
        """Input length K of each player's bit string."""

    @abstractmethod
    def alice_vertices(self) -> Set[Vertex]:
        """The fixed part VA simulated by Alice."""

    @abstractmethod
    def predicate(self, graph: AnyGraph) -> bool:
        """Decide P on a graph of this family, exactly."""

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def bob_vertices(self) -> Set[Vertex]:
        g = self.build(self.zero_input(), self.zero_input())
        return set(g.vertices()) - self.alice_vertices()

    def zero_input(self) -> Bits:
        return tuple([0] * self.k_bits)

    def cut_edges(self, graph: Optional[AnyGraph] = None) -> List[Tuple[Vertex, Vertex]]:
        if graph is None:
            graph = self.build(self.zero_input(), self.zero_input())
        va = self.alice_vertices()
        edges = graph.edges() if isinstance(graph, Graph) else list(graph.edges())
        return [(u, v) for u, v in edges if (u in va) != (v in va)]

    def n_vertices(self) -> int:
        return self.build(self.zero_input(), self.zero_input()).n

    def describe(self) -> Dict[str, Any]:
        g = self.build(self.zero_input(), self.zero_input())
        return {
            "family": type(self).__name__,
            "K": self.k_bits,
            "n": g.n,
            "m": g.m,
            "ecut": len(self.cut_edges(g)),
            "function": self.function.name,
            "implied_bound": theorem_1_1_bound(self),
        }


def theorem_1_1_bound(family: LowerBoundGraphFamily) -> float:
    """Evaluate Ω(CC(f)/(|Ecut| log n)) for a family instance (the
    constant-free value of the Theorem 1.1 round lower bound)."""
    n = family.n_vertices()
    ecut = len(family.cut_edges())
    cc = family.function.cc(family.k_bits)
    return cc / (ecut * math.log2(max(2, n)))


# ----------------------------------------------------------------------
# structural comparison helpers
# ----------------------------------------------------------------------
def _edge_key(u: Vertex, v: Vertex) -> FrozenSet:
    return frozenset((u, v))


def _signature(graph: AnyGraph, inside: Set[Vertex]) -> Dict[Any, float]:
    """Weighted edge multiset of G[inside] plus vertex weights of inside."""
    sig: Dict[Any, float] = {}
    if isinstance(graph, DiGraph):
        for (u, v), w in graph.edge_weights().items():
            if u in inside and v in inside:
                sig[("e", u, v)] = w
    else:
        for (u, v), w in graph.edge_weights().items():
            if u in inside and v in inside:
                sig[("e", _edge_key(u, v))] = w
    for v in inside:
        sig[("w", v)] = graph.vertex_weight(v)
    return sig


def _cut_signature(graph: AnyGraph, va: Set[Vertex]) -> Dict[Any, float]:
    sig: Dict[Any, float] = {}
    if isinstance(graph, DiGraph):
        for (u, v), w in graph.edge_weights().items():
            if (u in va) != (v in va):
                sig[("e", u, v)] = w
    else:
        for (u, v), w in graph.edge_weights().items():
            if (u in va) != (v in va):
                sig[("e", _edge_key(u, v))] = w
    return sig


def validate_family(
    family: LowerBoundGraphFamily,
    input_pairs: Optional[Sequence[Tuple[Bits, Bits]]] = None,
    rng: Optional[random.Random] = None,
    samples: int = 6,
) -> None:
    """Machine-check Definition 1.1's structural requirements (items 1-3).

    For sampled inputs: the vertex set is fixed; G[VA] is identical for
    equal x (any y); G[VB] is identical for equal y (any x); and the cut
    (with weights) is identical for all inputs.  Raises
    :class:`FamilyValidationError` on violation.
    """
    rng = rng or random.Random(0xC0FFEE)
    if input_pairs is None:
        input_pairs = random_input_pairs(family.k_bits, samples, rng)
    xs = [p[0] for p in input_pairs]
    ys = [p[1] for p in input_pairs]

    # the three scans below revisit the same (x, y) combinations; build
    # each graph once (deltas are cheap but solver-free builds are not
    # always, e.g. transform wrappers)
    built: Dict[Tuple[Bits, Bits], AnyGraph] = {}

    def build(x: Bits, y: Bits) -> AnyGraph:
        key = (tuple(x), tuple(y))
        g = built.get(key)
        if g is None:
            g = built[key] = family.build(x, y)
        return g

    va = family.alice_vertices()
    base = build(xs[0], ys[0])
    vertex_set = set(base.vertices())
    vb = vertex_set - va
    if not va <= vertex_set:
        raise FamilyValidationError("VA is not a subset of the vertex set")
    cut_sig = _cut_signature(base, va)

    for x in xs[:3]:
        sigs = {frozenset(_signature(build(x, y), va).items())
                for y in ys}
        if len(sigs) != 1:
            raise FamilyValidationError("G[VA] depends on y")
    for y in ys[:3]:
        sigs = {frozenset(_signature(build(x, y), vb).items())
                for x in xs}
        if len(sigs) != 1:
            raise FamilyValidationError("G[VB] depends on x")
    for x, y in zip(xs, ys):
        g = build(x, y)
        if set(g.vertices()) != vertex_set:
            raise FamilyValidationError("vertex set varies with the input")
        if _cut_signature(g, va) != cut_sig:
            raise FamilyValidationError("Ecut varies with the input")


@dataclass
class SweepReport:
    """Outcome of a batched predicate sweep (see :func:`sweep`).

    ``decisions[i]`` is the predicate value for ``pairs[i]``; reports
    are order-preserving and byte-identical regardless of memoization,
    store restores, or worker fan-out.  ``unique_pairs`` splits into
    ``store_hits`` (restored from the persistent result store) plus
    ``solved`` (freshly decided this sweep) — coverage reporting relies
    on the two being distinguishable.
    """

    decisions: List[bool]
    pairs: int
    unique_pairs: int
    memo_hits: int
    solved: int
    store_hits: int = 0
    #: of ``solved``, how many were answered by a batched decision
    #: kernel (:meth:`DeltaBuildMixin.decide_batch`) instead of the
    #: per-pair ``predicate(build(x, y))`` path
    batched: int = 0
    #: per-pair decision latencies in milliseconds for the pairs this
    #: sweep actually decided (serial path only; None when the sweep
    #: solved nothing locally or fanned out to workers)
    solve_ms: Optional[List[float]] = None

    def __str__(self) -> str:
        stored = (f", {self.store_hits} store hits"
                  if self.store_hits else "")
        via = f", {self.batched} batched" if self.batched else ""
        return (f"{self.pairs} pairs swept "
                f"({self.unique_pairs} unique, {self.memo_hits} memo hits"
                f"{stored}, {self.solved} solved{via})")


def sweep(
    family: LowerBoundGraphFamily,
    input_pairs: Sequence[Tuple[Bits, Bits]],
    jobs: Optional[int] = None,
    memo: bool = True,
    store: Any = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    warm: Optional[bool] = None,
    batch: Optional[bool] = None,
) -> SweepReport:
    """Decide P(G_{x,y}) for a batch of input pairs through the
    incremental-build path.

    The per-instance memo keys decisions on the ``(x, y)`` delta
    signature — for a fixed family instance the graph, and hence the
    predicate, is a pure function of the pair, so equal pairs (within
    this batch or across earlier sweeps on the same instance) are never
    rebuilt or re-solved.  Distinct pairs yielding equal graphs still
    collapse into :mod:`repro.solvers.cache` hits via ``content_hash``.

    ``store`` is a :class:`repro.experiments.sweep_store.SweepStore`
    (default: the one configured via :func:`configure_sweep`, usually
    none): undecided pairs found there are *restored* instead of
    re-solved (counted as ``store_hits``), and every fresh decision is
    persisted the moment it lands — serially or inside a fork worker —
    so a sweep killed mid-batch resumes where it stopped.

    ``jobs > 1`` fans the remaining pairs over the persistent warm
    worker pool (:mod:`repro.experiments.warm_pool` — skeleton
    broadcast once per :class:`~repro.experiments.sweep_store.FamilyKey`,
    per-pair payloads reduced to the bit strings; disable with
    ``warm=False`` / ``configure_sweep(warm=False)``), falling back to
    the cold work-stealing shard queue (:mod:`repro.experiments.sweep`)
    and then to the serial loop when fan-out is impossible.  All paths
    share the per-shard ``timeout``/``retries`` crash semantics and
    return decisions in request order.

    ``batch`` (default: the :func:`configure_sweep` setting, on)
    consults the family's batched decision kernel
    (:meth:`DeltaBuildMixin.decide_batch`) for pairs that survive
    memo/store dedup — in the serial loop, inside cold fork shards, and
    inside warm-pool lanes alike — falling back per pair for families
    (or parameter regimes) without a kernel.
    """
    if jobs is None:
        jobs = _DEFAULT_SWEEP_JOBS
    if warm is None:
        warm = _DEFAULT_SWEEP_WARM
    if batch is None:
        batch = _DEFAULT_SWEEP_BATCH
    if store is None:
        store = _configured_store()
    memo_store: Dict[Tuple[Bits, Bits], bool]
    if memo:
        memo_store = getattr(family, "_sweep_memo", None)
        if memo_store is None:
            memo_store = family._sweep_memo = {}
    else:
        memo_store = {}

    keys = [(tuple(x), tuple(y)) for x, y in input_pairs]
    todo: List[Tuple[Bits, Bits]] = []
    seen: Set[Tuple[Bits, Bits]] = set()
    for key in keys:
        if key not in memo_store and key not in seen:
            seen.add(key)
            todo.append(key)
    # prior-sweep hits and in-batch duplicates both skip the solver
    memo_hits = len(keys) - len(todo)

    fkey = None
    store_hits = 0
    if store is not None and todo:
        from repro.experiments.sweep_store import family_key
        fkey = family_key(family)
        stored = store.load_pairs(fkey)
        if stored:
            remaining: List[Tuple[Bits, Bits]] = []
            for key in todo:
                decision = stored.get(key)
                if decision is None:
                    remaining.append(key)
                else:
                    memo_store[key] = decision
                    store_hits += 1
            todo = remaining

    decided: Optional[List[bool]] = None
    timings: Dict[Tuple[Bits, Bits], float] = {}
    counters = {"batched": 0}
    if jobs > 1 and len(todo) > 1:
        if warm:
            from repro.experiments.warm_pool import pool_decisions
            decided = pool_decisions(family, todo, jobs, timeout=timeout,
                                     retries=retries, store=store, fkey=fkey,
                                     batch=batch)
        if decided is None:
            from repro.experiments.sweep import parallel_decisions
            decided = parallel_decisions(family, todo, jobs, timeout=timeout,
                                         retries=retries, store=store,
                                         fkey=fkey, batch=batch)
    if decided is None:
        from repro.experiments.sweep import _decide_serial
        decided = _decide_serial(family, todo, store=store, fkey=fkey,
                                 batch=batch, timings=timings,
                                 counters=counters)
    for key, decision in zip(todo, decided):
        memo_store[key] = decision

    solve_ms = ([timings[key] * 1000.0 for key in todo if key in timings]
                or None)
    return SweepReport(
        decisions=[memo_store[key] for key in keys],
        pairs=len(keys),
        unique_pairs=len(todo) + store_hits,
        memo_hits=memo_hits,
        solved=len(todo),
        store_hits=store_hits,
        batched=counters["batched"],
        solve_ms=solve_ms,
    )


def pair_repro_command(
    family: LowerBoundGraphFamily,
    x: Sequence[int],
    y: Sequence[int],
) -> str:
    """A copy-pasteable one-liner re-checking one (x, y) pair, in the
    ``repro check`` repro-command convention.

    Only meaningful for CLI-registered families (``cli_name`` set);
    collection-backed families assume the CLI's default covering
    collection, which matches the experiment defaults.
    """
    name = getattr(family, "cli_name", None)
    if name is None:
        return (f"(no CLI repro available for {type(family).__name__}; "
                f"x={tuple(x)}, y={tuple(y)})")
    xbits = "".join(str(int(b)) for b in x)
    ybits = "".join(str(int(b)) for b in y)
    cmd = f"python -m repro verify {name}"
    k = getattr(family, "k", None)
    if isinstance(k, int):
        cmd += f" -k {k}"
    return f"{cmd} --x {xbits} --y {ybits}"


@dataclass
class IffReport:
    """Outcome of a predicate ⇔ f sweep."""

    checked: int
    true_instances: int
    false_instances: int

    def __str__(self) -> str:
        return (f"{self.checked} input pairs checked "
                f"({self.true_instances} TRUE / {self.false_instances} FALSE)")


def verify_iff(
    family: LowerBoundGraphFamily,
    input_pairs: Sequence[Tuple[Bits, Bits]],
    negate: bool = False,
    jobs: Optional[int] = None,
    memo: bool = True,
    store: Any = None,
    batch: Optional[bool] = None,
) -> IffReport:
    """Check item 4 of Definition 1.1: P(G_{x,y}) ⇔ f(x, y).

    Most constructions in the paper satisfy P iff DISJ = FALSE; they pass
    ``negate=True`` (the predicate then tracks ¬f, which is the same
    family up to renaming the predicate).

    Decisions run through :func:`sweep` (delta builds, per-pair
    memoization, optional ``jobs`` fan-out and persistent ``store``
    restores).  On failure, *all*
    mismatching pairs are collected into the
    :class:`FamilyValidationError`, each with a one-line repro command.
    """
    report = sweep(family, input_pairs, jobs=jobs, memo=memo, store=store,
                   batch=batch)
    true_count = 0
    false_count = 0
    mismatches: List[str] = []
    for (x, y), actual in zip(input_pairs, report.decisions):
        expected = family.function(x, y)
        if negate:
            expected = not expected
        if actual != expected:
            mismatches.append(
                f"  x={tuple(x)}, y={tuple(y)}: "
                f"predicate={actual}, expected={expected}\n"
                f"    reproduce: {pair_repro_command(family, x, y)}")
        if expected:
            true_count += 1
        else:
            false_count += 1
    if mismatches:
        raise FamilyValidationError(
            f"{len(mismatches)} predicate mismatch(es) over "
            f"{len(input_pairs)} pairs on {type(family).__name__}:\n"
            + "\n".join(mismatches))
    return IffReport(checked=len(input_pairs),
                     true_instances=true_count,
                     false_instances=false_count)
