"""Sections 4.2-4.3: hardness of approximating weighted k-MDS
(Theorems 4.4-4.5, Figure 5).

Construction.  Fix a covering collection C = S₁…S_T over [ℓ] with the
verified r-covering property (Lemma 4.2).  Vertices a_j, b_j per element
(joined by an edge), set vertices S_i and S̄_i, and specials a, b, R.
S_i – a_j iff j ∈ S_i; S̄_i – b_j iff j ∉ S_i; a – S_i; b – S̄_i;
R – a; R – b.  Weights: element vertices and a, b get α (any integer
> r), R gets 0, and — input-dependently — S_i costs 1 if x_i = 1 else α,
S̄_i costs 1 if y_i = 1 else α.

Lemma 4.3: minimum weight 2-MDS = 2 iff DISJ_T(x, y) = FALSE, and
otherwise every 2-MDS weighs more than r = c·log ℓ — an Ω(log ℓ)
approximation gap.  n = Θ(T), |Ecut| = Θ(ℓ), which instantiated at
ℓ = T^ε gives Ω(n^{1−ε}/log n) for O(log n)-approximation, and at
polylog ℓ gives Ω̃(n) for O(log log n)-approximation (Theorem 4.4).

For k > 2 each S_i–a_j and S̄_i–b_j edge becomes a path with k−2
internal α-weight vertices (Lemma 4.4 / Theorem 4.5).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.core.family import LowerBoundGraphFamily
from repro.covering.designs import CoveringCollection
from repro.graphs import Graph, Vertex
from repro.solvers.dominating import min_dominating_set_weight

A_SPECIAL = ("special", "a")
B_SPECIAL = ("special", "b")
R_SPECIAL = ("special", "R")


def avert(j: int) -> Vertex:
    return ("a", j)


def bvert(j: int) -> Vertex:
    return ("b", j)


def svert(i: int) -> Vertex:
    return ("S", i)


def scomp(i: int) -> Vertex:
    return ("Sbar", i)


class KMdsFamily(LowerBoundGraphFamily):
    """Figure 5 / Theorems 4.4-4.5 family for approximate k-MDS."""

    cli_name = "kmds"

    def __init__(self, collection: CoveringCollection, k: int = 2,
                 alpha: Optional[int] = None) -> None:
        if k < 2:
            raise ValueError("the construction needs k >= 2")
        self.collection = collection
        self.k = k
        self.alpha = alpha if alpha is not None else collection.r + 1
        if self.alpha <= collection.r:
            raise ValueError("alpha must exceed r")

    @property
    def k_bits(self) -> int:
        return self.collection.T

    @property
    def ell(self) -> int:
        return self.collection.universe_size

    @property
    def yes_weight(self) -> int:
        return 2

    @property
    def no_weight_exceeds(self) -> int:
        """Lemma 4.3/4.4: on TRUE (disjoint) instances the optimum exceeds
        r; with our integer weights it is in fact ≥ min(α, 3)."""
        return self.collection.r

    def _path_edges(self, g: Graph, u: Vertex, v: Vertex, tag: Tuple) -> None:
        """u–v for k = 2, else a path with k−2 internal α vertices."""
        if self.k == 2:
            g.add_edge(u, v)
            return
        prev = u
        for step in range(self.k - 2):
            mid = ("path", tag, step)
            g.add_vertex(mid, weight=self.alpha)
            g.add_edge(prev, mid)
            prev = mid
        g.add_edge(prev, v)

    def build_skeleton(self) -> Graph:
        g = Graph()
        ell, T = self.ell, self.collection.T
        for j in range(ell):
            g.add_vertex(avert(j), weight=self.alpha)
            g.add_vertex(bvert(j), weight=self.alpha)
            g.add_edge(avert(j), bvert(j))
        g.add_vertex(A_SPECIAL, weight=self.alpha)
        g.add_vertex(B_SPECIAL, weight=self.alpha)
        g.add_vertex(R_SPECIAL, weight=0)
        g.add_edge(R_SPECIAL, A_SPECIAL)
        g.add_edge(R_SPECIAL, B_SPECIAL)
        for i in range(T):
            g.add_vertex(svert(i))
            g.add_vertex(scomp(i))
            g.add_edge(A_SPECIAL, svert(i))
            g.add_edge(B_SPECIAL, scomp(i))
            for j in range(ell):
                if j in self.collection.sets[i]:
                    self._path_edges(g, svert(i), avert(j), ("a", i, j))
                else:
                    self._path_edges(g, scomp(i), bvert(j), ("b", i, j))
        return g

    def apply_inputs(self, g: Graph, x: Sequence[int], y: Sequence[int]) -> None:
        # weight-only deltas: the copy's adjacency-derived caches survive
        for i in range(self.collection.T):
            g.set_vertex_weight(svert(i), 1 if x[i] else self.alpha)
            g.set_vertex_weight(scomp(i), 1 if y[i] else self.alpha)

    def alice_vertices(self) -> Set[Vertex]:
        va: Set[Vertex] = {A_SPECIAL}
        va.update(avert(j) for j in range(self.ell))
        va.update(svert(i) for i in range(self.collection.T))
        if self.k > 2:
            # internal path vertices follow their S_i / a_j side
            base = self.skeleton()
            va.update(v for v in base.vertices()
                      if isinstance(v, tuple) and v[0] == "path"
                      and v[1][0] == "a")
        return va

    def predicate(self, graph: Graph) -> bool:
        """P: a k-MDS of weight ≤ 2 exists (iff DISJ = FALSE)."""
        return min_dominating_set_weight(graph, k=self.k) <= self.yes_weight

    def make_batch_kernel(self, skeleton: Graph):
        """Distance-k ball masks once; the deltas are weight-only
        (``apply_inputs`` re-weights S_i / S̄_i), so each pair swaps 2T
        weights before the set-cover search."""
        from repro.solvers.batch_kernels import WeightedDominationBatchKernel
        T = self.collection.T
        return WeightedDominationBatchKernel(
            skeleton,
            x_vertices=[svert(i) for i in range(T)],
            y_vertices=[scomp(i) for i in range(T)],
            alpha=self.alpha, k=self.k, yes_weight=self.yes_weight)

    def optimum(self, graph: Graph) -> float:
        return min_dominating_set_weight(graph, k=self.k)

    def gap_ratio(self) -> float:
        """The approximation factor ruled out: (r/2, i.e. Ω(log ℓ))."""
        return self.no_weight_exceeds / self.yes_weight
