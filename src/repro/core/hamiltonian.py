"""The Figure 2 family: directed Hamiltonian path and cycle
(Theorems 2.2 and 2.3, Claims 2.1-2.6).

Construction (Section 2.2.1).  k a power of two; K = k².  Special
vertices start, end, s¹₁, s²₁, s¹₂, s²₂; rows a^i_1, a^i_2, b^i_1, b^i_2.
For each box c ∈ [2·log k] there are vertices g_c, r_c and, per track
q ∈ {t, f} and slot d ∈ [k], a gadget of launch ℓ, skip σ and burn β
vertices.  The *wheel* vertex of gadget (c, d, q) is not new — it is a
reoccurrence of a row vertex:

- boxes c < log k host rows with subscript 1, boxes c ≥ log k subscript 2;
- track t hosts the rows whose relevant bit is 1, track f those with 0;
- slots d < k/2 are a-rows, slots d ≥ k/2 are b-rows (d-th in index order).

Edges: g_c → ℓ^{c,0}_q; ℓ → {σ, wheel}; wheel → β; σ ↔ β;
σ, β → next (ℓ^{c,d+1}_q, g_{c+1}, or r_{2log k−1});
β → prev (ℓ^{c,d−1}_q, r_{c−1}, or s¹₁); r_c → ℓ^{c,k−1}_q;
start → g_0; s¹₁ → a^i_1; a^i_2 → s²₁ → s¹₂ → b^i_1; b^i_2 → s²₂ → end;
input edges a^i_1 → a^j_2 iff x_{i,j} = 1 and b^i_1 → b^j_2 iff y_{i,j} = 1.

Claims 2.1/2.2: a directed Hamiltonian path exists iff
DISJ(x, y) = FALSE.  n = Θ(k·log k), |Ecut| = O(log k); Theorem 1.1 gives
Ω(n²/log⁴ n) (Theorem 2.2).  Claim 2.6 adds a ``middle`` vertex with
end → middle → start, turning the path family into a cycle family
(Theorem 2.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.family import LowerBoundGraphFamily
from repro.core.mds import _check_power_of_two
from repro.graphs import DiGraph, Vertex
from repro.solvers.hamilton import (
    find_hamiltonian_cycle,
    find_hamiltonian_path,
    is_hamiltonian_cycle,
    is_hamiltonian_path,
)

START = "start"
END = "end"
MIDDLE = "middle"
S11 = ("s", 1, 1)
S21 = ("s", 2, 1)
S12 = ("s", 1, 2)
S22 = ("s", 2, 2)


def arow(ell: int, i: int) -> Vertex:
    return ("row", f"A{ell}", i)


def brow(ell: int, i: int) -> Vertex:
    return ("row", f"B{ell}", i)


def launch(c: int, d: int, q: str) -> Vertex:
    return ("l", c, d, q)


def skip(c: int, d: int, q: str) -> Vertex:
    return ("sigma", c, d, q)


def burn(c: int, d: int, q: str) -> Vertex:
    return ("beta", c, d, q)


class HamiltonianPathFamily(LowerBoundGraphFamily):
    """Figure 2 / Theorem 2.2 family for directed Hamiltonian path."""

    cli_name = "hamiltonian-path"

    def __init__(self, k: int) -> None:
        self.k = k
        self.log_k = _check_power_of_two(k)
        self.n_boxes = 2 * self.log_k

    @property
    def k_bits(self) -> int:
        return self.k * self.k

    # ------------------------------------------------------------------
    def wheel(self, c: int, d: int, q: str) -> Vertex:
        """The row vertex serving as wheel^{c,d}_q."""
        k = self.k
        ell = 1 if c < self.log_k else 2
        bit_pos = c if c < self.log_k else c - self.log_k
        want = 1 if q == "t" else 0
        matching = [i for i in range(k) if (i >> bit_pos) & 1 == want]
        if d < k // 2:
            return arow(ell, matching[d])
        return brow(ell, matching[d - k // 2])

    def _forward_target(self, c: int, d: int, q: str) -> Vertex:
        if d != self.k - 1:
            return launch(c, d + 1, q)
        if c != self.n_boxes - 1:
            return ("g", c + 1)
        return ("r", self.n_boxes - 1)

    def _backward_target(self, c: int, d: int, q: str) -> Vertex:
        if d != 0:
            return launch(c, d - 1, q)
        if c != 0:
            return ("r", c - 1)
        return S11

    def build_skeleton(self) -> DiGraph:
        g = DiGraph()
        k = self.k
        for v in (START, END, S11, S21, S12, S22):
            g.add_vertex(v)
        for ell in (1, 2):
            for i in range(k):
                g.add_vertex(arow(ell, i))
                g.add_vertex(brow(ell, i))
        # special-vertex wiring
        for i in range(k):
            g.add_edge(S11, arow(1, i))
            g.add_edge(arow(2, i), S21)
            g.add_edge(S12, brow(1, i))
            g.add_edge(brow(2, i), S22)
        g.add_edge(S21, S12)
        g.add_edge(S22, END)
        g.add_edge(START, ("g", 0))
        # boxes
        for c in range(self.n_boxes):
            g.add_vertex(("g", c))
            g.add_vertex(("r", c))
            for q in ("t", "f"):
                g.add_edge(("g", c), launch(c, 0, q))
                g.add_edge(("r", c), launch(c, k - 1, q))
                for d in range(k):
                    l, s, b = launch(c, d, q), skip(c, d, q), burn(c, d, q)
                    w = self.wheel(c, d, q)
                    g.add_edge(l, s)
                    g.add_edge(l, w)
                    g.add_edge(w, b)
                    g.add_edge(s, b)
                    g.add_edge(b, s)
                    fwd = self._forward_target(c, d, q)
                    g.add_edge(s, fwd)
                    g.add_edge(b, fwd)
                    g.add_edge(b, self._backward_target(c, d, q))
        return g

    def apply_inputs(self, g: DiGraph, x: Sequence[int],
                     y: Sequence[int]) -> None:
        k = self.k
        for i in range(k):
            for j in range(k):
                if x[i * k + j]:
                    g.add_edge(arow(1, i), arow(2, j))
                if y[i * k + j]:
                    g.add_edge(brow(1, i), brow(2, j))

    def alice_vertices(self) -> Set[Vertex]:
        """A-rows, their gadget slots (d < k/2), and the box scaffolding."""
        k = self.k
        va: Set[Vertex] = {START, S11, S21}
        for ell in (1, 2):
            va.update(arow(ell, i) for i in range(k))
        for c in range(self.n_boxes):
            va.add(("g", c))
            va.add(("r", c))
            for q in ("t", "f"):
                for d in range(k // 2):
                    va.update({launch(c, d, q), skip(c, d, q), burn(c, d, q)})
        return va

    def predicate(self, graph: DiGraph) -> bool:
        """P: a directed Hamiltonian path exists (iff DISJ = FALSE)."""
        return find_hamiltonian_path(graph) is not None

    def _input_arcs(self) -> Tuple[List[Tuple[Vertex, Vertex]],
                                   List[Tuple[Vertex, Vertex]]]:
        """The per-bit input arcs, in bit order p = i·k + j (mirrors
        :meth:`apply_inputs`)."""
        k = self.k
        x_arcs = [(arow(1, i), arow(2, j))
                  for i in range(k) for j in range(k)]
        y_arcs = [(brow(1, i), brow(2, j))
                  for i in range(k) for j in range(k)]
        return x_arcs, y_arcs

    def make_batch_kernel(self, skeleton: DiGraph):
        """Successor/predecessor bitmask rows once; each pair ORs its
        input-arc bits and runs the mask-level search (path existence
        via the hub reduction to the cycle solver)."""
        from repro.solvers.batch_kernels import HamiltonianPathBatchKernel
        x_arcs, y_arcs = self._input_arcs()
        return HamiltonianPathBatchKernel(skeleton, x_arcs, y_arcs)

    # ------------------------------------------------------------------
    def witness_path(self, x: Sequence[int], y: Sequence[int]) -> List[Vertex]:
        """The explicit Hamiltonian path of Claim 2.1 (DISJ = FALSE)."""
        k, log_k = self.k, self.log_k
        idx = next(p for p in range(k * k) if x[p] == 1 and y[p] == 1)
        i, j = divmod(idx, k)
        # chooses: at box c take track f if the relevant bit of i (or j)
        # is 1, else track t, so the special rows are never wheel-visited
        choose: List[str] = []
        for c in range(self.n_boxes):
            bit_pos = c if c < log_k else c - log_k
            val = i if c < log_k else j
            choose.append("f" if (val >> bit_pos) & 1 else "t")

        path: List[Vertex] = [START]
        visited_rows: Set[Vertex] = set()
        # forward sweep over the chosen tracks
        for c in range(self.n_boxes):
            path.append(("g", c))
            q = choose[c]
            for d in range(k):
                l, s, b = launch(c, d, q), skip(c, d, q), burn(c, d, q)
                w = self.wheel(c, d, q)
                path.append(l)
                if w not in visited_rows:
                    visited_rows.add(w)
                    path.extend([w, b, s])   # wheel-forward-step
                else:
                    path.extend([s, b])      # beta-forward-step
        path.append(("r", self.n_boxes - 1))
        # backward sweep over the opposite tracks
        for c in range(self.n_boxes - 1, -1, -1):
            q = "f" if choose[c] == "t" else "t"
            for d in range(k - 1, -1, -1):
                path.extend([launch(c, d, q), skip(c, d, q), burn(c, d, q)])
            path.append(("r", c - 1) if c != 0 else S11)
        # the four special rows and the tail
        path.extend([arow(1, i), arow(2, j), S21, S12,
                     brow(1, i), brow(2, j), S22, END])
        # explicitly the *path* graph, even when self is a cycle family
        graph = HamiltonianPathFamily.build_skeleton(self)
        self.apply_inputs(graph, x, y)
        assert is_hamiltonian_path(graph, path), "witness path invalid"
        return path


class HamiltonianCycleFamily(HamiltonianPathFamily):
    """Claim 2.6 / Theorem 2.3: add ``middle`` with end → middle → start."""

    cli_name = "hamiltonian-cycle"

    def build_skeleton(self) -> DiGraph:
        g = super().build_skeleton()
        g.add_edge(END, MIDDLE)
        g.add_edge(MIDDLE, START)
        return g

    def alice_vertices(self) -> Set[Vertex]:
        return super().alice_vertices() | {MIDDLE}

    def predicate(self, graph: DiGraph) -> bool:
        """P: a directed Hamiltonian cycle exists (iff DISJ = FALSE)."""
        return find_hamiltonian_cycle(graph) is not None

    def make_batch_kernel(self, skeleton: DiGraph):
        from repro.solvers.batch_kernels import HamiltonianCycleBatchKernel
        x_arcs, y_arcs = self._input_arcs()
        return HamiltonianCycleBatchKernel(skeleton, x_arcs, y_arcs)

    def witness_cycle(self, x: Sequence[int], y: Sequence[int]) -> List[Vertex]:
        path = self.witness_path(x, y)
        cycle = path + [MIDDLE]
        assert is_hamiltonian_cycle(self.build(x, y), cycle)
        return cycle
