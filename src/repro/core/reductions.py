"""CONGEST-efficient reductions (Sections 2.2.2, 2.2.3, 2.3.1).

The paper stresses that sequential reductions can only be reused when
they preserve the family parameters (vertex count, cut size).  This
module implements:

- Lemma 2.2's transformation: directed graph G → undirected G' with
  vertices v_in, v_middle, v_out, such that G has a directed Hamiltonian
  cycle iff G' has a Hamiltonian cycle.  Each original vertex simulates
  its three copies, so a round of an algorithm on G' costs 2 rounds on G.
- Lemma 2.3's transformation: undirected G, pivot v → G' with v split
  into v1, v2 plus pendant s, t, such that G has a Hamiltonian cycle iff
  G' has a Hamiltonian path.
- Claim 2.7: G has a 2-ECSS with exactly n edges iff G is Hamiltonian.
- Theorem 2.6: a generic family-reduction wrapper that derives a new
  :class:`LowerBoundGraphFamily` from an existing one through a graph
  transformation that maps VA → V'A deterministically.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set, Tuple, Union

from repro.core.family import LowerBoundGraphFamily
from repro.graphs import DiGraph, Graph, Vertex
from repro.solvers.hamilton import (
    find_hamiltonian_cycle,
    find_hamiltonian_path,
)

AnyGraph = Union[Graph, DiGraph]


# ----------------------------------------------------------------------
# Lemma 2.2: directed Hamiltonian cycle → undirected Hamiltonian cycle
# ----------------------------------------------------------------------
def directed_to_undirected_hc(dg: DiGraph) -> Graph:
    """The classic in/middle/out split [27], as used by Lemma 2.2.

    V' = {v_in, v_mid, v_out}, E' = {(v_in, v_mid), (v_mid, v_out)} ∪
    {(u_out, v_in) : (u, v) ∈ E}.  Every vertex of G simulates its three
    copies, so the transformation is free in CONGEST (2x round overhead).
    """
    g = Graph()
    for v in dg.vertices():
        g.add_edge(("in", v), ("mid", v))
        g.add_edge(("mid", v), ("out", v))
    for u, v in dg.edges():
        g.add_edge(("out", u), ("in", v))
    return g


# ----------------------------------------------------------------------
# Lemma 2.3: Hamiltonian cycle → Hamiltonian path
# ----------------------------------------------------------------------
def hc_to_hp(graph: Graph, pivot: Optional[Vertex] = None) -> Graph:
    """Split ``pivot`` (default: minimum-id vertex, as the distributed
    implementation elects) into v1, v2 with pendants s, t [27]."""
    if pivot is None:
        pivot = min(graph.vertices(), key=repr)
    g = Graph()
    for v in graph.vertices():
        if v != pivot:
            g.add_vertex(v)
    g.add_vertices([("pivot", 1), ("pivot", 2), "hp_s", "hp_t"])
    for u, v in graph.edges():
        if pivot not in (u, v):
            g.add_edge(u, v)
        else:
            other = v if u == pivot else u
            g.add_edge(("pivot", 1), other)
            g.add_edge(("pivot", 2), other)
    g.add_edge("hp_s", ("pivot", 1))
    g.add_edge(("pivot", 2), "hp_t")
    return g


# ----------------------------------------------------------------------
# Claim 2.7: 2-ECSS with n edges ⇔ Hamiltonian cycle
# ----------------------------------------------------------------------
def two_ecss_n_edges_iff_hamiltonian(graph: Graph) -> bool:
    """Decide "G has a 2-edge-connected spanning subgraph with exactly
    n edges" via Claim 2.7's equivalence with Hamiltonicity."""
    return find_hamiltonian_cycle(graph) is not None


# ----------------------------------------------------------------------
# Theorem 2.6: reductions between families of lower bound graphs
# ----------------------------------------------------------------------
class ReducedFamily(LowerBoundGraphFamily):
    """Derive a family for predicate P2 from one for P1 (Theorem 2.6).

    ``transform`` maps G_{x,y} to G'_{x,y}; ``map_alice`` maps the base
    family's VA to V'A.  The conditions of Theorem 2.6 (V'A determined by
    VA, intra-side edges by intra-side edges, cut by cut, and P1 ⇔ P2)
    are *checked* by ``validate_family``/``verify_iff`` rather than
    assumed — this is the executable analogue of the theorem statement.
    """

    def __init__(
        self,
        base: LowerBoundGraphFamily,
        transform: Callable[[AnyGraph], AnyGraph],
        map_alice: Callable[[Set[Vertex]], Set[Vertex]],
        predicate2: Callable[[AnyGraph], bool],
        name: str = "ReducedFamily",
    ) -> None:
        self.base = base
        self.transform = transform
        self.map_alice = map_alice
        self.predicate2 = predicate2
        self.function = base.function
        self._name = name

    @property
    def k_bits(self) -> int:
        return self.base.k_bits

    def build(self, x: Sequence[int], y: Sequence[int]) -> AnyGraph:
        # a whole-graph transform can't split into skeleton + delta, but
        # the base family's delta path still makes its half incremental
        return self.transform(self.base.build(x, y))

    def alice_vertices(self) -> Set[Vertex]:
        return self.map_alice(self.base.alice_vertices())

    def predicate(self, graph: AnyGraph) -> bool:
        return self.predicate2(graph)


def undirected_hc_family(base_cycle_family) -> ReducedFamily:
    """Theorem 2.4 (cycle half): apply Lemma 2.2 to the directed-cycle
    family.  Alice's side maps to the three copies of each VA vertex."""

    def map_alice(va: Set[Vertex]) -> Set[Vertex]:
        return {(tag, v) for v in va for tag in ("in", "mid", "out")}

    return ReducedFamily(
        base=base_cycle_family,
        transform=directed_to_undirected_hc,
        map_alice=map_alice,
        predicate2=lambda g: find_hamiltonian_cycle(g) is not None,
        name="UndirectedHamiltonianCycleFamily",
    )


def undirected_hp_family(base_cycle_family, pivot: Vertex) -> ReducedFamily:
    """Theorem 2.4 (path half): Lemma 2.2 then Lemma 2.3 with a fixed
    pivot (the distributed algorithm elects the min-id vertex; a fixed
    family uses a fixed pivot, which must belong to one side)."""

    def transform(dg: DiGraph) -> Graph:
        return hc_to_hp(directed_to_undirected_hc(dg), pivot=("in", pivot))

    def map_alice(va: Set[Vertex]) -> Set[Vertex]:
        out = {(tag, v) for v in va for tag in ("in", "mid", "out")}
        if pivot in va:
            out -= {("in", pivot)}
            out |= {("pivot", 1), ("pivot", 2), "hp_s", "hp_t"}
        return out

    return ReducedFamily(
        base=base_cycle_family,
        transform=transform,
        map_alice=map_alice,
        predicate2=lambda g: find_hamiltonian_path(g) is not None,
        name="UndirectedHamiltonianPathFamily",
    )


def two_ecss_family(base_cycle_family) -> ReducedFamily:
    """Theorem 2.5: the undirected-HC family, with the predicate read as
    "has a 2-ECSS with exactly n edges" (Claim 2.7)."""

    def map_alice(va: Set[Vertex]) -> Set[Vertex]:
        return {(tag, v) for v in va for tag in ("in", "mid", "out")}

    return ReducedFamily(
        base=base_cycle_family,
        transform=directed_to_undirected_hc,
        map_alice=map_alice,
        predicate2=two_ecss_n_edges_iff_hamiltonian,
        name="TwoEcssFamily",
    )
