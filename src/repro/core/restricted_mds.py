"""Section 4.5: restricted hardness of approximating MDS (Theorem 4.8).

The construction (Figure 7) modifies the 2-MDS graph: the element pairs
a_j, b_j collapse into single *shared* vertices j ∈ [ℓ] adjacent to S_i
(j ∈ S_i) and to S̄_i (j ∉ S_i).  The specials a, b, R and the weighting
are as in Section 4.2.  Lemma 4.7: minimum weight MDS = 2 iff
DISJ_T(x, y) = FALSE, else > r.

Because the element vertices see both players' inputs, this is *not* a
Definition 1.1 family; the lower bound only applies to *local aggregate
algorithms* (Definition 4.1), which Alice and Bob can co-simulate by
exchanging two partial aggregates per shared vertex per round
(O(ℓ·log n) bits) — implemented in
:func:`repro.congest.local_aggregate.simulate_shared_two_party`.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.congest.local_aggregate import (
    GreedyMdsSpec,
    LocalAggregateRun,
    simulate_shared_two_party,
)
from repro.core.family import DeltaBuildMixin
from repro.core.kmds import A_SPECIAL, B_SPECIAL, R_SPECIAL, scomp, svert
from repro.covering.designs import CoveringCollection
from repro.graphs import Graph, Vertex
from repro.solvers.dominating import min_dominating_set_weight


def element(j: int) -> Vertex:
    return ("elem", j)


class RestrictedMdsConstruction(DeltaBuildMixin):
    """Figure 7 construction with shared element vertices.

    Not a :class:`LowerBoundGraphFamily` (the shared vertices see both
    inputs), but it is still a fixed skeleton with weight-only deltas,
    so it rides the same incremental-build protocol.
    """

    def __init__(self, collection: CoveringCollection,
                 alpha: int = None) -> None:  # type: ignore[assignment]
        self.collection = collection
        self.alpha = alpha if alpha is not None else collection.r + 1

    @property
    def k_bits(self) -> int:
        return self.collection.T

    @property
    def ell(self) -> int:
        return self.collection.universe_size

    def build_skeleton(self) -> Graph:
        g = Graph()
        for j in range(self.ell):
            g.add_vertex(element(j), weight=self.alpha)
        g.add_vertex(A_SPECIAL, weight=0)
        g.add_vertex(B_SPECIAL, weight=0)
        g.add_vertex(R_SPECIAL, weight=0)
        g.add_edge(R_SPECIAL, A_SPECIAL)
        g.add_edge(R_SPECIAL, B_SPECIAL)
        for i in range(self.collection.T):
            g.add_vertex(svert(i), weight=self.alpha)
            g.add_vertex(scomp(i), weight=self.alpha)
            g.add_edge(A_SPECIAL, svert(i))
            g.add_edge(B_SPECIAL, scomp(i))
            for j in range(self.ell):
                if j in self.collection.sets[i]:
                    g.add_edge(svert(i), element(j))
                else:
                    g.add_edge(scomp(i), element(j))
        return g

    def apply_inputs(self, g: Graph, x: Sequence[int], y: Sequence[int]) -> None:
        for i in range(self.collection.T):
            g.set_vertex_weight(svert(i), 1 if x[i] else self.alpha)
            g.set_vertex_weight(scomp(i), 1 if y[i] else self.alpha)

    def alice_vertices(self) -> Set[Vertex]:
        va: Set[Vertex] = {A_SPECIAL}
        va.update(svert(i) for i in range(self.collection.T))
        return va

    def shared_vertices(self) -> Set[Vertex]:
        return {element(j) for j in range(self.ell)}

    def optimum(self, graph: Graph) -> float:
        return min_dominating_set_weight(graph, k=1)

    def predicate(self, graph: Graph) -> bool:
        """Minimum weight MDS ≤ 2 (iff DISJ = FALSE, Lemma 4.7)."""
        return self.optimum(graph) <= 2

    # ------------------------------------------------------------------
    def simulate_greedy_two_party(self, x: Sequence[int], y: Sequence[int],
                                  ) -> LocalAggregateRun:
        """Run the weight-aware greedy MDS (a genuine local aggregate
        algorithm) under the Theorem 4.8 shared-vertex simulation,
        returning the measured two-party cost."""
        graph = self.build(x, y)
        return simulate_shared_two_party(
            graph, self.alice_vertices(), self.shared_vertices(),
            GreedyMdsSpec())
