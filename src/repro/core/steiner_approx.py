"""Section 4.4: hardness of approximating Steiner tree variants
(Theorems 4.6-4.7, Figure 6).

Both families reuse the Figure 5 covering-collection skeleton.

Node-weighted Steiner tree (Theorem 4.6): the 2-MDS graph with weights
0 on {a_j}, {b_j}, a, b, R and input-dependent 1/α on S_i, S̄_i;
terminals A ∪ B.  Lemma 4.5: a Steiner tree of weight 2 exists iff
DISJ = FALSE, else every Steiner tree weighs > r.

Directed Steiner tree (Theorem 4.7): root R, terminals A ∪ B, directed
edges (R,a), (R,b) and (a_j, b_j), (b_j, a_j) of weight 0; (a, S_i),
(b, S̄_i) of weight 1; fallback edges (a, a_j), (b, b_j) of weight α;
and — input-dependently — the *presence* of (S_i, a_j) for j ∈ S_i iff
x_i = 1, of (S̄_i, b_j) for j ∉ S_i iff y_i = 1.  Lemma 4.6: minimum
weight 2 iff DISJ = FALSE, else > r.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.core.family import LowerBoundGraphFamily
from repro.core.kmds import (
    A_SPECIAL,
    B_SPECIAL,
    R_SPECIAL,
    avert,
    bvert,
    scomp,
    svert,
)
from repro.covering.designs import CoveringCollection
from repro.graphs import DiGraph, Graph, Vertex
from repro.solvers.steiner import (
    min_directed_steiner_reachability_cost,
    min_node_weighted_steiner_cost,
)


class NodeWeightedSteinerFamily(LowerBoundGraphFamily):
    """Theorem 4.6 / Lemma 4.5 family."""

    cli_name = "node-weighted-steiner"

    def __init__(self, collection: CoveringCollection,
                 alpha: int = None) -> None:  # type: ignore[assignment]
        self.collection = collection
        self.alpha = alpha if alpha is not None else collection.r + 1

    @property
    def k_bits(self) -> int:
        return self.collection.T

    @property
    def ell(self) -> int:
        return self.collection.universe_size

    def terminals(self) -> List[Vertex]:
        return [avert(j) for j in range(self.ell)] + \
               [bvert(j) for j in range(self.ell)]

    def build_skeleton(self) -> Graph:
        g = Graph()
        ell, T = self.ell, self.collection.T
        for j in range(ell):
            g.add_vertex(avert(j), weight=0)
            g.add_vertex(bvert(j), weight=0)
            g.add_edge(avert(j), bvert(j))
        for v in (A_SPECIAL, B_SPECIAL, R_SPECIAL):
            g.add_vertex(v, weight=0)
        g.add_edge(R_SPECIAL, A_SPECIAL)
        g.add_edge(R_SPECIAL, B_SPECIAL)
        for i in range(T):
            g.add_vertex(svert(i))
            g.add_vertex(scomp(i))
            g.add_edge(A_SPECIAL, svert(i))
            g.add_edge(B_SPECIAL, scomp(i))
            for j in range(ell):
                if j in self.collection.sets[i]:
                    g.add_edge(svert(i), avert(j))
                else:
                    g.add_edge(scomp(i), bvert(j))
        return g

    def apply_inputs(self, g: Graph, x: Sequence[int], y: Sequence[int]) -> None:
        for i in range(self.collection.T):
            g.set_vertex_weight(svert(i), 1 if x[i] else self.alpha)
            g.set_vertex_weight(scomp(i), 1 if y[i] else self.alpha)

    def alice_vertices(self) -> Set[Vertex]:
        va: Set[Vertex] = {A_SPECIAL}
        va.update(avert(j) for j in range(self.ell))
        va.update(svert(i) for i in range(self.collection.T))
        return va

    def optimum(self, graph: Graph) -> float:
        return min_node_weighted_steiner_cost(graph, self.terminals())

    def predicate(self, graph: Graph) -> bool:
        """P: a node-weighted Steiner tree of weight ≤ 2 exists (iff
        DISJ = FALSE)."""
        return self.optimum(graph) <= 2


class DirectedSteinerFamily(LowerBoundGraphFamily):
    """Theorem 4.7 / Lemma 4.6 family."""

    cli_name = "directed-steiner"

    def __init__(self, collection: CoveringCollection,
                 alpha: int = None) -> None:  # type: ignore[assignment]
        self.collection = collection
        self.alpha = alpha if alpha is not None else collection.r + 1

    @property
    def k_bits(self) -> int:
        return self.collection.T

    @property
    def ell(self) -> int:
        return self.collection.universe_size

    def terminals(self) -> List[Vertex]:
        return [avert(j) for j in range(self.ell)] + \
               [bvert(j) for j in range(self.ell)]

    def build_skeleton(self) -> DiGraph:
        g = DiGraph()
        ell, T = self.ell, self.collection.T
        g.add_edge(R_SPECIAL, A_SPECIAL, weight=0)
        g.add_edge(R_SPECIAL, B_SPECIAL, weight=0)
        for j in range(ell):
            g.add_edge(avert(j), bvert(j), weight=0)
            g.add_edge(bvert(j), avert(j), weight=0)
            g.add_edge(A_SPECIAL, avert(j), weight=self.alpha)
            g.add_edge(B_SPECIAL, bvert(j), weight=self.alpha)
        for i in range(T):
            g.add_edge(A_SPECIAL, svert(i), weight=1)
            g.add_edge(B_SPECIAL, scomp(i), weight=1)
        return g

    def apply_inputs(self, g: DiGraph, x: Sequence[int],
                     y: Sequence[int]) -> None:
        for i in range(self.collection.T):
            for j in range(self.ell):
                if j in self.collection.sets[i]:
                    if x[i]:
                        g.add_edge(svert(i), avert(j), weight=0)
                else:
                    if y[i]:
                        g.add_edge(scomp(i), bvert(j), weight=0)

    def alice_vertices(self) -> Set[Vertex]:
        va: Set[Vertex] = {A_SPECIAL}
        va.update(avert(j) for j in range(self.ell))
        va.update(svert(i) for i in range(self.collection.T))
        return va

    def optimum(self, graph: DiGraph) -> float:
        """Exact directed Steiner cost via the cover structure: terminals
        decompose into per-element coverage by weight-1 set edges or
        weight-α fallbacks (the generic reachability solver cross-checks
        this on small instances in the tests)."""
        from repro.solvers.dominating import min_set_cover

        ell = self.ell
        sets: List[Tuple[List[int], float]] = []
        for i in range(self.collection.T):
            covered = [j for j in range(ell)
                       if graph.has_edge(svert(i), avert(j))]
            sets.append((covered, 1.0))
            covered_b = [j for j in range(ell)
                         if graph.has_edge(scomp(i), bvert(j))]
            sets.append((covered_b, 1.0))
        for j in range(ell):
            sets.append(([j], float(self.alpha)))
        weight, choice = min_set_cover(ell, sets)
        assert choice is not None
        return weight

    def predicate(self, graph: DiGraph) -> bool:
        """P: a directed Steiner tree of weight ≤ 2 exists (iff
        DISJ = FALSE)."""
        return self.optimum(graph) <= 2
