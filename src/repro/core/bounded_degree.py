"""Section 3: lower bounds in bounded-degree graphs (Theorems 3.1-3.4).

The chain of (non-distributed) reductions of Section 3.1, applied to the
CKP-style MaxIS family:

  G  →  φ        (Claim 3.1:      f(φ) = α(G) + |E|)
  φ  →  φ′       (Corollary 3.1:  f(φ′) = f(φ) + m_exp, every variable in
                  O(1) clauses, via the Claim 3.2 expander gadgets)
  φ′ →  G′       (Claim 3.4:      α(G′) = f(φ′), maximum degree ≤ 5)

so α(G′) = α(G) + |E(G)| + m_exp, G′ has maximum degree 5 and — when G
has constant diameter — logarithmic diameter (Claim 3.5).

Unlike the Section 2 constructions, G′'s vertex set varies with the
inputs (degrees determine gadget sizes), so Section 3 does not go
through Theorem 1.1: Claim 3.6 has Alice and Bob simulate the algorithm
on G′ directly and additionally exchange m_G and m_exp.  That protocol
is implemented in :mod:`repro.limits.protocols`
(``solve_disjointness_via_bounded_degree_maxis``).

Theorem 3.3's MVC → MDS edge-vertex reduction and a verified MVC →
weighted 2-spanner reduction (Theorem 3.4; see DESIGN.md on the [9]
substitution) are also here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.mvc import MvcMaxISFamily
from repro.expanders.gadget import ExpanderGadget, build_gadget
from repro.formulas.cnf import CNF, Literal, neg, pos
from repro.graphs import Graph, Vertex


# ----------------------------------------------------------------------
# G → φ (Claim 3.1)
# ----------------------------------------------------------------------
def graph_to_formula(graph: Graph) -> CNF:
    """φ: a variable and unit clause per vertex, (¬x_u ∨ ¬x_v) per edge.

    f(φ) = α(G) + |E| (Claim 3.1)."""
    cnf = CNF()
    for v in graph.vertices():
        cnf.add_clause(pos(("v", v)))
    for u, v in graph.edges():
        cnf.add_clause(neg(("v", u)), neg(("v", v)))
    return cnf


# ----------------------------------------------------------------------
# φ → φ′ (Claim 3.3 / Corollary 3.1)
# ----------------------------------------------------------------------
_GADGET_CACHE: Dict[Tuple[int, int], ExpanderGadget] = {}


def _cached_gadget(d: int, seed: int) -> ExpanderGadget:
    """Gadgets are deterministic in (d, seed) and read-only, so they are
    shared across variables and across builds (the flow verification of
    Claim 3.2 is the expensive part)."""
    key = (d, seed)
    if key not in _GADGET_CACHE:
        _GADGET_CACHE[key] = build_gadget(d, seed=seed)
    return _GADGET_CACHE[key]


@dataclass
class ExpandedFormula:
    cnf: CNF
    n_expander_clauses: int
    gadgets: Dict[Hashable, ExpanderGadget] = field(repr=False,
                                                    default_factory=dict)


def expand_formula(cnf: CNF, seed: int = 0) -> ExpandedFormula:
    """φ′: replace each variable's occurrences by fresh copies tied
    together with expander equality clauses (Section 3.1).

    Every variable of φ′ appears in O(1) clauses and each literal at most
    4 times; f(φ′) = f(φ) + m_exp (Corollary 3.1)."""
    occurrences: Dict[Hashable, int] = {}
    for clause in cnf.clauses:
        for var, __ in clause:
            occurrences[var] = occurrences.get(var, 0) + 1

    gadgets: Dict[Hashable, ExpanderGadget] = {}
    for var, d in occurrences.items():
        gadgets[var] = _cached_gadget(d, seed)

    def copy_var(var: Hashable, gadget_vertex: Vertex) -> Hashable:
        return ("occ", var, gadget_vertex)

    new = CNF()
    seen_so_far: Dict[Hashable, int] = {}
    for clause in cnf.clauses:
        lits: List[Literal] = []
        for var, polarity in clause:
            slot = seen_so_far.get(var, 0)
            seen_so_far[var] = slot + 1
            dv = gadgets[var].distinguished[slot]
            lits.append((copy_var(var, dv), polarity))
        new.add_clause(*lits)

    m_exp = 0
    for var, gadget in gadgets.items():
        for u, v in gadget.graph.edges():
            cu, cv = copy_var(var, u), copy_var(var, v)
            new.add_clause(neg(cu), pos(cv))
            new.add_clause(neg(cv), pos(cu))
            m_exp += 2
    return ExpandedFormula(cnf=new, n_expander_clauses=m_exp, gadgets=gadgets)


# ----------------------------------------------------------------------
# φ′ → G′ (Claim 3.4)
# ----------------------------------------------------------------------
def formula_to_graph(cnf: CNF) -> Graph:
    """G′: a vertex per literal occurrence, clause edges between the two
    vertices of a 2-clause, conflict edges between every occurrence of x
    and every occurrence of ¬x.  α(G′) = f(φ′) (Claim 3.4)."""
    g = Graph()
    by_literal: Dict[Literal, List[Vertex]] = {}
    for c_idx, clause in enumerate(cnf.clauses):
        if len(clause) > 2:
            raise ValueError("formula_to_graph expects a (max-)2SAT formula")
        vertices = []
        for pos_idx, literal in enumerate(clause):
            v = ("cl", c_idx, pos_idx, literal)
            g.add_vertex(v)
            by_literal.setdefault(literal, []).append(v)
            vertices.append(v)
        if len(vertices) == 2:
            g.add_edge(vertices[0], vertices[1])
    for (var, polarity), verts in by_literal.items():
        opposite = by_literal.get((var, not polarity), [])
        for u in verts:
            for w in opposite:
                if not g.has_edge(u, w):
                    g.add_edge(u, w)
    return g


# ----------------------------------------------------------------------
# the full chain on the base family
# ----------------------------------------------------------------------
@dataclass
class BoundedDegreeInstance:
    """Everything produced by the Section 3 chain for one input pair."""

    base_graph: Graph
    formula: CNF
    expanded: ExpandedFormula
    graph: Graph                      # G′, max degree ≤ 5
    m_base_edges: int                 # m_G (Alice+Bob can compute jointly)
    alice_vertices: Set[Vertex] = field(repr=False, default_factory=set)

    @property
    def m_expander_clauses(self) -> int:
        return self.expanded.n_expander_clauses

    def alpha_offset(self) -> int:
        """α(G′) − α(G) = m_G + m_exp (Claims 3.1 + 3.4, Corollary 3.1)."""
        return self.m_base_edges + self.m_expander_clauses


class BoundedDegreeMaxIS:
    """The Section 3.2 construction over the CKP-style base family.

    Not a Definition 1.1 family (the vertex set varies with the inputs);
    the lower bound goes through the Claim 3.6 simulation instead, in
    which Alice and Bob also exchange m_G and m_exp.
    """

    def __init__(self, k: int, seed: int = 0) -> None:
        self.base = MvcMaxISFamily(k)
        self.seed = seed

    @property
    def k_bits(self) -> int:
        return self.base.k_bits

    def build(self, x: Sequence[int], y: Sequence[int]) -> BoundedDegreeInstance:
        # inherits the incremental path through the base family's build
        g = self.base.build(x, y)
        phi = graph_to_formula(g)
        expanded = expand_formula(phi, seed=self.seed)
        gprime = formula_to_graph(expanded.cnf)
        va = self.base.alice_vertices()

        def side_of(vertex: Vertex) -> bool:
            # ("cl", c, pos, ((tag...), polarity)) — find the base vertex
            literal = vertex[3]
            var = literal[0]
            # var is ("occ", ("v", base_vertex), gadget_vertex)
            base_vertex = var[1][1]
            return base_vertex in va

        alice = {v for v in gprime.vertices() if side_of(v)}
        return BoundedDegreeInstance(
            base_graph=g, formula=phi, expanded=expanded, graph=gprime,
            m_base_edges=g.m, alice_vertices=alice)

    def alpha_target(self, instance: BoundedDegreeInstance) -> int:
        """α(G′) value iff DISJ = FALSE (else it is one lower)."""
        return self.base.alpha_yes + instance.alpha_offset()

    def witness_independent_set(self, instance: BoundedDegreeInstance,
                                x: Sequence[int], y: Sequence[int],
                                ) -> List[Vertex]:
        """For intersecting inputs, the explicit IS of G′ with
        α(G) + m_G + m_exp vertices (the constructive composition of
        Claims 3.1, 3.3 and 3.4).

        The base witness becomes an assignment π (x_v true iff v is in
        the base IS); π extends to all occurrence copies uniformly, which
        satisfies every expander clause, every edge clause, and α vertex
        clauses; picking one satisfied-literal vertex per satisfied
        clause yields the independent set.
        """
        base_is = set(self.base.witness_independent_set(x, y))

        def truth(literal) -> bool:
            var, polarity = literal
            base_vertex = var[1][1]  # ("occ", ("v", w), gadget_vertex)
            return (base_vertex in base_is) == polarity

        chosen: List[Vertex] = []
        for c_idx, clause in enumerate(instance.expanded.cnf.clauses):
            for pos_idx, literal in enumerate(clause):
                if truth(literal):
                    chosen.append(("cl", c_idx, pos_idx, literal))
                    break
        return chosen


# ----------------------------------------------------------------------
# Theorem 3.3: MVC → MDS, degree- and diameter-preserving
# ----------------------------------------------------------------------
def mvc_to_mds_graph(graph: Graph) -> Graph:
    """Add an edge-vertex v_e adjacent to both endpoints of each edge.

    MDS(G') = MVC(G); degrees at most double and new vertices have
    degree 2, so bounded degree is preserved (proof of Theorem 3.3).
    Requires minimum degree 1 (an isolated vertex must join any
    dominating set but no vertex cover; the Section 3 instances are
    connected)."""
    if any(graph.degree(v) == 0 for v in graph.vertices()):
        raise ValueError("reduction requires minimum degree 1")
    g = graph.copy()
    for u, v in graph.edges():
        ev = ("edge", frozenset((u, v)))
        g.add_edge(ev, u)
        g.add_edge(ev, v)
    return g


# ----------------------------------------------------------------------
# Theorem 3.4: MVC → weighted 2-spanner (verified substitution for [9])
# ----------------------------------------------------------------------
def mvc_to_two_spanner_graph(graph: Graph) -> Graph:
    """A weighted graph H with min-2-spanner cost = MVC(G).

    H = G's vertices plus a hub r and an edge-vertex w_e per edge:
    weight-0 edges (u,v), (w_e,u), (w_e,v); weight-1 edges (r,v); weight-3
    edges (r,w_e).  Spanning (r, w_e) needs an endpoint of e bought at r,
    and spanning (r, v) needs v or a neighbour bought — exactly vertex
    cover (see DESIGN.md: this reduction is equivalence-exact but, unlike
    [9]'s gadget, not degree/cut-preserving; it serves the sequential
    verification of the theorem's reduction step).

    Requires G without isolated vertices.
    """
    if any(graph.degree(v) == 0 for v in graph.vertices()):
        raise ValueError("reduction requires minimum degree 1")
    h = Graph()
    for u, v in graph.edges():
        w_e = ("edge", frozenset((u, v)))
        h.add_edge(u, v, weight=0)
        h.add_edge(w_e, u, weight=0)
        h.add_edge(w_e, v, weight=0)
        h.add_edge("hub", w_e, weight=3)
    for v in graph.vertices():
        h.add_edge("hub", v, weight=1)
    return h
