"""A structured index of the paper's results and where each one lives.

Mirrors the DESIGN.md inventory in code so tools (the CLI, the
experiment runner, tests) can enumerate the reproduction surface.  Each
entry ties a theorem/claim to the modules implementing it and the
experiment(s) that verify it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class PaperResult:
    anchor: str                 # theorem/claim/figure number in the paper
    statement: str              # one-line paraphrase
    section: str
    modules: Tuple[str, ...]    # implementing modules
    experiments: Tuple[str, ...] = ()   # experiment ids covering it


RESULTS: List[PaperResult] = [
    PaperResult(
        "Definition 1.1 / Theorem 1.1",
        "families of lower bound graphs; CONGEST rounds ≥ CC(f)/(|Ecut| log n)",
        "1.4",
        ("repro.core.family", "repro.cc.alice_bob"),
        ("E-T1.1-simulation",),
    ),
    PaperResult(
        "Theorem 2.1 (Figure 1, Lemma 2.1)",
        "exact MDS requires Ω(n²/log²n)",
        "2.1",
        ("repro.core.mds", "repro.solvers.dominating"),
        ("E-F1-T2.1-mds",),
    ),
    PaperResult(
        "Theorem 2.2 (Figure 2, Claims 2.1-2.5)",
        "directed Hamiltonian path requires Ω(n²/log⁴n)",
        "2.2.1",
        ("repro.core.hamiltonian", "repro.solvers.hamilton"),
        ("E-F2-T2.2-hamiltonian-path",),
    ),
    PaperResult(
        "Theorems 2.3-2.4 (Claim 2.6, Lemmas 2.2-2.3)",
        "directed/undirected Hamiltonian cycle and path all Ω̃(n²)",
        "2.2.2",
        ("repro.core.hamiltonian", "repro.core.reductions"),
        ("E-T2.3-T2.4-hamiltonian-variants",),
    ),
    PaperResult(
        "Theorem 2.5 (Claim 2.7)",
        "minimum 2-ECSS requires Ω(n²/log⁴n)",
        "2.2.3",
        ("repro.core.reductions", "repro.solvers.twoecss"),
        ("E-T2.5-two-ecss",),
    ),
    PaperResult(
        "Theorems 2.6-2.7 (Claim 2.8)",
        "family reductions; minimum Steiner tree requires Ω(n²/log²n)",
        "2.3",
        ("repro.core.steiner", "repro.core.reductions"),
        ("E-T2.7-steiner",),
    ),
    PaperResult(
        "Theorem 2.8 (Figure 3, Claims 2.9-2.12, Lemma 2.4)",
        "exact weighted max-cut requires Ω(n²/log²n)",
        "2.4.1",
        ("repro.core.maxcut", "repro.solvers.maxcut"),
        ("E-F3-T2.8-maxcut",),
    ),
    PaperResult(
        "Theorem 2.9 (Lemma 2.5)",
        "(1−ε)-approximate unweighted max-cut in Õ(n) rounds",
        "2.4.2",
        ("repro.congest.algorithms.maxcut_sampling",),
        ("E-T2.9-congest-maxcut",),
    ),
    PaperResult(
        "Theorem 3.1 (Claims 3.1-3.6)",
        "MaxIS needs Ω̃(n) even at Δ ≤ 5, O(log n) diameter",
        "3.1-3.2",
        ("repro.core.bounded_degree", "repro.core.mvc",
         "repro.expanders.gadget", "repro.formulas.cnf"),
        ("E-F4-T3.1-bounded-degree-maxis",),
    ),
    PaperResult(
        "Theorems 3.2-3.4",
        "bounded-degree MVC, MDS and weighted 2-spanner are Ω̃(n) too",
        "3.3",
        ("repro.core.bounded_degree", "repro.solvers.spanner"),
        ("E-T3.3-T3.4-bounded-degree-reductions",),
    ),
    PaperResult(
        "Theorems 4.1, 4.3 (Figure 4, Claim 4.1, Lemma 4.1)",
        "(7/8+ε)-approximate MaxIS requires Ω̃(n²)",
        "4.1",
        ("repro.core.approx_maxis", "repro.codes.reed_solomon"),
        ("E-F5-T4.3-T4.1-approx-maxis",),
    ),
    PaperResult(
        "Theorem 4.2",
        "(5/6+ε)-approximate MaxIS requires Ω(n/log⁶n)",
        "4.1",
        ("repro.core.approx_maxis",),
        ("E-T4.2-linear-maxis",),
    ),
    PaperResult(
        "Theorems 4.4-4.5 (Figure 5, Lemmas 4.2-4.4)",
        "O(log n)-approximate weighted k-MDS requires Ω̃(n^{1−ε})",
        "4.2-4.3",
        ("repro.core.kmds", "repro.covering.designs"),
        ("E-F6-T4.4-T4.5-kmds",),
    ),
    PaperResult(
        "Theorems 4.6-4.7 (Figure 6, Lemmas 4.5-4.6)",
        "node-weighted / directed Steiner tree approximation hardness",
        "4.4",
        ("repro.core.steiner_approx",),
        ("E-F7-T4.6-T4.7-steiner-approx",),
    ),
    PaperResult(
        "Theorem 4.8 (Figure 7, Lemma 4.7, Definition 4.1)",
        "local-aggregate O(log n)-approximate MDS hardness",
        "4.5",
        ("repro.core.restricted_mds", "repro.congest.local_aggregate"),
        ("E-T4.8-restricted-mds",),
    ),
    PaperResult(
        "Claims 5.1-5.3",
        "bounded-degree (1±ε) protocols cap Theorem 1.1 at Ω(1/ε)",
        "5.1.1",
        ("repro.limits.protocols",),
        (),
    ),
    PaperResult(
        "Claims 5.4-5.9",
        "general-graph approximation protocols: (1−ε)/2-3 max-cut, 3/2 "
        "and (1+ε) MVC, 2 MDS, 1/2 MaxIS",
        "5.1.2",
        ("repro.limits.protocols",),
        ("E-C5.4-C5.9-protocol-limits",),
    ),
    PaperResult(
        "Claims 5.10-5.11 (Corollaries 5.1-5.2)",
        "nondeterministic certificates cap Theorem 1.1 at Ω(Γ(f)); "
        "max-flow / min s-t cut escape the framework",
        "5.2.1",
        ("repro.cc.nondeterministic", "repro.limits.flow_nd"),
        ("E-C5.10-C5.11-nondeterminism",),
    ),
    PaperResult(
        "Theorem 5.1, Lemma 5.1, Claims 5.12-5.13 (Corollary 5.3)",
        "PLS compile to nondeterministic protocols; matching, distance "
        "and twelve verification predicates have O(log n) schemes",
        "5.2.2-5.2.3",
        ("repro.pls", "repro.pls.to_protocol"),
        ("E-T5.1-pls-compiler",),
    ),
]


def coverage_table() -> str:
    lines = []
    for r in RESULTS:
        mods = ", ".join(r.modules)
        exps = ", ".join(r.experiments) if r.experiments else "(tests only)"
        lines.append(f"{r.anchor}\n    {r.statement}\n"
                     f"    §{r.section} — {mods}\n    verified by: {exps}")
    return "\n".join(lines)
