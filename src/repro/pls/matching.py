"""Matching PLS (Claim 5.12): ν(G) ≥ k and ν(G) < k with O(log n) labels.

The ≥ k side marks a matching and counts matched vertices over a
spanning tree.  The < k side encodes a Tutte–Berge witness U
(Gallai–Edmonds): component structure of G − U, per-component parity,
and a global aggregation tree checking (n + |U| − odd(G−U))/2 ≤ k − 1.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.graphs import Graph, Vertex
from repro.pls._fields import (
    build_tree_field,
    check_tree_field,
    ensure_label,
    get_field,
)
from repro.pls.scheme import Labels, PlsInstance, ProofLabelingScheme
from repro.solvers.matching import (
    max_matching,
    max_matching_size,
    tutte_berge_witness,
)


def _subtree_counts(graph: Graph, labels: Labels, prefix: str,
                    contribution: Dict[Vertex, int], key: str) -> None:
    """Fill ``key`` with the subtree sums of ``contribution`` over the
    tree field ``prefix`` (children discovered via parent pointers)."""
    children: Dict[Vertex, List[Vertex]] = {v: [] for v in graph.vertices()}
    root = None
    for v in graph.vertices():
        parent = get_field(labels, v, prefix + "_parent")
        if parent is None:
            root = v
        else:
            children[parent].append(v)
    order: List[Vertex] = []
    stack = [root]
    while stack:
        v = stack.pop()
        order.append(v)
        stack.extend(children[v])
    for v in reversed(order):
        total = contribution.get(v, 0)
        for c in children[v]:
            total += get_field(labels, c, key)
        ensure_label(labels, v)[key] = total


def _check_subtree_counts(instance: PlsInstance, labels: Labels, v: Vertex,
                          prefix: str, key: str, contribution: int) -> bool:
    count = get_field(labels, v, key)
    if not isinstance(count, int):
        return False
    total = contribution
    for w in instance.graph.neighbors(v):
        if get_field(labels, w, prefix + "_parent") == v:
            child_count = get_field(labels, w, key)
            if not isinstance(child_count, int):
                return False
            total += child_count
    return count == total


class MatchingAtLeastPls(ProofLabelingScheme):
    """ν(G) ≥ k (instance.k), with a matched-partner field and a matched-
    vertex count over a spanning tree of G."""

    name = "matching-at-least"

    def applies(self, instance: PlsInstance) -> bool:
        return max_matching_size(instance.graph) >= instance.k

    def prove(self, instance: PlsInstance) -> Labels:
        matching = max_matching(instance.graph)[: instance.k]
        partner: Dict[Vertex, Vertex] = {}
        for u, v in matching:
            partner[u] = v
            partner[v] = u
        labels: Labels = {}
        build_tree_field(instance.graph, labels, "t")
        for v in instance.graph.vertices():
            ensure_label(labels, v)["partner"] = partner.get(v)
        _subtree_counts(instance.graph, labels, "t",
                        {v: 1 for v in partner}, "count")
        return labels

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        if not check_tree_field(instance.graph.neighbors(v), labels, v, "t"):
            return False
        partner = get_field(labels, v, "partner")
        if partner is not None:
            if partner not in instance.graph.neighbors(v):
                return False
            if get_field(labels, partner, "partner") != v:
                return False
        matched = 1 if partner is not None else 0
        if not _check_subtree_counts(instance, labels, v, "t", "count",
                                     matched):
            return False
        if v == get_field(labels, v, "t_root"):
            count = get_field(labels, v, "count")
            return count >= 2 * instance.k
        return True


class MatchingLessThanPls(ProofLabelingScheme):
    """ν(G) < k, via a Tutte-Berge witness ([12]; Claim 5.12)."""

    name = "matching-less-than"

    def applies(self, instance: PlsInstance) -> bool:
        return max_matching_size(instance.graph) < instance.k

    def prove(self, instance: PlsInstance) -> Labels:
        g = instance.graph
        u_set = set(tutte_berge_witness(g))
        labels: Labels = {}
        rest = [v for v in g.vertices() if v not in u_set]
        sub = g.induced_subgraph(rest)
        comps = sub.connected_components()
        # per-component tree + size counts
        for comp in comps:
            comp_graph = sub.induced_subgraph(comp)
            build_tree_field(comp_graph, labels, "c")
            _subtree_counts(comp_graph, labels, "c",
                            {v: 1 for v in comp}, "csize")
        for v in g.vertices():
            ensure_label(labels, v)["in_u"] = 1 if v in u_set else 0
        # global aggregation over a spanning tree of G: count |U| and odd
        # components (component roots of odd csize contribute 1)
        build_tree_field(g, labels, "t")
        u_contrib = {v: (1 if v in u_set else 0) for v in g.vertices()}
        odd_contrib: Dict[Vertex, int] = {}
        for v in rest:
            if get_field(labels, v, "c_parent") is None \
                    and get_field(labels, v, "csize") % 2 == 1:
                odd_contrib[v] = 1
        _subtree_counts(g, labels, "t", u_contrib, "ucount")
        _subtree_counts(g, labels, "t", odd_contrib, "oddcount")
        return labels

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        g = instance.graph
        in_u = get_field(labels, v, "in_u")
        if in_u not in (0, 1):
            return False
        non_u_nbrs = {w for w in g.neighbors(v)
                      if get_field(labels, w, "in_u") == 0}
        is_comp_root = False
        if in_u == 0:
            # component tree over G − U; claimed components must be real
            # components: every non-U edge stays within one claimed tree
            if not check_tree_field(non_u_nbrs, labels, v, "c"):
                return False
            root = get_field(labels, v, "c_root")
            for w in non_u_nbrs:
                if get_field(labels, w, "c_root") != root:
                    return False
            # subtree size over the component tree
            size_total = 1
            for w in non_u_nbrs:
                if get_field(labels, w, "c_parent") == v:
                    ws = get_field(labels, w, "csize")
                    if not isinstance(ws, int):
                        return False
                    size_total += ws
            if get_field(labels, v, "csize") != size_total:
                return False
            is_comp_root = get_field(labels, v, "c_parent") is None
        # global aggregation tree
        if not check_tree_field(g.neighbors(v), labels, v, "t"):
            return False
        odd_here = 0
        if in_u == 0 and is_comp_root \
                and get_field(labels, v, "csize") % 2 == 1:
            odd_here = 1
        if not _check_subtree_counts(instance, labels, v, "t", "ucount",
                                     in_u):
            return False
        if not _check_subtree_counts(instance, labels, v, "t", "oddcount",
                                     odd_here):
            return False
        if v == get_field(labels, v, "t_root"):
            ucount = get_field(labels, v, "ucount")
            oddcount = get_field(labels, v, "oddcount")
            # Tutte-Berge: ν ≤ (n + |U| − odd(G−U)) / 2 < k
            return g.n + ucount - oddcount <= 2 * instance.k - 1
        return True
