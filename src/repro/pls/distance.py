"""Weighted (s, t)-distance PLS (Claim 5.13).

Every vertex is labelled with its weighted distance from s; each vertex
checks its label equals the min over neighbours of their label plus the
connecting edge weight (s checks 0), and t compares against k.  With
strictly positive weights the fixpoint is unique, so both the ≥ k and
the < k schemes are sound.  Unreachable vertices carry a None label,
which their neighbours must be unable to undercut.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.graphs import Vertex
from repro.pls._fields import ensure_label, get_field
from repro.pls.scheme import Labels, PlsInstance, ProofLabelingScheme
from repro.solvers.distance import dijkstra

_INF = float("inf")


class _DistanceFieldPls(ProofLabelingScheme):
    def prove(self, instance: PlsInstance) -> Labels:
        dist = dijkstra(instance.graph, instance.s)
        labels: Labels = {}
        for v in instance.graph.vertices():
            ensure_label(labels, v)["d"] = dist.get(v)
        return labels

    def _distance_field_ok(self, instance: PlsInstance, labels: Labels,
                           v: Vertex) -> bool:
        d = get_field(labels, v, "d")
        candidates = []
        for w in instance.graph.neighbors(v):
            wd = get_field(labels, w, "d")
            weight = instance.graph.edge_weight(v, w)
            if weight <= 0:
                return False  # the scheme requires positive weights
            if isinstance(wd, (int, float)):
                candidates.append(wd + weight)
        best = min(candidates, default=_INF)
        if v == instance.s:
            return d == 0
        if d is None:
            return best == _INF
        if not isinstance(d, (int, float)):
            return False
        return abs(d - best) < 1e-9


class DistanceAtLeastPls(_DistanceFieldPls):
    """wdist(s, t) ≥ k."""

    name = "distance-at-least"

    def applies(self, instance: PlsInstance) -> bool:
        return dijkstra(instance.graph, instance.s).get(
            instance.t, _INF) >= instance.k

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        if not self._distance_field_ok(instance, labels, v):
            return False
        if v == instance.t:
            d = get_field(labels, v, "d")
            return d is None or d >= instance.k
        return True


class DistanceLessThanPls(_DistanceFieldPls):
    """wdist(s, t) < k."""

    name = "distance-less-than"

    def applies(self, instance: PlsInstance) -> bool:
        return dijkstra(instance.graph, instance.s).get(
            instance.t, _INF) < instance.k

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        if not self._distance_field_ok(instance, labels, v):
            return False
        if v == instance.t:
            d = get_field(labels, v, "d")
            return d is not None and d < instance.k
        return True
