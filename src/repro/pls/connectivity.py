"""Connectivity-flavoured PLS (Lemma 5.1, items 1-9)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.graphs import Graph, Vertex
from repro.pls._fields import (
    build_pointer_field,
    build_tree_field,
    check_pointer_field,
    check_tree_field,
    ensure_label,
    get_field,
)
from repro.pls.scheme import Labels, PlsInstance, ProofLabelingScheme, edge_key
from repro.pls.trees import _consecutive_cycle_check, _find_cycle


# ----------------------------------------------------------------------
# connectivity of H (items 1 and 6)
# ----------------------------------------------------------------------
class ConnectivityPls(ProofLabelingScheme):
    """H is connected (and spans every vertex) — item 6."""

    name = "connectivity"

    def applies(self, instance: PlsInstance) -> bool:
        h = instance.h_graph()
        return h.n == 0 or (h.is_connected() and
                            all(h.degree(v) > 0 for v in h.vertices())
                            if h.n > 1 else True)

    def prove(self, instance: PlsInstance) -> Labels:
        labels: Labels = {}
        build_tree_field(instance.h_graph(), labels, "t")
        return labels

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        if not check_tree_field(instance.h_neighbors(v), labels, v, "t"):
            return False
        root = get_field(labels, v, "t_root")
        # root consistency across all of G, so components cannot each
        # pick their own root
        return all(get_field(labels, w, "t_root") == root
                   for w in instance.graph.neighbors(v))


class ConnectedSpanningSubgraphPls(ConnectivityPls):
    """Item 1: H connected and every vertex has non-zero H-degree."""

    name = "connected-spanning-subgraph"

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        if instance.graph.n > 1 and not instance.h_neighbors(v):
            return False
        return super().vertex_accepts(instance, labels, v)


class NotConnectedSpanningSubgraphPls(ProofLabelingScheme):
    """Negation of item 1: H is not a connected spanning subgraph —
    either some vertex has H-degree 0 (case 0: pointer to it) or H is
    disconnected (case 1: the non-connectivity marks)."""

    name = "not-connected-spanning-subgraph"

    def applies(self, instance: PlsInstance) -> bool:
        return not ConnectedSpanningSubgraphPls().applies(instance)

    def prove(self, instance: PlsInstance) -> Labels:
        h = instance.h_graph()
        labels: Labels = {}
        isolated = [v for v in h.vertices() if h.degree(v) == 0]
        if isolated:
            for v in instance.graph.vertices():
                ensure_label(labels, v)["case"] = 0
            build_pointer_field(instance.graph, labels, "d", [isolated[0]])
            return labels
        inner = NonConnectivityPls().prove(instance)
        for v, lab in inner.items():
            lab["case"] = 1
        return inner

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        case = get_field(labels, v, "case")
        if case not in (0, 1):
            return False
        for w in instance.graph.neighbors(v):
            if get_field(labels, w, "case") != case:
                return False
        if case == 0:
            ptr = check_pointer_field(instance.graph, labels, v, "d")
            if ptr is False:
                return False
            if ptr is True:
                return True
            return len(instance.h_neighbors(v)) == 0
        return NonConnectivityPls().vertex_accepts(instance, labels, v)


class NonConnectivityPls(ProofLabelingScheme):
    """H is disconnected: 0/1 component marks, monochromatic H edges,
    and two G-spanning trees rooted at representatives of each mark."""

    name = "non-connectivity"

    def applies(self, instance: PlsInstance) -> bool:
        return not ConnectivityPls().applies(instance)

    def prove(self, instance: PlsInstance) -> Labels:
        h = instance.h_graph()
        comps = h.connected_components()
        comp0 = comps[0]
        labels: Labels = {}
        for v in instance.graph.vertices():
            ensure_label(labels, v)["mark"] = 0 if v in comp0 else 1
        zero = min(comp0, key=repr)
        one = min((v for v in instance.graph.vertices() if v not in comp0),
                  key=repr)
        build_tree_field(instance.graph, labels, "t0", root=zero)
        build_tree_field(instance.graph, labels, "t1", root=one)
        return labels

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        mark = get_field(labels, v, "mark")
        if mark not in (0, 1):
            return False
        for w in instance.h_neighbors(v):
            if get_field(labels, w, "mark") != mark:
                return False
        for prefix, want in (("t0", 0), ("t1", 1)):
            if not check_tree_field(instance.graph.neighbors(v), labels, v,
                                    prefix):
                return False
            if v == get_field(labels, v, prefix + "_root") and mark != want:
                return False
        return True


# ----------------------------------------------------------------------
# (s, t)-connectivity in H (item 5)
# ----------------------------------------------------------------------
class StConnectivityPls(ProofLabelingScheme):
    """s and t lie in the same H-component."""

    name = "st-connectivity"

    def _carrier_neighbors(self, instance: PlsInstance, v: Vertex) -> Set[Vertex]:
        return instance.h_neighbors(v)

    def _carrier_distances(self, instance: PlsInstance) -> Dict[Vertex, int]:
        return instance.h_graph().bfs_distances(instance.s)

    def applies(self, instance: PlsInstance) -> bool:
        return instance.t in self._carrier_distances(instance)

    def prove(self, instance: PlsInstance) -> Labels:
        dist = self._carrier_distances(instance)
        labels: Labels = {}
        for v in instance.graph.vertices():
            ensure_label(labels, v)["d"] = dist.get(v)
        return labels

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        d = get_field(labels, v, "d")
        if v == instance.s:
            return d == 0
        if d is None:
            return v != instance.t
        if not isinstance(d, int) or d <= 0:
            return False
        return any(get_field(labels, w, "d") == d - 1
                   for w in self._carrier_neighbors(instance, v))


class NonStConnectivityPls(ProofLabelingScheme):
    """s and t in different H-components: monochromatic marks."""

    name = "non-st-connectivity"

    def _carrier_neighbors(self, instance: PlsInstance, v: Vertex) -> Set[Vertex]:
        return instance.h_neighbors(v)

    def _component_of_s(self, instance: PlsInstance) -> Set[Vertex]:
        return set(instance.h_graph().bfs_distances(instance.s))

    def applies(self, instance: PlsInstance) -> bool:
        return instance.t not in self._component_of_s(instance)

    def prove(self, instance: PlsInstance) -> Labels:
        comp = self._component_of_s(instance)
        labels: Labels = {}
        for v in instance.graph.vertices():
            ensure_label(labels, v)["mark"] = 0 if v in comp else 1
        return labels

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        mark = get_field(labels, v, "mark")
        if mark not in (0, 1):
            return False
        if v == instance.s and mark != 0:
            return False
        if v == instance.t and mark != 1:
            return False
        return all(get_field(labels, w, "mark") == mark
                   for w in self._carrier_neighbors(instance, v))


# ----------------------------------------------------------------------
# cycle containment (items 2 and 3)
# ----------------------------------------------------------------------
class CyclePls(ProofLabelingScheme):
    """H contains a cycle: pointer to a set of min-H-degree ≥ 2."""

    name = "cycle-containment"

    def applies(self, instance: PlsInstance) -> bool:
        h = instance.h_graph()
        return any(h.induced_subgraph(comp).m >= len(comp)
                   for comp in h.connected_components())

    def prove(self, instance: PlsInstance) -> Labels:
        h = instance.h_graph()
        comp = next(c for c in h.connected_components()
                    if h.induced_subgraph(c).m >= len(c))
        cycle = _find_cycle(h.induced_subgraph(comp))
        labels: Labels = {}
        build_pointer_field(instance.graph, labels, "d", cycle)
        return labels

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        ptr = check_pointer_field(instance.graph, labels, v, "d")
        if ptr is False:
            return False
        if ptr is True:
            return True
        in_set = [w for w in instance.h_neighbors(v)
                  if get_field(labels, w, "d") == 0]
        return len(in_set) >= 2


class NoCyclePls(ProofLabelingScheme):
    """H contains no cycle — delegates to the acyclicity forest field."""

    name = "no-cycle"

    def __init__(self) -> None:
        from repro.pls.trees import AcyclicityPls

        self._inner = AcyclicityPls()

    def applies(self, instance: PlsInstance) -> bool:
        return self._inner.applies(instance)

    def prove(self, instance: PlsInstance) -> Labels:
        return self._inner.prove(instance)

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        return self._inner.vertex_accepts(instance, labels, v)


class ECyclePls(ProofLabelingScheme):
    """H contains a cycle through the marked edge e: the pointed set is
    2-regular in H (disjoint cycles) and contains both endpoints of e."""

    name = "e-cycle-containment"

    def applies(self, instance: PlsInstance) -> bool:
        if instance.e not in instance.subgraph:
            return False
        u, v = tuple(instance.e)
        h = instance.h_graph()
        h.remove_edge(u, v)
        return v in h.bfs_distances(u)

    def prove(self, instance: PlsInstance) -> Labels:
        u, v = tuple(instance.e)
        h = instance.h_graph()
        h.remove_edge(u, v)
        # shortest u-v path in H - e, plus e, is a cycle through e
        dist = h.bfs_distances(u)
        path = [v]
        while path[-1] != u:
            cur = path[-1]
            path.append(next(w for w in h.neighbors(cur)
                             if dist.get(w) == dist[cur] - 1))
        labels: Labels = {}
        build_pointer_field(instance.graph, labels, "d", path)
        return labels

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        if instance.e not in instance.subgraph:
            return False
        ptr = check_pointer_field(instance.graph, labels, v, "d")
        if ptr is False:
            return False
        eu, ev = tuple(instance.e)
        if v in (eu, ev) and get_field(labels, v, "d") != 0:
            return False
        if ptr is True:
            return True
        in_set = [w for w in instance.h_neighbors(v)
                  if get_field(labels, w, "d") == 0]
        return len(in_set) == 2


class NoECyclePls(ProofLabelingScheme):
    """No H-cycle through e: either e ∉ H (case 0, checked by its
    endpoints) or e's endpoints are separated in H − e (case 1 marks)."""

    name = "no-e-cycle"

    def applies(self, instance: PlsInstance) -> bool:
        return not ECyclePls().applies(instance)

    def prove(self, instance: PlsInstance) -> Labels:
        labels: Labels = {}
        if instance.e not in instance.subgraph:
            for v in instance.graph.vertices():
                ensure_label(labels, v)["case"] = 0
            return labels
        u, v = tuple(instance.e)
        h = instance.h_graph()
        h.remove_edge(u, v)
        comp = set(h.bfs_distances(u))
        for w in instance.graph.vertices():
            lab = ensure_label(labels, w)
            lab["case"] = 1
            lab["mark"] = 0 if w in comp else 1
        return labels

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        case = get_field(labels, v, "case")
        if case not in (0, 1):
            return False
        for w in instance.graph.neighbors(v):
            if get_field(labels, w, "case") != case:
                return False
        eu, ev = tuple(instance.e)
        if case == 0:
            if v in (eu, ev):
                return instance.e not in instance.subgraph
            return True
        mark = get_field(labels, v, "mark")
        if mark not in (0, 1):
            return False
        if v == eu and mark != 0:
            return False
        if v == ev and mark != 1:
            return False
        for w in instance.h_neighbors(v):
            if edge_key(v, w) == instance.e:
                continue
            if get_field(labels, w, "mark") != mark:
                return False
        return True


# ----------------------------------------------------------------------
# bipartiteness (item 4)
# ----------------------------------------------------------------------
class BipartitePls(ProofLabelingScheme):
    """H is bipartite: a 2-colouring."""

    name = "bipartite"

    def applies(self, instance: PlsInstance) -> bool:
        import networkx as nx

        return nx.is_bipartite(instance.h_graph().to_networkx())

    def prove(self, instance: PlsInstance) -> Labels:
        import networkx as nx

        coloring = nx.algorithms.bipartite.color(
            instance.h_graph().to_networkx())
        labels: Labels = {}
        for v in instance.graph.vertices():
            ensure_label(labels, v)["color"] = coloring.get(v, 0)
        return labels

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        color = get_field(labels, v, "color")
        if color not in (0, 1):
            return False
        return all(get_field(labels, w, "color") == 1 - color
                   for w in instance.h_neighbors(v))


class NonBipartitePls(ProofLabelingScheme):
    """H is not bipartite: pointer to a consecutively-enumerated odd
    cycle in H."""

    name = "non-bipartite"

    def applies(self, instance: PlsInstance) -> bool:
        return not BipartitePls().applies(instance)

    def prove(self, instance: PlsInstance) -> Labels:
        h = instance.h_graph()
        cycle = _find_odd_cycle(h)
        labels: Labels = {}
        for idx, v in enumerate(cycle, start=1):
            ensure_label(labels, v)["idx"] = idx
        build_pointer_field(instance.graph, labels, "d", cycle)
        return labels

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        ptr = check_pointer_field(instance.graph, labels, v, "d")
        if ptr is False:
            return False
        if ptr is True:
            return True
        return _consecutive_cycle_check(instance, labels, v, "idx", "d",
                                        lambda x: x % 2 == 1)


def _find_odd_cycle(graph: Graph) -> List[Vertex]:
    """A shortest odd cycle, via BFS layers within each component."""
    for start in graph.vertices():
        dist = graph.bfs_distances(start)
        for u, v in graph.edges():
            if u in dist and v in dist and dist[u] == dist[v]:
                # odd cycle through the least common ancestor
                pu = _bfs_path(graph, start, u, dist)
                pv = _bfs_path(graph, start, v, dist)
                common = 0
                while common < min(len(pu), len(pv)) \
                        and pu[common] == pv[common]:
                    common += 1
                cycle = pu[common - 1:] + pv[common:][::-1]
                if len(cycle) >= 3 and len(cycle) % 2 == 1:
                    return cycle
    raise ValueError("graph is bipartite")


def _bfs_path(graph: Graph, start: Vertex, end: Vertex,
              dist: Dict[Vertex, int]) -> List[Vertex]:
    path = [end]
    while path[-1] != start:
        cur = path[-1]
        path.append(next(w for w in graph.neighbors(cur)
                         if dist.get(w) == dist[cur] - 1))
    return path[::-1]


# ----------------------------------------------------------------------
# cuts (items 7-9)
# ----------------------------------------------------------------------
class CutPls(ProofLabelingScheme):
    """H is a cut of G: G \\ H is disconnected."""

    name = "cut"

    def applies(self, instance: PlsInstance) -> bool:
        comp = instance.complement_graph()
        return not comp.is_connected()

    def prove(self, instance: PlsInstance) -> Labels:
        comp_graph = instance.complement_graph()
        comps = comp_graph.connected_components()
        comp0 = comps[0]
        labels: Labels = {}
        for v in instance.graph.vertices():
            ensure_label(labels, v)["mark"] = 0 if v in comp0 else 1
        zero = min(comp0, key=repr)
        one = min((v for v in instance.graph.vertices() if v not in comp0),
                  key=repr)
        build_tree_field(instance.graph, labels, "t0", root=zero)
        build_tree_field(instance.graph, labels, "t1", root=one)
        return labels

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        mark = get_field(labels, v, "mark")
        if mark not in (0, 1):
            return False
        for w in instance.graph.neighbors(v):
            if edge_key(v, w) not in instance.subgraph \
                    and get_field(labels, w, "mark") != mark:
                return False
        for prefix, want in (("t0", 0), ("t1", 1)):
            if not check_tree_field(instance.graph.neighbors(v), labels, v,
                                    prefix):
                return False
            if v == get_field(labels, v, prefix + "_root") and mark != want:
                return False
        return True


class NotCutPls(ProofLabelingScheme):
    """H is not a cut: a spanning tree of G \\ H."""

    name = "not-cut"

    def applies(self, instance: PlsInstance) -> bool:
        return instance.complement_graph().is_connected()

    def prove(self, instance: PlsInstance) -> Labels:
        labels: Labels = {}
        build_tree_field(instance.complement_graph(), labels, "t")
        return labels

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        comp_nbrs = {w for w in instance.graph.neighbors(v)
                     if edge_key(v, w) not in instance.subgraph}
        if not check_tree_field(comp_nbrs, labels, v, "t"):
            return False
        root = get_field(labels, v, "t_root")
        return all(get_field(labels, w, "t_root") == root
                   for w in instance.graph.neighbors(v))


class StCutPls(NonStConnectivityPls):
    """H is an (s,t)-cut: s and t separated in G \\ H (item 9)."""

    name = "st-cut"

    def _carrier_neighbors(self, instance: PlsInstance, v: Vertex) -> Set[Vertex]:
        return {w for w in instance.graph.neighbors(v)
                if edge_key(v, w) not in instance.subgraph}

    def _component_of_s(self, instance: PlsInstance) -> Set[Vertex]:
        return set(instance.complement_graph().bfs_distances(instance.s))


class NotStCutPls(StConnectivityPls):
    """H is not an (s,t)-cut: an s-t path in G \\ H."""

    name = "not-st-cut"

    def _carrier_neighbors(self, instance: PlsInstance, v: Vertex) -> Set[Vertex]:
        return {w for w in instance.graph.neighbors(v)
                if edge_key(v, w) not in instance.subgraph}

    def _carrier_distances(self, instance: PlsInstance) -> Dict[Vertex, int]:
        return instance.complement_graph().bfs_distances(instance.s)


class EdgeOnAllPathsPls(NonStConnectivityPls):
    """e lies on every s-t path of H: s, t separated in H − e (item 8)."""

    name = "edge-on-all-paths"

    def _carrier_neighbors(self, instance: PlsInstance, v: Vertex) -> Set[Vertex]:
        return {w for w in instance.h_neighbors(v)
                if edge_key(v, w) != instance.e}

    def _component_of_s(self, instance: PlsInstance) -> Set[Vertex]:
        h = instance.h_graph()
        u, w = tuple(instance.e)
        if h.has_edge(u, w):
            h.remove_edge(u, w)
        return set(h.bfs_distances(instance.s))


class EdgeNotOnAllPathsPls(StConnectivityPls):
    """Some s-t path of H avoids e: an s-t distance field in H − e."""

    name = "edge-not-on-all-paths"

    def _carrier_neighbors(self, instance: PlsInstance, v: Vertex) -> Set[Vertex]:
        return {w for w in instance.h_neighbors(v)
                if edge_key(v, w) != instance.e}

    def _carrier_distances(self, instance: PlsInstance) -> Dict[Vertex, int]:
        h = instance.h_graph()
        u, w = tuple(instance.e)
        if h.has_edge(u, w):
            h.remove_edge(u, w)
        return h.bfs_distances(instance.s)
