"""Tree-shaped PLS: spanning tree, acyclicity, simple path, Hamiltonian
cycle verification, and their negations (Lemma 5.1, items 10-12)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.graphs import Graph, Vertex
from repro.pls._fields import (
    build_pointer_field,
    build_tree_field,
    check_pointer_field,
    check_tree_field,
    ensure_label,
    get_field,
)
from repro.pls.scheme import Labels, PlsInstance, ProofLabelingScheme, edge_key


def _h_components(instance: PlsInstance) -> List[Set[Vertex]]:
    return instance.h_graph().connected_components()


class SpanningTreePls(ProofLabelingScheme):
    """H is a spanning tree of G (Lemma 5.1, item 11, positive side)."""

    name = "spanning-tree"

    def applies(self, instance: PlsInstance) -> bool:
        h = instance.h_graph()
        return h.is_connected() and h.m == h.n - 1 and h.n == instance.graph.n

    def prove(self, instance: PlsInstance) -> Labels:
        labels: Labels = {}
        build_tree_field(instance.h_graph(), labels, "t")
        return labels

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        h_nbrs = instance.h_neighbors(v)
        if not check_tree_field(h_nbrs, labels, v, "t"):
            return False
        # all-roots consistency must also travel across non-H edges,
        # otherwise two components could each validate their own tree
        root = get_field(labels, v, "t_root")
        for w in instance.graph.neighbors(v):
            if get_field(labels, w, "t_root") != root:
                return False
        # every incident H edge must be a tree (parent-child) edge
        for w in h_nbrs:
            if get_field(labels, v, "t_parent") != w \
                    and get_field(labels, w, "t_parent") != v:
                return False
        return True


class AcyclicityPls(ProofLabelingScheme):
    """H contains no cycle ([4]; used by Lemma 5.1 item 2's negation)."""

    name = "acyclicity"

    def applies(self, instance: PlsInstance) -> bool:
        h = instance.h_graph()
        return all(len(comp) - 1 ==
                   h.induced_subgraph(comp).m
                   for comp in h.connected_components())

    def prove(self, instance: PlsInstance) -> Labels:
        labels: Labels = {}
        h = instance.h_graph()
        for comp in h.connected_components():
            build_tree_field(h.induced_subgraph(comp), labels, "f")
        return labels

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        h_nbrs = instance.h_neighbors(v)
        if not h_nbrs:
            return True
        dist = get_field(labels, v, "f_dist")
        parent = get_field(labels, v, "f_parent")
        if not isinstance(dist, int) or dist < 0:
            return False
        if parent is not None:
            if parent not in h_nbrs:
                return False
            pdist = get_field(labels, parent, "f_dist")
            if not isinstance(pdist, int) or pdist != dist - 1:
                return False
        # every H edge must be parent-child (rules out cycles)
        for w in h_nbrs:
            if get_field(labels, v, "f_parent") != w \
                    and get_field(labels, w, "f_parent") != v:
                return False
        return True


class SimplePathPls(ProofLabelingScheme):
    """H is a single simple path with at least one edge (item 12)."""

    name = "simple-path"

    def applies(self, instance: PlsInstance) -> bool:
        h = instance.h_graph()
        touched = [v for v in h.vertices() if h.degree(v) > 0]
        if not touched:
            return False
        sub = h.induced_subgraph(touched)
        if not sub.is_connected() or sub.m != sub.n - 1:
            return False
        return all(sub.degree(v) <= 2 for v in touched)

    def prove(self, instance: PlsInstance) -> Labels:
        h = instance.h_graph()
        touched = [v for v in h.vertices() if h.degree(v) > 0]
        ends = [v for v in touched if h.degree(v) == 1]
        start = min(ends, key=repr)
        order = [start]
        prev = None
        while True:
            nxt = [w for w in h.neighbors(order[-1]) if w != prev]
            if not nxt:
                break
            prev = order[-1]
            order.append(nxt[0])
        labels: Labels = {}
        for idx, v in enumerate(order, start=1):
            ensure_label(labels, v)["idx"] = idx
        for v in instance.graph.vertices():
            ensure_label(labels, v)["one"] = start
        return labels

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        one = get_field(labels, v, "one")
        if one is None:
            return False
        for w in instance.graph.neighbors(v):
            if get_field(labels, w, "one") != one:
                return False
        h_nbrs = instance.h_neighbors(v)
        idx = get_field(labels, v, "idx")
        if not h_nbrs:
            return idx is None or not isinstance(idx, int)
        if not isinstance(idx, int) or idx < 1:
            return False
        nbr_idx = sorted(get_field(labels, w, "idx") for w in h_nbrs
                         if isinstance(get_field(labels, w, "idx"), int))
        if len(nbr_idx) != len(h_nbrs):
            return False
        if idx == 1:
            if v != one:
                return False
            return len(h_nbrs) == 1 and nbr_idx == [2]
        if len(h_nbrs) == 1:
            return nbr_idx == [idx - 1]       # the far end of the path
        if len(h_nbrs) == 2:
            return nbr_idx == [idx - 1, idx + 1]
        return False


class HamiltonianCycleVerificationPls(ProofLabelingScheme):
    """H is a Hamiltonian cycle of G (item 10, positive side)."""

    name = "hamiltonian-cycle"

    def applies(self, instance: PlsInstance) -> bool:
        h = instance.h_graph()
        return (h.n >= 3 and h.is_connected()
                and all(h.degree(v) == 2 for v in h.vertices()))

    def prove(self, instance: PlsInstance) -> Labels:
        h = instance.h_graph()
        start = min(h.vertices(), key=repr)
        order = [start]
        prev = None
        while len(order) < h.n:
            nxt = [w for w in h.neighbors(order[-1]) if w != prev]
            prev = order[-1]
            order.append(min(nxt, key=repr) if len(order) == 1 else nxt[0])
        labels: Labels = {}
        for idx, v in enumerate(order):
            ensure_label(labels, v)["idx"] = idx
        return labels

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        n = instance.graph.n
        h_nbrs = instance.h_neighbors(v)
        if len(h_nbrs) != 2 or n < 3:
            return False
        idx = get_field(labels, v, "idx")
        if not isinstance(idx, int) or not 0 <= idx < n:
            return False
        want = {(idx - 1) % n, (idx + 1) % n}
        got = {get_field(labels, w, "idx") for w in h_nbrs}
        return got == want


def _consecutive_cycle_check(instance: PlsInstance, labels: Labels,
                             v: Vertex, idx_key: str, d_key: str,
                             length_ok) -> bool:
    """Structure check shared by the short-cycle / odd-cycle schemes.

    d = 0 vertices carry a consecutive enumeration 1..x; vertex 1 sees
    neighbours {2, x} with ``length_ok(x)``; interior i sees {i−1, i+1};
    the last vertex sees {i−1, 1}.  Accepting everywhere yields a real
    cycle of admissible length in H.
    """
    in_set = [w for w in instance.h_neighbors(v)
              if get_field(labels, w, d_key) == 0]
    if len(in_set) != 2:
        return False
    idx = get_field(labels, v, idx_key)
    if not isinstance(idx, int) or idx < 1:
        return False
    nbr_idx = [get_field(labels, w, idx_key) for w in in_set]
    if not all(isinstance(i, int) for i in nbr_idx):
        return False
    a, b = sorted(nbr_idx)
    if idx == 1:
        return a == 2 and b >= 3 and length_ok(b)
    # interior or closing vertex
    return (a, b) == (idx - 1, idx + 1) or \
        ((a, b) == (1, idx - 1) and length_ok(idx))


class NotHamiltonianCyclePls(ProofLabelingScheme):
    """H is not a Hamiltonian cycle (item 10, negative side).

    Case 0: some vertex has H-degree ≠ 2 — pointer to it.
    Case 1: all degrees are 2 but H splits into several cycles — pointer
    to one cycle, consecutively enumerated with length x < n.
    """

    name = "not-hamiltonian-cycle"

    def applies(self, instance: PlsInstance) -> bool:
        return not HamiltonianCycleVerificationPls().applies(instance)

    def prove(self, instance: PlsInstance) -> Labels:
        h = instance.h_graph()
        labels: Labels = {}
        bad = [v for v in h.vertices() if h.degree(v) != 2]
        if bad or h.n < 3:
            target = bad[0] if bad else min(h.vertices(), key=repr)
            for v in instance.graph.vertices():
                ensure_label(labels, v)["case"] = 0
            build_pointer_field(instance.graph, labels, "d", [target])
            return labels
        comp = min(h.connected_components(), key=len)
        start = min(comp, key=repr)
        order = [start]
        prev = None
        while True:
            nxt = [w for w in h.neighbors(order[-1]) if w != prev]
            prev = order[-1]
            step = min(nxt, key=repr) if len(order) == 1 else nxt[0]
            if step == start:
                break
            order.append(step)
        for v in instance.graph.vertices():
            ensure_label(labels, v)["case"] = 1
        for idx, v in enumerate(order, start=1):
            ensure_label(labels, v)["idx"] = idx
        build_pointer_field(instance.graph, labels, "d", order)
        return labels

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        case = get_field(labels, v, "case")
        if case not in (0, 1):
            return False
        for w in instance.graph.neighbors(v):
            if get_field(labels, w, "case") != case:
                return False
        ptr = check_pointer_field(instance.graph, labels, v, "d")
        if ptr is False:
            return False
        if ptr is True:
            return True
        # d == 0: structure-local check
        if case == 0:
            return len(instance.h_neighbors(v)) != 2 or instance.graph.n < 3
        n = instance.graph.n
        return _consecutive_cycle_check(instance, labels, v, "idx", "d",
                                        lambda x: x < n)


class NotSpanningTreePls(ProofLabelingScheme):
    """H is not a spanning tree (item 11, negative side): either an
    H-isolated vertex (case 0), a cycle in H (case 1), or H is an
    acyclic spanning forest with ≥ 2 components (case 2)."""

    name = "not-spanning-tree"

    def applies(self, instance: PlsInstance) -> bool:
        return not SpanningTreePls().applies(instance)

    def prove(self, instance: PlsInstance) -> Labels:
        h = instance.h_graph()
        labels: Labels = {}
        isolated = [v for v in h.vertices() if h.degree(v) == 0]
        if isolated:
            for v in instance.graph.vertices():
                ensure_label(labels, v)["case"] = 0
            build_pointer_field(instance.graph, labels, "d", [isolated[0]])
            return labels
        cyclic = [comp for comp in h.connected_components()
                  if h.induced_subgraph(comp).m >= len(comp)]
        if cyclic:
            comp_graph = h.induced_subgraph(cyclic[0])
            cycle = _find_cycle(comp_graph)
            for v in instance.graph.vertices():
                ensure_label(labels, v)["case"] = 1
            for idx, u in enumerate(cycle, start=1):
                ensure_label(labels, u)["idx"] = idx
            build_pointer_field(instance.graph, labels, "d", cycle)
            return labels
        # acyclic forest, several components: non-connectivity marks
        comps = h.connected_components()
        comp0 = comps[0]
        for v in instance.graph.vertices():
            lab = ensure_label(labels, v)
            lab["case"] = 2
            lab["mark"] = 0 if v in comp0 else 1
        zero = min(comp0, key=repr)
        one = min((v for v in instance.graph.vertices()
                   if v not in comp0), key=repr)
        build_tree_field(instance.graph, labels, "t0", root=zero)
        build_tree_field(instance.graph, labels, "t1", root=one)
        return labels

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        case = get_field(labels, v, "case")
        if case not in (0, 1, 2):
            return False
        for w in instance.graph.neighbors(v):
            if get_field(labels, w, "case") != case:
                return False
        if case in (0, 1):
            ptr = check_pointer_field(instance.graph, labels, v, "d")
            if ptr is False:
                return False
            if ptr is True:
                return True
            if case == 0:
                return len(instance.h_neighbors(v)) == 0
            return _consecutive_cycle_check(instance, labels, v, "idx", "d",
                                            lambda x: True)
        # case 2: two-sided marks with monochromatic H edges and both
        # marks certified non-empty by G-spanning trees rooted at them
        mark = get_field(labels, v, "mark")
        if mark not in (0, 1):
            return False
        for w in instance.h_neighbors(v):
            if get_field(labels, w, "mark") != mark:
                return False
        for prefix, want in (("t0", 0), ("t1", 1)):
            if not check_tree_field(instance.graph.neighbors(v), labels, v,
                                    prefix):
                return False
            root = get_field(labels, v, prefix + "_root")
            if v == root and mark != want:
                return False
        return True


def _find_cycle(graph: Graph) -> List[Vertex]:
    """Some cycle of a graph with m ≥ n on a component (DFS back edge)."""
    parent: Dict[Vertex, Optional[Vertex]] = {}
    for start in graph.vertices():
        if start in parent:
            continue
        parent[start] = None
        stack = [(start, iter(graph.neighbors(start)))]
        while stack:
            v, it = stack[-1]
            advanced = False
            for w in it:
                if w == parent[v]:
                    continue
                if w in parent:
                    # back edge: recover the cycle v .. w
                    cycle = [v]
                    while cycle[-1] != w:
                        cycle.append(parent[cycle[-1]])
                    return cycle
                parent[w] = v
                stack.append((w, iter(graph.neighbors(w))))
                advanced = True
                break
            if not advanced:
                stack.pop()
    raise ValueError("graph is acyclic")
