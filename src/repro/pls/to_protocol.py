"""Theorem 5.1: compiling a PLS into a nondeterministic 2-party protocol.

Given a family of lower bound graphs and a PLS for the predicate, Alice
and Bob interpret their nondeterministic strings as the PLS labels of
their own vertices, exchange only the labels of vertices touching the
cut, locally simulate every vertex's verification, and exchange one
rejection bit.  Cost: O(pls-size · |Ecut|) bits.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Set, Tuple

from repro.cc.nondeterministic import NondeterministicProtocol
from repro.cc.protocol import Channel
from repro.congest.model import message_bits
from repro.graphs import Vertex
from repro.pls.scheme import Labels, PlsInstance, ProofLabelingScheme


def pls_to_nondeterministic_protocol(
    scheme: ProofLabelingScheme,
    build_instance: Callable[[Any, Any], PlsInstance],
    alice_vertices: Set[Vertex],
) -> NondeterministicProtocol:
    """Compile ``scheme`` into a :class:`NondeterministicProtocol` over a
    lower-bound family whose instances come from ``build_instance(x, y)``.

    The honest prover runs the PLS prover and splits the labels by side.
    The verifier exchanges cut-incident labels and simulates the local
    checks; it accepts iff every vertex accepts.
    """

    def prover(x: Any, y: Any) -> Tuple[Labels, Labels]:
        instance = build_instance(x, y)
        labels = scheme.prove(instance)
        cert_a = {v: l for v, l in labels.items() if v in alice_vertices}
        cert_b = {v: l for v, l in labels.items() if v not in alice_vertices}
        return cert_a, cert_b

    def verifier(x: Any, cert_a: Any, y: Any, cert_b: Any,
                 channel: Channel) -> bool:
        instance = build_instance(x, y)
        if not isinstance(cert_a, dict) or not isinstance(cert_b, dict):
            return False
        cut_vertices = set()
        for u, v in instance.graph.edges():
            if (u in alice_vertices) != (v in alice_vertices):
                cut_vertices.add(u)
                cut_vertices.add(v)
        # exchange cut-incident labels (counted on the channel)
        sent_a = {v: cert_a.get(v) for v in cut_vertices
                  if v in alice_vertices}
        sent_b = {v: cert_b.get(v) for v in cut_vertices
                  if v not in alice_vertices}
        channel.a_to_b(list(sent_a.items()))
        channel.b_to_a(list(sent_b.items()))
        labels_for_alice: Labels = dict(cert_a)
        labels_for_alice.update(sent_b)
        labels_for_bob: Labels = dict(cert_b)
        labels_for_bob.update(sent_a)
        alice_ok = all(scheme.vertex_accepts(instance, labels_for_alice, v)
                       for v in instance.graph.vertices()
                       if v in alice_vertices)
        bob_ok = all(scheme.vertex_accepts(instance, labels_for_bob, v)
                     for v in instance.graph.vertices()
                     if v not in alice_vertices)
        channel.a_to_b(alice_ok)
        channel.b_to_a(bob_ok)
        return alice_ok and bob_ok

    return NondeterministicProtocol(
        name=f"PLS[{scheme.name}]", prover=prover, verifier=verifier)
