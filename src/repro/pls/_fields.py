"""Shared label-field constructions and local checks for the PLS library.

All verifier-side accessors are defensive: adversarial labels can be of
any type, and any malformed field reads as ``None`` which every check
rejects.  Labels are dicts with string keys; fields:

- *tree field* (prefix ``p``): ``{p_root, p_parent, p_dist}`` encoding a
  spanning tree of some graph.  The local check forces a globally
  consistent root and strictly decreasing distances towards it, so an
  all-accepted tree field proves the carrier graph is connected and the
  root exists.
- *pointer field*: a bare distance ``{d}``; ``d = 0`` marks membership
  in a target structure and ``d > 0`` requires a neighbour with ``d-1``,
  proving the structure is non-empty.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Iterable, Optional, Set

from repro.graphs import Graph, Vertex

Labels = Dict[Vertex, Any]


def get_field(labels: Labels, v: Vertex, key: str) -> Any:
    lab = labels.get(v)
    if not isinstance(lab, dict):
        return None
    return lab.get(key)


def ensure_label(labels: Labels, v: Vertex) -> Dict[str, Any]:
    lab = labels.setdefault(v, {})
    assert isinstance(lab, dict)
    return lab


# ----------------------------------------------------------------------
# spanning tree field over an arbitrary carrier graph
# ----------------------------------------------------------------------
def build_tree_field(carrier: Graph, labels: Labels, prefix: str,
                     root: Optional[Vertex] = None) -> Vertex:
    """BFS-tree labels over ``carrier`` (must be connected); returns root."""
    if root is None:
        root = min(carrier.vertices(), key=repr)
    dist = carrier.bfs_distances(root)
    if len(dist) != carrier.n:
        raise ValueError("carrier graph is not connected")
    parent: Dict[Vertex, Optional[Vertex]] = {root: None}
    for v in carrier.vertices():
        if v == root:
            continue
        parent[v] = min((w for w in carrier.neighbors(v)
                         if dist[w] == dist[v] - 1), key=repr)
    for v in carrier.vertices():
        lab = ensure_label(labels, v)
        lab[prefix + "_root"] = root
        lab[prefix + "_parent"] = parent[v]
        lab[prefix + "_dist"] = dist[v]
    return root


def check_tree_field(carrier_neighbors: Set[Vertex], labels: Labels,
                     v: Vertex, prefix: str) -> bool:
    """Local check of a tree field at ``v`` over its carrier neighbours.

    Accepting everywhere forces: one root value shared by all (compared
    across *all* carrier edges), the root at distance 0, and every other
    vertex owning a carrier-neighbour parent one step closer.  Fails on
    disconnected carriers (some vertex has no valid parent).
    """
    root = get_field(labels, v, prefix + "_root")
    dist = get_field(labels, v, prefix + "_dist")
    parent = get_field(labels, v, prefix + "_parent")
    if root is None or not isinstance(dist, int) or dist < 0:
        return False
    for w in carrier_neighbors:
        if get_field(labels, w, prefix + "_root") != root:
            return False
    if v == root:
        return dist == 0 and parent is None
    if parent is None or parent not in carrier_neighbors:
        return False
    wdist = get_field(labels, parent, prefix + "_dist")
    return isinstance(wdist, int) and wdist == dist - 1


# ----------------------------------------------------------------------
# pointer (distance-to-structure) field over the communication graph
# ----------------------------------------------------------------------
def build_pointer_field(graph: Graph, labels: Labels, key: str,
                        targets: Iterable[Vertex]) -> None:
    targets = list(targets)
    if not targets:
        raise ValueError("pointer field needs a non-empty target set")
    dist: Dict[Vertex, int] = {t: 0 for t in targets}
    queue = deque(targets)
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            if w not in dist:
                dist[w] = dist[u] + 1
                queue.append(w)
    if len(dist) != graph.n:
        raise ValueError("pointer targets unreachable from some vertex")
    for v in graph.vertices():
        ensure_label(labels, v)[key] = dist[v]


def check_pointer_field(graph: Graph, labels: Labels, v: Vertex,
                        key: str) -> Optional[bool]:
    """Returns True if v points onward, False if malformed; a return of
    ``None`` means v claims to *be* in the target structure (d = 0) and
    the scheme must run its structure-local check."""
    d = get_field(labels, v, key)
    if not isinstance(d, int) or d < 0:
        return False
    if d == 0:
        return None
    return any(get_field(labels, w, key) == d - 1
               for w in graph.neighbors(v))
