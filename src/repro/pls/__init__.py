"""Proof labeling schemes (Section 5.2.2, Lemma 5.1, Claims 5.12-5.13).

A PLS for a predicate P consists of a *prover* assigning each vertex a
label and a *local verifier* run at every vertex with access to its own
state, its label, and its neighbours' labels.  Completeness: P-instances
have an all-accepting labeling.  Soundness: on non-P instances every
labeling is rejected somewhere.  Theorem 5.1 compiles any PLS into a
nondeterministic two-party protocol of cost O(pls-size · |Ecut|), which
bounds what Theorem 1.1 can prove (Corollary 5.3).
"""

from repro.pls.scheme import (
    PlsInstance,
    ProofLabelingScheme,
    check_completeness,
    check_soundness_samples,
    max_label_bits,
)
from repro.pls.trees import (
    SpanningTreePls,
    AcyclicityPls,
    SimplePathPls,
    HamiltonianCycleVerificationPls,
    NotHamiltonianCyclePls,
    NotSpanningTreePls,
)
from repro.pls.connectivity import (
    ConnectivityPls,
    NonConnectivityPls,
    StConnectivityPls,
    NonStConnectivityPls,
    ConnectedSpanningSubgraphPls,
    NotConnectedSpanningSubgraphPls,
    CyclePls,
    NoCyclePls,
    ECyclePls,
    NoECyclePls,
    BipartitePls,
    NonBipartitePls,
    CutPls,
    NotCutPls,
    StCutPls,
    NotStCutPls,
    EdgeOnAllPathsPls,
    EdgeNotOnAllPathsPls,
)
from repro.pls.matching import MatchingAtLeastPls, MatchingLessThanPls
from repro.pls.distance import DistanceAtLeastPls, DistanceLessThanPls
from repro.pls.to_protocol import pls_to_nondeterministic_protocol

__all__ = [
    "PlsInstance",
    "ProofLabelingScheme",
    "check_completeness",
    "check_soundness_samples",
    "max_label_bits",
    "SpanningTreePls",
    "AcyclicityPls",
    "SimplePathPls",
    "HamiltonianCycleVerificationPls",
    "NotHamiltonianCyclePls",
    "NotSpanningTreePls",
    "ConnectivityPls",
    "NonConnectivityPls",
    "StConnectivityPls",
    "NonStConnectivityPls",
    "ConnectedSpanningSubgraphPls",
    "NotConnectedSpanningSubgraphPls",
    "CyclePls",
    "NoCyclePls",
    "ECyclePls",
    "NoECyclePls",
    "BipartitePls",
    "NonBipartitePls",
    "CutPls",
    "NotCutPls",
    "StCutPls",
    "NotStCutPls",
    "EdgeOnAllPathsPls",
    "EdgeNotOnAllPathsPls",
    "MatchingAtLeastPls",
    "MatchingLessThanPls",
    "DistanceAtLeastPls",
    "DistanceLessThanPls",
    "pls_to_nondeterministic_protocol",
]
