"""PLS base classes, instances, and testing helpers."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.congest.model import message_bits
from repro.graphs import Graph, Vertex

Labels = Dict[Vertex, Any]
EdgeKey = FrozenSet


def edge_key(u: Vertex, v: Vertex) -> EdgeKey:
    return frozenset((u, v))


@dataclass
class PlsInstance:
    """A verification-problem instance (Section 5.2.3's setting).

    ``graph`` is the communication graph G; ``subgraph`` marks H's edges;
    ``s``, ``t``, ``e`` mark distinguished vertices/edge; ``k`` is the
    numeric threshold for matching/distance schemes.  Every vertex knows
    which of its incident edges are in H, whether it is s or t, whether
    an incident edge is e, and n.
    """

    graph: Graph
    subgraph: FrozenSet[EdgeKey] = frozenset()
    s: Optional[Vertex] = None
    t: Optional[Vertex] = None
    e: Optional[EdgeKey] = None
    k: Optional[int] = None

    def h_neighbors(self, v: Vertex) -> Set[Vertex]:
        return {w for w in self.graph.neighbors(v)
                if edge_key(v, w) in self.subgraph}

    def h_graph(self) -> Graph:
        g = Graph()
        g.add_vertices(self.graph.vertices())
        for key in self.subgraph:
            u, v = tuple(key)
            g.add_edge(u, v)
        return g

    def complement_graph(self) -> Graph:
        """G \\ H (same vertex set, the non-H edges)."""
        g = Graph()
        g.add_vertices(self.graph.vertices())
        for u, v in self.graph.edges():
            if edge_key(u, v) not in self.subgraph:
                g.add_edge(u, v)
        return g


class ProofLabelingScheme:
    """Base class; subclasses implement ``prove`` and ``vertex_accepts``."""

    name = "pls"

    def applies(self, instance: PlsInstance) -> bool:
        """Ground truth of the predicate this scheme certifies."""
        raise NotImplementedError

    def prove(self, instance: PlsInstance) -> Labels:
        """Honest labels for a YES instance."""
        raise NotImplementedError

    def vertex_accepts(self, instance: PlsInstance, labels: Labels,
                       v: Vertex) -> bool:
        raise NotImplementedError

    def verify(self, instance: PlsInstance, labels: Labels) -> bool:
        return all(self.vertex_accepts(instance, labels, v)
                   for v in instance.graph.vertices())


def max_label_bits(labels: Labels) -> int:
    """Proof size: the largest label in bits (message_bits measure)."""
    return max((message_bits(l) for l in labels.values()), default=0)


def check_completeness(scheme: ProofLabelingScheme,
                       instance: PlsInstance) -> int:
    """Prove + verify on a YES instance; returns the proof size in bits."""
    if not scheme.applies(instance):
        raise ValueError(f"{scheme.name}: not a YES instance")
    labels = scheme.prove(instance)
    if not scheme.verify(instance, labels):
        rejecting = [v for v in instance.graph.vertices()
                     if not scheme.vertex_accepts(instance, labels, v)]
        raise AssertionError(
            f"{scheme.name}: honest labels rejected at {rejecting[:3]}")
    return max_label_bits(labels)


def check_soundness_samples(scheme: ProofLabelingScheme,
                            instance: PlsInstance,
                            rng: random.Random,
                            attempts: int = 60,
                            donor_instances: Iterable[PlsInstance] = (),
                            ) -> None:
    """On a NO instance, try to fool the verifier with adversarial labels.

    Tries: empty/zero labels, honest labels stolen from YES *donor*
    instances on the same vertex set, and random mutations thereof.
    Raises if any labeling is accepted (soundness violation).
    """
    if scheme.applies(instance):
        raise ValueError(f"{scheme.name}: not a NO instance")
    candidates: List[Labels] = [
        {v: None for v in instance.graph.vertices()},
        {v: 0 for v in instance.graph.vertices()},
    ]
    donor_labels: List[Labels] = []
    for donor in donor_instances:
        try:
            donor_labels.append(scheme.prove(donor))
        except Exception:
            continue
    candidates.extend(donor_labels)
    pool: List[Any] = [l for lab in donor_labels for l in lab.values()]
    vertices = instance.graph.vertices()
    for __ in range(attempts):
        if pool:
            cand = {v: rng.choice(pool) for v in vertices}
        else:
            cand = {v: rng.randint(0, instance.graph.n) for v in vertices}
        candidates.append(cand)
        if donor_labels:
            base = dict(rng.choice(donor_labels))
            for v in rng.sample(vertices, max(1, len(vertices) // 4)):
                base[v] = rng.choice(pool)
            candidates.append(base)
    for cand in candidates:
        if scheme.verify(instance, cand):
            raise AssertionError(
                f"{scheme.name}: adversarial labels accepted on a NO instance")
