"""Sequential approximation algorithms (baselines and upper bounds)."""

from repro.approx.algorithms import (
    greedy_mds,
    matching_vertex_cover,
    greedy_maxis,
    local_search_maxcut,
    random_maxcut,
)

__all__ = [
    "greedy_mds",
    "matching_vertex_cover",
    "greedy_maxis",
    "local_search_maxcut",
    "random_maxcut",
]
