"""Classic approximation algorithms used as baselines.

These are the sequential counterparts of the distributed upper bounds the
paper cites: greedy ln(Δ)+1 dominating set [49, 26, 33, 34], the
matching-based 2-approximate vertex cover, greedy (Δ+1)-approximate
MaxIS [7], and the 1/2-approximate max-cut local search / random
assignment [11, 28].
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.graphs import Graph, Vertex


def greedy_mds(graph: Graph) -> List[Vertex]:
    """Greedy set-cover MDS: ln(Δ+1)+1 approximation."""
    undominated: Set[Vertex] = set(graph.vertices())
    solution: List[Vertex] = []
    while undominated:
        best = max(graph.vertices(),
                   key=lambda v: (len(graph.closed_neighborhood(v)
                                      & undominated), repr(v)))
        gain = graph.closed_neighborhood(best) & undominated
        if not gain:
            raise RuntimeError("no progress; disconnected bookkeeping bug")
        solution.append(best)
        undominated -= gain
    return solution


def matching_vertex_cover(graph: Graph) -> List[Vertex]:
    """Both endpoints of a maximal matching: 2-approximate MVC."""
    cover: List[Vertex] = []
    used: Set[Vertex] = set()
    for u, v in sorted(graph.edges(), key=repr):
        if u not in used and v not in used:
            used.update((u, v))
            cover.extend((u, v))
    return cover


def greedy_maxis(graph: Graph) -> List[Vertex]:
    """Min-degree greedy independent set ((Δ+1)-approximate, and
    (Δ+2)/3 on bounded-degree graphs)."""
    remaining = graph.copy()
    solution: List[Vertex] = []
    while remaining.n:
        v = min(remaining.vertices(), key=lambda u: (remaining.degree(u),
                                                     repr(u)))
        solution.append(v)
        for w in list(remaining.closed_neighborhood(v)):
            remaining.remove_vertex(w)
    return solution


def random_maxcut(graph: Graph, rng: random.Random) -> List[Vertex]:
    """Uniform random side assignment: 1/2-approximate in expectation."""
    return [v for v in graph.vertices() if rng.random() < 0.5]


def local_search_maxcut(graph: Graph,
                        start: Optional[Sequence[Vertex]] = None,
                        ) -> List[Vertex]:
    """Flip-improving local search: a (deterministic) 1/2-approximation."""
    side: Set[Vertex] = set(start or [])
    improved = True
    while improved:
        improved = False
        for v in graph.vertices():
            in_side = v in side
            cross = sum(graph.edge_weight(v, w) for w in graph.neighbors(v)
                        if (w in side) != in_side)
            stay = sum(graph.edge_weight(v, w) for w in graph.neighbors(v)
                       if (w in side) == in_side)
            if stay > cross:
                if in_side:
                    side.discard(v)
                else:
                    side.add(v)
                improved = True
    return list(side)
