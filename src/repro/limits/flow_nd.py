"""Claim 5.11: nondeterministic protocols for max (s,t)-flow / min cut.

Both protocols exchange O(|Ecut|·log n) bits, which by Corollary 5.2
caps any Theorem 1.1 lower bound for exact max-flow at O(Γ(f)) — and
with f = DISJ or EQ, at a constant.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Set, Tuple

from repro.cc.nondeterministic import NondeterministicProtocol
from repro.cc.protocol import Channel
from repro.graphs import Graph, Vertex
from repro.limits.protocols import PartitionedInstance
from repro.solvers.flow import max_flow, min_st_cut


def max_flow_at_least_protocol(inst: PartitionedInstance, s: Vertex,
                               t: Vertex, k: float) -> NondeterministicProtocol:
    """MF ≥ k: the certificate is a feasible flow split by side; only
    the cut-edge flow values are exchanged."""
    g = inst.graph
    alice = inst.alice

    def owner_is_alice(u: Vertex, v: Vertex) -> bool:
        return u in alice and v in alice

    def prover(x: Any, y: Any) -> Tuple[Any, Any]:
        value, flow = max_flow(g, s, t)
        cert_a = {}
        cert_b = {}
        for (u, v), f in flow.items():
            if u in alice and v in alice:
                cert_a[(u, v)] = f
            elif u not in alice and v not in alice:
                cert_b[(u, v)] = f
            else:
                cert_a[(u, v)] = f
                cert_b[(u, v)] = f
        return cert_a, cert_b

    def verifier(x: Any, cert_a: Any, y: Any, cert_b: Any,
                 channel: Channel) -> bool:
        if not isinstance(cert_a, dict) or not isinstance(cert_b, dict):
            return False
        # exchange flow on cut arcs; both players must agree on them
        cut_arcs_a = {arc: f for arc, f in cert_a.items()
                      if not (arc[0] in alice and arc[1] in alice)}
        channel.a_to_b([(repr(arc), f) for arc, f in cut_arcs_a.items()])
        cut_arcs_b = {arc: f for arc, f in cert_b.items()
                      if not (arc[0] not in alice and arc[1] not in alice)}
        channel.b_to_a([(repr(arc), f) for arc, f in cut_arcs_b.items()])
        if cut_arcs_a != cut_arcs_b:
            return False
        flow = dict(cert_a)
        flow.update(cert_b)
        # feasibility: arcs exist, capacities respected, conservation
        excess: Dict[Vertex, float] = {v: 0.0 for v in g.vertices()}
        for (u, v), f in flow.items():
            if f < -1e-9 or not g.has_edge(u, v):
                return False
            if f > g.edge_weight(u, v) + 1e-9:
                return False
            excess[u] -= f
            excess[v] += f
        for v in g.vertices():
            if v in (s, t):
                continue
            if abs(excess[v]) > 1e-9:
                return False
        value = excess[t]
        channel.a_to_b(int(value))
        return value >= k - 1e-9

    return NondeterministicProtocol(name="maxflow>=k", prover=prover,
                                    verifier=verifier)


def max_flow_less_than_protocol(inst: PartitionedInstance, s: Vertex,
                                t: Vertex, k: float) -> NondeterministicProtocol:
    """MF < k: the certificate is an (s,t)-cut; only the marks of
    cut-incident vertices are exchanged, plus the per-side partial cut
    weights."""
    g = inst.graph
    alice = inst.alice
    cut_vertices = inst.cut_vertices()

    def prover(x: Any, y: Any) -> Tuple[Any, Any]:
        __, side = min_st_cut(g, s, t)
        cert_a = {v: (1 if v in side else 0) for v in alice}
        cert_b = {v: (1 if v in side else 0) for v in inst.bob}
        return cert_a, cert_b

    def verifier(x: Any, cert_a: Any, y: Any, cert_b: Any,
                 channel: Channel) -> bool:
        if not isinstance(cert_a, dict) or not isinstance(cert_b, dict):
            return False
        marks: Dict[Vertex, int] = {}
        for v in g.vertices():
            m = cert_a.get(v) if v in alice else cert_b.get(v)
            if m not in (0, 1):
                return False
            marks[v] = m
        if marks.get(s) != 1 or marks.get(t) != 0:
            return False
        # exchange cut-incident marks
        channel.a_to_b([(repr(v), marks[v]) for v in cut_vertices
                        if v in alice])
        channel.b_to_a([(repr(v), marks[v]) for v in cut_vertices
                        if v not in alice])
        # partial cut weights per side
        weight_a = sum(g.edge_weight(u, v) for u, v in g.edges()
                       if u in alice and v in alice
                       and marks[u] != marks[v])
        weight_b = sum(g.edge_weight(u, v) for u, v in g.edges()
                       if u not in alice and v not in alice
                       and marks[u] != marks[v])
        weight_cut = sum(g.edge_weight(u, v) for u, v in g.edges()
                         if (u in alice) != (v in alice)
                         and marks[u] != marks[v])
        channel.a_to_b(int(weight_a))
        channel.b_to_a(int(weight_b))
        total = weight_a + weight_b + weight_cut
        return total <= k - 1  # integer capacities: cut < k proves MF < k

    return NondeterministicProtocol(name="maxflow<k", prover=prover,
                                    verifier=verifier)
