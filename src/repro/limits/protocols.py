"""Two-party protocols behind the limitation claims (Section 5.1).

Each protocol operates on a :class:`PartitionedInstance` — a graph with
a fixed (VA, VB) split, where Alice sees G[VA] ∪ Ecut and Bob sees
G[VB] ∪ Ecut (as in Definition 1.1) — and routes every cross-player bit
through a :class:`~repro.cc.protocol.Channel`.  The claims bound the
bits; the tests assert both the bit bounds and the approximation
guarantees against exact optima.

Local computation is unbounded (both in CONGEST and in communication
complexity), so the players use the exact solvers on their own sides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.cc.protocol import Channel
from repro.graphs import Graph, Vertex, label_sort_key
from repro.solvers.dominating import (
    constrained_min_dominating_set,
    min_dominating_set,
)
from repro.solvers.maxcut import cut_weight, max_cut
from repro.solvers.mis import max_independent_set
from repro.solvers.vertex_cover import is_vertex_cover, min_vertex_cover


@dataclass
class PartitionedInstance:
    """A lower-bound-graph instance as seen by the two players."""

    graph: Graph
    alice: Set[Vertex]

    @property
    def bob(self) -> Set[Vertex]:
        return set(self.graph.vertices()) - self.alice

    def cut_edges(self) -> List[Tuple[Vertex, Vertex]]:
        return [(u, v) for u, v in self.graph.edges()
                if (u in self.alice) != (v in self.alice)]

    def cut_vertices(self) -> Set[Vertex]:
        out: Set[Vertex] = set()
        for u, v in self.cut_edges():
            out.update((u, v))
        return out

    def internal_edges(self, side: Set[Vertex]) -> List[Tuple[Vertex, Vertex]]:
        return [(u, v) for u, v in self.graph.edges()
                if u in side and v in side]

    def side_graph(self, side: Set[Vertex]) -> Graph:
        return self.graph.induced_subgraph(side)


def _exchange_edges(inst: PartitionedInstance, channel: Channel) -> None:
    """Both players learn the whole graph (m·O(log n) bits)."""
    uid = {v: i for i, v in enumerate(sorted(inst.graph.vertices(), key=repr))}
    channel.a_to_b([(uid[u], uid[v])
                    for u, v in inst.internal_edges(inst.alice)])
    channel.b_to_a([(uid[u], uid[v])
                    for u, v in inst.internal_edges(inst.bob)])


# ----------------------------------------------------------------------
# Claims 5.1-5.3: bounded-degree (1 ± ε) protocols
# ----------------------------------------------------------------------
def mvc_bounded_degree_protocol(inst: PartitionedInstance, epsilon: float,
                                channel: Channel) -> List[Vertex]:
    """Claim 5.1: a (1+ε)-approximate MVC with O(|Ecut|·log n/ε) bits on
    bounded-degree instances."""
    g = inst.graph
    m = channel.a_to_b(len(inst.internal_edges(inst.alice))) + \
        len(inst.internal_edges(inst.bob)) + len(inst.cut_edges())
    delta = max(channel.b_to_a(
        max((g.degree(v) for v in inst.bob), default=0)),
        max((g.degree(v) for v in inst.alice), default=0))
    if delta and len(inst.cut_edges()) <= epsilon * m / (2 * delta):
        cover = list(inst.cut_vertices())
        cover += min_vertex_cover(inst.side_graph(inst.alice - set(cover)))
        cover += min_vertex_cover(inst.side_graph(inst.bob - set(cover)))
        # O(log n): confirm completion
        channel.a_to_b(1)
        return cover
    _exchange_edges(inst, channel)
    return min_vertex_cover(g)


def mds_bounded_degree_protocol(inst: PartitionedInstance, epsilon: float,
                                channel: Channel) -> List[Vertex]:
    """Claim 5.2: a (1+ε)-approximate MDS with O(|Ecut|·log n/ε) bits on
    bounded-degree instances."""
    g = inst.graph
    m = channel.a_to_b(len(inst.internal_edges(inst.alice))) + \
        len(inst.internal_edges(inst.bob)) + len(inst.cut_edges())
    delta = max(channel.b_to_a(
        max((g.degree(v) for v in inst.bob), default=0)),
        max((g.degree(v) for v in inst.alice), default=0))
    cut_verts = inst.cut_vertices()
    if delta and len(inst.cut_edges()) <= epsilon * m / (2 * (delta + 1) * delta):
        solution = list(cut_verts)
        for side in (inst.alice, inst.bob):
            internal = side - cut_verts
            __, picked = constrained_min_dominating_set(
                g.induced_subgraph(side), targets=internal)
            solution += picked or []
        channel.a_to_b(1)
        return solution
    _exchange_edges(inst, channel)
    return min_dominating_set(g)


def maxis_bounded_degree_protocol(inst: PartitionedInstance, epsilon: float,
                                  channel: Channel) -> List[Vertex]:
    """Claim 5.3: a (1−ε)-approximate MaxIS with O(|Ecut|·log n/ε) bits
    on bounded-degree instances."""
    g = inst.graph
    m = channel.a_to_b(len(inst.internal_edges(inst.alice))) + \
        len(inst.internal_edges(inst.bob)) + len(inst.cut_edges())
    delta = max(channel.b_to_a(
        max((g.degree(v) for v in inst.bob), default=0)),
        max((g.degree(v) for v in inst.alice), default=0))
    cut_verts = inst.cut_vertices()
    if delta and len(inst.cut_edges()) <= epsilon * m / ((delta + 1) * delta):
        solution: List[Vertex] = []
        for side in (inst.alice, inst.bob):
            internal = side - cut_verts
            solution += max_independent_set(g.induced_subgraph(internal))
        channel.a_to_b(1)
        return solution
    _exchange_edges(inst, channel)
    return max_independent_set(g)


# ----------------------------------------------------------------------
# Claims 5.4-5.5: max-cut protocols on general graphs
# ----------------------------------------------------------------------
def maxcut_unweighted_protocol(inst: PartitionedInstance, epsilon: float,
                               channel: Channel) -> List[Vertex]:
    """Claim 5.4: a (1−ε)-approximate unweighted max-cut."""
    g = inst.graph
    m = channel.a_to_b(len(inst.internal_edges(inst.alice))) + \
        len(inst.internal_edges(inst.bob)) + len(inst.cut_edges())
    if len(inst.cut_edges()) <= epsilon * m / 2:
        __, side_a = max_cut(inst.side_graph(inst.alice))
        __, side_b = max_cut(inst.side_graph(inst.bob))
        channel.a_to_b(1)
        return list(side_a) + list(side_b)
    _exchange_edges(inst, channel)
    __, side = max_cut(g)
    return list(side)


def maxcut_weighted_two_thirds_protocol(inst: PartitionedInstance,
                                        channel: Channel) -> List[Vertex]:
    """Claim 5.5 ([30, §2.3]): a 2/3-approximate weighted max-cut with
    O(|Ecut|·log n) bits.

    Alice solves (V, EA) optimally, Bob solves (V, EB ∪ Ecut); vertices
    outside a player's edge set default to side 0, so only cut-incident
    assignments cross the channel.  One of CA, CB, CA ⊕ CB achieves 2/3.
    """
    g = inst.graph
    cut_verts = sorted(inst.cut_vertices(), key=repr)
    # Alice's cut of her internal edges
    ga = inst.side_graph(inst.alice)
    __, ca_side = max_cut(ga)
    ca = {v: (1 if v in set(ca_side) else 0) for v in inst.alice}
    # Bob's cut of his internal + cut edges
    gb = Graph()
    gb.add_vertices(sorted(inst.bob | inst.cut_vertices(),
                           key=label_sort_key))
    for u, v in inst.internal_edges(inst.bob) + inst.cut_edges():
        gb.add_edge(u, v, weight=g.edge_weight(u, v))
    __, cb_side = max_cut(gb)
    cb = {v: (1 if v in set(cb_side) else 0) for v in gb.vertices()}
    # exchange the cut-incident assignments (O(|Ecut| log n) bits)
    channel.a_to_b([(repr(v), ca.get(v, 0)) for v in cut_verts
                    if v in inst.alice])
    channel.b_to_a([(repr(v), cb.get(v, 0)) for v in cut_verts
                    if v in inst.bob])

    def full_assignment(base: Dict[Vertex, int]) -> Dict[Vertex, int]:
        return {v: base.get(v, 0) for v in g.vertices()}

    cand_a = full_assignment(ca)
    cand_b = full_assignment(cb)
    cand_xor = {v: cand_a[v] ^ cand_b[v] for v in g.vertices()}
    # the players evaluate all three candidates; each evaluation needs
    # only the already-exchanged cut-incident values, plus exchanging
    # the three per-side partial weights (O(log W) bits)
    best = None
    best_w = -1.0
    for cand in (cand_a, cand_b, cand_xor):
        side = [v for v, s in cand.items() if s == 1]
        w = cut_weight(g, side)
        channel.a_to_b(int(w))
        if w > best_w:
            best_w = w
            best = side
    assert best is not None
    return best


# ----------------------------------------------------------------------
# Claims 5.6-5.9: MVC / MDS / MaxIS protocols on general graphs
# ----------------------------------------------------------------------
def mvc_three_halves_protocol(inst: PartitionedInstance,
                              channel: Channel) -> List[Vertex]:
    """Claim 5.6: a 3/2-approximate MVC with O(|Ecut|·log n) bits."""
    g = inst.graph
    opt_a = len(min_vertex_cover(inst.side_graph(inst.alice)))
    opt_b = channel.b_to_a(
        len(min_vertex_cover(inst.side_graph(inst.bob))))
    channel.a_to_b(opt_a)
    small_side, big_side = ((inst.alice, inst.bob) if opt_a <= opt_b
                            else (inst.bob, inst.alice))
    # the small side covers its internal edges optimally; the other
    # player covers everything touching its side (cut edges included)
    cover = list(min_vertex_cover(inst.side_graph(small_side)))
    big = Graph()
    big.add_vertices(big_side | inst.cut_vertices())
    for u, v in inst.internal_edges(big_side) + inst.cut_edges():
        big.add_edge(u, v)
    big_cover = min_vertex_cover(big)
    # announce the chosen cut vertices of the other side (O(|Ecut| log n))
    channel.b_to_a([repr(v) for v in big_cover if v in inst.cut_vertices()])
    return cover + list(big_cover)


def mvc_ptas_protocol(inst: PartitionedInstance, epsilon: float,
                      channel: Channel) -> List[Vertex]:
    """Claim 5.7: a (1+ε)-approximate MVC with
    O(|Ecut|·log n·OPT/ε) bits (after [5])."""
    g = inst.graph
    rough = mvc_three_halves_protocol(inst, channel)
    k = len(rough)  # OPT <= k <= 3/2 OPT
    cut = inst.cut_edges()
    if len(cut) < epsilon * k / 3:
        cover = list(inst.cut_vertices())
        cover += min_vertex_cover(inst.side_graph(inst.alice - set(cover)))
        cover += min_vertex_cover(inst.side_graph(inst.bob - set(cover)))
        return cover
    # high-degree vertices must be in any optimal cover
    forced = [v for v in g.vertices() if g.degree(v) > k]
    channel.a_to_b([repr(v) for v in forced
                    if v in inst.alice and v in inst.cut_vertices()])
    channel.b_to_a([repr(v) for v in forced
                    if v in inst.bob and v in inst.cut_vertices()])
    remaining = Graph()
    remaining.add_vertices(g.vertices())
    forced_set = set(forced)
    for u, v in g.edges():
        if u not in forced_set and v not in forced_set:
            remaining.add_edge(u, v)
    # the remaining graph has ≤ k² edges; both players learn it
    uid = {v: i for i, v in enumerate(sorted(g.vertices(), key=repr))}
    channel.a_to_b([(uid[u], uid[v]) for u, v in remaining.edges()
                    if u in inst.alice and v in inst.alice])
    channel.b_to_a([(uid[u], uid[v]) for u, v in remaining.edges()
                    if u in inst.bob and v in inst.bob])
    return forced + min_vertex_cover(remaining)


def mds_two_approx_protocol(inst: PartitionedInstance,
                            channel: Channel) -> List[Vertex]:
    """Claim 5.8: a 2-approximate weighted MDS with O(|Ecut|·log n) bits.

    Each player dominates its own side optimally, possibly using
    cut-neighbours of the other side (which it sees via the fixed cut);
    it announces those choices.
    """
    g = inst.graph
    solution: List[Vertex] = []
    for side in (inst.alice, inst.bob):
        visible = side | {w for v in side.copy()
                          for w in g.neighbors(v)}
        sub = g.induced_subgraph(visible)
        __, picked = constrained_min_dominating_set(
            sub, targets=side, weighted=True)
        assert picked is not None
        solution += picked
        channel.a_to_b([repr(v) for v in picked if v not in side])
    return solution


def maxis_half_protocol(inst: PartitionedInstance,
                        channel: Channel) -> List[Vertex]:
    """Claim 5.9: a 1/2-approximate weighted MaxIS with O(log n) bits."""
    g = inst.graph
    best_a = max_independent_set(inst.side_graph(inst.alice), weighted=True)
    best_b = max_independent_set(inst.side_graph(inst.bob), weighted=True)
    wa = sum(g.vertex_weight(v) for v in best_a)
    wb = sum(g.vertex_weight(v) for v in best_b)
    channel.a_to_b(int(wa))
    channel.b_to_a(int(wb))
    return best_a if wa >= wb else best_b


# ----------------------------------------------------------------------
# the triangle-detection observation ([16], recalled in Section 5)
# ----------------------------------------------------------------------
def triangle_detection_protocol(inst: PartitionedInstance,
                                channel: Channel) -> bool:
    """Two bits decide triangle existence in the fixed-cut setting.

    Every triangle has at least two vertices on one side; that side's
    player sees all three of its edges (the internal edge plus the two
    fixed cut edges), so each player checks locally and they exchange
    single bits — the [16] argument for why Theorem 1.1 cannot give
    *any* lower bound for triangle detection.
    """
    g = inst.graph

    def side_sees_triangle(side: Set[Vertex]) -> bool:
        visible = [(u, v) for u, v in g.edges()
                   if u in side or v in side]
        adj: Dict[Vertex, Set[Vertex]] = {}
        for u, v in visible:
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)
        for u, v in visible:
            if u in side or v in side:
                common = adj.get(u, set()) & adj.get(v, set())
                for w in common:
                    # the majority side must see all three edges
                    members = [u, v, w]
                    inside = sum(1 for m in members if m in side)
                    if inside >= 2:
                        return True
        return False

    alice_found = side_sees_triangle(inst.alice)
    bob_found = side_sees_triangle(inst.bob)
    channel.a_to_b(alice_found)
    channel.b_to_a(bob_found)
    return alice_found or bob_found


# ----------------------------------------------------------------------
# Claim 3.6: solving DISJ through a bounded-degree MaxIS algorithm
# ----------------------------------------------------------------------
def solve_disjointness_via_bounded_degree_maxis(
    construction, x: Sequence[int], y: Sequence[int],
) -> Tuple[bool, int, int]:
    """The Claim 3.6 simulation: Alice and Bob build G′ on their own
    sides, run a CONGEST MaxIS algorithm across the cut, exchange m_G
    and m_exp, and read DISJ off α(G′).

    Uses the universal exact algorithm as the simulated MaxIS algorithm.
    Returns (disjointness answer, cut bits exchanged, rounds).
    """
    from repro.cc.alice_bob import simulate_two_party
    from repro.congest.algorithms import run_universal_exact
    from repro.congest.algorithms.collect import CollectAndSolve
    from repro.congest.model import message_bits

    instance = construction.build(x, y)
    gprime = instance.graph

    def solver(n, edge_records, vertex_records):
        from repro.solvers.mis import independence_number

        g = Graph()
        g.add_vertices(range(n))
        for u, v, __ in edge_records:
            g.add_edge(u, v)
        # the leader only needs the independence number (local
        # computation is free; branch-and-reduce keeps it practical)
        alpha = independence_number(g)
        return alpha, {u: False for u in range(n)}

    sim = simulate_two_party(
        gprime, instance.alice_vertices,
        lambda: CollectAndSolve(solver), bandwidth_factor=40)
    alpha = next(iter(sim.outputs.values()))["global"]
    # exchanging m_G and m_exp costs O(log n) extra bits
    extra_bits = message_bits(instance.m_base_edges) + \
        message_bits(instance.m_expander_clauses)
    target = construction.alpha_target(instance)
    disjoint = alpha < target
    return disjoint, sim.cut_bits + extra_bits, sim.rounds
