"""Section 5: limitations of the Theorem 1.1 framework, as executable
two-party protocols (Claims 5.1-5.9, 5.11) and the Γ(f) measure."""

from repro.limits.protocols import (
    PartitionedInstance,
    mvc_bounded_degree_protocol,
    mds_bounded_degree_protocol,
    maxis_bounded_degree_protocol,
    maxcut_unweighted_protocol,
    maxcut_weighted_two_thirds_protocol,
    mvc_three_halves_protocol,
    mvc_ptas_protocol,
    mds_two_approx_protocol,
    maxis_half_protocol,
    triangle_detection_protocol,
    solve_disjointness_via_bounded_degree_maxis,
)
from repro.limits.flow_nd import (
    max_flow_at_least_protocol,
    max_flow_less_than_protocol,
)

__all__ = [
    "PartitionedInstance",
    "mvc_bounded_degree_protocol",
    "mds_bounded_degree_protocol",
    "maxis_bounded_degree_protocol",
    "maxcut_unweighted_protocol",
    "maxcut_weighted_two_thirds_protocol",
    "mvc_three_halves_protocol",
    "mvc_ptas_protocol",
    "mds_two_approx_protocol",
    "maxis_half_protocol",
    "triangle_detection_protocol",
    "solve_disjointness_via_bounded_degree_maxis",
    "max_flow_at_least_protocol",
    "max_flow_less_than_protocol",
]
