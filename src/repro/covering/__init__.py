"""r-covering set collections (Lemma 4.2, after [38, 40])."""

from repro.covering.designs import (
    CoveringCollection,
    build_covering_collection,
    has_r_covering_property,
)

__all__ = [
    "CoveringCollection",
    "build_covering_collection",
    "has_r_covering_property",
]
