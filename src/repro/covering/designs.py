"""Covering collections with the r-covering property (Lemma 4.2).

A collection C = S₁ … S_T of subsets of [ℓ] has the *r-covering
property* if any choice of at most r sets from {Sᵢ} ∪ {S̄ᵢ} that
contains no complementary pair leaves some element of [ℓ] uncovered.
Lemma 4.2 ([40]) guarantees collections of size T = e^{ℓ/r·2^r}; we build
them by the probabilistic construction (uniform random subsets) and
*verify* the property exhaustively before use, retrying seeds on failure
— so the Section 4.2-4.4 experiments never assume the design.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple


@dataclass(frozen=True)
class CoveringCollection:
    """Sets over universe [ℓ] with the verified r-covering property."""

    universe_size: int
    r: int
    sets: Tuple[FrozenSet[int], ...]

    @property
    def T(self) -> int:
        return len(self.sets)

    def complement(self, index: int) -> FrozenSet[int]:
        return frozenset(range(self.universe_size)) - self.sets[index]


def has_r_covering_property(universe_size: int,
                            sets: Sequence[FrozenSet[int]],
                            r: int) -> bool:
    """Exhaustive check: every ≤ r-subset of {Sᵢ} ∪ {S̄ᵢ} without a
    complementary pair misses some element.  Exponential in r and T —
    intended for the verification scale."""
    universe = frozenset(range(universe_size))
    # signed index: (i, False) = S_i, (i, True) = complement
    signed = [(i, False) for i in range(len(sets))] + \
             [(i, True) for i in range(len(sets))]

    def resolve(si: Tuple[int, bool]) -> FrozenSet[int]:
        i, comp = si
        return (universe - sets[i]) if comp else sets[i]

    for size in range(1, r + 1):
        for combo in itertools.combinations(signed, size):
            indices = [i for i, __ in combo]
            if len(set(indices)) != len(indices):
                continue  # contains S_i together with S̄_i (or a repeat)
            covered = frozenset().union(*(resolve(si) for si in combo))
            if covered >= universe:
                return False
    return True


def build_covering_collection(universe_size: int, T: int, r: int,
                              seed: int = 0, max_tries: int = 500,
                              ) -> CoveringCollection:
    """Probabilistic construction with exhaustive verification.

    Each element joins each set independently with probability 1/2; the
    collection is kept only if the r-covering property verifies, else the
    seed advances.  Also rejects collections with empty/full sets or
    duplicated sets (degenerate for the constructions downstream).
    """
    universe = frozenset(range(universe_size))
    for attempt in range(max_tries):
        rng = random.Random(seed + attempt)
        sets = []
        for __ in range(T):
            s = frozenset(e for e in range(universe_size)
                          if rng.random() < 0.5)
            sets.append(s)
        if any(not s or s == universe for s in sets):
            continue
        if len(set(sets)) != T:
            continue
        if has_r_covering_property(universe_size, sets, r):
            return CoveringCollection(universe_size=universe_size, r=r,
                                      sets=tuple(sets))
    raise RuntimeError(
        f"no r-covering collection found (ℓ={universe_size}, T={T}, r={r}); "
        "the Lemma 4.2 regime requires T <= e^(ℓ/(r·2^r))")
