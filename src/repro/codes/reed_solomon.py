"""Reed-Solomon codes with parameters (N, κ, N − κ + 1, q), q > N.

Section 4.1 uses a code of length ℓ + t, dimension t, distance ℓ + 1 to
give every row vertex a representation at pairwise Hamming distance ≥ ℓ.
Codewords are evaluations of degree-(κ−1) polynomials over distinct
field points; the distance follows from polynomials of degree < κ
agreeing on at most κ − 1 points (checked empirically in tests).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.codes.gf import PrimeField


def hamming_distance(a: Sequence[int], b: Sequence[int]) -> int:
    if len(a) != len(b):
        raise ValueError("length mismatch")
    return sum(1 for x, y in zip(a, b) if x != y)


class ReedSolomonCode:
    """RS code of length ``n`` and dimension ``k`` over GF(p), p > n."""

    def __init__(self, field: PrimeField, n: int, k: int) -> None:
        if not 1 <= k <= n:
            raise ValueError("need 1 <= k <= n")
        if field.size <= n:
            raise ValueError("field too small: need q > n")
        self.field = field
        self.n = n
        self.k = k

    @property
    def distance(self) -> int:
        """The designed (and actual) minimum distance n − k + 1."""
        return self.n - self.k + 1

    @property
    def size(self) -> int:
        """Number of codewords q^k."""
        return self.field.size ** self.k

    def encode(self, message: Sequence[int]) -> Tuple[int, ...]:
        """Codeword of a κ-symbol message (polynomial coefficients)."""
        if len(message) != self.k:
            raise ValueError(f"message must have {self.k} symbols")
        coeffs = [m % self.field.p for m in message]
        return tuple(self.field.eval_poly(coeffs, x) for x in range(self.n))

    def encode_int(self, value: int) -> Tuple[int, ...]:
        """Codeword of an integer < q^κ (base-q digits as the message)."""
        if not 0 <= value < self.size:
            raise ValueError(f"value out of range [0, {self.size})")
        digits = []
        v = value
        for __ in range(self.k):
            digits.append(v % self.field.p)
            v //= self.field.p
        return self.encode(digits)
