"""Arithmetic in GF(p) for prime p.

Section 4.1 needs a field of size q > ℓ + t; prime fields suffice (the
paper allows any prime power, and every scale we instantiate admits a
prime q — see :func:`next_prime`).
"""

from __future__ import annotations

from typing import List


def is_prime(n: int) -> bool:
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def next_prime(n: int) -> int:
    """Smallest prime ≥ n."""
    candidate = max(2, n)
    while not is_prime(candidate):
        candidate += 1
    return candidate


class PrimeField:
    """GF(p); elements are ints in [0, p)."""

    def __init__(self, p: int) -> None:
        if not is_prime(p):
            raise ValueError(f"{p} is not prime")
        self.p = p

    @property
    def size(self) -> int:
        return self.p

    def elements(self) -> List[int]:
        return list(range(self.p))

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.p

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.p

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def inv(self, a: int) -> int:
        if a % self.p == 0:
            raise ZeroDivisionError("inverse of zero")
        return pow(a, self.p - 2, self.p)

    def eval_poly(self, coeffs: List[int], x: int) -> int:
        """Evaluate Σ coeffs[i]·x^i (Horner)."""
        acc = 0
        for c in reversed(coeffs):
            acc = (acc * x + c) % self.p
        return acc
