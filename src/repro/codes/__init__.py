"""Prime fields and Reed-Solomon codes (Section 4.1's code gadget)."""

from repro.codes.gf import PrimeField
from repro.codes.reed_solomon import ReedSolomonCode, hamming_distance

__all__ = ["PrimeField", "ReedSolomonCode", "hamming_distance"]
