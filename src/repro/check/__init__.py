"""Differential correctness harness (``repro check``).

The iff-lemmas of the reproduction ("G_{x,y} satisfies P iff
DISJ(x,y) = FALSE") are only as trustworthy as the exact solvers
deciding them.  This subsystem hunts for solver bugs by design rather
than by accident, with four layers:

1. :mod:`repro.check.reference` — naive *reference implementations*
   (subset/permutation enumeration, no bitmasks, no cache) for every
   exact solver, cross-validated against the production solvers;
2. :mod:`repro.check.invariants` — *metamorphic invariants* checked on
   every instance: vertex-relabeling invariance, edge-weight scaling,
   disjoint-union additivity, complement identities like
   α(G) + τ(G) = n, and cut/complement symmetry;
3. :mod:`repro.check.fuzz` — a *seeded graph fuzzer* (Erdős–Rényi,
   bounded-degree, weighted, structured, and small paper-family
   instances) with greedy shrinking (:mod:`repro.check.shrink`) of
   failing cases to a minimal reproducer;
4. :mod:`repro.check.congest_check` — CONGEST-vs-centralized agreement
   (the learn-the-graph MDS algorithm must equal the exact solver on
   Figure 1 instances).

Entry point: :func:`repro.check.harness.run_check`, surfaced as
``python -m repro check --seed S --cases N --family F``.
"""

from repro.check.fuzz import FAMILIES, Case, generate_cases, make_case
from repro.check.harness import (
    CHECKS,
    CheckFailure,
    CheckReport,
    run_check,
)
from repro.check.shrink import shrink_graph

__all__ = [
    "FAMILIES",
    "Case",
    "generate_cases",
    "make_case",
    "CHECKS",
    "CheckFailure",
    "CheckReport",
    "run_check",
    "shrink_graph",
]
