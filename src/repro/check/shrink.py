"""Greedy shrinking of failing fuzz cases to minimal reproducers.

Given a graph on which some check fails, :func:`shrink_graph` repeatedly
tries structure-removing transformations — delete a vertex, delete an
edge, reset a weight to the default — and keeps each one iff the check
still fails afterwards.  The result is locally minimal: no single
remaining simplification preserves the failure.  Greedy passes run to a
fixpoint, bounded by ``max_checks`` predicate evaluations so a slow
check cannot stall the harness.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Set, Tuple

from repro.graphs import Graph, Vertex

#: predicate(graph) -> True iff the failure still reproduces
Failing = Callable[[Graph], bool]


def _drop_vertex(graph: Graph, v: Vertex) -> Graph:
    g = graph.copy()
    g.remove_vertex(v)
    return g


def _drop_edge(graph: Graph, u: Vertex, v: Vertex) -> Graph:
    g = graph.copy()
    g.remove_edge(u, v)
    return g


def _reset_edge_weight(graph: Graph, u: Vertex, v: Vertex) -> Optional[Graph]:
    if graph.edge_weight(u, v) == 1.0:
        return None
    g = graph.copy()
    g.set_edge_weight(u, v, 1.0)
    return g


def _reset_vertex_weight(graph: Graph, v: Vertex) -> Optional[Graph]:
    if graph.vertex_weight(v) == 1.0:
        return None
    g = graph.copy()
    g.set_vertex_weight(v, 1.0)
    return g


def shrink_graph(graph: Graph, failing: Failing,
                 protected: Iterable[Vertex] = (),
                 max_checks: int = 400) -> Graph:
    """Smallest graph (greedy, locally minimal) on which ``failing`` holds.

    ``protected`` vertices are never deleted (checks that target fixed
    terminals stay well-defined); their weights may still be reset.  The
    input graph is never mutated.  If ``failing(graph)`` is already
    False the graph is returned unchanged — the caller's failure was not
    deterministic, which the harness reports as such.
    """
    keep: Set[Vertex] = set(protected)
    budget = [max_checks]

    def still_fails(candidate: Graph) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        try:
            return failing(candidate)
        except Exception:
            # a candidate that crashes the check is a different bug;
            # don't wander into it while minimising this one
            return False

    current = graph
    changed = True
    while changed and budget[0] > 0:
        changed = False
        # pass 1: vertices (largest structural simplification first)
        for v in list(current.vertices()):
            if v in keep:
                continue
            candidate = _drop_vertex(current, v)
            if still_fails(candidate):
                current = candidate
                changed = True
        # pass 2: edges
        for u, v in list(current.edges()):
            candidate = _drop_edge(current, u, v)
            if still_fails(candidate):
                current = candidate
                changed = True
        # pass 3: weights back to the default
        for u, v in list(current.edges()):
            reset = _reset_edge_weight(current, u, v)
            if reset is not None and still_fails(reset):
                current = reset
                changed = True
        for v in list(current.vertices()):
            reset = _reset_vertex_weight(current, v)
            if reset is not None and still_fails(reset):
                current = reset
                changed = True
    return current


def describe_graph(graph: Graph) -> dict:
    """JSON-friendly snapshot of a (shrunk) graph: the reproducer body."""
    return {
        "n": graph.n,
        "m": graph.m,
        "vertices": [{"label": repr(v), "weight": graph.vertex_weight(v)}
                     for v in graph.vertices()],
        "edges": [{"u": repr(u), "v": repr(v),
                   "weight": graph.edge_weight(u, v)}
                  for u, v in graph.edges()],
    }
