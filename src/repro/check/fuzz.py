"""Seeded graph fuzzing for the differential harness.

Cases are generated from ``(seed, family, index)`` through a string-seeded
``random.Random`` — string seeding hashes the bytes (not ``hash()``), so a
case regenerates identically in every process regardless of
``PYTHONHASHSEED``.  That is what makes a one-line reproduction command
(``repro check --seed S --family F``) possible: a worker, a shrinker, or
a developer three weeks later all rebuild the exact same instance.

Families
--------
``er``          Erdős–Rényi G(n, p), unweighted, n ∈ [4, 10]
``bounded``     random graphs with maximum degree ≤ 3 (the Section 3 shape)
``weighted``    Erdős–Rényi with integer vertex and edge weights
``structured``  a fixed library of named graphs (paths, cycles, cliques,
                stars, grids, disjoint unions, Petersen)
``paper``       Figure 1 MDS family instances G_{x,y} at k = 2, with the
                DISJ(x, y) ground truth recorded in ``meta``
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.graphs import Graph, Vertex, complete_graph, cycle_graph, \
    path_graph, random_graph

FAMILIES: Tuple[str, ...] = ("er", "bounded", "weighted", "structured",
                             "paper")


@dataclass
class Case:
    """One fuzzed instance, regenerable from ``(seed, family, index)``."""

    name: str
    family: str
    index: int
    seed: int
    graph: Graph
    #: vertices the Steiner/flow/distance checks target; shrinking never
    #: removes these.
    terminals: Tuple[Vertex, ...] = ()
    #: family-specific ground truth (e.g. the paper family's DISJ value).
    meta: Dict[str, Any] = field(default_factory=dict)


def _case_rng(seed: int, family: str, index: int) -> random.Random:
    # string seeding is PYTHONHASHSEED-independent (seeds from the bytes)
    return random.Random(f"repro-check:{seed}:{family}:{index}")


def _bounded_degree_graph(n: int, max_deg: int, rng: random.Random) -> Graph:
    g = Graph()
    g.add_vertices(range(n))
    for __ in range(3 * n):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if (u != v and not g.has_edge(u, v)
                and g.degree(u) < max_deg and g.degree(v) < max_deg):
            g.add_edge(u, v)
    return g


def _petersen() -> Graph:
    g = Graph()
    for i in range(5):
        g.add_edge(("o", i), ("o", (i + 1) % 5))
        g.add_edge(("i", i), ("i", (i + 2) % 5))
        g.add_edge(("o", i), ("i", i))
    return g


def _grid(rows: int, cols: int) -> Graph:
    g = Graph()
    for r in range(rows):
        for c in range(cols):
            g.add_vertex((r, c))
            if r:
                g.add_edge((r - 1, c), (r, c))
            if c:
                g.add_edge((r, c - 1), (r, c))
    return g


def _star(n: int) -> Graph:
    g = Graph()
    g.add_vertex(0)
    for i in range(1, n):
        g.add_edge(0, i)
    return g


def _two_triangles() -> Graph:
    g = Graph()
    g.add_clique([("L", i) for i in range(3)])
    g.add_clique([("R", i) for i in range(3)])
    return g


def _structured_library() -> List[Tuple[str, Graph]]:
    return [
        ("path-6", path_graph(6)),
        ("cycle-7", cycle_graph(7)),
        ("complete-6", complete_graph(6)),
        ("star-7", _star(7)),
        ("grid-3x3", _grid(3, 3)),
        ("two-triangles", _two_triangles()),
        ("petersen", _petersen()),
        ("single-vertex", path_graph(1)),
        ("single-edge", path_graph(2)),
    ]


def _pick_terminals(graph: Graph, rng: random.Random) -> Tuple[Vertex, ...]:
    vs = graph.vertices()
    if len(vs) < 2:
        return tuple(vs)
    count = min(len(vs), rng.randint(2, 4))
    return tuple(rng.sample(vs, count))


def make_case(seed: int, family: str, index: int, deep: bool = False) -> Case:
    """Deterministically build fuzz case ``index`` of ``family``."""
    rng = _case_rng(seed, family, index)
    hi = 12 if deep else 10
    meta: Dict[str, Any] = {}
    if family == "er":
        n = rng.randint(4, hi)
        p = rng.uniform(0.2, 0.8)
        graph = random_graph(n, p, rng)
        name = f"er-{index:04d}(n={n},p={p:.2f})"
    elif family == "bounded":
        n = rng.randint(5, hi + 2)
        graph = _bounded_degree_graph(n, 3, rng)
        name = f"bounded-{index:04d}(n={n})"
    elif family == "weighted":
        n = rng.randint(4, hi - 1)
        graph = random_graph(n, rng.uniform(0.3, 0.8), rng)
        for v in graph.vertices():
            graph.set_vertex_weight(v, float(rng.randint(1, 5)))
        for u, v in graph.edges():
            graph.set_edge_weight(u, v, float(rng.randint(1, 9)))
        name = f"weighted-{index:04d}(n={n})"
    elif family == "structured":
        library = _structured_library()
        label, graph = library[index % len(library)]
        name = f"structured-{index:04d}({label})"
    elif family == "paper":
        from repro.cc.functions import disjointness, random_disjoint_pair, \
            random_intersecting_pair
        from repro.core.mds import MdsFamily
        fam = MdsFamily(2)
        if index % 2 == 0:
            x, y = random_disjoint_pair(fam.k_bits, rng)
        else:
            x, y = random_intersecting_pair(fam.k_bits, rng)
        graph = fam.build(x, y)
        meta = {"x": x, "y": y, "disjoint": disjointness(x, y),
                "target_size": fam.target_size, "k": fam.k}
        name = f"paper-mds-{index:04d}(k=2,disj={meta['disjoint']})"
    else:
        raise ValueError(f"unknown fuzz family {family!r}; "
                         f"try one of {FAMILIES}")
    terminals = _pick_terminals(graph, rng)
    return Case(name=name, family=family, index=index, seed=seed,
                graph=graph, terminals=terminals, meta=meta)


def generate_cases(seed: int, count: int, family: str = "all",
                   deep: bool = False) -> List[Case]:
    """``count`` cases, round-robin over the requested families."""
    if family == "all":
        chosen: Sequence[str] = FAMILIES
    elif family in FAMILIES:
        chosen = (family,)
    else:
        raise ValueError(f"unknown fuzz family {family!r}; "
                         f"try 'all' or one of {FAMILIES}")
    cases = []
    per_family = {f: 0 for f in chosen}
    for i in range(count):
        f = chosen[i % len(chosen)]
        cases.append(make_case(seed, f, per_family[f], deep=deep))
        per_family[f] += 1
    return cases
