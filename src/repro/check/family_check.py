"""Differential check: delta-built family graphs ≡ from-scratch builds.

Every migrated family builds G_{x,y} as cached-skeleton-copy + input
delta (:class:`repro.core.family.DeltaBuildMixin`).  This check pins
that fast path to the reference ``build_scratch`` (skeleton rebuilt
from nothing, same deltas) via ``content_hash`` equality on seeded
input pairs, and then interleaves weight-only and structural mutations
on a delta-built copy to prove the shared skeleton store never leaks
state between builds.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.cc.functions import random_input_pairs

_COLLECTION = None
_FAMILIES: Optional[List[Tuple[str, object]]] = None


def _collection():
    global _COLLECTION
    if _COLLECTION is None:
        from repro.covering import build_covering_collection
        _COLLECTION = build_covering_collection(
            universe_size=16, T=6, r=2, seed=0)
    return _COLLECTION


def migrated_families() -> List[Tuple[str, object]]:
    """Named small instances of every family on the skeleton/delta
    protocol (cached — skeleton warm-up is part of what we exercise)."""
    global _FAMILIES
    if _FAMILIES is None:
        from repro.core.approx_maxis import (
            LinearApproxMaxISFamily,
            UnweightedApproxMaxISFamily,
            WeightedApproxMaxISFamily,
        )
        from repro.core.hamiltonian import (
            HamiltonianCycleFamily,
            HamiltonianPathFamily,
        )
        from repro.core.kmds import KMdsFamily
        from repro.core.maxcut import MaxCutFamily
        from repro.core.mds import MdsFamily
        from repro.core.mvc import MvcMaxISFamily
        from repro.core.restricted_mds import RestrictedMdsConstruction
        from repro.core.steiner import SteinerTreeFamily
        from repro.core.steiner_approx import (
            DirectedSteinerFamily,
            NodeWeightedSteinerFamily,
        )
        cc = _collection()
        _FAMILIES = [
            ("mds", MdsFamily(2)),
            ("mvc", MvcMaxISFamily(2)),
            ("maxcut", MaxCutFamily(2)),
            ("hamiltonian-path", HamiltonianPathFamily(2)),
            ("hamiltonian-cycle", HamiltonianCycleFamily(2)),
            ("steiner", SteinerTreeFamily(2)),
            ("kmds", KMdsFamily(cc, k=2)),
            ("kmds-k3", KMdsFamily(cc, k=3)),
            ("node-weighted-steiner", NodeWeightedSteinerFamily(cc)),
            ("directed-steiner", DirectedSteinerFamily(cc)),
            ("restricted-mds", RestrictedMdsConstruction(cc)),
            ("approx-maxis", WeightedApproxMaxISFamily(2)),
            ("approx-maxis-unweighted", UnweightedApproxMaxISFamily(2)),
            ("approx-maxis-linear", LinearApproxMaxISFamily(2)),
        ]
    return _FAMILIES


def check_family_delta(seed: int, index: int) -> Optional[str]:
    """Fuzz every migrated family on seeded pairs; None means OK.

    No solver calls — only builds and hashes — so this runs everywhere.
    """
    rng = random.Random(f"repro-family-delta:{seed}:{index}")
    for name, fam in migrated_families():
        pairs = random_input_pairs(fam.k_bits, 2, rng)
        for x, y in pairs:
            delta = fam.build(x, y)
            want = fam.build_scratch(x, y).content_hash()
            got = delta.content_hash()
            if got != want:
                return (f"{name}: delta build hash {got[:16]} != "
                        f"scratch build hash {want[:16]} on x={x}, y={y}")
            # interleaved weight-only and structural mutations on the
            # delta copy must not bleed into the shared skeleton store
            victim = delta.vertices()[0]
            delta.add_vertex(victim, weight=313.0)        # weight-only
            delta.add_vertex(("delta-check", "mutant"))   # structural
            if delta.content_hash() == want:
                return (f"{name}: content_hash did not change under "
                        f"mutation on x={x}, y={y}")
            rebuilt = fam.build(x, y).content_hash()
            if rebuilt != want:
                return (f"{name}: skeleton store corrupted by mutation "
                        f"on a built copy (x={x}, y={y}): rebuild hash "
                        f"{rebuilt[:16]} != scratch hash {want[:16]}")
    return None
