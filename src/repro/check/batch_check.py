"""Differential check: batched kernel decisions ≡ per-pair delta
decisions ≡ from-scratch decisions.

The batched decision kernels (:mod:`repro.solvers.batch_kernels`)
answer a family's predicate from solver state precomputed off the
input-independent skeleton, and the monotone driver in
:meth:`repro.core.family.DeltaBuildMixin.decide_batch` infers most of a
grid from a few extremal solver calls.  Both layers are rich in ways to
be wrong quietly — a mis-indexed delta bit, a stale kernel after a
skeleton change, an unsound monotonicity assumption — so this check
pins, on seeded families:

- **batch ≡ delta ≡ scratch**: ``decide_batch`` output against the
  per-pair incremental path (``predicate(build(x, y))``) and the
  from-scratch reference (``build_scratch``, no caches at all);
- **promise-free inputs**: the sampled pairs include pairs violating
  the gap/unique-intersection promises (all-ones against all-ones,
  heavy random pairs) — kernels must be exact deciders of the graph
  predicate, not just correct on promise inputs;
- **sweep integration**: a ``sweep(..., batch=True)`` must report its
  kernel-served pairs in ``SweepReport.batched`` and still agree with
  ``batch=False`` bit-for-bit;
- **state invalidation**: after the skeleton content changes, a cached
  kernel keyed on the old hash must be rebuilt, never reused (observed
  through ``kernel_events()`` and through correct decisions against
  the modified skeleton's scratch reference).
"""

from __future__ import annotations

import random
from typing import Optional


def _families(index: int):
    """Three kernel-bearing families per parity, covering unweighted
    domination, weighted domination, max-cut, and Hamiltonian cycles."""
    from repro.core.hamiltonian import HamiltonianCycleFamily
    from repro.core.kmds import KMdsFamily
    from repro.core.maxcut import MaxCutFamily
    from repro.core.mds import MdsFamily
    from repro.covering.designs import build_covering_collection

    cc = build_covering_collection(universe_size=16, T=6, r=2, seed=0)
    if index % 2 == 0:
        return [MdsFamily(2), MaxCutFamily(2), KMdsFamily(cc, k=2)]
    return [MdsFamily(2), HamiltonianCycleFamily(2), KMdsFamily(cc, k=3)]


def _sample_pairs(k_bits: int, rng: random.Random):
    """Promise-violating mix: the gap-DISJ promise (unique intersection
    or none) is deliberately broken by dense pairs and the all-ones
    corner."""
    ones = tuple([1] * k_bits)
    zeros = tuple([0] * k_bits)
    pairs = [(zeros, zeros), (ones, ones), (ones, zeros)]
    for __ in range(7):
        x = tuple(1 if rng.random() < 0.6 else 0 for _ in range(k_bits))
        y = tuple(1 if rng.random() < 0.6 else 0 for _ in range(k_bits))
        pairs.append((x, y))
    return pairs


def check_batch_kernels(seed: int, index: int) -> Optional[str]:
    """Fuzz the batch ≡ delta ≡ scratch triangle; None means OK."""
    from repro.core.family import sweep

    rng = random.Random(f"repro-batch-check:{seed}:{index}")
    for family in _families(index):
        name = type(family).__name__
        if not family.supports_batch():
            return f"{name}: expected a batch kernel, supports_batch()=False"
        pairs = _sample_pairs(family.k_bits, rng)

        batched = family.decide_batch(None, pairs)
        if batched is None:
            return f"{name}: decide_batch returned None despite a kernel"
        missing = [key for key in ((tuple(x), tuple(y)) for x, y in pairs)
                   if key not in batched]
        if missing:
            return f"{name}: decide_batch left pairs unanswered: {missing}"

        for x, y in pairs:
            delta = family.predicate(family.build(x, y))
            scratch = family.predicate(family.build_scratch(x, y))
            got = batched[(tuple(x), tuple(y))]
            if not (got == delta == scratch):
                return (f"{name}: x={x} y={y}: batch={got}, "
                        f"delta={delta}, scratch={scratch}")

        # sweep integration: batched and unbatched sweeps must agree,
        # and the batched one must actually engage the kernel
        plain = sweep(family, pairs, memo=False, batch=False)
        via_kernel = sweep(family, pairs, memo=False, batch=True)
        if plain.decisions != via_kernel.decisions:
            return (f"{name}: sweep(batch=True) decisions "
                    f"{via_kernel.decisions} != sweep(batch=False) "
                    f"{plain.decisions}")
        if via_kernel.batched != via_kernel.solved:
            return (f"{name}: batched sweep reported "
                    f"{via_kernel.batched} kernel pairs for "
                    f"{via_kernel.solved} solved")
        if plain.batched != 0:
            return (f"{name}: sweep(batch=False) reported "
                    f"{plain.batched} kernel pairs")

        # state invalidation: mutate the cached skeleton's content and
        # the kernel keyed on the stale hash must be rebuilt
        events = dict(family.kernel_events())
        skeleton = family._skeleton_store.copy()
        extra = ("batch-check", "extra")
        skeleton.add_vertex(extra)
        fresh = family.decide_batch(skeleton, [pairs[0]])
        after = family.kernel_events()
        if fresh is not None:
            if after["state_misses"] <= events["state_misses"]:
                return (f"{name}: content-hash change did not rebuild "
                        f"the kernel: {events} -> {dict(after)}")
        # and going back to the original skeleton must rebuild again,
        # not resurrect state derived from the modified graph
        again = family.decide_batch(None, pairs)
        if again != batched:
            return (f"{name}: decisions changed after kernel "
                    f"invalidation round-trip")
    return None
