"""The differential-check orchestrator behind ``repro check``.

``run_check(seed, cases, family)`` fuzzes graphs
(:mod:`repro.check.fuzz`), runs every applicable check — production
solver vs naive reference (:mod:`repro.check.reference`), metamorphic
invariants (:mod:`repro.check.invariants`), paper-family iff-lemma
ground truth, and CONGEST-vs-centralized agreement
(:mod:`repro.check.congest_check`) — and greedily shrinks every failure
to a minimal reproducer (:mod:`repro.check.shrink`).

Checks reach the production solvers through the ``repro.solvers``
namespace, so a planted mutation (monkeypatching a solver) is observed;
the test-suite uses exactly that to prove the harness catches bugs.

Fan-out reuses the PR 2 parallel-runner machinery (fork start method,
chunked case keys, crash-isolated workers); results are merged in case
order so parallel output is deterministic.
"""

from __future__ import annotations

import json
import math
import os
import random
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.check import invariants as inv
from repro.check import reference as ref
from repro.check.fuzz import FAMILIES, Case, generate_cases, make_case
from repro.check.shrink import describe_graph, shrink_graph


def _solvers():
    from repro import solvers
    return solvers


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


def _check_rng(case: Case, check_name: str) -> random.Random:
    # independent of PYTHONHASHSEED, distinct per (seed, case, check)
    return random.Random(
        f"repro-check:{case.seed}:{case.family}:{case.index}:{check_name}")


# ----------------------------------------------------------------------
# check registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Check:
    """One named differential/metamorphic check over a fuzz case."""

    name: str
    kind: str  # "reference" | "invariant" | "paper" | "congest"
    run: Callable[[Case], Optional[str]]
    applies: Callable[[Case], bool]
    #: shrinking rebuilds the case with candidate graphs; checks whose
    #: meaning is tied to the family construction opt out.
    shrinkable: bool = True


def _ref_check(name: str, prod: Callable[[Case], Any],
               reference: Callable[[Case], Any],
               applies: Callable[[Case], bool],
               exact: bool = True) -> Check:
    def run(case: Case) -> Optional[str]:
        got = prod(case)
        want = reference(case)
        agree = (got == want) if exact else _close(got, want)
        if not agree:
            return f"production={got!r}, reference={want!r}"
        return None
    return Check(name=name, kind="reference", run=run, applies=applies)


def _inv_check(name: str, fn, applies: Callable[[Case], bool],
               with_terminals: bool = False) -> Check:
    def run(case: Case) -> Optional[str]:
        rng = _check_rng(case, name)
        if with_terminals:
            terminals = tuple(t for t in case.terminals
                              if t in case.graph)
            return fn(case.graph, rng, terminals=terminals)
        return fn(case.graph, rng)
    return Check(name=name, kind="invariant", run=run, applies=applies)


def _paper_iff(case: Case) -> Optional[str]:
    s = _solvers()
    target = case.meta["target_size"]
    got = s.has_dominating_set_of_size(case.graph, target)
    want = not case.meta["disjoint"]
    if got != want:
        return (f"Lemma 2.1 iff-lemma violated: dominating set of size "
                f"{target} exists={got}, DISJ(x,y)={case.meta['disjoint']}")
    return None


def _paper_ref_target(case: Case) -> Optional[str]:
    s = _solvers()
    target = case.meta["target_size"]
    got = s.has_dominating_set_of_size(case.graph, target)
    want = ref.ref_has_dominating_set_of_size(case.graph, target)
    if got != want:
        return (f"has_dominating_set_of_size({target}): production={got}, "
                f"reference={want}")
    return None


def _congest_mds(case: Case) -> Optional[str]:
    from repro.check.congest_check import check_congest_mds
    return check_congest_mds(case.graph)


def _engine_equivalence(case: Case) -> Optional[str]:
    from repro.check.engine_check import check_engine_equivalence
    return check_engine_equivalence(case.graph)


def _family_delta(case: Case) -> Optional[str]:
    from repro.check.family_check import check_family_delta
    return check_family_delta(case.seed, case.index)


def _sweep_store(case: Case) -> Optional[str]:
    from repro.check.sweep_check import check_sweep_store
    return check_sweep_store(case.seed, case.index)


def _batch_kernels(case: Case) -> Optional[str]:
    from repro.check.batch_check import check_batch_kernels
    return check_batch_kernels(case.seed, case.index)


def _small(limit_n: int, limit_m: int = 10 ** 9,
           fuzz_only: bool = True) -> Callable[[Case], bool]:
    def applies(case: Case) -> bool:
        if fuzz_only and case.family == "paper":
            return False
        return case.graph.n <= limit_n and case.graph.m <= limit_m
    return applies


def _terminals_ok(base: Callable[[Case], bool]) -> Callable[[Case], bool]:
    def applies(case: Case) -> bool:
        return base(case) and len(case.terminals) >= 2
    return applies


def _build_checks() -> List[Check]:
    s = _solvers  # late-bound namespace, see module docstring
    checks: List[Check] = [
        # -- production vs naive reference --------------------------------
        _ref_check(
            "ref:independence-number",
            lambda c: s().independence_number(c.graph),
            lambda c: ref.ref_independence_number(c.graph),
            _small(10)),
        _ref_check(
            "ref:mis-weight",
            lambda c: s().max_independent_set_weight(c.graph),
            lambda c: ref.ref_max_independent_set_weight(c.graph),
            _small(9), exact=False),
        _ref_check(
            "ref:vertex-cover",
            lambda c: s().min_vertex_cover_size(c.graph),
            lambda c: ref.ref_min_vertex_cover_size(c.graph),
            _small(10)),
        _ref_check(
            "ref:dominating-size",
            lambda c: len(s().min_dominating_set(c.graph)),
            lambda c: ref.ref_min_dominating_set_size(c.graph),
            lambda c: c.family != "paper" and 1 <= c.graph.n <= 10),
        _ref_check(
            "ref:dominating-weight",
            lambda c: s().min_dominating_set_weight(c.graph),
            lambda c: ref.ref_min_dominating_set_weight(c.graph),
            lambda c: c.family != "paper" and 1 <= c.graph.n <= 9,
            exact=False),
        _ref_check(
            "ref:k-dominating",
            lambda c: s().min_k_dominating_set_weight(c.graph, 2),
            lambda c: ref.ref_min_dominating_set_weight(c.graph, 2),
            lambda c: c.family != "paper" and 1 <= c.graph.n <= 9,
            exact=False),
        _ref_check(
            "ref:maxcut",
            lambda c: s().max_cut_value(c.graph),
            lambda c: ref.ref_max_cut_value(c.graph),
            _small(10), exact=False),
        _ref_check(
            "ref:matching",
            lambda c: s().max_matching_size(c.graph),
            lambda c: ref.ref_max_matching_size(c.graph),
            _small(12, limit_m=18)),
        _ref_check(
            "ref:hamiltonian-path",
            lambda c: s().has_hamiltonian_path(c.graph),
            lambda c: ref.ref_has_hamiltonian_path(c.graph),
            _small(7)),
        _ref_check(
            "ref:hamiltonian-cycle",
            lambda c: s().has_hamiltonian_cycle(c.graph),
            lambda c: ref.ref_has_hamiltonian_cycle(c.graph),
            _small(7)),
        _ref_check(
            "ref:steiner",
            lambda c: s().steiner_tree_cost(
                c.graph, [t for t in c.terminals if t in c.graph]),
            lambda c: ref.ref_steiner_tree_cost(
                c.graph, [t for t in c.terminals if t in c.graph]),
            _terminals_ok(_small(10)), exact=False),
        _ref_check(
            "ref:twoecss",
            lambda c: s().min_two_ecss_edges(c.graph),
            lambda c: ref.ref_min_two_ecss_edges(c.graph),
            _small(8, limit_m=11)),
        _ref_check(
            "ref:maxflow",
            lambda c: s().max_flow(c.graph, c.terminals[0],
                                   c.terminals[1])[0],
            lambda c: ref.ref_max_flow_value(c.graph, c.terminals[0],
                                             c.terminals[1]),
            _terminals_ok(_small(10)), exact=False),
        _ref_check(
            "ref:distance",
            lambda c: s().weighted_distance(c.graph, c.terminals[0],
                                            c.terminals[1]),
            lambda c: ref.ref_distance(c.graph, c.terminals[0],
                                       c.terminals[1]),
            _terminals_ok(_small(14)), exact=False),
        # -- metamorphic invariants ---------------------------------------
        _inv_check("inv:relabel-alpha", inv.inv_relabel_alpha, _small(20)),
        _inv_check("inv:relabel-maxcut", inv.inv_relabel_maxcut, _small(14)),
        _inv_check("inv:relabel-dominating", inv.inv_relabel_dominating,
                   lambda c: 1 <= c.graph.n <= 20),
        _inv_check("inv:relabel-matching", inv.inv_relabel_matching,
                   _small(20)),
        _inv_check("inv:scale-edge-weights", inv.inv_scale_edge_weights,
                   _small(12), with_terminals=True),
        _inv_check("inv:scale-vertex-weights", inv.inv_scale_vertex_weights,
                   lambda c: 1 <= c.graph.n <= 12 and c.family != "paper"),
        _inv_check("inv:disjoint-union", inv.inv_disjoint_union, _small(10)),
        _inv_check("inv:alpha-tau", inv.inv_alpha_tau, _small(20)),
        _inv_check("inv:cut-complement", inv.inv_cut_complement, _small(14)),
        _inv_check("inv:certificates", inv.inv_certificates, _small(12),
                   with_terminals=True),
        # -- paper-family ground truth ------------------------------------
        Check("paper:iff-lemma", "paper", _paper_iff,
              lambda c: c.family == "paper", shrinkable=False),
        Check("paper:ref-target", "paper", _paper_ref_target,
              lambda c: c.family == "paper", shrinkable=False),
        # -- CONGEST vs centralized ---------------------------------------
        # precondition: the folklore algorithm floods a leader, so it is
        # only defined on connected graphs (a disconnected paper instance
        # — x = y = 0 — is legitimate input for the iff-lemma but not
        # for the CONGEST run)
        Check("congest:mds", "congest", _congest_mds,
              lambda c: (c.graph.n >= 2
                         and (c.family == "paper" or c.graph.n <= 10)
                         and c.graph.is_connected()),
              shrinkable=False),
        # -- candidate engines (fast, vectorized) vs reference loop ------
        # graph-generic (works on disconnected inputs too); capped so the
        # traced+untraced runs per engine per scenario stay cheap on
        # paper-family instances
        Check("congest:engine-equivalence", "congest", _engine_equivalence,
              lambda c: 1 <= c.graph.n <= 32, shrinkable=False),
        # -- incremental builds vs from-scratch builds ---------------------
        # independent of the fuzz graph (sweeps every migrated family on
        # seeded pairs); piggybacked on a couple of er cases per run
        Check("family:delta-equivalence", "family", _family_delta,
              lambda c: c.family == "er" and c.index < 2, shrinkable=False),
        # -- persistent sweep store vs fresh scratch decisions -------------
        # independent of the fuzz graph (round-trips seeded families
        # through a throwaway store); piggybacked on two er cases so the
        # corruption path and both family parities get exercised per run
        Check("sweep:store-equivalence", "family", _sweep_store,
              lambda c: c.family == "er" and c.index < 2, shrinkable=False),
        # -- batched kernels vs per-pair delta vs scratch -------------------
        # independent of the fuzz graph (seeded kernel-bearing families,
        # promise-violating pairs, invalidation leg); piggybacked on two
        # er cases so both family triples get exercised per run
        Check("family:batch-equivalence", "family", _batch_kernels,
              lambda c: c.family == "er" and c.index < 2, shrinkable=False),
    ]
    return checks


CHECKS: List[Check] = _build_checks()


# ----------------------------------------------------------------------
# failures and reports
# ----------------------------------------------------------------------
@dataclass
class CheckFailure:
    """One check that disagreed, with everything needed to reproduce it."""

    check: str
    family: str
    index: int
    seed: int
    case_name: str
    detail: str
    repro: str = ""
    #: minimal reproducer from greedy shrinking (``describe_graph``
    #: snapshot plus the detail re-observed on the shrunk instance), or
    #: None for non-shrinkable checks.
    shrunk: Optional[Dict[str, Any]] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "check": self.check, "family": self.family, "index": self.index,
            "seed": self.seed, "case": self.case_name, "detail": self.detail,
            "repro": self.repro, "shrunk": self.shrunk,
        }


@dataclass
class CheckReport:
    """Aggregate outcome of one ``run_check`` invocation."""

    seed: int
    cases: int
    family: str
    deep: bool
    cases_run: int = 0
    checks_run: int = 0
    elapsed: float = 0.0
    failures: List[CheckFailure] = field(default_factory=list)
    #: how many times each named check actually ran (sums to
    #: ``checks_run``) — the coverage table ``repro report fuzz`` shows.
    check_counts: Dict[str, int] = field(default_factory=dict)
    #: per-check wall-clock samples in milliseconds, one per run —
    #: summarized to p50/p95 in the JSON artifact and the fuzz report.
    check_ms: Dict[str, List[float]] = field(default_factory=dict)

    def check_latency(self) -> Dict[str, Dict[str, float]]:
        """p50/p95 per check name, from the collected samples."""
        from repro.obs.profile import percentile
        return {name: {"p50_ms": round(percentile(samples, 50), 3),
                       "p95_ms": round(percentile(samples, 95), 3)}
                for name, samples in sorted(self.check_ms.items())}

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"repro check: seed={self.seed} cases={self.cases_run} "
            f"family={self.family}{' deep' if self.deep else ''} — "
            f"{self.checks_run} checks in {self.elapsed:.1f}s",
        ]
        if self.ok:
            lines.append("all checks passed: every production solver agrees "
                         "with its reference and every invariant holds")
        for f in self.failures:
            lines.append(f"FAIL {f.check} on {f.case_name}: {f.detail}")
            lines.append(f"     reproduce: {f.repro}")
            if f.shrunk is not None:
                g = f.shrunk["graph"]
                edges = ", ".join(f"({e['u']},{e['v']})"
                                  for e in g["edges"][:12])
                more = "" if g["m"] <= 12 else f" …(+{g['m'] - 12})"
                lines.append(f"     shrunk to n={g['n']} m={g['m']}: "
                             f"{edges}{more}")
                lines.append(f"     shrunk detail: {f.shrunk['detail']}")
        if not self.ok:
            lines.append(f"{len(self.failures)} FAILING check(s)")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "seed": self.seed, "cases": self.cases, "family": self.family,
            "deep": self.deep, "cases_run": self.cases_run,
            "checks_run": self.checks_run, "elapsed": self.elapsed,
            "check_counts": dict(sorted(self.check_counts.items())),
            "check_latency": self.check_latency(),
            "ok": self.ok,
            "failures": [f.to_json() for f in self.failures],
        }


def _repro_command(case: Case) -> str:
    return (f"python -m repro check --seed {case.seed} "
            f"--cases {case.index + 1} --family {case.family}")


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def _run_one(check: Check, case: Case) -> Optional[str]:
    """Run one check; an exception is itself a failure (with traceback)."""
    try:
        return check.run(case)
    except Exception:
        return "EXCEPTION:\n" + traceback.format_exc()


def _shrink_failure(check: Check, case: Case) -> Optional[Dict[str, Any]]:
    if not check.shrinkable:
        return None

    def failing(candidate) -> bool:
        trial = replace(case, graph=candidate)
        try:
            return check.run(trial) is not None
        except Exception:
            return True  # still failing, just louder

    minimal = shrink_graph(case.graph, failing, protected=case.terminals)
    detail = _run_one(check, replace(case, graph=minimal))
    return {
        "graph": describe_graph(minimal),
        "protected": [repr(t) for t in case.terminals],
        "detail": detail if detail is not None
        else "failure did not reproduce on the shrunk graph "
             "(non-deterministic check?)",
    }


def _run_cases(cases: Sequence[Case],
               do_shrink: bool = True,
               ) -> Tuple[Dict[str, int], Dict[str, List[float]],
                          List[CheckFailure]]:
    check_counts: Dict[str, int] = {}
    check_ms: Dict[str, List[float]] = {}
    failures: List[CheckFailure] = []
    for case in cases:
        for check in CHECKS:
            if not check.applies(case):
                continue
            check_counts[check.name] = check_counts.get(check.name, 0) + 1
            t0 = time.perf_counter()
            detail = _run_one(check, case)
            check_ms.setdefault(check.name, []).append(
                (time.perf_counter() - t0) * 1000.0)
            if detail is None:
                continue
            failure = CheckFailure(
                check=check.name, family=case.family, index=case.index,
                seed=case.seed, case_name=case.name, detail=detail,
                repro=_repro_command(case))
            if do_shrink:
                failure.shrunk = _shrink_failure(check, case)
            failures.append(failure)
    return check_counts, check_ms, failures


def _run_cases_traced(cases: Sequence[Case], do_shrink: bool,
                      trace_dir: Optional[str], trace_format: str,
                      prefix: str,
                      ) -> Tuple[Dict[str, int], Dict[str, List[float]],
                                 List[CheckFailure]]:
    """``_run_cases`` inside an ambient trace region when requested, so
    every CONGEST simulator the checks construct streams its events to
    ``trace_dir/<prefix>-NNNN.*``."""
    if trace_dir is None:
        return _run_cases(cases, do_shrink=do_shrink)
    from repro.obs.trace import trace_to_directory
    with trace_to_directory(trace_dir, prefix=prefix, fmt=trace_format):
        return _run_cases(cases, do_shrink=do_shrink)


def _parallel_worker(args: Tuple[int, str, List[Tuple[str, int]], bool, bool,
                                 Optional[str], str, int],
                     ) -> Tuple[Dict[str, int], Dict[str, List[float]],
                                List[CheckFailure]]:
    """Rebuild a chunk of cases from their keys and check them."""
    seed, __, keys, deep, do_shrink, trace_dir, trace_format, chunk_no = args
    cases = [make_case(seed, fam, idx, deep=deep) for fam, idx in keys]
    try:
        # per-chunk prefix: fork workers share the parent's cwd and the
        # trace directory, so sequence numbers alone would collide
        return _run_cases_traced(
            cases, do_shrink, trace_dir, trace_format,
            prefix=f"check-seed{seed}-w{chunk_no:02d}")
    except Exception:
        failure = CheckFailure(
            check="harness", family="-", index=-1, seed=seed,
            case_name=f"worker chunk {keys!r}",
            detail="EXCEPTION in check worker:\n" + traceback.format_exc())
        return {}, {}, [failure]


def run_check(seed: int = 0, cases: int = 50, family: str = "all",
              deep: bool = False, jobs: int = 1, do_shrink: bool = True,
              report_dir: Optional[str] = None,
              trace_dir: Optional[str] = None,
              trace_format: str = "binary") -> CheckReport:
    """Run the full differential harness; see the module docstring.

    ``jobs > 1`` fans case chunks over fork-based worker processes (the
    PR 2 runner's start-method machinery); results are deterministic and
    ordered regardless of ``jobs``.  ``report_dir`` additionally writes
    ``check-report.json`` and one ``failure-NNN.json`` per failure —
    the artifacts the nightly deep-fuzz job uploads (render them with
    ``repro report fuzz``).  ``trace_dir`` streams every CONGEST
    simulator the checks construct to trace files there (compact binary
    by default; ``trace_format="jsonl"`` for JSON lines).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    started = time.monotonic()
    # stale memo entries could mask a freshly-introduced discrepancy (or
    # resurrect a fixed one); differential runs always start cold
    _solvers().clear_cache()
    report = CheckReport(seed=seed, cases=cases, family=family, deep=deep)
    all_cases = generate_cases(seed, cases, family=family, deep=deep)
    report.cases_run = len(all_cases)
    if jobs == 1 or len(all_cases) <= 1:
        parts = [_run_cases_traced(
            all_cases, do_shrink, trace_dir, trace_format,
            prefix=f"check-seed{seed}")]
    else:
        from concurrent import futures
        from repro.experiments.parallel import _mp_context
        keys = [(c.family, c.index) for c in all_cases]
        chunk = max(1, (len(keys) + jobs - 1) // jobs)
        chunks = [keys[i:i + chunk] for i in range(0, len(keys), chunk)]
        ctx = _mp_context()
        with futures.ProcessPoolExecutor(max_workers=jobs,
                                         mp_context=ctx) as pool:
            parts = list(pool.map(
                _parallel_worker,
                [(seed, family, part, deep, do_shrink,
                  trace_dir, trace_format, no)
                 for no, part in enumerate(chunks)]))
    for counts, latencies, failures in parts:
        for name, count in counts.items():
            report.check_counts[name] = \
                report.check_counts.get(name, 0) + count
        for name, samples in latencies.items():
            report.check_ms.setdefault(name, []).extend(samples)
        report.checks_run += sum(counts.values())
        report.failures.extend(failures)
    report.elapsed = time.monotonic() - started
    if report_dir is not None:
        os.makedirs(report_dir, exist_ok=True)
        with open(os.path.join(report_dir, "check-report.json"), "w") as fh:
            json.dump(report.to_json(), fh, indent=2, sort_keys=True)
        for i, failure in enumerate(report.failures):
            path = os.path.join(report_dir, f"failure-{i:03d}.json")
            with open(path, "w") as fh:
                json.dump(failure.to_json(), fh, indent=2, sort_keys=True)
    return report
