"""Naive reference implementations of every exact solver.

Each function here re-answers a question that a production solver in
:mod:`repro.solvers` answers, using the most direct algorithm that can
be written: subset or permutation enumeration, plain dictionaries, no
bitmask tricks, no branch-and-bound, no memoization.  They share *no
code* with the production solvers (only the :class:`repro.graphs.Graph`
substrate), so an agreement between the two is evidence that both are
right, and a disagreement is a bug in one of them.

Everything is exponential and intended for the fuzzer's instance sizes
(n ≲ 10, m ≲ 20); callers gate applicability by size.
"""

from __future__ import annotations

from itertools import combinations, permutations
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.graphs import DiGraph, Graph, Vertex

_INF = float("inf")
AnyGraph = Union[Graph, DiGraph]


# ----------------------------------------------------------------------
# independence / cover / domination
# ----------------------------------------------------------------------
def _independent(graph: Graph, subset: Sequence[Vertex]) -> bool:
    return not any(graph.has_edge(u, v) for u, v in combinations(subset, 2))


def ref_independence_number(graph: Graph) -> int:
    """α(G) by enumerating all vertex subsets."""
    vs = graph.vertices()
    best = 0
    for r in range(len(vs), 0, -1):
        if r <= best:
            break
        for subset in combinations(vs, r):
            if _independent(graph, subset):
                best = r
                break
    return best


def ref_max_independent_set_weight(graph: Graph) -> float:
    """Maximum total vertex weight over all independent sets."""
    vs = graph.vertices()
    best = 0.0
    for r in range(len(vs) + 1):
        for subset in combinations(vs, r):
            if _independent(graph, subset):
                best = max(best, sum(graph.vertex_weight(v) for v in subset))
    return best


def ref_min_vertex_cover_size(graph: Graph) -> int:
    """τ(G) by enumerating subsets in ascending size."""
    vs = graph.vertices()
    edges = graph.edges()
    for r in range(len(vs) + 1):
        for subset in combinations(vs, r):
            s = set(subset)
            if all(u in s or v in s for u, v in edges):
                return r
    raise AssertionError("unreachable: V itself is a cover")


def _ball(graph: Graph, v: Vertex, k: int) -> Set[Vertex]:
    """Distance-≤k closed ball, by k rounds of neighbourhood expansion."""
    ball = {v}
    for __ in range(k):
        grown = set(ball)
        for u in ball:
            grown |= graph.neighbors(u)
        if grown == ball:
            break
        ball = grown
    return ball


def ref_dominates(graph: Graph, subset: Sequence[Vertex], k: int = 1) -> bool:
    covered: Set[Vertex] = set()
    for v in subset:
        covered |= _ball(graph, v, k)
    return covered >= set(graph.vertices())


def ref_min_dominating_set_size(graph: Graph, k: int = 1) -> int:
    vs = graph.vertices()
    for r in range(len(vs) + 1):
        for subset in combinations(vs, r):
            if ref_dominates(graph, subset, k):
                return r
    raise AssertionError("unreachable: V dominates itself")


def ref_min_dominating_set_weight(graph: Graph, k: int = 1) -> float:
    vs = graph.vertices()
    best = _INF
    for r in range(len(vs) + 1):
        for subset in combinations(vs, r):
            if ref_dominates(graph, subset, k):
                best = min(best, sum(graph.vertex_weight(v) for v in subset))
    return best


def ref_has_dominating_set_of_size(graph: Graph, size: int) -> bool:
    """Bounded-size domination decision (the Lemma 2.1 predicate shape);
    enumerating only up to ``size`` keeps the paper-family instances
    (n = 20 at k = 2, target 6) within reach of a reference check."""
    vs = graph.vertices()
    for r in range(min(size, len(vs)) + 1):
        for subset in combinations(vs, r):
            if ref_dominates(graph, subset, 1):
                return True
    return False


# ----------------------------------------------------------------------
# cuts
# ----------------------------------------------------------------------
def ref_max_cut_value(graph: Graph) -> float:
    """Maximum cut weight by enumerating every bipartition."""
    vs = graph.vertices()
    edges = [(u, v, graph.edge_weight(u, v)) for u, v in graph.edges()]
    best = 0.0
    for r in range(len(vs) + 1):
        for subset in combinations(vs, r):
            s = set(subset)
            best = max(best, sum(w for u, v, w in edges
                                 if (u in s) != (v in s)))
    return best


# ----------------------------------------------------------------------
# matching
# ----------------------------------------------------------------------
def ref_max_matching_size(graph: Graph) -> int:
    """ν(G) by recursion over the edge list (take or skip each edge)."""
    edges = graph.edges()

    def best_from(i: int, used: Set[Vertex]) -> int:
        if i >= len(edges):
            return 0
        u, v = edges[i]
        skip = best_from(i + 1, used)
        if u in used or v in used:
            return skip
        used.add(u)
        used.add(v)
        take = 1 + best_from(i + 1, used)
        used.discard(u)
        used.discard(v)
        return max(take, skip)

    return best_from(0, set())


# ----------------------------------------------------------------------
# hamiltonicity
# ----------------------------------------------------------------------
def _has_arc(graph: AnyGraph, u: Vertex, v: Vertex) -> bool:
    return graph.has_edge(u, v)


def ref_has_hamiltonian_path(graph: AnyGraph) -> bool:
    """Permutation scan; directed graphs respect arc orientation."""
    vs = list(graph.vertices())
    if len(vs) == 0:
        return False
    if len(vs) == 1:
        return True
    for perm in permutations(vs):
        if all(_has_arc(graph, a, b) for a, b in zip(perm, perm[1:])):
            return True
    return False


def ref_has_hamiltonian_cycle(graph: AnyGraph) -> bool:
    vs = list(graph.vertices())
    if len(vs) < 2:
        return False
    first = vs[0]
    for perm in permutations(vs[1:]):
        cycle = (first,) + perm
        if (all(_has_arc(graph, a, b) for a, b in zip(cycle, cycle[1:]))
                and _has_arc(graph, cycle[-1], first)):
            return True
    return False


# ----------------------------------------------------------------------
# Steiner trees
# ----------------------------------------------------------------------
def _connected(vertices: Sequence[Vertex],
               edges: Sequence[Tuple[Vertex, Vertex]]) -> bool:
    vs = list(vertices)
    if not vs:
        return True
    adj: Dict[Vertex, List[Vertex]] = {v: [] for v in vs}
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    seen = {vs[0]}
    stack = [vs[0]]
    while stack:
        u = stack.pop()
        for w in adj[u]:
            if w not in seen:
                seen.add(w)
                stack.append(w)
    return len(seen) == len(vs)


def _mst_cost(graph: Graph, vs: Set[Vertex]) -> float:
    """Prim over the induced subgraph (inf if disconnected)."""
    vs = set(vs)
    if len(vs) <= 1:
        return 0.0
    start = next(iter(vs))
    in_tree = {start}
    cost = 0.0
    while in_tree != vs:
        best = _INF
        best_v: Optional[Vertex] = None
        for u in in_tree:
            for w in graph.neighbors(u):
                if w in vs and w not in in_tree:
                    c = graph.edge_weight(u, w)
                    if c < best:
                        best, best_v = c, w
        if best_v is None:
            return _INF
        in_tree.add(best_v)
        cost += best
    return cost


def ref_steiner_tree_cost(graph: Graph, terminals: Sequence[Vertex]) -> float:
    """Minimum Steiner cost: over every Steiner-vertex subset S, the MST
    of G[terminals ∪ S] is an upper bound, and the optimal tree's own
    vertex set makes the bound tight."""
    terms = list(dict.fromkeys(terminals))
    if len(terms) <= 1:
        return 0.0
    others = [v for v in graph.vertices() if v not in set(terms)]
    best = _INF
    for r in range(len(others) + 1):
        for subset in combinations(others, r):
            best = min(best, _mst_cost(graph, set(terms) | set(subset)))
    return best


# ----------------------------------------------------------------------
# 2-edge-connected spanning subgraphs
# ----------------------------------------------------------------------
def _two_edge_connected(vertices: Sequence[Vertex],
                        edges: Sequence[Tuple[Vertex, Vertex]]) -> bool:
    """Spanning, connected, and still connected after any one deletion."""
    if len(vertices) < 2:
        return False
    if not _connected(vertices, edges):
        return False
    for i in range(len(edges)):
        if not _connected(vertices, edges[:i] + edges[i + 1:]):
            return False
    return True


def ref_min_two_ecss_edges(graph: Graph) -> Optional[int]:
    """Minimum 2-ECSS size by edge-subset enumeration (None if G itself
    is not 2-edge-connected)."""
    vs = graph.vertices()
    edges = list(graph.edges())
    if not _two_edge_connected(vs, edges):
        return None
    for size in range(len(vs), len(edges) + 1):
        for subset in combinations(edges, size):
            if _two_edge_connected(vs, list(subset)):
                return size
    return None


# ----------------------------------------------------------------------
# flows and distances
# ----------------------------------------------------------------------
def ref_max_flow_value(graph: AnyGraph, s: Vertex, t: Vertex) -> float:
    """Max flow by the *other* side of strong duality: minimum s-t cut
    capacity over every vertex bipartition.  Completely independent of
    any augmenting-path computation."""
    others = [v for v in graph.vertices() if v not in (s, t)]
    directed = isinstance(graph, DiGraph)
    arcs = []
    for u, v in graph.edges():
        w = graph.edge_weight(u, v)
        arcs.append((u, v, w))
        if not directed:
            arcs.append((v, u, w))
    best = _INF
    for r in range(len(others) + 1):
        for subset in combinations(others, r):
            side = {s} | set(subset)
            cap = sum(w for u, v, w in arcs if u in side and v not in side)
            best = min(best, cap)
    return best


def ref_distance(graph: AnyGraph, s: Vertex, t: Vertex) -> float:
    """Weighted s-t distance by Bellman–Ford relaxation (no heap)."""
    directed = isinstance(graph, DiGraph)
    arcs = []
    for u, v in graph.edges():
        w = graph.edge_weight(u, v)
        arcs.append((u, v, w))
        if not directed:
            arcs.append((v, u, w))
    dist: Dict[Vertex, float] = {v: _INF for v in graph.vertices()}
    dist[s] = 0.0
    for __ in range(max(0, graph.n - 1)):
        changed = False
        for u, v, w in arcs:
            if dist[u] + w < dist[v]:
                dist[v] = dist[u] + w
                changed = True
        if not changed:
            break
    return dist[t]
