"""Differential check: stored sweep decisions ≡ fresh scratch decisions.

The sweep fabric persists predicate decisions in a content-addressed
:class:`repro.experiments.sweep_store.SweepStore`; an exhaustive
campaign then trusts restored entries without re-solving them.  This
check pins that trust on seeded families: decisions written through the
store, decisions restored by a *fresh* family instance, and
from-scratch reference decisions (``build_scratch``, no memo, no store)
must all agree — and a corrupted entry must degrade to a recompute that
still agrees, never to a wrong answer or a crash.

The same pairs are also pushed through the persistent warm worker pool
(``jobs=2``): pool-decided sweeps must match scratch bit-for-bit, and
the decisions workers persist to the store must restore identically in
a later serial sweep — pinning serial ≡ cold-pool ≡ warm-pool.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
from typing import Optional


def check_sweep_store(seed: int, index: int) -> Optional[str]:
    """Fuzz the store round-trip on a seeded family; None means OK."""
    from repro.cc.functions import random_input_pairs
    from repro.core.family import sweep
    from repro.core.maxcut import MaxCutFamily
    from repro.core.mds import MdsFamily
    from repro.experiments.sweep_store import SweepStore, family_key

    rng = random.Random(f"repro-sweep-store:{seed}:{index}")
    make = MdsFamily if index % 2 == 0 else MaxCutFamily
    tmp = tempfile.mkdtemp(prefix="repro-sweep-check-")
    try:
        store = SweepStore(tmp)
        fam = make(2)
        pairs = random_input_pairs(fam.k_bits, 6, rng)
        first = sweep(fam, pairs, store=store)

        # ground truth: scratch builds, no memoization, no store
        scratch = [fam.predicate(fam.build_scratch(x, y)) for x, y in pairs]
        if first.decisions != scratch:
            return (f"{make.__name__}: store-path decisions "
                    f"{first.decisions} != scratch decisions {scratch}")

        # a fresh instance must restore every unique pair from disk
        fresh = make(2)
        second = sweep(fresh, pairs, store=store)
        if second.decisions != scratch:
            return (f"{make.__name__}: restored decisions "
                    f"{second.decisions} != scratch decisions {scratch}")
        if second.store_hits != second.unique_pairs or second.solved != 0:
            return (f"{make.__name__}: expected a pure-restore sweep, "
                    f"got {second}")

        # warm-pool leg: decisions decided *inside pool workers* and
        # persisted by them must agree with scratch and restore cleanly.
        # When this check itself runs inside a fan-out worker (the
        # harness's --jobs mode) the leg degrades to jobs=1 — forking a
        # nested pool from a pool worker is exactly what the warm pool
        # refuses to do, and the cold scheduler must not do it either.
        import multiprocessing

        in_main = multiprocessing.current_process().name == "MainProcess"
        warm_tmp = tempfile.mkdtemp(prefix="repro-sweep-check-warm-")
        try:
            warm_store = SweepStore(warm_tmp)
            warm = sweep(make(2), pairs, store=warm_store,
                         jobs=2 if in_main else 1, warm=True)
            if warm.decisions != scratch:
                return (f"{make.__name__}: warm-pool decisions "
                        f"{warm.decisions} != scratch decisions {scratch}")
            replay = sweep(make(2), pairs, store=warm_store)
            if replay.decisions != scratch:
                return (f"{make.__name__}: replay of worker-persisted "
                        f"decisions {replay.decisions} != scratch "
                        f"decisions {scratch}")
            if replay.solved != 0:
                return (f"{make.__name__}: worker-persisted store was "
                        f"incomplete, replay re-solved {replay.solved} "
                        f"pairs: {replay}")
        finally:
            shutil.rmtree(warm_tmp, ignore_errors=True)

        # corrupt one stored entry: must recompute, not crash or lie
        fdir = store.family_dir(family_key(fresh))
        entries = sorted(f for f in os.listdir(fdir)
                         if f.endswith(".json") and f != "meta.json")
        with open(os.path.join(fdir, entries[0]), "w",
                  encoding="utf-8") as fh:
            fh.write('{"x": "01')  # truncated mid-write
        third = sweep(make(2), pairs, store=store)
        if third.decisions != scratch:
            return (f"{make.__name__}: decisions after entry corruption "
                    f"{third.decisions} != scratch decisions {scratch}")
        if third.solved + third.store_hits != third.unique_pairs:
            return (f"{make.__name__}: corrupt-entry sweep counters "
                    f"inconsistent: {third}")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return None
