"""Candidate-engine vs reference-loop differential check.

The CONGEST simulator ships three round loops (see
:meth:`repro.congest.model.CongestSimulator.run`): the active-set fast
engine, the struct-of-arrays vectorized engine, and the straight-line
reference loop both were derived from.  This check runs representative
algorithms through each candidate against the reference and demands
*observable identity*: the same outputs, ``rounds``,
``total_messages``, ``total_bits``, ``max_message_bits``, the same
exception (including :class:`BandwidthExceeded` partial-counter
semantics — counters include every message checked up to and including
the offending one), and — in traced mode — the exact same event stream.

Each scenario runs traced and untraced on every engine.  The untraced
runs matter because they exercise each candidate's no-sink code path —
the fast engine's ``_check_fast`` (no event construction, no outbox
copy, memoized ``message_bits``) and the vectorized engine's deferred
per-round counter flush — which the traced runs bypass.  The vectorized
candidate additionally runs with its numpy hook disabled, pinning the
pure-python flush fallback to the same observable behaviour.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.graphs import Graph


def _overflow_algorithm():
    """Nodes flood their uid once; then the max-uid node sends an
    oversized payload, tripping the bandwidth check mid-round with
    partial counters."""
    from repro.congest.model import Message, NodeAlgorithm, NodeContext

    class Overflow(NodeAlgorithm):
        def on_start(self, ctx: NodeContext) -> Dict[int, Message]:
            return {w: ctx.uid for w in ctx.neighbors}

        def on_round(self, ctx: NodeContext,
                     messages: Dict[int, Message]) -> Dict[int, Message]:
            if ctx.uid == ctx.n - 1 and ctx.neighbors:
                return {ctx.neighbors[0]: "x" * 4096}
            ctx.halt(None)
            return {}

    return Overflow


def _collect_scenario():
    """Collect-and-solve with a trivial deterministic solver: exercises
    the tuple-heavy edge-record broadcasts (the message-bits cache and
    the broadcast identity memo)."""
    from repro.congest.algorithms.collect import CollectAndSolve

    def solver(n: int, edge_records, vertex_records):
        return len(edge_records), {u: u % 2 == 0 for u in range(n)}

    return lambda: CollectAndSolve(solver)


def _snapshot(graph: Graph, factory: Callable, inputs: Optional[Dict],
              engine: str, traced: bool) -> Dict[str, Any]:
    from repro.congest.model import CongestSimulator
    from repro.obs import MultiTracer, NullTracer, RecordingTracer
    from repro.obs.trace import default_tracer

    tracer = RecordingTracer() if traced else NullTracer()
    sink: Any = tracer
    if traced:
        # fan into the ambient tracer too, so `repro check --trace-dir`
        # captures the engine-equivalence runs on disk
        ambient = default_tracer()
        if ambient is not None:
            sink = MultiTracer([tracer, ambient])
    sim = CongestSimulator(graph, bandwidth_factor=40, tracer=sink)
    outputs: Any = None
    error: Optional[str] = None
    try:
        outputs = sim.run(factory, inputs=inputs, engine=engine)
    except Exception as exc:  # parity of *any* failure is the contract
        error = f"{type(exc).__name__}: {exc}"
    return {
        "outputs": outputs,
        "error": error,
        "rounds": sim.rounds,
        "total_messages": sim.total_messages,
        "total_bits": sim.total_bits,
        "max_message_bits": sim.max_message_bits,
        "events": list(tracer.events) if traced else None,
    }


def _diff(ref: Dict[str, Any], cand: Dict[str, Any],
          name: str = "candidate") -> Optional[str]:
    for field in ("outputs", "error", "rounds", "total_messages",
                  "total_bits", "max_message_bits"):
        if ref[field] != cand[field]:
            return (f"{field}: reference={ref[field]!r} "
                    f"{name}={cand[field]!r}")
    if ref["events"] is not None:
        if len(ref["events"]) != len(cand["events"]):
            return (f"event stream length: reference={len(ref['events'])} "
                    f"{name}={len(cand['events'])}")
        for i, (a, b) in enumerate(zip(ref["events"], cand["events"])):
            if a != b:
                return f"event {i}: reference={a!r} {name}={b!r}"
    return None


def _scenarios(graph: Graph) -> List[Tuple[str, Callable, Optional[Dict]]]:
    from repro.congest.algorithms.basic import BfsFromRoot, FloodMinId

    scenarios: List[Tuple[str, Callable, Optional[Dict]]] = [
        ("flood-min-id", FloodMinId, None),
        ("bfs-from-root", BfsFromRoot,
         {v: 0 for v in graph.vertices()}),
    ]
    if graph.m >= 1:
        scenarios.append(
            ("bandwidth-overflow", _overflow_algorithm(), None))
    if graph.n >= 2 and graph.is_connected():
        scenarios.append(("collect-and-solve", _collect_scenario(), None))
    return scenarios


def check_engine_equivalence(graph: Graph) -> Optional[str]:
    """Every candidate engine must be observably identical to the
    reference loop.

    Returns ``None`` on agreement, else a message naming the scenario,
    engine, mode, and first diverging field/event.  The vectorized
    engine is additionally checked with its numpy hook disabled, so the
    pure-python counter-flush fallback is pinned too.
    """
    from repro.congest import model as congest_model

    for name, factory, inputs in _scenarios(graph):
        for traced in (False, True):
            ref = _snapshot(graph, factory, inputs, "reference", traced)
            for engine in ("fast", "vectorized"):
                cand = _snapshot(graph, factory, inputs, engine, traced)
                diff = _diff(ref, cand, engine)
                if diff is not None:
                    mode = "traced" if traced else "untraced"
                    return (f"engine divergence [{name}, {engine}, "
                            f"{mode}]: {diff}")
            saved_np = congest_model._np
            congest_model._np = None
            try:
                cand = _snapshot(graph, factory, inputs, "vectorized",
                                 traced)
            finally:
                congest_model._np = saved_np
            diff = _diff(ref, cand, "vectorized[no-numpy]")
            if diff is not None:
                mode = "traced" if traced else "untraced"
                return (f"engine divergence [{name}, vectorized"
                        f"[no-numpy], {mode}]: {diff}")
    return None
