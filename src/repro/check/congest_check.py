"""CONGEST-vs-centralized agreement checks.

The folklore learn-the-graph algorithm (:func:`run_universal_exact`)
must produce exactly what the centralized exact solver produces — on the
Figure 1 MDS instances this closes the loop between the simulator, the
collect-and-solve machinery, and the solver the lower-bound lemma is
checked with.  The run is traced with a :class:`RecordingTracer` so a
failure report carries the round/bit accounting of the offending run.
"""

from __future__ import annotations

from typing import Optional

from repro.graphs import Graph


def check_congest_mds(graph: Graph) -> Optional[str]:
    """Learn-the-graph MDS output must equal the exact solver's.

    Returns ``None`` on agreement, else a failure message including the
    traced run statistics.
    """
    from repro import solvers
    from repro.congest.algorithms.collect import CollectAndSolve
    from repro.congest.model import CongestSimulator
    from repro.obs import Metrics, MultiTracer, RecordingTracer
    from repro.obs.trace import default_tracer

    expected = len(solvers.min_dominating_set(graph))

    def local_solver(gg):
        ds = set(solvers.min_dominating_set(gg))
        return len(ds), {uid: (uid in ds) for uid in gg.vertices()}

    tracer = RecordingTracer()
    # inside a `repro check --trace-dir` region the ambient tracer also
    # gets the stream, so the run lands on disk as well as in memory
    ambient = default_tracer()
    sink = tracer if ambient is None else MultiTracer([tracer, ambient])
    sim = CongestSimulator(graph, bandwidth_factor=40, tracer=sink)

    def solver(n, edge_records, vertex_records):
        gg = Graph()
        gg.add_vertices(range(n))
        for u, v, w in edge_records:
            gg.add_edge(u, v, weight=w)
        for u, w in vertex_records:
            gg.set_vertex_weight(u, w)
        return local_solver(gg)

    outputs = sim.run(lambda: CollectAndSolve(solver))

    def run_stats() -> str:
        metrics = Metrics.from_events(tracer.events)
        return (f"rounds={sim.rounds} messages={sim.total_messages} "
                f"bits={sim.total_bits} traced_rounds={metrics.rounds} "
                f"traced_bits={metrics.total_bits}")

    globals_seen = {out["global"] for out in outputs.values()}
    if globals_seen != {expected}:
        return (f"learn-the-graph MDS global value(s) {globals_seen} != "
                f"exact solver's {expected} [{run_stats()}]")
    members = [v for v, out in outputs.items() if out["value"]]
    if len(members) != expected:
        return (f"learn-the-graph MDS picked {len(members)} vertices, "
                f"exact solver says {expected} [{run_stats()}]")
    if not solvers.is_dominating_set(graph, members):
        return (f"learn-the-graph MDS output {members!r} is not a "
                f"dominating set [{run_stats()}]")
    return None
