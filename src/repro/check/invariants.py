"""Metamorphic invariants over the production solvers.

Every function takes a graph (plus a seeded ``random.Random`` where the
invariant samples something) and returns ``None`` on success or a
human-readable failure message.  The invariants need no reference
implementation — they relate the production solvers *to themselves*
under transformations with known effect:

- **relabeling invariance**: solver values are graph properties, so any
  injective renaming of the vertices must leave them unchanged.  This is
  exactly the class of ``PYTHONHASHSEED``-dependent iteration-order bug
  PR 2 fixed by hand.
- **weight scaling**: scaling all edge (vertex) weights by c > 0 scales
  weight-valued optima by c.
- **disjoint-union additivity**: α, γ, ν, and max-cut are additive over
  disjoint unions.
- **complement identities**: Gallai's α(G) + τ(G) = n, evaluated through
  *two different production code paths* (the sparse branch-and-reduce
  solver vs the bitmask branch-and-bound behind vertex cover).
- **cut symmetry**: ``cut_weight(S) == cut_weight(V \\ S)``, and the
  max-cut certificate must reproduce the reported value.

Solvers are always reached through the ``repro.solvers`` namespace so a
planted mutation (monkeypatching ``repro.solvers.<name>``) is observed —
that is how the harness's own tests prove it can catch bugs.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.graphs import Graph, Vertex


def _solvers():
    from repro import solvers
    return solvers


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


def relabeled(graph: Graph, rng: random.Random,
              ) -> Tuple[Graph, dict]:
    """A structurally identical copy under a random injective renaming."""
    vs = graph.vertices()
    codes = list(range(len(vs)))
    rng.shuffle(codes)
    mapping = {v: ("rl", c) for v, c in zip(vs, codes)}
    return graph.relabel(mapping), mapping


def disjoint_union(a: Graph, b: Graph) -> Graph:
    """G ⊎ H on tagged copies of the two vertex sets."""
    g = Graph()
    for side, src in (("L", a), ("R", b)):
        for v in src.vertices():
            g.add_vertex((side, v), weight=src.vertex_weight(v))
        for u, v in src.edges():
            g.add_edge((side, u), (side, v), weight=src.edge_weight(u, v))
    return g


def scaled_weights(graph: Graph, edge_factor: float = 1.0,
                   vertex_factor: float = 1.0) -> Graph:
    g = graph.copy()
    if edge_factor != 1.0:
        for u, v in g.edges():
            g.set_edge_weight(u, v, g.edge_weight(u, v) * edge_factor)
    if vertex_factor != 1.0:
        for v in g.vertices():
            g.set_vertex_weight(v, g.vertex_weight(v) * vertex_factor)
    return g


# ----------------------------------------------------------------------
# relabeling invariance
# ----------------------------------------------------------------------
def inv_relabel_alpha(graph: Graph, rng: random.Random) -> Optional[str]:
    s = _solvers()
    perm, __ = relabeled(graph, rng)
    a, b = s.independence_number(graph), s.independence_number(perm)
    if a != b:
        return f"independence_number changed under relabeling: {a} vs {b}"
    return None


def inv_relabel_maxcut(graph: Graph, rng: random.Random) -> Optional[str]:
    s = _solvers()
    perm, __ = relabeled(graph, rng)
    a, b = s.max_cut_value(graph), s.max_cut_value(perm)
    if not _close(a, b):
        return f"max_cut_value changed under relabeling: {a} vs {b}"
    return None


def inv_relabel_dominating(graph: Graph, rng: random.Random) -> Optional[str]:
    s = _solvers()
    perm, __ = relabeled(graph, rng)
    a = s.min_dominating_set_weight(graph)
    b = s.min_dominating_set_weight(perm)
    if not _close(a, b):
        return f"min_dominating_set_weight changed under relabeling: {a} vs {b}"
    return None


def inv_relabel_matching(graph: Graph, rng: random.Random) -> Optional[str]:
    s = _solvers()
    perm, __ = relabeled(graph, rng)
    a, b = s.max_matching_size(graph), s.max_matching_size(perm)
    if a != b:
        return f"max_matching_size changed under relabeling: {a} vs {b}"
    return None


# ----------------------------------------------------------------------
# weight scaling
# ----------------------------------------------------------------------
def inv_scale_edge_weights(graph: Graph, rng: random.Random,
                           terminals: Sequence[Vertex] = (),
                           ) -> Optional[str]:
    s = _solvers()
    c = float(rng.randint(2, 5))
    scaled = scaled_weights(graph, edge_factor=c)
    a, b = s.max_cut_value(graph), s.max_cut_value(scaled)
    if not _close(a * c, b):
        return f"max_cut_value not {c}x-homogeneous: {a}*{c} != {b}"
    if len(terminals) >= 2:
        st, tt = terminals[0], terminals[1]
        a, b = s.weighted_distance(graph, st, tt), \
            s.weighted_distance(scaled, st, tt)
        if a != float("inf") and not _close(a * c, b):
            return f"weighted_distance not {c}x-homogeneous: {a}*{c} != {b}"
        a = s.steiner_tree_cost(graph, list(terminals))
        b = s.steiner_tree_cost(scaled, list(terminals))
        if a != float("inf") and not _close(a * c, b):
            return f"steiner_tree_cost not {c}x-homogeneous: {a}*{c} != {b}"
        fa, __ = s.max_flow(graph, st, tt)
        fb, __ = s.max_flow(scaled, st, tt)
        if not _close(fa * c, fb):
            return f"max_flow not {c}x-homogeneous: {fa}*{c} != {fb}"
    return None


def inv_scale_vertex_weights(graph: Graph, rng: random.Random,
                             ) -> Optional[str]:
    s = _solvers()
    c = float(rng.randint(2, 5))
    scaled = scaled_weights(graph, vertex_factor=c)
    a = s.max_independent_set_weight(graph)
    b = s.max_independent_set_weight(scaled)
    if not _close(a * c, b):
        return f"max_independent_set_weight not {c}x-homogeneous: " \
               f"{a}*{c} != {b}"
    a = s.min_dominating_set_weight(graph)
    b = s.min_dominating_set_weight(scaled)
    if not _close(a * c, b):
        return f"min_dominating_set_weight not {c}x-homogeneous: " \
               f"{a}*{c} != {b}"
    return None


# ----------------------------------------------------------------------
# disjoint-union additivity
# ----------------------------------------------------------------------
def inv_disjoint_union(graph: Graph, rng: random.Random) -> Optional[str]:
    s = _solvers()
    other, __ = relabeled(graph, rng)  # same structure, fresh labels
    union = disjoint_union(graph, other)
    pairs = [
        ("independence_number", s.independence_number),
        ("max_matching_size", s.max_matching_size),
        ("max_cut_value", s.max_cut_value),
    ]
    if graph.n:  # γ undefined on the empty graph's components
        pairs.append(("min_dominating_set_weight",
                      s.min_dominating_set_weight))
    for name, fn in pairs:
        a, b, u = fn(graph), fn(other), fn(union)
        if not _close(float(a) + float(b), float(u)):
            return f"{name} not additive over disjoint union: " \
                   f"{a} + {b} != {u}"
    return None


# ----------------------------------------------------------------------
# complement / duality identities
# ----------------------------------------------------------------------
def inv_alpha_tau(graph: Graph, rng: random.Random) -> Optional[str]:
    s = _solvers()
    alpha = s.independence_number(graph)          # sparse branch-and-reduce
    tau = s.min_vertex_cover_size(graph)          # bitmask branch-and-bound
    if alpha + tau != graph.n:
        return f"Gallai identity violated: α={alpha} + τ={tau} != n={graph.n}"
    nu = s.max_matching_size(graph)
    if not nu <= tau <= 2 * nu:
        return f"König/Gallai sandwich violated: ν={nu}, τ={tau}"
    return None


def inv_cut_complement(graph: Graph, rng: random.Random) -> Optional[str]:
    s = _solvers()
    vs = graph.vertices()
    side = [v for v in vs if rng.random() < 0.5]
    other = [v for v in vs if v not in set(side)]
    a, b = s.cut_weight(graph, side), s.cut_weight(graph, other)
    if not _close(a, b):
        return f"cut_weight(S) != cut_weight(V-S): {a} vs {b}"
    value, best_side = s.max_cut(graph)
    realised = s.cut_weight(graph, best_side)
    if not _close(value, realised):
        return f"max_cut certificate mismatch: reported {value}, " \
               f"side realises {realised}"
    if a > value + 1e-9:
        return f"random cut {a} beats reported maximum {value}"
    return None


# ----------------------------------------------------------------------
# certificate validity (cross-solver, no reference needed)
# ----------------------------------------------------------------------
def inv_certificates(graph: Graph, rng: random.Random,
                     terminals: Sequence[Vertex] = ()) -> Optional[str]:
    s = _solvers()
    mis = s.max_independent_set(graph, weighted=False)
    if not s.is_independent_set(graph, mis):
        return f"max_independent_set returned a dependent set: {mis!r}"
    if len(mis) != s.independence_number(graph):
        return f"solver disagreement: |max_independent_set|={len(mis)} " \
               f"but independence_number={s.independence_number(graph)}"
    if graph.n:
        ds = s.min_dominating_set(graph)
        if not s.is_dominating_set(graph, ds):
            return f"min_dominating_set returned a non-dominating set: {ds!r}"
    path = s.find_hamiltonian_path(graph)
    if path is not None and not s.is_hamiltonian_path(graph, path):
        return f"find_hamiltonian_path returned an invalid path: {path!r}"
    if 2 <= graph.n <= 14:
        hk = s.held_karp_has_path(graph)
        if (path is not None) != hk:
            return f"hamiltonian-path solvers disagree: DFS={path is not None}" \
                   f" Held-Karp={hk}"
    cycle = s.find_hamiltonian_cycle(graph)
    if cycle is not None and not s.is_hamiltonian_cycle(graph, cycle):
        return f"find_hamiltonian_cycle returned an invalid cycle: {cycle!r}"
    if len(terminals) >= 2 and graph.n <= 12:
        cost, edges = s.steiner_tree(graph, list(terminals))
        if cost != float("inf"):
            if not s.is_steiner_tree(graph, edges, list(terminals)):
                return f"steiner_tree certificate invalid: {edges!r}"
            realised = sum(graph.edge_weight(u, v) for u, v in edges)
            if not _close(realised, cost):
                return f"steiner_tree cost {cost} but edges weigh {realised}"
        st, tt = terminals[0], terminals[1]
        fval, __ = s.max_flow(graph, st, tt)
        cval, cut_side = s.min_st_cut(graph, st, tt)
        if not _close(fval, cval):
            return f"max-flow/min-cut duality violated: flow {fval}, " \
                   f"cut {cval}"
        dist = s.dijkstra(graph, st)
        for u, v in graph.edges():
            du, dv = dist.get(u), dist.get(v)
            if du is not None and dv is not None:
                w = graph.edge_weight(u, v)
                if dv > du + w + 1e-9 or du > dv + w + 1e-9:
                    return f"dijkstra triangle inequality violated on " \
                           f"({u!r},{v!r})"
    return None
