"""CKP-style MVC/MaxIS base family tests (the Sections 3-4 substrate)."""

import pytest

from repro.cc.functions import (
    random_disjoint_pair,
    random_input_pairs,
    random_intersecting_pair,
)
from repro.core.family import validate_family, verify_iff
from repro.core.mvc import (
    W_A,
    W_B,
    WP_A,
    WP_B,
    MvcMaxISFamily,
    bin_pairs,
    cobin,
    fvert,
    row,
    tvert,
)
from repro.solvers import (
    is_independent_set,
    max_independent_set,
    min_vertex_cover_size,
)


@pytest.fixture(scope="module")
def fam():
    return MvcMaxISFamily(4)


class TestConstruction:
    def test_rows_are_cliques(self, fam):
        g = fam.fixed_graph()
        for i in range(fam.k):
            for j in range(i + 1, fam.k):
                assert g.has_edge(row("A1", i), row("A1", j))

    def test_four_cycles(self, fam):
        g = fam.fixed_graph()
        cyc = [fvert("A1", 0), tvert("A1", 0), fvert("B1", 0), tvert("B1", 0)]
        for i in range(4):
            assert g.has_edge(cyc[i], cyc[(i + 1) % 4])
        # the two "consistent" pairs are non-adjacent
        assert not g.has_edge(fvert("A1", 0), fvert("B1", 0))
        assert not g.has_edge(tvert("A1", 0), tvert("B1", 0))

    def test_complement_coding(self, fam):
        g = fam.fixed_graph()
        # row 2 = binary 10: cobin = {t^0, f^1}
        assert g.has_edge(row("A1", 2), tvert("A1", 0))
        assert g.has_edge(row("A1", 2), fvert("A1", 1))
        assert not g.has_edge(row("A1", 2), fvert("A1", 0))

    def test_connectors(self, fam):
        g = fam.fixed_graph()
        assert g.has_edge(W_A, WP_A)
        assert g.has_edge(W_A, row("A1", 0))
        assert g.has_edge(W_A, row("A2", 0))
        assert g.degree(W_A) == 3

    def test_connected_constant_diameter(self, fam, rng):
        for __ in range(2):
            x, y = random_input_pairs(16, 2, rng)[0]
            g = fam.build(x, y)
            assert g.is_connected()
            assert g.diameter() <= 10

    def test_input_edges_on_zeros(self, fam, rng):
        x, y = random_input_pairs(16, 2, rng)[0]
        g = fam.build(x, y)
        k = fam.k
        for i in range(k):
            for j in range(k):
                assert g.has_edge(row("A1", i), row("A2", j)) == \
                    (x[i * k + j] == 0)

    def test_definition_1_1(self, fam):
        validate_family(fam)

    def test_cut_logarithmic(self, fam):
        assert len(fam.cut_edges()) == 4 * fam.log_k

    def test_row_degree_theta_n(self, fam):
        zeros = tuple([0] * 16)
        g = fam.build(zeros, zeros)
        assert g.degree(row("A1", 1)) >= fam.k  # clique + inputs


class TestAlphaGap:
    def test_iff_sweep(self, fam, rng):
        report = verify_iff(fam, random_input_pairs(16, 6, rng), negate=True)
        assert report.true_instances and report.false_instances

    def test_alpha_gap(self, fam, rng):
        x, y = random_disjoint_pair(16, rng)
        assert len(max_independent_set(fam.build(x, y))) <= fam.alpha_no
        x, y = random_intersecting_pair(16, rng)
        assert len(max_independent_set(fam.build(x, y))) == fam.alpha_yes
        assert fam.alpha_yes == fam.alpha_no + 1

    def test_alpha_no_attained_by_sparse_disjoint_input(self, fam):
        """All-ones x with all-zero y is disjoint and keeps enough input
        edges absent for α to hit the 4·log k + 5 ceiling."""
        x = tuple([1] * fam.k_bits)
        y = tuple([0] * fam.k_bits)
        assert len(max_independent_set(fam.build(x, y))) == fam.alpha_no

    def test_alpha_can_drop_below_ceiling_on_dense_inputs(self, fam):
        """All-zero inputs add every row-row edge; α dips under the
        ceiling — the reason the reduction only uses the iff."""
        zeros = tuple([0] * fam.k_bits)
        alpha = len(max_independent_set(fam.build(zeros, zeros)))
        assert alpha < fam.alpha_yes

    def test_witness(self, fam, rng):
        x, y = random_intersecting_pair(16, rng)
        w = fam.witness_independent_set(x, y)
        assert len(w) == fam.alpha_yes
        assert is_independent_set(fam.build(x, y), w)

    def test_mvc_complement(self, fam, rng):
        x, y = random_intersecting_pair(16, rng)
        g = fam.build(x, y)
        assert min_vertex_cover_size(g) == g.n - fam.alpha_yes
        assert fam.mvc_target == g.n - fam.alpha_yes

    def test_pendants_always_available(self, fam, rng):
        x, y = random_intersecting_pair(16, rng)
        w = fam.witness_independent_set(x, y)
        assert WP_A in w and WP_B in w

    def test_bin_pairs_disjoint_from_cobin(self, fam):
        for i in range(fam.k):
            assert not set(bin_pairs("A1", i, fam.log_k)) & \
                set(cobin("A1", i, fam.log_k))
