"""Persistent warm worker pool: equivalence, broadcast economy, healing.

The pool is an optimisation layered on the sweep/experiment fabric, so
every test here pins an equivalence (warm ≡ cold ≡ serial) or a pool
lifecycle contract: skeleton re-broadcast only on ``FamilyKey`` change,
worker death healing that preserves innocent lanes' warmth, payload
budget, and run_all record identity.
"""

import os
import random
import time

import pytest

from repro.cc.functions import random_input_pairs
from repro.core.family import sweep
from repro.core.maxcut import MaxCutFamily
from repro.core.mds import MdsFamily
from repro.experiments import warm_pool
from repro.experiments.sweep import parallel_decisions
from repro.experiments.warm_pool import (
    _pack_pairs,
    _unpack_pairs,
    pool_decisions,
    pool_stats,
    shutdown_pool,
)

PARENT_PID = os.getpid()


@pytest.fixture(autouse=True)
def fresh_pool():
    """Each test starts and ends without a live pool (and therefore with
    zeroed stats), so counter assertions cannot bleed across tests."""
    shutdown_pool()
    yield
    shutdown_pool()


def _pairs(fam, n, seed=0):
    rng = random.Random(f"warm-pool:{seed}")
    return [(tuple(x), tuple(y))
            for x, y in random_input_pairs(fam.k_bits, n, rng)]


def _serial_decisions(make, pairs):
    fam = make(2)
    return [fam.predicate(fam.build(x, y)) for x, y in pairs]


class CrashOnceInWorkers(MdsFamily):
    """Predicate hard-kills the first worker process that decides the
    trigger pair; later attempts (and the parent) decide normally."""

    def __init__(self, k_bits, flag_path):
        super().__init__(k_bits)
        self.flag_path = flag_path

    def predicate(self, graph):
        if os.getpid() != PARENT_PID and not os.path.exists(self.flag_path):
            with open(self.flag_path, "w") as fh:
                fh.write(str(os.getpid()))
            os._exit(17)
        return super().predicate(graph)


class HangInWorkers(MdsFamily):
    """Predicate wedges any process that is not the test parent."""

    def predicate(self, graph):
        if os.getpid() != PARENT_PID:
            time.sleep(600)
        return super().predicate(graph)


class TestPackedPairs:
    @pytest.mark.parametrize("k_bits", [1, 2, 7, 8, 9, 16, 20])
    def test_roundtrip(self, k_bits):
        rng = random.Random(k_bits)
        pairs = [(tuple(rng.randrange(2) for __ in range(k_bits)),
                  tuple(rng.randrange(2) for __ in range(k_bits)))
                 for __ in range(17)]
        packed = _pack_pairs(pairs, k_bits)
        assert _unpack_pairs(packed, k_bits) == pairs
        width = max(1, (k_bits + 7) // 8)
        assert len(packed) == 2 * width * len(pairs)

    def test_empty(self):
        assert _unpack_pairs(_pack_pairs([], 4), 4) == []


class TestEquivalence:
    def test_warm_matches_serial_and_cold(self):
        pairs = _pairs(MdsFamily(2), 9)
        want = _serial_decisions(MdsFamily, pairs)
        cold = parallel_decisions(MdsFamily(2), pairs, 2)
        warm = pool_decisions(MdsFamily(2), pairs, 2)
        assert cold == want
        assert warm == want

    def test_warm_across_repeated_sweeps(self):
        # fresh family instances, same FamilyKey: later sweeps are
        # served from hot worker memos yet stay identical
        pairs = _pairs(MdsFamily(2), 8, seed=1)
        want = _serial_decisions(MdsFamily, pairs)
        for __ in range(3):
            report = sweep(MdsFamily(2), pairs, jobs=2, warm=True)
            assert report.decisions == want
        assert pool_stats()["warm_hits"] > 0

    def test_sweep_report_counters_match_serial(self):
        pairs = _pairs(MdsFamily(2), 10, seed=2)
        serial = sweep(MdsFamily(2), pairs, jobs=1)
        warm = sweep(MdsFamily(2), pairs, jobs=2, warm=True)
        assert warm.decisions == serial.decisions
        assert (warm.pairs, warm.unique_pairs, warm.memo_hits,
                warm.solved) == (serial.pairs, serial.unique_pairs,
                                 serial.memo_hits, serial.solved)


class TestBroadcastProtocol:
    def test_rebroadcast_only_on_family_key_change(self):
        pairs = _pairs(MdsFamily(2), 6, seed=3)
        sweep(MdsFamily(2), pairs, jobs=2, warm=True)
        after_first = pool_stats()["broadcasts"]
        assert after_first == pool_stats()["lanes"]

        # same FamilyKey (fresh instance): no new broadcast
        sweep(MdsFamily(2), pairs, jobs=2, warm=True)
        assert pool_stats()["broadcasts"] == after_first

        # different FamilyKey: one broadcast per lane that decides it
        other = MaxCutFamily(2)
        sweep(other, _pairs(other, 6, seed=3), jobs=2, warm=True)
        assert pool_stats()["broadcasts"] > after_first

    def test_payload_budget(self):
        # the fixed per-pair byte budget (mirrors the record.py CI gate);
        # needs grid-sized shards so per-shard headers amortize
        from itertools import product

        k = MdsFamily(2).k_bits
        grid = [(x, y) for x in product((0, 1), repeat=k)
                for y in product((0, 1), repeat=k)]
        sweep(MdsFamily(2), grid, jobs=2, warm=True)
        sweep(MdsFamily(2), grid, jobs=2, warm=True)
        stats = pool_stats()
        assert stats["pairs_shipped"] > 0
        per_pair = stats["pair_payload_bytes"] / stats["pairs_shipped"]
        assert per_pair <= 8.0, f"{per_pair:.1f} B/pair over budget"

    def test_broadcast_bytes_are_counted(self):
        pairs = _pairs(MdsFamily(2), 6, seed=5)
        sweep(MdsFamily(2), pairs, jobs=2, warm=True)
        assert pool_stats()["broadcast_bytes"] > 0


class TestFailureSemantics:
    def test_worker_death_heals_and_keeps_innocent_warmth(self, tmp_path):
        # prime both lanes with an innocent family
        pairs = _pairs(MdsFamily(2), 10, seed=6)
        want = _serial_decisions(MdsFamily, pairs)
        sweep(MdsFamily(2), pairs, jobs=2, warm=True)
        primed = pool_stats()["broadcasts"]

        # one worker hard-dies mid-campaign; decisions still correct
        crash = CrashOnceInWorkers(2, str(tmp_path / "crashed"))
        got = pool_decisions(crash, pairs, 2, retries=1)
        assert got == want
        stats = pool_stats()
        assert stats["lane_respawns"] >= 1

        # the innocent lane kept its warmed copy: re-sweeping the first
        # family re-broadcasts only to the respawned lane(s)
        before = pool_stats()["broadcasts"]
        report = sweep(MdsFamily(2), pairs, jobs=2, warm=True)
        assert report.decisions == want
        rebroadcasts = pool_stats()["broadcasts"] - before
        assert rebroadcasts < pool_stats()["lanes"], (
            f"all {pool_stats()['lanes']} lanes were re-broadcast — "
            f"innocent warmth was lost (primed={primed})")

    def test_timeout_decided_by_parent(self):
        fam = HangInWorkers(2)
        pairs = _pairs(fam, 4, seed=7)
        want = _serial_decisions(MdsFamily, pairs)
        start = time.monotonic()
        got = pool_decisions(fam, pairs, 2, timeout=0.5)
        assert got == want
        assert time.monotonic() - start < 120  # wedged lanes torn down
        assert pool_stats()["lane_respawns"] >= 1

    def test_unpicklable_family_returns_none(self):
        class Local(MdsFamily):
            pass

        fam = Local(2)
        assert pool_decisions(fam, _pairs(fam, 3), 2) is None


class TestExperimentRuns:
    SAMPLE = ["E-F1-T2.1-mds", "E-base-mvc"]

    def test_run_matches_run_parallel(self):
        from repro.experiments import records_equivalent, run_all

        serial = run_all(quick=True, only=self.SAMPLE)
        warm = run_all(quick=True, only=self.SAMPLE, jobs=2)
        assert [r.experiment_id for r in warm] == self.SAMPLE
        for a, b in zip(serial, warm):
            assert records_equivalent(a, b), (a, b)
        assert pool_stats()["experiments"] == len(self.SAMPLE)

    def test_pool_survives_across_run_all_calls(self):
        from repro.experiments import run_all

        run_all(quick=True, only=self.SAMPLE, jobs=2)
        respawns = pool_stats()["lane_respawns"]
        run_all(quick=True, only=self.SAMPLE, jobs=2)
        stats = pool_stats()
        assert stats["experiments"] == 2 * len(self.SAMPLE)
        # same registry: the second call reused the forked lanes
        assert stats["lane_respawns"] == respawns

    def test_registry_change_respawns_lanes(self):
        from repro.experiments import ExperimentRecord, run_all
        from repro.experiments.runner import EXPERIMENTS

        run_all(quick=True, only=self.SAMPLE, jobs=2)
        before = pool_stats()["lane_respawns"]

        def _scratch(quick=True):
            return ExperimentRecord(experiment_id="E-test-warm-scratch",
                                    paper_claim="claim", measured={"x": 1})

        EXPERIMENTS["E-test-warm-scratch"] = _scratch
        try:
            records = run_all(quick=True,
                              only=self.SAMPLE + ["E-test-warm-scratch"],
                              jobs=2)
            assert [r.experiment_id for r in records][-1] == \
                "E-test-warm-scratch"
            assert all(r.passed for r in records)
            assert pool_stats()["lane_respawns"] > before
        finally:
            EXPERIMENTS.pop("E-test-warm-scratch", None)
