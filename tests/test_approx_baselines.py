"""Sequential approximation baseline tests."""

import math

import pytest

from repro.approx import (
    greedy_maxis,
    greedy_mds,
    local_search_maxcut,
    matching_vertex_cover,
    random_maxcut,
)
from repro.graphs import complete_graph, cycle_graph, random_graph
from repro.solvers import (
    cut_weight,
    is_dominating_set,
    is_independent_set,
    is_vertex_cover,
    max_independent_set,
    min_dominating_set,
    min_vertex_cover_size,
)
from tests.conftest import connected_random_graph


class TestGreedyMds:
    def test_valid(self, rng):
        for __ in range(5):
            g = random_graph(10, 0.35, rng)
            assert is_dominating_set(g, greedy_mds(g))

    def test_log_delta_ratio(self, rng):
        for __ in range(4):
            g = random_graph(10, 0.4, rng)
            greedy = len(greedy_mds(g))
            opt = len(min_dominating_set(g))
            assert greedy <= (math.log(g.max_degree() + 1) + 1) * opt

    def test_star_optimal(self):
        from repro.graphs import Graph

        g = Graph()
        for leaf in range(6):
            g.add_edge("c", leaf)
        assert greedy_mds(g) == ["c"]


class TestMatchingVertexCover:
    def test_valid(self, rng):
        for __ in range(5):
            g = random_graph(10, 0.4, rng)
            assert is_vertex_cover(g, matching_vertex_cover(g))

    def test_two_approx(self, rng):
        for __ in range(5):
            g = random_graph(10, 0.4, rng)
            assert len(matching_vertex_cover(g)) <= \
                2 * min_vertex_cover_size(g)


class TestGreedyMaxIS:
    def test_valid(self, rng):
        for __ in range(5):
            g = random_graph(10, 0.4, rng)
            assert is_independent_set(g, greedy_maxis(g))

    def test_min_degree_greedy_ratio(self, rng):
        for __ in range(4):
            g = random_graph(9, 0.4, rng)
            greedy = len(greedy_maxis(g))
            opt = len(max_independent_set(g))
            # min-degree greedy: (Δ+2)/3 ratio
            assert greedy >= opt / ((g.max_degree() + 2) / 3)


class TestMaxCutBaselines:
    def test_local_search_half(self, rng):
        for __ in range(4):
            g = random_graph(10, 0.5, rng)
            side = local_search_maxcut(g)
            assert cut_weight(g, side) >= g.m / 2

    def test_local_search_weighted(self, rng):
        g = connected_random_graph(9, 0.5, rng)
        for u, v in g.edges():
            g.set_edge_weight(u, v, rng.randint(1, 9))
        side = local_search_maxcut(g)
        total = g.total_edge_weight()
        assert cut_weight(g, side) >= total / 2

    def test_random_cut_is_a_cut(self, rng):
        g = random_graph(10, 0.5, rng)
        side = random_maxcut(g, rng)
        assert set(side) <= set(g.vertices())
