"""PLS tests: connectivity, (s,t)-connectivity, cycles, bipartiteness,
cuts (Lemma 5.1 items 1-9)."""

import networkx as nx
import pytest

from repro.graphs import Graph, cycle_graph, path_graph
from repro.pls import (
    BipartitePls,
    ConnectedSpanningSubgraphPls,
    ConnectivityPls,
    CutPls,
    CyclePls,
    ECyclePls,
    EdgeNotOnAllPathsPls,
    EdgeOnAllPathsPls,
    NoCyclePls,
    NoECyclePls,
    NonBipartitePls,
    NonConnectivityPls,
    NonStConnectivityPls,
    NotCutPls,
    NotStCutPls,
    StConnectivityPls,
    StCutPls,
    check_completeness,
    check_soundness_samples,
)
from repro.pls.scheme import PlsInstance, edge_key
from tests.conftest import connected_random_graph


def with_h(g, edges, **kw):
    return PlsInstance(graph=g,
                       subgraph=frozenset(edge_key(u, v) for u, v in edges),
                       **kw)


def bfs_tree_edges(g):
    root = sorted(g.vertices(), key=repr)[0]
    return list(nx.bfs_tree(g.to_networkx(), root).edges())


class TestConnectivity:
    def test_connected_h_accepted(self, rng):
        g = connected_random_graph(8, 0.45, rng)
        check_completeness(ConnectivityPls(), with_h(g, bfs_tree_edges(g)))
        check_completeness(ConnectedSpanningSubgraphPls(),
                           with_h(g, bfs_tree_edges(g)))

    def test_disconnected_h_rejected(self, rng):
        g = connected_random_graph(8, 0.45, rng)
        tree = bfs_tree_edges(g)
        yes = with_h(g, tree)
        no = with_h(g, tree[:-1])
        check_soundness_samples(ConnectivityPls(), no, rng,
                                donor_instances=[yes])

    def test_non_connectivity_completeness(self, rng):
        g = connected_random_graph(8, 0.45, rng)
        check_completeness(NonConnectivityPls(),
                           with_h(g, bfs_tree_edges(g)[:-1]))

    def test_non_connectivity_soundness(self, rng):
        g = connected_random_graph(8, 0.45, rng)
        tree = bfs_tree_edges(g)
        check_soundness_samples(NonConnectivityPls(), with_h(g, tree), rng,
                                donor_instances=[with_h(g, tree[:-1])])


class TestStConnectivity:
    def test_reachable(self, rng):
        g = connected_random_graph(8, 0.45, rng)
        e0 = g.edges()[0]
        check_completeness(StConnectivityPls(),
                           with_h(g, [e0], s=e0[0], t=e0[1]))

    def test_unreachable(self, rng):
        g = connected_random_graph(8, 0.45, rng)
        e0 = g.edges()[0]
        yes = with_h(g, [e0], s=e0[0], t=e0[1])
        no = with_h(g, [], s=e0[0], t=e0[1])
        check_soundness_samples(StConnectivityPls(), no, rng,
                                donor_instances=[yes])
        check_completeness(NonStConnectivityPls(), no)
        check_soundness_samples(NonStConnectivityPls(), yes, rng,
                                donor_instances=[no])


class TestCycles:
    def test_cycle_containment(self, rng):
        g = cycle_graph(7)
        check_completeness(CyclePls(), with_h(g, g.edges()))

    def test_no_cycle(self, rng):
        g = cycle_graph(7)
        yes = with_h(g, g.edges())
        no = with_h(g, g.edges()[:-1])
        check_completeness(NoCyclePls(), no)
        check_soundness_samples(CyclePls(), no, rng, donor_instances=[yes])
        check_soundness_samples(NoCyclePls(), yes, rng,
                                donor_instances=[no])

    def test_e_cycle(self, rng):
        g = cycle_graph(6)
        e = edge_key(*g.edges()[0])
        yes = with_h(g, g.edges(), e=e)
        check_completeness(ECyclePls(), yes)
        no = with_h(g, g.edges()[:-1], e=e)
        check_completeness(NoECyclePls(), no)
        check_soundness_samples(ECyclePls(), no, rng, donor_instances=[yes])
        check_soundness_samples(NoECyclePls(), yes, rng,
                                donor_instances=[no])

    def test_e_not_in_h(self, rng):
        g = cycle_graph(6)
        e = edge_key(0, 1)
        no_h = [ed for ed in g.edges() if edge_key(*ed) != e]
        inst = with_h(g, no_h, e=e)
        assert not ECyclePls().applies(inst)
        check_completeness(NoECyclePls(), inst)

    def test_e_cycle_through_chord(self, rng):
        g = cycle_graph(6)
        g.add_edge(0, 3)
        e = edge_key(0, 3)
        yes = with_h(g, g.edges(), e=e)
        check_completeness(ECyclePls(), yes)


class TestBipartite:
    def test_even_cycle(self, rng):
        g = cycle_graph(6)
        check_completeness(BipartitePls(), with_h(g, g.edges()))

    def test_odd_cycle(self, rng):
        g = cycle_graph(7)
        no = with_h(g, g.edges())
        check_completeness(NonBipartitePls(), no)
        even = cycle_graph(6)
        yes = with_h(even, even.edges())
        check_soundness_samples(BipartitePls(), no, rng)
        check_soundness_samples(NonBipartitePls(), yes, rng)

    def test_odd_cycle_inside_larger_graph(self, rng):
        g = connected_random_graph(9, 0.5, rng)
        inst = with_h(g, g.edges())
        scheme = NonBipartitePls() if NonBipartitePls().applies(inst) \
            else BipartitePls()
        check_completeness(scheme, inst)


class TestCuts:
    def test_cut_and_not_cut(self, rng):
        g = cycle_graph(6)
        yes = with_h(g, [(0, 1), (3, 4)])
        check_completeness(CutPls(), yes)
        no = with_h(g, [(0, 1)])
        check_completeness(NotCutPls(), no)
        check_soundness_samples(CutPls(), no, rng, donor_instances=[yes])
        check_soundness_samples(NotCutPls(), yes, rng,
                                donor_instances=[no])

    def test_st_cut(self, rng):
        g = cycle_graph(6)
        yes = with_h(g, [(0, 1), (3, 4)], s=2, t=5)
        check_completeness(StCutPls(), yes)
        no = with_h(g, [(0, 1)], s=2, t=5)
        check_completeness(NotStCutPls(), no)
        check_soundness_samples(StCutPls(), no, rng, donor_instances=[yes])
        check_soundness_samples(NotStCutPls(), yes, rng,
                                donor_instances=[no])

    def test_edge_on_all_paths(self, rng):
        g = cycle_graph(6)
        h = [(0, 1), (1, 2), (2, 3)]
        yes = with_h(g, h, s=0, t=3, e=edge_key(1, 2))
        check_completeness(EdgeOnAllPathsPls(), yes)
        h2 = h + [(3, 4), (4, 5), (5, 0)]
        no = with_h(g, h2, s=0, t=3, e=edge_key(1, 2))
        check_completeness(EdgeNotOnAllPathsPls(), no)
        check_soundness_samples(EdgeOnAllPathsPls(), no, rng,
                                donor_instances=[yes])
        check_soundness_samples(EdgeNotOnAllPathsPls(), yes, rng,
                                donor_instances=[no])
