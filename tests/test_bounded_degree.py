"""Section 3 chain tests (Theorems 3.1-3.4, Claims 3.1-3.6)."""

import pytest

from repro.cc.functions import disjointness, random_input_pairs
from repro.core.bounded_degree import (
    BoundedDegreeMaxIS,
    expand_formula,
    formula_to_graph,
    graph_to_formula,
    mvc_to_mds_graph,
    mvc_to_two_spanner_graph,
)
from repro.graphs import Graph, cycle_graph, path_graph, random_graph
from repro.limits.protocols import solve_disjointness_via_bounded_degree_maxis
from repro.solvers import (
    is_independent_set,
    max_independent_set,
    max_sat_value,
    min_dominating_set,
    min_two_spanner_cost,
    min_vertex_cover_size,
)


class TestClaim31:
    def test_formula_shape(self):
        g = path_graph(3)
        phi = graph_to_formula(g)
        assert phi.n_clauses == 3 + 2  # vertex clauses + edge clauses
        assert phi.max_clause_width() == 2

    def test_f_phi_equals_alpha_plus_m(self, rng):
        for __ in range(5):
            g = random_graph(5, 0.5, rng)
            phi = graph_to_formula(g)
            assert max_sat_value(phi) == \
                len(max_independent_set(g)) + g.m

    def test_triangle(self):
        g = cycle_graph(3)
        assert max_sat_value(graph_to_formula(g)) == 1 + 3


class TestExpansion:
    def test_every_variable_constant_occurrences(self, rng):
        g = random_graph(5, 0.6, rng)
        ex = expand_formula(graph_to_formula(g), seed=0)
        for var in ex.cnf.variables():
            assert ex.cnf.occurrences(var) <= 8  # paper's bound

    def test_literal_occurrence_bound(self, rng):
        g = random_graph(5, 0.5, rng)
        ex = expand_formula(graph_to_formula(g), seed=1)
        for var in ex.cnf.variables():
            assert ex.cnf.literal_occurrences((var, True)) <= 4
            assert ex.cnf.literal_occurrences((var, False)) <= 4

    def test_corollary_31(self, rng):
        """f(φ′) = f(φ) + m_exp on small instances."""
        for seed in range(3):
            g = random_graph(4, 0.6, rng)
            phi = graph_to_formula(g)
            ex = expand_formula(phi, seed=seed)
            gp = formula_to_graph(ex.cnf)
            assert len(max_independent_set(gp)) == \
                max_sat_value(phi) + ex.n_expander_clauses

    def test_expander_clause_count(self):
        g = path_graph(2)
        ex = expand_formula(graph_to_formula(g), seed=0)
        total_gadget_edges = sum(gd.graph.m for gd in ex.gadgets.values())
        assert ex.n_expander_clauses == 2 * total_gadget_edges


class TestClaim34:
    def test_degree_bound(self, rng):
        g = random_graph(5, 0.6, rng)
        gp = formula_to_graph(expand_formula(graph_to_formula(g)).cnf)
        assert gp.max_degree() <= 5

    def test_alpha_equals_f(self, rng):
        from repro.formulas import CNF, neg, pos

        cnf = CNF([[pos("a"), pos("b")], [neg("a")], [neg("b"), pos("c")]])
        gp = formula_to_graph(cnf)
        assert len(max_independent_set(gp)) == max_sat_value(cnf)

    def test_wide_clause_rejected(self):
        from repro.formulas import CNF, pos

        cnf = CNF([[pos("a"), pos("b"), pos("c")]])
        with pytest.raises(ValueError):
            formula_to_graph(cnf)


class TestFullConstruction:
    @pytest.fixture(scope="class")
    def bd(self):
        return BoundedDegreeMaxIS(2, seed=1)

    def test_degree_five(self, bd, rng):
        x, y = random_input_pairs(4, 2, rng)[0]
        inst = bd.build(x, y)
        assert inst.graph.max_degree() <= 5

    def test_logarithmic_diameter(self, bd, rng):
        import math

        x, y = random_input_pairs(4, 2, rng)[0]
        inst = bd.build(x, y)
        # O(log n) with the construction's constant
        assert inst.graph.diameter() <= 8 * math.log2(inst.graph.n)

    def test_gadgets_fully_verified(self, bd, rng):
        x, y = random_input_pairs(4, 2, rng)[0]
        inst = bd.build(x, y)
        kinds = {g.cut_property_verified
                 for g in inst.expanded.gadgets.values()}
        assert kinds <= {"structural(cycle,d<=5)", "exact(flow)"}

    def test_witness_is(self, bd, rng):
        x, y = next(p for p in random_input_pairs(4, 4, rng)
                    if not disjointness(*p))
        inst = bd.build(x, y)
        w = bd.witness_independent_set(inst, x, y)
        assert len(w) == bd.alpha_target(inst)
        assert is_independent_set(inst.graph, w)

    def test_full_chain_alpha_exact(self, bd, rng):
        """End-to-end: α(G′) = α(G) + m_G + m_exp, computed exactly with
        the branch-and-reduce solver, and the ±1 gap tracks DISJ."""
        from repro.solvers import independence_number

        for x, y in random_input_pairs(4, 4, rng):
            inst = bd.build(x, y)
            alpha = independence_number(inst.graph)
            alpha_base = independence_number(inst.base_graph)
            # the chain identity α(G′) = α(G) + m_G + m_exp, always
            assert alpha == alpha_base + inst.alpha_offset()
            # and the gap read-out: α(G′) hits the target iff ¬DISJ
            assert (alpha == bd.alpha_target(inst)) == \
                (not disjointness(x, y))

    def test_claim_36_protocol(self, bd, rng):
        """Alice and Bob decide DISJ through a CONGEST MaxIS run."""
        x, y = random_input_pairs(4, 1, rng)[0]
        answer, bits, rounds = \
            solve_disjointness_via_bounded_degree_maxis(bd, x, y)
        assert answer == disjointness(x, y)
        assert bits > 0 and rounds > 0


class TestReductions33And34:
    def test_mds_reduction_structure(self):
        g = path_graph(3)
        gd = mvc_to_mds_graph(g)
        assert gd.n == 3 + 2
        ev = ("edge", frozenset((0, 1)))
        assert gd.has_edge(ev, 0) and gd.has_edge(ev, 1)

    def test_mds_equals_mvc(self, rng):
        done = 0
        while done < 5:
            g = random_graph(6, 0.5, rng)
            if any(g.degree(v) == 0 for v in g.vertices()):
                continue
            assert len(min_dominating_set(mvc_to_mds_graph(g))) == \
                min_vertex_cover_size(g)
            done += 1

    def test_mds_reduction_rejects_isolated(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_vertex(2)
        with pytest.raises(ValueError):
            mvc_to_mds_graph(g)

    def test_mds_reduction_bounded_degree(self, rng):
        g = random_graph(6, 0.4, rng)
        while any(g.degree(v) == 0 for v in g.vertices()):
            g = random_graph(6, 0.4, rng)
        gd = mvc_to_mds_graph(g)
        assert gd.max_degree() <= 2 * g.max_degree()

    def test_spanner_cost_equals_mvc(self, rng):
        done = 0
        while done < 3:
            g = random_graph(4, 0.7, rng)
            if g.m == 0 or any(g.degree(v) == 0 for v in g.vertices()):
                continue
            h = mvc_to_two_spanner_graph(g)
            assert min_two_spanner_cost(h, limit_edges=12) == \
                min_vertex_cover_size(g)
            done += 1

    def test_spanner_reduction_rejects_isolated(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_vertex(2)
        with pytest.raises(ValueError):
            mvc_to_two_spanner_graph(g)
