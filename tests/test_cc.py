"""Communication-complexity substrate tests (Sections 1.3-1.4, 5.2)."""

import random

import pytest

from repro.cc import (
    DISJ,
    EQ,
    Channel,
    NondeterministicProtocol,
    all_inputs,
    disjointness,
    equality,
    gamma,
    implied_round_lower_bound,
    random_disjoint_pair,
    random_input_pairs,
    random_intersecting_pair,
    run_protocol,
    simulate_two_party,
)
from repro.congest.algorithms.basic import FloodMinId
from repro.core.mds import MdsFamily


class TestFunctions:
    def test_disjointness_basics(self):
        assert disjointness((0, 1, 0), (1, 0, 0))
        assert not disjointness((0, 1), (1, 1))
        assert disjointness((), ())

    def test_disjointness_length_mismatch(self):
        with pytest.raises(ValueError):
            disjointness((0,), (0, 1))

    def test_equality(self):
        assert equality((1, 0), (1, 0))
        assert not equality((1, 0), (0, 1))

    def test_random_disjoint_pairs(self, rng):
        for __ in range(20):
            x, y = random_disjoint_pair(12, rng)
            assert disjointness(x, y)

    def test_random_intersecting_pairs(self, rng):
        for __ in range(20):
            x, y = random_intersecting_pair(12, rng)
            assert not disjointness(x, y)

    def test_balanced_pairs(self, rng):
        pairs = random_input_pairs(10, 8, rng)
        answers = [disjointness(x, y) for x, y in pairs]
        assert answers.count(True) == 4

    def test_all_inputs(self):
        assert len(list(all_inputs(3))) == 8

    def test_complexity_facts(self):
        assert DISJ.cc(64) == 64
        assert DISJ.ccn(64) == 64
        assert DISJ.ccn_complement(64) == 6
        assert EQ.ccr(1024) == 10


class TestChannel:
    def test_counts_bits(self):
        ch = Channel()
        ch.a_to_b(7)   # 4 bits
        ch.b_to_a(1)   # 2 bits
        assert ch.messages == 2
        assert ch.bits == 6

    def test_returns_value(self):
        ch = Channel()
        assert ch.a_to_b("hello") == "hello"

    def test_run_protocol(self):
        def proto(x, y, channel):
            sx = channel.a_to_b(sum(x))
            return sx + sum(y)

        res = run_protocol(proto, (1, 1), (1, 0))
        assert res.output == 3
        assert res.messages == 1


class TestGamma:
    def test_disj_gamma_constant(self):
        assert gamma(DISJ, 64) == 1.0
        assert gamma(DISJ, 4096) == 1.0

    def test_eq_gamma_constant(self):
        assert gamma(EQ, 64) == 1.0


class TestTwoPartySimulation:
    def test_budget_respected(self, rng):
        fam = MdsFamily(4)
        x, y = random_input_pairs(16, 2, rng)[0]
        g = fam.build(x, y)
        sim = simulate_two_party(g, fam.alice_vertices(), FloodMinId)
        assert sim.within_budget
        assert sim.cut_bits > 0
        assert sim.ecut_size == len(fam.cut_edges())

    def test_rejects_trivial_partition(self, rng):
        fam = MdsFamily(4)
        x, y = random_input_pairs(16, 2, rng)[0]
        g = fam.build(x, y)
        with pytest.raises(ValueError):
            simulate_two_party(g, set(g.vertices()), FloodMinId)

    def test_implied_bound_formula(self):
        # CC = 1024 bits, |Ecut| = 8, n = 256: 1024/(2·8·8) = 8 rounds
        assert implied_round_lower_bound(1024, 8, 256) == 8.0

    def test_implied_bound_rejects_empty_cut(self):
        with pytest.raises(ValueError):
            implied_round_lower_bound(10, 0, 4)


class TestNondeterministic:
    def test_completeness_and_soundness(self):
        # toy: verify x == y via a fingerprint certificate
        def prover(x, y):
            return sum(x), sum(y)

        def verifier(x, ca, y, cb, channel):
            channel.a_to_b(ca)
            return ca == sum(x) and cb == sum(y) and ca == cb and tuple(x) == tuple(y)

        proto = NondeterministicProtocol("eq-toy", prover, verifier)
        proto.check_completeness((1, 0), (1, 0))
        proto.check_soundness((1, 0), (0, 1),
                              [(a, b) for a in range(3) for b in range(3)])

    def test_soundness_catches_bad_verifier(self):
        proto = NondeterministicProtocol(
            "always-accept", lambda x, y: (0, 0),
            lambda x, ca, y, cb, ch: True)
        with pytest.raises(AssertionError):
            proto.check_soundness((1,), (1,), [(0, 0)])
