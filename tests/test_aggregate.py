"""Convergecast/broadcast primitives, the greedy 2-spanner heuristic,
and the DISJ-vs-EQ communication contrast."""

import random

import pytest

from repro.cc import Channel, disjointness
from repro.cc.randomized import (
    disjointness_trivial_protocol,
    equality_fingerprint_protocol,
)
from repro.congest.algorithms import MAX, MIN, SUM, run_aggregate
from repro.graphs import Graph, complete_graph, cycle_graph, path_graph
from repro.solvers.spanner import greedy_two_spanner, is_two_spanner
from tests.conftest import connected_random_graph


class TestAggregate:
    def test_sum(self, rng):
        g = connected_random_graph(9, 0.4, rng)
        inputs = {v: rng.randint(0, 20) for v in g.vertices()}
        total, sim = run_aggregate(g, inputs, SUM)
        assert total == sum(inputs.values())

    def test_max_and_min(self, rng):
        g = cycle_graph(7)
        inputs = {v: (v * 3) % 11 for v in g.vertices()}
        assert run_aggregate(g, inputs, MAX)[0] == max(inputs.values())
        assert run_aggregate(g, inputs, MIN)[0] == min(inputs.values())

    def test_all_vertices_agree(self, rng):
        g = connected_random_graph(8, 0.35, rng)
        inputs = {v: 1 for v in g.vertices()}
        total, sim = run_aggregate(g, inputs, SUM)
        assert total == g.n  # counting — the Theorem 2.1 size check

    def test_rounds_linear(self, rng):
        g = path_graph(10)
        inputs = {v: 1 for v in g.vertices()}
        __, sim = run_aggregate(g, inputs, SUM)
        # leader (n) + BFS (n) + announce + up/down O(D)
        assert sim.rounds <= 2 * g.n + 2 * g.diameter() + 5

    def test_two_vertices(self):
        g = path_graph(2)
        total, __ = run_aggregate(g, {0: 4, 1: 5}, SUM)
        assert total == 9

    def test_star_aggregation(self):
        g = Graph()
        for leaf in range(6):
            g.add_edge("c", leaf)
        inputs = {v: 2 for v in g.vertices()}
        total, __ = run_aggregate(g, inputs, SUM)
        assert total == 14


class TestGreedySpanner:
    def test_output_is_valid_spanner(self, rng):
        for __ in range(5):
            g = connected_random_graph(9, 0.5, rng)
            edges = greedy_two_spanner(g)
            assert is_two_spanner(g, edges)

    def test_clique_star(self):
        g = complete_graph(6)
        edges = greedy_two_spanner(g)
        assert is_two_spanner(g, edges)
        assert len(edges) <= g.n - 1 + 2  # roughly one star

    def test_sparse_graph_keeps_everything(self):
        g = path_graph(5)
        edges = greedy_two_spanner(g)
        assert is_two_spanner(g, edges)
        assert len(set(map(frozenset, edges))) == g.m


class TestDisjVsEqContrast:
    """The communication-complexity asymmetry the paper's choice of DISJ
    rests on: equality has an O(log 1/δ) randomized protocol, while the
    natural DISJ protocol pays the full K bits."""

    def test_disj_protocol_correct(self, rng):
        for __ in range(10):
            x = tuple(rng.randint(0, 1) for _ in range(12))
            y = tuple(rng.randint(0, 1) for _ in range(12))
            ch = Channel()
            assert disjointness_trivial_protocol(x, y, ch) == \
                disjointness(x, y)

    def test_cost_contrast(self, rng):
        k = 128
        x = tuple(rng.randint(0, 1) for _ in range(k))
        ch_disj = Channel()
        disjointness_trivial_protocol(x, x, ch_disj)
        ch_eq = Channel()
        equality_fingerprint_protocol(x, x, ch_eq, random.Random(0),
                                      repetitions=8)
        assert ch_disj.bits >= k          # Θ(K)
        assert ch_eq.bits <= 16           # O(log 1/δ)
        assert ch_disj.bits > 10 * ch_eq.bits
